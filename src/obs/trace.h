// Observability: per-request trace spans with probe-cost attribution.
//
// Every sampled reverse traceroute gets a Trace: a tree of named spans, one
// per engine stage (DESIGN.md §9 lists the taxonomy — atlas-intersection,
// rr-direct, rr-spoof-batch, ts-skipped, symmetry, ...), each carrying
// sim-clock begin/end timestamps, the number of *online* probes the stage
// spent, and optional key=value annotations ("cached" -> "1",
// "outcome" -> "intradomain"). A trace answers the question the paper keeps
// asking of the deployed system: for this request, where did the probes and
// the seconds go?
//
// A Trace is single-threaded — the engine owns it for the duration of one
// measure() call (the parallel campaign driver gives each sampled request
// its own Trace on its worker thread). Completed traces are published into a
// TraceSink, a mutex-guarded bounded ring, so campaign memory stays bounded
// no matter how many requests run; overflow evicts the oldest trace and is
// counted, never silent.
//
// Attribution contract (checked by invariant I6, src/analysis/invariants.h):
// for a completed trace, the sum of `probes` over all spans equals the
// engine's online ProbeCounters delta for the request. To keep that sum
// well-defined, only leaf stage spans carry cost; the root "request" span
// reports 0 and parents never re-count their children.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/annotate.h"
#include "util/json.h"
#include "util/sim_clock.h"

namespace revtr::obs {

struct Span {
  std::string name;
  // Index into Trace::spans of the parent, or kNoParent for the root.
  std::size_t parent = kNoParent;
  util::SimClock::Micros begin = 0;
  util::SimClock::Micros end = 0;
  // Online probes attributed to this span (not including child spans).
  std::uint64_t probes = 0;
  bool open = true;
  std::vector<std::pair<std::string, std::string>> annotations;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
};

// One request's span tree. start_span()/end_span() must nest (the open span
// stack is LIFO); end_span() takes the id start_span() returned so mismatched
// nesting is caught, not absorbed.
class Trace {
 public:
  using SpanId = std::size_t;

  // `max_spans` bounds memory per trace; once exceeded, further spans are
  // dropped and overflowed() latches true (I6 skips overflowed traces).
  explicit Trace(std::size_t max_spans = kDefaultMaxSpans);

  // Request identity, set by whoever creates the trace.
  std::uint64_t request_index = 0;
  std::uint64_t destination = 0;  // Host id, kept opaque at this layer.
  std::uint64_t source = 0;

  SpanId start_span(std::string name, util::SimClock::Micros now);
  void end_span(SpanId id, util::SimClock::Micros now,
                std::uint64_t probes = 0);
  void annotate(SpanId id, std::string key, std::string value);
  // Zero-duration marker span (e.g. "ts-skipped": a decision, not work).
  void event(std::string name, util::SimClock::Micros now);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  bool overflowed() const noexcept { return overflowed_; }
  // Sum of probes over all recorded spans (the I6 left-hand side).
  std::uint64_t attributed_probes() const noexcept;

  util::Json to_json() const;

  static constexpr std::size_t kDefaultMaxSpans = 4096;
  // Sentinel SpanId returned once the trace has overflowed.
  static constexpr SpanId kDroppedSpan = static_cast<SpanId>(-1);

 private:
  std::size_t max_spans_;
  std::vector<Span> spans_;
  std::vector<SpanId> open_stack_;
  bool overflowed_ = false;
};

// Bounded ring of completed traces. publish() is thread-safe (one mutex —
// traces are published once per sampled request, far off the probe path).
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  void publish(Trace trace);

  // Snapshot of retained traces, oldest first, sorted by request_index so
  // output is independent of publish order across workers.
  std::vector<Trace> published() const;
  std::size_t size() const;
  std::uint64_t dropped() const;  // Evicted-by-overflow count.

  util::Json to_json() const;
  // Aggregate by span name: count, probes, sim seconds. The human view.
  std::string to_table() const;

  static constexpr std::size_t kDefaultCapacity = 128;

 private:
  mutable util::Mutex mu_;
  const std::size_t capacity_;
  std::deque<Trace> ring_ REVTR_GUARDED_BY(mu_);
  std::uint64_t dropped_ REVTR_GUARDED_BY(mu_) = 0;
};

}  // namespace revtr::obs
