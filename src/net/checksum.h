// RFC 1071 Internet checksum.
//
// Used by the wire codec to fill and verify IPv4 header and ICMP checksums,
// so serialized probes are byte-accurate replicas of what a raw socket
// implementation emits.
#pragma once

#include <cstdint>
#include <span>

namespace revtr::net {

// One's-complement sum of 16-bit words (odd trailing byte zero-padded),
// folded and complemented. A buffer containing a correct checksum field sums
// to 0xffff before complementing, so verify() checks checksum(b) == 0.
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes);

inline bool checksum_ok(std::span<const std::uint8_t> bytes) {
  return internet_checksum(bytes) == 0;
}

}  // namespace revtr::net
