// Runtime invariant layer: always-on checks, checked integral narrowing, and
// a bounds-checked big-endian byte reader.
//
// The wire codec sits on the trust boundary between the simulator and
// adversarial input (a malformed ICMP or Record-Route reply must never
// corrupt the atlas, §4.2 of the paper), so its invariants are enforced
// mechanically rather than by convention:
//
//   REVTR_CHECK(cond)   — always-on assertion; aborts with file:line.
//   REVTR_DCHECK(cond)  — debug-only (compiled out under NDEBUG).
//   checked_cast<T>(v)  — integral narrowing that aborts if v does not fit.
//   truncate_cast<T>(v) — integral narrowing that *intentionally* wraps
//                         (byte packing: `truncate_cast<uint8_t>(v >> 8)`),
//                         spelled out so revtr-lint can ban the unchecked
//                         static_cast form in src/net/.
//   ByteReader          — sequential big-endian reader over a span that can
//                         never read out of bounds; overruns latch ok()==false
//                         and yield zeros, so decoders check once at the end.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <type_traits>
#include <utility>

namespace revtr::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) noexcept {
  std::fprintf(stderr, "REVTR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

#define REVTR_CHECK(cond)                                            \
  (static_cast<bool>(cond)                                           \
       ? static_cast<void>(0)                                        \
       : ::revtr::util::check_failed(#cond, __FILE__, __LINE__))

#ifdef NDEBUG
#define REVTR_DCHECK(cond) \
  static_cast<void>(sizeof(static_cast<bool>(cond) ? 0 : 0))
#else
#define REVTR_DCHECK(cond) REVTR_CHECK(cond)
#endif

// Narrowing conversion that aborts when the value does not fit the target
// type. Use at trust boundaries where an out-of-range value means a logic
// bug, not bad input (bad input belongs in std::optional error paths).
template <typename To, typename From>
constexpr To checked_cast(From value) noexcept {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_cast is for integral types only");
  REVTR_CHECK(std::in_range<To>(value));
  return static_cast<To>(value);
}

// Narrowing conversion that keeps only the low bits, on purpose. The spelled
// name distinguishes deliberate byte packing from accidental truncation.
template <typename To, typename From>
constexpr To truncate_cast(From value) noexcept {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "truncate_cast is for integral types only");
  return static_cast<To>(value);
}

// Sequential reader over an immutable byte span. All accessors are bounds
// checked: reading past the end latches ok() == false and returns zeros
// (and empty subspans), so a decoder can run its whole happy path and test
// ok() once, with no way to touch memory outside the span.
class ByteReader {
 public:
  explicit constexpr ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  constexpr bool ok() const noexcept { return ok_; }
  constexpr std::size_t pos() const noexcept { return pos_; }
  constexpr std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  constexpr bool at_end() const noexcept { return pos_ == data_.size(); }

  constexpr std::uint8_t u8() noexcept {
    if (remaining() < 1) return fail();
    return data_[pos_++];
  }

  constexpr std::uint16_t u16() noexcept {
    if (remaining() < 2) return fail();
    const auto hi = data_[pos_];
    const auto lo = data_[pos_ + 1];
    pos_ += 2;
    return truncate_cast<std::uint16_t>((std::uint16_t{hi} << 8) | lo);
  }

  constexpr std::uint32_t u32() noexcept {
    if (remaining() < 4) return fail();
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                            (std::uint32_t{data_[pos_ + 1]} << 16) |
                            (std::uint32_t{data_[pos_ + 2]} << 8) |
                            std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return v;
  }

  // Peek without consuming; returns 0 past the end (does not latch failure,
  // so lookahead on possibly-short input stays cheap to express).
  constexpr std::uint8_t peek_u8(std::size_t offset = 0) const noexcept {
    return remaining() > offset ? data_[pos_ + offset] : 0;
  }

  constexpr void skip(std::size_t n) noexcept {
    if (remaining() < n) {
      fail();
      pos_ = data_.size();
      return;
    }
    pos_ += n;
  }

  // Consume n bytes and return them; empty span (and ok()==false) on overrun.
  constexpr std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (remaining() < n) {
      fail();
      pos_ = data_.size();
      return {};
    }
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

 private:
  constexpr std::uint8_t fail() noexcept {
    ok_ = false;
    return 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace revtr::util
