#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace revtr::util {

void Distribution::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

void Distribution::add_all(std::span<const double> samples) {
  for (double s : samples) add(s);
}

double Distribution::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

void Distribution::ensure_sorted() const {
  if (!sorted_) {
    auto& mutable_samples = const_cast<std::vector<double>&>(samples_);
    std::sort(mutable_samples.begin(), mutable_samples.end());
    sorted_ = true;
  }
}

double Distribution::min() const {
  if (samples_.empty()) throw std::logic_error("Distribution::min on empty");
  ensure_sorted();
  return samples_.front();
}

double Distribution::max() const {
  if (samples_.empty()) throw std::logic_error("Distribution::max on empty");
  ensure_sorted();
  return samples_.back();
}

double Distribution::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Distribution::quantile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("Distribution::quantile on empty");
  }
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Distribution::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Distribution::ccdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

std::vector<double> Distribution::cdf_curve(std::span<const double> xs) const {
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(cdf_at(x));
  return ys;
}

std::vector<double> Distribution::ccdf_curve(
    std::span<const double> xs) const {
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(ccdf_at(x));
  return ys;
}

std::uint64_t KeyedCounter::get(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t KeyedCounter::total() const {
  std::uint64_t acc = 0;
  for (const auto& [key, n] : counts_) acc += n;
  return acc;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs;
  if (n == 0) return xs;
  if (n == 1) {
    xs.push_back(lo);
    return xs;
  }
  xs.reserve(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(lo + step * static_cast<double>(i));
  }
  return xs;
}

}  // namespace revtr::util
