#include "service/service.h"

namespace revtr::service {

ServiceMetrics::ServiceMetrics(obs::MetricsRegistry& registry) {
  const auto quota = [&registry](const char* event) {
    return &registry.counter(
        std::string("revtr_service_quota_total{event=\"") + event + "\"}");
  };
  quota_charges = quota("charge");
  quota_refunds = quota("refund");
  quota_rejections = quota("reject");
  const auto probe_quota = [&registry](const char* event) {
    return &registry.counter(
        std::string("revtr_service_probe_quota_total{event=\"") + event +
        "\"}");
  };
  probe_quota_charged = probe_quota("charge");
  probe_quota_refunded = probe_quota("refund");
  probe_quota_rejections = probe_quota("reject");
  ndt_accepted =
      &registry.counter("revtr_service_ndt_total{outcome=\"accepted\"}");
  ndt_shed = &registry.counter("revtr_service_ndt_total{outcome=\"shed\"}");
  request_atlas_refreshes =
      &registry.counter("revtr_service_request_atlas_refreshes_total");
  daily_refreshes = &registry.counter("revtr_service_daily_refreshes_total");
  sources_bootstrapped = &registry.counter("revtr_service_sources_total");
}

ProbeCharge probe_cost_of(const core::ReverseTraceroute& result) noexcept {
  ProbeCharge cost;
  // `probes` counts uniquely-issued packets; coalesced demands rode another
  // request's in-flight probe (core/revtr.h). The gross demand is charged
  // and the coalesced share refunded, so the net cost is wire packets only
  // — a duplicate-heavy campaign must not burn its users' budgets on
  // probes that were never sent.
  cost.demanded = result.probes.total() + result.coalesced_probes;
  cost.refunded = result.coalesced_probes;
  return cost;
}

RevtrService::RevtrService(core::RevtrEngine& engine,
                           atlas::TracerouteAtlas& atlas,
                           probing::Prober& prober,
                           const topology::Topology& topo)
    : engine_(engine), atlas_(atlas), prober_(prober), topo_(topo) {}

UserId RevtrService::add_user(std::string name, UserLimits limits) {
  const UserId id = next_user_++;
  users_[id] = UserState{std::move(name), limits, 0};
  return id;
}

bool RevtrService::add_source(topology::HostId host, std::size_t atlas_size,
                              util::Rng& rng) {
  SourceRecord record;
  record.host = host;
  record.bootstrapped_at = clock_.now();

  // Step 1: verify the candidate source can receive RR packets — an RR ping
  // from a vantage point must come back with slots (Appx A bootstrap).
  const auto vps = topo_.vantage_points();
  for (const topology::HostId vp : vps) {
    const auto probe = prober_.rr_ping(vp, topo_.host(host).addr);
    if (probe.responded) {
      record.receives_rr = true;
      break;
    }
  }
  if (!record.receives_rr) return false;

  // Step 2: build the traceroute atlas (Q1) and the RR alias index (Q2).
  const auto build_time = atlas_.build(host, atlas_size, rng, clock_.now());
  atlas_.build_rr_alias_index(host);
  record.atlas_size = atlas_.traceroute_count(host);
  // The real bootstrap takes ~15 minutes, dominated by RIPE Atlas
  // scheduling; we charge the measured traceroute time plus that overhead.
  record.bootstrap_duration =
      build_time + 14 * util::SimClock::kMinute;
  clock_.advance(record.bootstrap_duration);

  record.atlas_refreshed_at = clock_.now();
  sources_[host] = record;
  if (metrics_ != nullptr) metrics_->sources_bootstrapped->add();
  return true;
}

RevtrService::QuotaDecision RevtrService::try_charge_request(UserId user) {
  const auto user_it = users_.find(user);
  if (user_it == users_.end()) return QuotaDecision::kUnknownUser;
  UserState& state = user_it->second;
  if (state.issued_today >= state.limits.daily_limit) {
    if (metrics_ != nullptr) metrics_->quota_rejections->add();
    return QuotaDecision::kQuotaExhausted;
  }
  if (state.probes_charged_today >= state.limits.daily_probe_budget) {
    if (metrics_ != nullptr) metrics_->probe_quota_rejections->add();
    return QuotaDecision::kProbeBudgetExhausted;
  }
  // Charge up front so a re-entrant caller cannot overshoot the limit; the
  // caller refunds when no path is delivered (see request()).
  ++state.issued_today;
  if (metrics_ != nullptr) metrics_->quota_charges->add();
  return QuotaDecision::kCharged;
}

void RevtrService::refund_request(UserId user) {
  const auto user_it = users_.find(user);
  if (user_it == users_.end()) return;
  UserState& state = user_it->second;
  if (state.issued_today == 0) return;
  --state.issued_today;
  if (metrics_ != nullptr) metrics_->quota_refunds->add();
}

void RevtrService::charge_probes_for(UserId user,
                                     const core::ReverseTraceroute& result) {
  const auto user_it = users_.find(user);
  if (user_it == users_.end()) return;
  charge_probes(user_it->second, result);
}

std::size_t RevtrService::requests_charged_today(UserId user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.issued_today;
}

std::optional<ServedMeasurement> RevtrService::request_with_options(
    UserId user, topology::HostId destination, topology::HostId source,
    const RequestOptions& options, util::Rng& rng) {
  const auto source_it = sources_.find(source);
  if (source_it == sources_.end()) return std::nullopt;
  if (try_charge_request(user) != QuotaDecision::kCharged) return std::nullopt;
  UserState& state = users_.find(user)->second;

  ServedMeasurement served;
  // Quota charges only stick for completed measurements (see request()).
  SourceRecord& record = source_it->second;
  if (options.max_atlas_age > 0 &&
      clock_.now() - record.atlas_refreshed_at > options.max_atlas_age) {
    atlas_.refresh(source, rng, clock_.now());
    atlas_.build_rr_alias_index(source);
    record.atlas_refreshed_at = clock_.now();
    record.atlas_size = atlas_.traceroute_count(source);
    served.atlas_refreshed = true;
    if (metrics_ != nullptr) metrics_->request_atlas_refreshes->add();
    // An atlas refresh takes ~15 minutes of wall-clock on RIPE Atlas.
    clock_.advance(15 * util::SimClock::kMinute);
  }

  served.reverse = engine_.measure(destination, source, clock_);
  if (!served.reverse.complete()) refund_request(user);
  charge_probes(state, served.reverse);
  archive(served.reverse);
  if (options.with_forward_traceroute) {
    served.forward = prober_.traceroute(
        source, topo_.host(destination).addr);
    clock_.advance(served.forward->duration_us);
  }
  return served;
}

std::optional<ServedMeasurement> RevtrService::on_ndt_measurement(
    topology::HostId client, topology::HostId server) {
  if (!sources_.contains(server)) return std::nullopt;
  if (ndt_issued_today_ >= ndt_budget_) {
    ++ndt_stats_.rejected_load;  // Load shedding: NDT traffic is best-effort.
    if (metrics_ != nullptr) metrics_->ndt_shed->add();
    return std::nullopt;
  }
  ++ndt_issued_today_;
  ++ndt_stats_.accepted;
  if (metrics_ != nullptr) metrics_->ndt_accepted->add();
  ServedMeasurement served;
  served.reverse = engine_.measure(client, server, clock_);
  archive(served.reverse);
  // M-Lab already issues the forward traceroute for every NDT test; our
  // reverse measurement complements it (Appx A).
  served.forward = prober_.traceroute(server, topo_.host(client).addr);
  clock_.advance(served.forward->duration_us);
  return served;
}

void RevtrService::charge_probes(UserState& state,
                                 const core::ReverseTraceroute& result) {
  const ProbeCharge cost = probe_cost_of(result);
  state.probes_charged_today += cost.net();
  if (metrics_ != nullptr) {
    metrics_->probe_quota_charged->add(cost.demanded);
    if (cost.refunded > 0) metrics_->probe_quota_refunded->add(cost.refunded);
  }
}

std::uint64_t RevtrService::probes_charged_today(UserId user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.probes_charged_today;
}

const SourceRecord* RevtrService::source_record(topology::HostId host) const {
  const auto it = sources_.find(host);
  return it == sources_.end() ? nullptr : &it->second;
}

std::optional<core::ReverseTraceroute> RevtrService::request(
    UserId user, topology::HostId destination, topology::HostId source) {
  if (!sources_.contains(source)) return std::nullopt;
  // Charge up front so a re-entrant caller cannot overshoot the limit, but
  // refund when the engine fails to deliver a path: a user whose requests
  // abort or come back unreachable has received nothing, and burning their
  // daily limit on service-side failures would lock them out (Appx A).
  if (try_charge_request(user) != QuotaDecision::kCharged) return std::nullopt;
  UserState& state = users_.find(user)->second;
  auto result = engine_.measure(destination, source, clock_);
  if (!result.complete()) refund_request(user);
  charge_probes(state, result);
  archive(result);
  return result;
}

CampaignStats RevtrService::run_campaign(
    std::span<const std::pair<topology::HostId, topology::HostId>> pairs,
    std::size_t parallelism) {
  CampaignStats stats;
  stats.requested = pairs.size();
  const auto counters_before = prober_.counters();
  for (const auto& [destination, source] : pairs) {
    const auto result = engine_.measure(destination, source, clock_);
    archive(result);
    const double latency = result.span.seconds();
    stats.latency_seconds.add(latency);
    stats.busy_seconds += latency;
    switch (result.status) {
      case core::RevtrStatus::kComplete:
        ++stats.completed;
        break;
      case core::RevtrStatus::kAbortedInterdomainSymmetry:
        ++stats.aborted;
        break;
      case core::RevtrStatus::kUnreachable:
        ++stats.unreachable;
        break;
    }
  }
  stats.probes = prober_.counters() - counters_before;
  stats.duration_seconds =
      stats.busy_seconds / static_cast<double>(std::max<std::size_t>(
                               parallelism, 1));
  return stats;
}

void RevtrService::daily_refresh(util::Rng& rng) {
  if (metrics_ != nullptr) metrics_->daily_refreshes->add();
  clock_.advance(util::SimClock::kDay);
  for (auto& [host, record] : sources_) {
    atlas_.refresh(host, rng, clock_.now());
    atlas_.build_rr_alias_index(host);
    record.atlas_size = atlas_.traceroute_count(host);
    record.atlas_refreshed_at = clock_.now();
  }
  for (auto& [id, user] : users_) {
    user.issued_today = 0;
    user.probes_charged_today = 0;
  }
  ndt_issued_today_ = 0;
  engine_.clear_caches();
}

}  // namespace revtr::service
