// Appx E: violations of destination-based routing.
//
// Methodology mirroring the paper: spoofed RR pings to destinations reveal
// adjacent reverse-hop pairs (R, R'); for each pair we re-probe R directly
// (spoofed as the same source) and check whether R' is again the next hop.
// Load balancers are excused by sending multiple probes to R: if they
// return several different next hops, the "violation" is randomized load
// balancing, which Reverse Traceroute tolerates (Fig 10).
//
// Paper: 6.6% of (hop, source) pairs violate destination-based routing;
// only 1.3% cause an AS-path deviation (the kind that could affect
// revtr 2.0's AS-level accuracy).
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "core/revtr.h"
#include "eval/harness.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  const auto max_pairs =
      static_cast<std::size_t>(flags.get_int("pairs", 1500));
  bench::warn_unknown_flags(flags);
  bench::print_header("Appx E: destination-based routing violations", setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  util::Rng rng(setup.seed * 41 + 3);
  const auto vps = lab.topo.vantage_points();
  const std::vector<topology::HostId> vp_pool(vps.begin(), vps.end());

  util::Fraction violations;      // Of tested (R, R', S) tuples.
  util::Fraction as_deviations;   // Of tested tuples.
  std::size_t load_balancers = 0;

  std::vector<topology::HostId> dests;
  for (const auto& host : lab.topo.hosts()) {
    if (host.rr_responsive && !host.is_vantage_point) {
      dests.push_back(host.id);
    }
  }
  rng.shuffle(dests);

  for (const auto dest : dests) {
    if (violations.total >= max_pairs) break;
    const topology::HostId source = rng.pick(vp_pool);
    const auto source_addr = lab.topo.host(source).addr;
    // Try a few vantage points until one reveals at least two reverse hops.
    std::vector<net::Ipv4Addr> reverse;
    for (int attempt = 0; attempt < 5 && reverse.size() < 2; ++attempt) {
      const auto probe = lab.prober.rr_ping(
          rng.pick(vp_pool), lab.topo.host(dest).addr, source_addr);
      if (!probe.responded) continue;
      reverse = core::RevtrEngine::extract_reverse_hops(
          probe.slots, lab.topo.host(dest).addr);
    }
    if (reverse.size() < 2) continue;

    for (std::size_t i = 0; i + 1 < reverse.size(); ++i) {
      const auto r = reverse[i];
      const auto r_next = reverse[i + 1];
      if (r.is_private() || r_next.is_private()) continue;

      // Re-probe R (spoofed as S) several times; collect next hops. The
      // response must contain R's own stamp as the delimiter — routers
      // that answer with a loopback or private alias cannot be aligned
      // reliably and are excluded, as in the paper's methodology.
      std::set<net::Ipv4Addr> next_hops;
      for (int attempt = 0; attempt < 6; ++attempt) {
        const auto recheck =
            lab.prober.rr_ping(rng.pick(vp_pool), r, source_addr);
        if (!recheck.responded) continue;
        const auto self = std::find(recheck.slots.rbegin(),
                                    recheck.slots.rend(), r);
        if (self == recheck.slots.rend() || self == recheck.slots.rbegin()) {
          continue;  // No stamp, or no room for a reverse hop.
        }
        next_hops.insert(*(self.base()));
      }
      if (next_hops.empty()) continue;
      if (next_hops.contains(r_next)) {
        violations.tally(false);
        as_deviations.tally(false);
        continue;
      }
      if (next_hops.size() > 1) {
        // Randomized load balancing: both paths are valid (Fig 10).
        ++load_balancers;
        continue;
      }
      violations.tally(true);
      // Does the deviation change the AS-level path?
      const auto as_expected = lab.ip2as.lookup(r_next);
      const auto as_observed = lab.ip2as.lookup(*next_hops.begin());
      as_deviations.tally(as_expected && as_observed &&
                          *as_expected != *as_observed);
    }
  }

  util::TextTable table({"Metric", "Value"});
  table.add_row(
      {"(hop, source) tuples tested", util::cell_count(violations.total)});
  table.add_row({"violating destination-based routing",
                 util::cell_percent(violations.value())});
  table.add_row({"causing an AS-path deviation",
                 util::cell_percent(as_deviations.value())});
  table.add_row({"excused as load balancers",
                 util::cell_count(load_balancers)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: 6.6%% of tuples violate destination-based routing (excluding\n"
      "load balancing); only 1.3%% deviate at the AS level. This is why\n"
      "Insight 1.1's hop-by-hop stitching is sound in practice.\n");
  return 0;
}
