#include "server/frame.h"

#include "util/check.h"

namespace revtr::server {
namespace {

// --- Encoding helpers (big-endian, appended to a growing buffer). -----------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(util::truncate_cast<std::uint8_t>(v >> 8));
  out.push_back(util::truncate_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(util::truncate_cast<std::uint8_t>(v >> 24));
  out.push_back(util::truncate_cast<std::uint8_t>(v >> 16));
  out.push_back(util::truncate_cast<std::uint8_t>(v >> 8));
  out.push_back(util::truncate_cast<std::uint8_t>(v));
}

// ByteReader has no u64 on purpose (the packet codec never needs one);
// compose the two halves here rather than widening the reader.
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, util::truncate_cast<std::uint32_t>(v >> 32));
  put_u32(out, util::truncate_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

std::uint64_t read_u64(util::ByteReader& reader) {
  const std::uint64_t hi = reader.u32();
  const std::uint64_t lo = reader.u32();
  return (hi << 32) | lo;
}

std::int64_t read_i64(util::ByteReader& reader) {
  return static_cast<std::int64_t>(read_u64(reader));
}

std::string read_string(util::ByteReader& reader, std::size_t len) {
  const auto view = reader.bytes(len);
  return std::string(view.begin(), view.end());
}

void encode_payload(const Message& message, std::vector<std::uint8_t>& out) {
  std::visit(
      [&out](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Hello>) {
          REVTR_CHECK(msg.api_key.size() <= kMaxApiKeyLen);
          put_u32(out, msg.proto_version);
          put_u8(out, msg.push_results ? 1 : 0);
          put_u8(out, util::checked_cast<std::uint8_t>(msg.api_key.size()));
          put_string(out, msg.api_key);
        } else if constexpr (std::is_same_v<T, HelloOk>) {
          REVTR_CHECK(msg.tenant_name.size() <= kMaxTenantNameLen);
          put_u32(out, msg.tenant);
          put_i64(out, msg.server_now_us);
          put_u8(out,
                 util::checked_cast<std::uint8_t>(msg.tenant_name.size()));
          put_string(out, msg.tenant_name);
        } else if constexpr (std::is_same_v<T, HelloErr>) {
          put_u8(out, static_cast<std::uint8_t>(msg.reason));
        } else if constexpr (std::is_same_v<T, Submit>) {
          put_u64(out, msg.request_id);
          put_u32(out, msg.dest_index);
          put_u32(out, msg.source_index);
          put_u8(out, static_cast<std::uint8_t>(msg.priority));
          put_i64(out, msg.deadline_us);
        } else if constexpr (std::is_same_v<T, SubmitOk>) {
          put_u64(out, msg.request_id);
        } else if constexpr (std::is_same_v<T, SubmitErr>) {
          put_u64(out, msg.request_id);
          put_u8(out, static_cast<std::uint8_t>(msg.reason));
        } else if constexpr (std::is_same_v<T, Result>) {
          REVTR_CHECK(msg.hops.size() <= kMaxResultHops);
          put_u64(out, msg.request_id);
          put_u8(out, static_cast<std::uint8_t>(msg.status));
          const std::uint8_t flags =
              static_cast<std::uint8_t>((msg.shed ? 1u : 0u) |
                                        (msg.deadline_missed ? 2u : 0u));
          put_u8(out, flags);
          put_i64(out, msg.sim_latency_us);
          put_u64(out, msg.probes);
          put_u64(out, msg.coalesced_probes);
          put_u16(out, util::checked_cast<std::uint16_t>(msg.hops.size()));
          for (const ResultHop& hop : msg.hops) {
            put_u32(out, hop.addr.value());
            put_u8(out, static_cast<std::uint8_t>(hop.source));
          }
        } else if constexpr (std::is_same_v<T, Poll>) {
          put_u32(out, msg.max_results);
        } else if constexpr (std::is_same_v<T, PollDone>) {
          put_u32(out, msg.returned);
          put_u32(out, msg.pending);
        } else if constexpr (std::is_same_v<T, Stats>) {
          // Empty payload.
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          REVTR_CHECK(msg.json.size() <= kMaxFramePayload - 4);
          put_u32(out, util::checked_cast<std::uint32_t>(msg.json.size()));
          put_string(out, msg.json);
        } else if constexpr (std::is_same_v<T, Drain>) {
          // Empty payload.
        } else if constexpr (std::is_same_v<T, DrainDone>) {
          put_u64(out, msg.completed);
          put_u64(out, msg.shed);
        } else if constexpr (std::is_same_v<T, AgentRegister>) {
          REVTR_CHECK(msg.name.size() <= kMaxTenantNameLen);
          put_u32(out, msg.proto_version);
          put_u32(out, msg.window);
          put_u8(out, util::checked_cast<std::uint8_t>(msg.name.size()));
          put_string(out, msg.name);
        } else if constexpr (std::is_same_v<T, AgentProbe>) {
          REVTR_CHECK(msg.spec.prespec.size() <= kMaxAgentPrespec);
          put_u64(out, msg.ticket);
          put_u8(out, static_cast<std::uint8_t>(msg.spec.type));
          put_u32(out, msg.spec.from);
          put_u32(out, msg.spec.target.value());
          put_u8(out, msg.spec.spoof_as.has_value() ? 1 : 0);
          if (msg.spec.spoof_as.has_value()) {
            put_u32(out, msg.spec.spoof_as->value());
          }
          put_u8(out,
                 util::checked_cast<std::uint8_t>(msg.spec.prespec.size()));
          for (const net::Ipv4Addr addr : msg.spec.prespec) {
            put_u32(out, addr.value());
          }
        } else if constexpr (std::is_same_v<T, AgentProbeResult>) {
          REVTR_CHECK(msg.reply.slots.size() <= kMaxAgentSlots);
          REVTR_CHECK(msg.reply.stamped.size() <= kMaxAgentPrespec);
          REVTR_CHECK(msg.reply.traceroute.hops.size() <= kMaxAgentTrHops);
          put_u64(out, msg.ticket);
          put_u8(out, msg.reply.responded ? 1 : 0);
          put_u8(out, util::checked_cast<std::uint8_t>(msg.reply.slots.size()));
          for (const net::Ipv4Addr addr : msg.reply.slots) {
            put_u32(out, addr.value());
          }
          put_u8(out,
                 util::checked_cast<std::uint8_t>(msg.reply.stamped.size()));
          for (const bool stamp : msg.reply.stamped) {
            put_u8(out, stamp ? 1 : 0);
          }
          put_u8(out, msg.reply.traceroute.reached ? 1 : 0);
          put_i64(out, msg.reply.traceroute.duration_us);
          put_u8(out, util::checked_cast<std::uint8_t>(
                          msg.reply.traceroute.hops.size()));
          for (const probing::TracerouteHop& hop : msg.reply.traceroute.hops) {
            put_u8(out, hop.addr.has_value() ? 1 : 0);
            if (hop.addr.has_value()) put_u32(out, hop.addr->value());
            put_i64(out, hop.rtt_us);
          }
          put_i64(out, msg.reply.duration_us);
          put_u64(out, msg.reply.packets);
        } else if constexpr (std::is_same_v<T, AgentHeartbeat>) {
          put_u32(out, msg.inflight);
          put_u64(out, msg.executed);
        } else {
          static_assert(std::is_same_v<T, AgentDrain>);
          put_u64(out, msg.executed);
        }
      },
      message);
}

std::optional<RejectReason> read_reject_reason(util::ByteReader& reader) {
  const std::uint8_t raw = reader.u8();
  if (!reader.ok() || raw > kMaxRejectReason) return std::nullopt;
  return static_cast<RejectReason>(raw);
}

std::optional<Message> fail(FrameError* error, FrameError reason) {
  if (error != nullptr) *error = reason;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(FrameError error) {
  switch (error) {
    case FrameError::kNone:
      return "none";
    case FrameError::kTruncatedHeader:
      return "truncated-header";
    case FrameError::kBadMagic:
      return "bad-magic";
    case FrameError::kBadVersion:
      return "bad-version";
    case FrameError::kUnknownType:
      return "unknown-type";
    case FrameError::kOversizedPayload:
      return "oversized-payload";
    case FrameError::kTruncatedPayload:
      return "truncated-payload";
    case FrameError::kBadPayload:
      return "bad-payload";
    case FrameError::kTrailingBytes:
      return "trailing-bytes";
  }
  return "unknown";
}

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kHelloOk:
      return "HELLO_OK";
    case FrameType::kHelloErr:
      return "HELLO_ERR";
    case FrameType::kSubmit:
      return "SUBMIT";
    case FrameType::kSubmitOk:
      return "SUBMIT_OK";
    case FrameType::kSubmitErr:
      return "SUBMIT_ERR";
    case FrameType::kResult:
      return "RESULT";
    case FrameType::kPoll:
      return "POLL";
    case FrameType::kPollDone:
      return "POLL_DONE";
    case FrameType::kStats:
      return "STATS";
    case FrameType::kStatsReply:
      return "STATS_REPLY";
    case FrameType::kDrain:
      return "DRAIN";
    case FrameType::kDrainDone:
      return "DRAIN_DONE";
    case FrameType::kAgentRegister:
      return "AGENT_REGISTER";
    case FrameType::kAgentProbe:
      return "AGENT_PROBE";
    case FrameType::kAgentProbeResult:
      return "AGENT_PROBE_RESULT";
    case FrameType::kAgentHeartbeat:
      return "AGENT_HEARTBEAT";
    case FrameType::kAgentDrain:
      return "AGENT_DRAIN";
  }
  return "unknown";
}

std::string_view to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kBadApiKey:
      return "bad-api-key";
    case RejectReason::kNotAuthenticated:
      return "not-authenticated";
    case RejectReason::kDraining:
      return "draining";
    case RejectReason::kRateLimited:
      return "rate-limited";
    case RejectReason::kQuotaExhausted:
      return "quota-exhausted";
    case RejectReason::kProbeBudgetExhausted:
      return "probe-budget-exhausted";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kBackpressure:
      return "backpressure";
    case RejectReason::kDeadlineExpired:
      return "deadline-expired";
    case RejectReason::kDeadlineUnmeetable:
      return "deadline-unmeetable";
    case RejectReason::kBadRequest:
      return "bad-request";
  }
  return "unknown";
}

FrameType frame_type_of(const Message& message) {
  return std::visit(
      [](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Hello>) {
          return FrameType::kHello;
        } else if constexpr (std::is_same_v<T, HelloOk>) {
          return FrameType::kHelloOk;
        } else if constexpr (std::is_same_v<T, HelloErr>) {
          return FrameType::kHelloErr;
        } else if constexpr (std::is_same_v<T, Submit>) {
          return FrameType::kSubmit;
        } else if constexpr (std::is_same_v<T, SubmitOk>) {
          return FrameType::kSubmitOk;
        } else if constexpr (std::is_same_v<T, SubmitErr>) {
          return FrameType::kSubmitErr;
        } else if constexpr (std::is_same_v<T, Result>) {
          return FrameType::kResult;
        } else if constexpr (std::is_same_v<T, Poll>) {
          return FrameType::kPoll;
        } else if constexpr (std::is_same_v<T, PollDone>) {
          return FrameType::kPollDone;
        } else if constexpr (std::is_same_v<T, Stats>) {
          return FrameType::kStats;
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          return FrameType::kStatsReply;
        } else if constexpr (std::is_same_v<T, Drain>) {
          return FrameType::kDrain;
        } else if constexpr (std::is_same_v<T, DrainDone>) {
          return FrameType::kDrainDone;
        } else if constexpr (std::is_same_v<T, AgentRegister>) {
          return FrameType::kAgentRegister;
        } else if constexpr (std::is_same_v<T, AgentProbe>) {
          return FrameType::kAgentProbe;
        } else if constexpr (std::is_same_v<T, AgentProbeResult>) {
          return FrameType::kAgentProbeResult;
        } else if constexpr (std::is_same_v<T, AgentHeartbeat>) {
          return FrameType::kAgentHeartbeat;
        } else {
          static_assert(std::is_same_v<T, AgentDrain>);
          return FrameType::kAgentDrain;
        }
      },
      message);
}

std::vector<std::uint8_t> encode_frame(const Message& message) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + 64);
  put_u16(out, kFrameMagic);
  put_u8(out, kProtoVersion);
  put_u8(out, static_cast<std::uint8_t>(frame_type_of(message)));
  put_u32(out, 0);  // Placeholder; patched below.
  encode_payload(message, out);
  const std::size_t payload_len = out.size() - kFrameHeaderSize;
  REVTR_CHECK(payload_len <= kMaxFramePayload);
  out[4] = util::truncate_cast<std::uint8_t>(payload_len >> 24);
  out[5] = util::truncate_cast<std::uint8_t>(payload_len >> 16);
  out[6] = util::truncate_cast<std::uint8_t>(payload_len >> 8);
  out[7] = util::truncate_cast<std::uint8_t>(payload_len);
  return out;
}

std::optional<FrameHeader> decode_frame_header(
    std::span<const std::uint8_t> bytes, FrameError* error) {
  if (error != nullptr) *error = FrameError::kNone;
  util::ByteReader reader(bytes);
  const std::uint16_t magic = reader.u16();
  const std::uint8_t version = reader.u8();
  const std::uint8_t type = reader.u8();
  const std::uint32_t payload_len = reader.u32();
  if (!reader.ok()) {
    fail(error, FrameError::kTruncatedHeader);
    return std::nullopt;
  }
  if (magic != kFrameMagic) {
    fail(error, FrameError::kBadMagic);
    return std::nullopt;
  }
  if (version != kProtoVersion) {
    fail(error, FrameError::kBadVersion);
    return std::nullopt;
  }
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kAgentDrain)) {
    fail(error, FrameError::kUnknownType);
    return std::nullopt;
  }
  if (payload_len > kMaxFramePayload) {
    fail(error, FrameError::kOversizedPayload);
    return std::nullopt;
  }
  return FrameHeader{static_cast<FrameType>(type), payload_len};
}

std::optional<Message> decode_payload(FrameType type,
                                      std::span<const std::uint8_t> payload,
                                      FrameError* error) {
  if (error != nullptr) *error = FrameError::kNone;
  util::ByteReader reader(payload);
  std::optional<Message> decoded;
  switch (type) {
    case FrameType::kHello: {
      Hello msg;
      msg.proto_version = reader.u32();
      const std::uint8_t flags = reader.u8();
      const std::uint8_t key_len = reader.u8();
      if (flags > 1 || key_len > kMaxApiKeyLen)
        return fail(error, FrameError::kBadPayload);
      msg.push_results = flags != 0;
      msg.api_key = read_string(reader, key_len);
      decoded = std::move(msg);
      break;
    }
    case FrameType::kHelloOk: {
      HelloOk msg;
      msg.tenant = reader.u32();
      msg.server_now_us = read_i64(reader);
      const std::uint8_t name_len = reader.u8();
      if (name_len > kMaxTenantNameLen)
        return fail(error, FrameError::kBadPayload);
      msg.tenant_name = read_string(reader, name_len);
      decoded = std::move(msg);
      break;
    }
    case FrameType::kHelloErr: {
      const auto reason = read_reject_reason(reader);
      if (!reason.has_value()) return fail(error, FrameError::kBadPayload);
      decoded = HelloErr{*reason};
      break;
    }
    case FrameType::kSubmit: {
      Submit msg;
      msg.request_id = read_u64(reader);
      msg.dest_index = reader.u32();
      msg.source_index = reader.u32();
      const std::uint8_t priority = reader.u8();
      if (priority >= kPriorityLevels)
        return fail(error, FrameError::kBadPayload);
      msg.priority = static_cast<Priority>(priority);
      msg.deadline_us = read_i64(reader);
      if (msg.deadline_us < 0) return fail(error, FrameError::kBadPayload);
      decoded = msg;
      break;
    }
    case FrameType::kSubmitOk: {
      decoded = SubmitOk{read_u64(reader)};
      break;
    }
    case FrameType::kSubmitErr: {
      SubmitErr msg;
      msg.request_id = read_u64(reader);
      const auto reason = read_reject_reason(reader);
      if (!reason.has_value()) return fail(error, FrameError::kBadPayload);
      msg.reason = *reason;
      decoded = msg;
      break;
    }
    case FrameType::kResult: {
      Result msg;
      msg.request_id = read_u64(reader);
      const std::uint8_t status = reader.u8();
      if (status > static_cast<std::uint8_t>(core::RevtrStatus::kUnreachable))
        return fail(error, FrameError::kBadPayload);
      msg.status = static_cast<core::RevtrStatus>(status);
      const std::uint8_t flags = reader.u8();
      if (flags > 3) return fail(error, FrameError::kBadPayload);
      msg.shed = (flags & 1) != 0;
      msg.deadline_missed = (flags & 2) != 0;
      msg.sim_latency_us = read_i64(reader);
      msg.probes = read_u64(reader);
      msg.coalesced_probes = read_u64(reader);
      const std::uint16_t hop_count = reader.u16();
      if (hop_count > kMaxResultHops)
        return fail(error, FrameError::kBadPayload);
      // Bound the reserve by what the payload can actually hold, so a lying
      // count on a short buffer cannot balloon the allocation before the
      // reader latches the overrun.
      if (reader.remaining() < std::size_t{hop_count} * 5)
        return fail(error, FrameError::kBadPayload);
      msg.hops.reserve(hop_count);
      for (std::uint16_t i = 0; i < hop_count; ++i) {
        ResultHop hop;
        hop.addr = net::Ipv4Addr(reader.u32());
        const std::uint8_t source = reader.u8();
        if (source >
            static_cast<std::uint8_t>(core::HopSource::kSuspiciousGap))
          return fail(error, FrameError::kBadPayload);
        hop.source = static_cast<core::HopSource>(source);
        msg.hops.push_back(hop);
      }
      decoded = std::move(msg);
      break;
    }
    case FrameType::kPoll: {
      decoded = Poll{reader.u32()};
      break;
    }
    case FrameType::kPollDone: {
      PollDone msg;
      msg.returned = reader.u32();
      msg.pending = reader.u32();
      decoded = msg;
      break;
    }
    case FrameType::kStats: {
      decoded = Stats{};
      break;
    }
    case FrameType::kStatsReply: {
      const std::uint32_t len = reader.u32();
      if (!reader.ok() || len != reader.remaining())
        return fail(error, FrameError::kBadPayload);
      decoded = StatsReply{read_string(reader, len)};
      break;
    }
    case FrameType::kDrain: {
      decoded = Drain{};
      break;
    }
    case FrameType::kDrainDone: {
      DrainDone msg;
      msg.completed = read_u64(reader);
      msg.shed = read_u64(reader);
      decoded = msg;
      break;
    }
    case FrameType::kAgentRegister: {
      AgentRegister msg;
      msg.proto_version = reader.u32();
      msg.window = reader.u32();
      const std::uint8_t name_len = reader.u8();
      if (name_len > kMaxTenantNameLen)
        return fail(error, FrameError::kBadPayload);
      msg.name = read_string(reader, name_len);
      decoded = std::move(msg);
      break;
    }
    case FrameType::kAgentProbe: {
      AgentProbe msg;
      msg.ticket = read_u64(reader);
      const std::uint8_t type_raw = reader.u8();
      if (type_raw > static_cast<std::uint8_t>(probing::ProbeType::kTraceroute))
        return fail(error, FrameError::kBadPayload);
      msg.spec.type = static_cast<probing::ProbeType>(type_raw);
      msg.spec.from = reader.u32();
      msg.spec.target = net::Ipv4Addr(reader.u32());
      const std::uint8_t has_spoof = reader.u8();
      if (has_spoof > 1) return fail(error, FrameError::kBadPayload);
      if (has_spoof != 0) msg.spec.spoof_as = net::Ipv4Addr(reader.u32());
      const std::uint8_t prespec_count = reader.u8();
      if (prespec_count > kMaxAgentPrespec ||
          reader.remaining() < std::size_t{prespec_count} * 4)
        return fail(error, FrameError::kBadPayload);
      msg.spec.prespec.reserve(prespec_count);
      for (std::uint8_t i = 0; i < prespec_count; ++i) {
        msg.spec.prespec.push_back(net::Ipv4Addr(reader.u32()));
      }
      decoded = std::move(msg);
      break;
    }
    case FrameType::kAgentProbeResult: {
      AgentProbeResult msg;
      msg.ticket = read_u64(reader);
      const std::uint8_t responded = reader.u8();
      if (responded > 1) return fail(error, FrameError::kBadPayload);
      msg.reply.responded = responded != 0;
      const std::uint8_t slot_count = reader.u8();
      if (slot_count > kMaxAgentSlots ||
          reader.remaining() < std::size_t{slot_count} * 4)
        return fail(error, FrameError::kBadPayload);
      msg.reply.slots.reserve(slot_count);
      for (std::uint8_t i = 0; i < slot_count; ++i) {
        msg.reply.slots.push_back(net::Ipv4Addr(reader.u32()));
      }
      const std::uint8_t stamp_count = reader.u8();
      if (stamp_count > kMaxAgentPrespec)
        return fail(error, FrameError::kBadPayload);
      msg.reply.stamped.reserve(stamp_count);
      for (std::uint8_t i = 0; i < stamp_count; ++i) {
        const std::uint8_t stamp = reader.u8();
        if (stamp > 1) return fail(error, FrameError::kBadPayload);
        msg.reply.stamped.push_back(stamp != 0);
      }
      const std::uint8_t reached = reader.u8();
      if (reached > 1) return fail(error, FrameError::kBadPayload);
      msg.reply.traceroute.reached = reached != 0;
      msg.reply.traceroute.duration_us = read_i64(reader);
      const std::uint8_t hop_count = reader.u8();
      // Bound the reserve by what the payload can actually hold (a hop is
      // at least 9 bytes), so a lying count cannot balloon the allocation.
      if (hop_count > kMaxAgentTrHops ||
          reader.remaining() < std::size_t{hop_count} * 9)
        return fail(error, FrameError::kBadPayload);
      msg.reply.traceroute.hops.reserve(hop_count);
      for (std::uint8_t i = 0; i < hop_count; ++i) {
        probing::TracerouteHop hop;
        const std::uint8_t has_addr = reader.u8();
        if (has_addr > 1) return fail(error, FrameError::kBadPayload);
        if (has_addr != 0) hop.addr = net::Ipv4Addr(reader.u32());
        hop.rtt_us = read_i64(reader);
        if (hop.rtt_us < 0) return fail(error, FrameError::kBadPayload);
        msg.reply.traceroute.hops.push_back(hop);
      }
      msg.reply.duration_us = read_i64(reader);
      msg.reply.packets = read_u64(reader);
      if (msg.reply.duration_us < 0 || msg.reply.traceroute.duration_us < 0)
        return fail(error, FrameError::kBadPayload);
      decoded = std::move(msg);
      break;
    }
    case FrameType::kAgentHeartbeat: {
      AgentHeartbeat msg;
      msg.inflight = reader.u32();
      msg.executed = read_u64(reader);
      decoded = msg;
      break;
    }
    case FrameType::kAgentDrain: {
      decoded = AgentDrain{read_u64(reader)};
      break;
    }
  }
  if (!decoded.has_value()) return fail(error, FrameError::kUnknownType);
  if (!reader.ok()) return fail(error, FrameError::kBadPayload);
  if (!reader.at_end()) return fail(error, FrameError::kTrailingBytes);
  return decoded;
}

std::optional<Message> decode_frame(std::span<const std::uint8_t> bytes,
                                    FrameError* error) {
  FrameError header_error = FrameError::kNone;
  const auto header = decode_frame_header(bytes, &header_error);
  if (!header.has_value()) {
    fail(error, header_error);
    return std::nullopt;
  }
  if (bytes.size() < kFrameHeaderSize + header->payload_len)
    return fail(error, FrameError::kTruncatedPayload);
  if (bytes.size() > kFrameHeaderSize + header->payload_len)
    return fail(error, FrameError::kTrailingBytes);
  return decode_payload(header->type,
                        bytes.subspan(kFrameHeaderSize, header->payload_len),
                        error);
}

}  // namespace revtr::server
