// Length-framed binary wire protocol for the measurement daemon.
//
// revtr_serverd speaks this protocol over local stream sockets. Every frame
// is an 8-byte fixed header followed by a payload:
//
//   u16 magic    0x5256 ("RV")
//   u8  version  kProtoVersion
//   u8  type     FrameType
//   u32 length   payload bytes (big-endian, <= kMaxFramePayload)
//
// The decoder is total in the same sense as net::decode_packet: any byte
// string either decodes to a Message or is rejected with a FrameError naming
// the first violated invariant — never a crash, never an out-of-bounds read
// (everything flows through util::ByteReader). The frame grammar and the
// tenant/priority/deadline model are documented in DESIGN.md §14; ROADMAP
// item 5 (controller / VP-agent split) reuses this codec.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/revtr.h"
#include "net/ipv4.h"
#include "probing/transport.h"

namespace revtr::server {

inline constexpr std::uint16_t kFrameMagic = 0x5256;  // "RV"
inline constexpr std::uint8_t kProtoVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 8;
// Generous for every message we define (the largest is a STATS_REPLY
// carrying a metrics snapshot); anything bigger is a protocol violation, so
// a lying length field cannot make the server buffer unboundedly.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;
inline constexpr std::size_t kMaxApiKeyLen = 128;
inline constexpr std::size_t kMaxTenantNameLen = 64;
inline constexpr std::size_t kMaxResultHops = 1024;
// Agent-frame caps (DESIGN.md §15). Comfortably above what the probers
// produce (TS prespec <= 4, RR record <= 9 slots, traceroute <= 40 TTLs) so
// the caps are a wire-safety bound, not a behavior limit.
inline constexpr std::size_t kMaxAgentPrespec = 8;
inline constexpr std::size_t kMaxAgentSlots = 16;
inline constexpr std::size_t kMaxAgentTrHops = 64;

enum class FrameType : std::uint8_t {
  kHello = 1,       // client -> server: auth with an API key
  kHelloOk = 2,     // server -> client: tenant id + server clock
  kHelloErr = 3,    // server -> client: auth rejected
  kSubmit = 4,      // client -> server: one measurement request
  kSubmitOk = 5,    // server -> client: admitted
  kSubmitErr = 6,   // server -> client: rejected (RejectReason)
  kResult = 7,      // server -> client: one finished measurement
  kPoll = 8,        // client -> server: fetch buffered results (pull mode)
  kPollDone = 9,    // server -> client: end of a poll batch
  kStats = 10,      // client -> server: request a stats snapshot
  kStatsReply = 11, // server -> client: JSON stats text
  kDrain = 12,      // client -> server: stop admitting, finish in-flight
  kDrainDone = 13,  // server -> client: drain complete
  // Controller <-> VP-agent frames (DESIGN.md §15).
  kAgentRegister = 14,     // agent -> controller: join as a remote prober
  kAgentProbe = 15,        // controller -> agent: one ticketed assignment
  kAgentProbeResult = 16,  // agent -> controller: the assignment's reply
  kAgentHeartbeat = 17,    // agent -> controller: liveness + load
  kAgentDrain = 18,        // either way: finish in-flight, then part ways
};

// First invariant violated by a rejected buffer, in validation order.
enum class FrameError : std::uint8_t {
  kNone = 0,
  kTruncatedHeader,   // Shorter than the 8-byte fixed header.
  kBadMagic,          // First two bytes are not kFrameMagic.
  kBadVersion,        // Version byte != kProtoVersion.
  kUnknownType,       // Type byte outside the FrameType range.
  kOversizedPayload,  // Declared length > kMaxFramePayload.
  kTruncatedPayload,  // Buffer shorter than header + declared length.
  kBadPayload,        // Payload grammar violated (length, range, cap).
  kTrailingBytes,     // Payload longer than its message grammar.
};

std::string_view to_string(FrameError error);
std::string_view to_string(FrameType type);

// Why a HELLO or SUBMIT was refused. Carried on the wire as one byte; the
// decoder validates the range so a forged reason cannot leave the enum.
enum class RejectReason : std::uint8_t {
  kBadApiKey = 0,          // HELLO: key matches no tenant.
  kNotAuthenticated = 1,   // SUBMIT before a successful HELLO.
  kDraining = 2,           // Server is draining; no new admissions.
  kRateLimited = 3,        // Tenant token bucket empty.
  kQuotaExhausted = 4,     // Tenant daily request quota spent.
  kProbeBudgetExhausted = 5,  // Tenant daily probe budget spent.
  kQueueFull = 6,          // Bounded submission queue at capacity.
  kBackpressure = 7,       // ProbeScheduler backlog over the limit.
  kDeadlineExpired = 8,    // Deadline already in the past at submit.
  kDeadlineUnmeetable = 9, // Estimated queue wait overruns the deadline.
  kBadRequest = 10,        // Destination/source index out of range.
};
inline constexpr std::uint8_t kMaxRejectReason =
    static_cast<std::uint8_t>(RejectReason::kBadRequest);

std::string_view to_string(RejectReason reason);

// Request priorities; affect dequeue order only, never admission itself.
enum class Priority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};
inline constexpr std::size_t kPriorityLevels = 3;

// --- Messages (one struct per FrameType). -----------------------------------

struct Hello {
  std::uint32_t proto_version = kProtoVersion;
  bool push_results = true;  // false: client pulls with POLL.
  std::string api_key;       // <= kMaxApiKeyLen bytes.

  bool operator==(const Hello&) const = default;
};

struct HelloOk {
  std::uint32_t tenant = 0;
  // Server monotonic clock at reply time, in micros. SUBMIT deadlines are
  // absolute instants on this clock: the client computes
  // `server_now_us + budget` so client/server clock skew never shifts a
  // deadline.
  std::int64_t server_now_us = 0;
  std::string tenant_name;  // <= kMaxTenantNameLen bytes.

  bool operator==(const HelloOk&) const = default;
};

struct HelloErr {
  RejectReason reason = RejectReason::kBadApiKey;

  bool operator==(const HelloErr&) const = default;
};

struct Submit {
  std::uint64_t request_id = 0;    // Client-chosen; echoed on every reply.
  std::uint32_t dest_index = 0;    // Index into the topology's probe hosts.
  std::uint32_t source_index = 0;  // Index into the bootstrapped sources.
  Priority priority = Priority::kNormal;
  std::int64_t deadline_us = 0;    // Absolute server clock; 0 = none.

  bool operator==(const Submit&) const = default;
};

struct SubmitOk {
  std::uint64_t request_id = 0;

  bool operator==(const SubmitOk&) const = default;
};

struct SubmitErr {
  std::uint64_t request_id = 0;
  RejectReason reason = RejectReason::kBadRequest;

  bool operator==(const SubmitErr&) const = default;
};

struct ResultHop {
  net::Ipv4Addr addr;  // Unspecified for suspicious-gap hops.
  core::HopSource source = core::HopSource::kDestination;

  bool operator==(const ResultHop&) const = default;
};

struct Result {
  std::uint64_t request_id = 0;
  core::RevtrStatus status = core::RevtrStatus::kUnreachable;
  // True when admission accepted the request but it was shed from the queue
  // before measuring (deadline expired while queued). Shed results carry no
  // hops and the request-count quota charge is refunded.
  bool shed = false;
  // True when the measurement finished after its deadline (it still carries
  // the full path — the deadline is an SLO, not a kill switch).
  bool deadline_missed = false;
  std::int64_t sim_latency_us = 0;  // Simulated measurement latency.
  std::uint64_t probes = 0;
  std::uint64_t coalesced_probes = 0;
  std::vector<ResultHop> hops;  // <= kMaxResultHops.

  bool operator==(const Result&) const = default;
};

struct Poll {
  std::uint32_t max_results = 16;

  bool operator==(const Poll&) const = default;
};

struct PollDone {
  std::uint32_t returned = 0;  // RESULT frames sent before this one.
  std::uint32_t pending = 0;   // Results still buffered server-side.

  bool operator==(const PollDone&) const = default;
};

struct Stats {
  bool operator==(const Stats&) const = default;
};

struct StatsReply {
  std::string json;  // Server counters + metrics snapshot (util::Json text).

  bool operator==(const StatsReply&) const = default;
};

struct Drain {
  bool operator==(const Drain&) const = default;
};

struct DrainDone {
  std::uint64_t completed = 0;  // Requests measured over the server's life.
  std::uint64_t shed = 0;       // Accepted-then-shed requests.

  bool operator==(const DrainDone&) const = default;
};

// --- Agent frames (controller <-> VP agent, DESIGN.md §15). -----------------

struct AgentRegister {
  std::uint32_t proto_version = kProtoVersion;
  std::uint32_t window = 16;  // Requested in-flight assignment window.
  std::string name;           // <= kMaxTenantNameLen bytes.

  bool operator==(const AgentRegister&) const = default;
};

// The controller acks a REGISTER with a HELLO_OK whose `tenant` field
// carries the scheduler-assigned agent id (agents are not tenants; reusing
// the ack frame keeps the grammar small).
struct AgentProbe {
  std::uint64_t ticket = 0;  // Scheduler assignment ticket; echoed back.
  // prespec <= kMaxAgentPrespec addresses; type within the ProbeType range.
  probing::ProbeSpec spec;

  bool operator==(const AgentProbe&) const = default;
};

struct AgentProbeResult {
  std::uint64_t ticket = 0;
  // slots <= kMaxAgentSlots, stamped <= kMaxAgentPrespec, traceroute hops
  // <= kMaxAgentTrHops; durations are non-negative simulated micros.
  probing::ProbeReply reply;

  bool operator==(const AgentProbeResult&) const = default;
};

struct AgentHeartbeat {
  std::uint32_t inflight = 0;   // Assignments held but not yet answered.
  std::uint64_t executed = 0;   // Lifetime probes executed.

  bool operator==(const AgentHeartbeat&) const = default;
};

struct AgentDrain {
  // Agent -> controller: lifetime probes executed (a parting stats line).
  // Controller -> agent: 0.
  std::uint64_t executed = 0;

  bool operator==(const AgentDrain&) const = default;
};

using Message = std::variant<Hello, HelloOk, HelloErr, Submit, SubmitOk,
                             SubmitErr, Result, Poll, PollDone, Stats,
                             StatsReply, Drain, DrainDone, AgentRegister,
                             AgentProbe, AgentProbeResult, AgentHeartbeat,
                             AgentDrain>;

FrameType frame_type_of(const Message& message);

// Serializes one message as a complete frame (header + payload). Encoding
// is infallible for messages within the documented caps; oversize fields
// are a programming error (REVTR_CHECK).
std::vector<std::uint8_t> encode_frame(const Message& message);

struct FrameHeader {
  FrameType type = FrameType::kHello;
  std::uint32_t payload_len = 0;
};

// Validates the fixed 8-byte header. `bytes` may be the front of a stream
// buffer; only kFrameHeaderSize bytes are examined. Rejections set `error`
// (kTruncatedHeader when fewer than kFrameHeaderSize bytes are available).
std::optional<FrameHeader> decode_frame_header(
    std::span<const std::uint8_t> bytes, FrameError* error = nullptr);

// Total decode of one payload of known type. The whole span must be
// consumed (kTrailingBytes otherwise); every length and enum byte is
// validated (kBadPayload).
std::optional<Message> decode_payload(FrameType type,
                                      std::span<const std::uint8_t> payload,
                                      FrameError* error = nullptr);

// Total decode of exactly one whole frame. Convenience for tests and the
// fuzzer; stream readers use decode_frame_header + decode_payload so a
// partial read is "wait for more bytes", not an error.
std::optional<Message> decode_frame(std::span<const std::uint8_t> bytes,
                                    FrameError* error = nullptr);

}  // namespace revtr::server
