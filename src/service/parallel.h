// Real parallel batch-campaign execution (§5.1, Fig 5c).
//
// RevtrService::run_campaign only *models* parallelism (simulated-time
// division). This driver runs a campaign on N genuine worker threads, the
// way the deployed system serves batched measurement requests. The design
// splits state into three tiers:
//
//   Per worker (no locks): a private Network + Prober + RevtrEngine +
//   SimClock + stats accumulator. Every worker's Network is seeded with the
//   same campaign-derived seed, and probe outcomes are pure functions of
//   probe content (stateless ECMP salt, endpoint-derived Paris flow ids), so
//   a request measures the same path on any worker.
//
//   Shared, lock-striped (read-mostly): one EngineCaches instance wired into
//   every worker engine — any worker's RR probe or symmetry traceroute
//   spares every other worker those packets (Doubletree-style shared
//   stop-set). The traceroute atlas and ingress plans are shared read-only
//   during the campaign (the driver pre-discovers every ingress plan so no
//   worker triggers an on-demand survey mid-campaign).
//
//   Merged at the barrier: per-worker CampaignStats/ProbeCounters combine
//   after every future resolves — never shared mutable counters.
//
// Determinism: per-request engine RNG reseeding from (campaign seed, request
// index) makes the measurement *set* — (destination, source, status, hops) —
// identical whether the campaign runs on 1 thread or N, provided network
// loss is off. Timing and probe totals legitimately differ: cache sharing
// depends on scheduling.
//
// Pacing: `pacing_scale` holds each worker slot for real wall-clock time
// proportional to the request's simulated latency. The deployment's
// throughput is latency-bound — workers spend most of a request inside the
// 10 s spoofed-batch timeouts, not on CPU — and pacing models exactly that,
// which is what makes N workers faster in wall-clock terms even on one core
// (bench/bench_parallel_campaign.cpp).
//
// Engine modes: kBlocking runs one engine.measure() per worker slot, the
// request occupying its worker for its whole latency. kStaged multiplexes
// *all* of a worker's requests as resumable core::RequestTasks over one
// shared sched::ProbeScheduler: each worker loop pumps the scheduler
// (issuing any eligible probe, its own or another worker's — outcomes are
// content-addressed so who issues is irrelevant), collects its tasks' ready
// outcome sets, and resumes them. Identical in-flight demands across
// requests coalesce into one wire probe; per-VP windows and spoofed-RR
// cross-request batching apply (DESIGN.md §10). Results are byte-identical
// to blocking mode modulo probe accounting: a coalesced request records the
// demand in coalesced_probes instead of its issued-probe counters. In staged
// mode pacing holds the worker per pump *round* (probes in a round are
// concurrent), not per request.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "asmap/asmap.h"
#include "atlas/atlas.h"
#include "core/revtr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/forwarding.h"
#include "sched/scheduler.h"
#include "service/service.h"
#include "topology/topology.h"
#include "vpselect/ingress.h"

namespace revtr::service {

// Everything a worker measurement stack hangs off. The atlas and ingress
// survey must already be built/buildable through their own (control-plane)
// prober; worker probers are created internally.
struct CampaignDeps {
  const topology::Topology& topo;
  const routing::ForwardingPlane& plane;
  atlas::TracerouteAtlas& atlas;
  vpselect::IngressDiscovery& ingress;
  const asmap::IpToAs& ip2as;
  const asmap::AsRelationships& relationships;
};

enum class EngineMode {
  kBlocking,  // One engine.measure() call per worker slot.
  kStaged,    // Resumable RequestTasks multiplexed over a ProbeScheduler.
};

struct ParallelCampaignOptions {
  std::size_t workers = 4;
  std::uint64_t seed = 7;
  core::EngineConfig engine = core::EngineConfig::revtr2();
  // Real seconds each worker slot is held per simulated second of request
  // latency. 0 disables pacing (tests); the scaling bench uses ~1e-3.
  double pacing_scale = 0.0;
  EngineMode mode = EngineMode::kBlocking;
  sched::SchedOptions sched;  // Staged mode only.

  // --- Observability (all optional; nullptr/0 = off). ---
  // Registry shared by every worker stack: probe and engine counters are
  // registered once and shard internally per worker thread, so the hot path
  // stays a relaxed atomic add. The report carries a snapshot taken at the
  // barrier, after all workers joined (merge-at-barrier).
  obs::MetricsRegistry* metrics = nullptr;
  // Every trace_sample_every-th request (by input index, so the sampled set
  // is scheduling-independent) records a span tree into trace_sink.
  // trace_sample_every == 0 disables tracing.
  obs::TraceSink* trace_sink = nullptr;
  std::size_t trace_sample_every = 0;
};

struct ParallelCampaignReport {
  // One entry per input pair, in input order regardless of scheduling.
  std::vector<core::ReverseTraceroute> results;
  CampaignStats stats;          // Merged across workers at the barrier.
  double wall_seconds = 0;      // Real elapsed time of run().
  std::vector<double> worker_busy_seconds;  // Simulated, per worker.
  // Present when options.metrics was set: registry snapshot taken after the
  // barrier, so every worker's sharded counters are fully merged.
  std::optional<obs::MetricsSnapshot> metrics;
  // Staged mode only: the shared scheduler's lifetime counters (probes
  // demanded vs issued vs coalesced, throttling, batching).
  std::optional<sched::SchedulerStats> sched;
};

class ParallelCampaignDriver {
 public:
  ParallelCampaignDriver(const CampaignDeps& deps,
                         ParallelCampaignOptions options);

  // Executes one campaign. Reentrant-unsafe: one run() at a time.
  ParallelCampaignReport run(
      std::span<const std::pair<topology::HostId, topology::HostId>> pairs);

 private:
  // Surveys every prefix that has no ingress plan yet, through the
  // ingress module's own control prober, so workers never hit the
  // on-demand discovery path concurrently.
  void precompute_ingress_plans();

  CampaignDeps deps_;
  ParallelCampaignOptions options_;
};

}  // namespace revtr::service
