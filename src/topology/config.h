// Knobs of the topology generator.
//
// Defaults are tuned so the measured behaviour of the synthetic Internet
// matches the paper's reported environment: ~77% ping responsiveness, ~58%
// RR responsiveness (Table 6), the RR-stamping artifact mix of §4.3/§5.2.2,
// a small rate of destination-based-routing violations (Appx E), and VP
// placement that puts most prefixes within 9 RR hops of a colo AS
// (Insight 1.7).
#pragma once

#include <cstddef>
#include <cstdint>

namespace revtr::topology {

struct TopologyConfig {
  std::uint64_t seed = 42;

  // --- AS-level structure. ---
  std::size_t num_ases = 1200;
  std::size_t num_tier1 = 8;
  double transit_fraction = 0.25;     // Of non-tier1 ASes.
  double nren_fraction = 0.02;        // Of transit ASes.
  double stub_multihome_prob = 0.70;  // Stubs with 2+ providers.
  double transit_peer_prob = 0.45;    // Peering among transits.

  // --- Router-level structure. ---
  std::size_t tier1_routers_min = 12, tier1_routers_max = 24;
  std::size_t transit_routers_min = 5, transit_routers_max = 12;
  std::size_t stub_routers_min = 2, stub_routers_max = 6;
  double intra_extra_edge_prob = 0.20;  // Redundancy beyond the spanning tree.

  // --- Behaviour mix (router stamping policies; must sum to <= 1, the
  // remainder is kEgress). ---
  double rr_ingress_frac = 0.08;
  double rr_loopback_frac = 0.10;
  double rr_private_frac = 0.04;
  double rr_nostamp_frac = 0.05;

  double router_ttl_responsive = 0.95;  // Shows up in traceroute.
  double router_ping_responsive = 0.93;
  double router_snmp_responder = 0.30;  // §4.4 dataset basis.
  double router_per_packet_lb = 0.02;
  double router_source_sensitive = 0.05;  // Appx E violation sources.

  // --- Hosts. ---
  std::size_t hosts_per_prefix = 6;
  double host_ping_responsive = 0.77;           // Table 6.
  double host_rr_responsive_given_ping = 0.76;  // 0.77*0.76 ~ 0.58 overall.
  double host_nostamp_frac = 0.10;
  double host_doublestamp_frac = 0.06;
  double host_aliasstamp_frac = 0.06;

  // --- Vantage points and probe hosts. ---
  std::size_t num_vps = 40;        // "2020" era, colo-hosted (M-Lab-like).
  std::size_t num_vps_2016 = 14;   // Edu-hosted subset for Table 6 / Fig 11.
  double vp_as_allows_spoofing = 0.92;
  std::size_t num_probe_hosts = 300;  // RIPE-Atlas-like.

  // --- AS-level behaviours. ---
  double as_filters_options = 0.03;
  double as_source_sensitive = 0.08;  // Violates destination-based routing.

  // --- Link delays (microseconds). ---
  std::int64_t intra_delay_min_us = 100, intra_delay_max_us = 2000;
  std::int64_t inter_delay_min_us = 1000, inter_delay_max_us = 30000;

  // Returns a copy scaled to `n` ASes keeping proportions; benches use this
  // to sweep sizes from the command line.
  TopologyConfig with_ases(std::size_t n) const {
    TopologyConfig scaled = *this;
    scaled.num_ases = n;
    return scaled;
  }
};

}  // namespace revtr::topology
