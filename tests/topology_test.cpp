#include <gtest/gtest.h>
#include <memory>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "topology/address_plan.h"
#include "topology/as_graph.h"
#include "topology/builder.h"
#include "topology/config.h"
#include "topology/topology.h"

namespace revtr::topology {
namespace {

TopologyConfig small_config() {
  TopologyConfig config;
  config.seed = 7;
  config.num_ases = 120;
  config.num_vps = 8;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 30;
  return config;
}

class TopologyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { topo_ = std::make_unique<Topology>(TopologyBuilder::build(small_config())); }
  static void TearDownTestSuite() {
    topo_.reset();
  }
  static std::unique_ptr<Topology> topo_;
};

std::unique_ptr<Topology> TopologyFixture::topo_;

// --------------------------------------------------------------------------
// AddressPlan
// --------------------------------------------------------------------------

TEST(AddressPlan, CustomerPrefixesSequentialAndDisjoint) {
  AddressPlan plan;
  const auto a = plan.allocate_customer_prefix();
  const auto b = plan.allocate_customer_prefix();
  EXPECT_EQ(a.length(), AddressPlan::kCustomerPrefixLen);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(b.network()));
  EXPECT_FALSE(b.contains(a.network()));
}

TEST(AddressPlan, InfraCursorSeparatesLoopbacksAndP2p) {
  AddressPlan plan;
  AddressPlan::InfraCursor cursor{plan.allocate_infra_prefix()};
  const auto lo1 = cursor.take_loopback();
  const auto lo2 = cursor.take_loopback();
  const auto p2p = cursor.take_p2p_block();
  ASSERT_TRUE(lo1 && lo2 && p2p);
  EXPECT_NE(*lo1, *lo2);
  // The /30 block comes from the top of the prefix, loopbacks from the
  // bottom: they can never collide.
  EXPECT_GT(p2p->value(), lo2->value());
  EXPECT_TRUE(cursor.prefix.contains(*lo1));
  EXPECT_TRUE(cursor.prefix.contains(*p2p));
}

TEST(AddressPlan, InfraCursorExhausts) {
  AddressPlan plan;
  AddressPlan::InfraCursor cursor{plan.allocate_infra_prefix()};
  std::size_t blocks = 0;
  while (cursor.take_p2p_block()) ++blocks;
  // /18 = 16384 addresses -> just under 4096 /30 blocks.
  EXPECT_GT(blocks, 4000u);
  EXPECT_LT(blocks, 4096u);
  EXPECT_FALSE(cursor.take_p2p_block());
}

TEST(AddressPlan, PrivateAliasIsRfc1918) {
  EXPECT_TRUE(AddressPlan::private_alias(12345).is_private());
}

// --------------------------------------------------------------------------
// AS graph generation
// --------------------------------------------------------------------------

TEST(AsGraph, TierStructure) {
  util::Rng rng(1);
  const auto ases = generate_as_graph(small_config(), rng);
  std::size_t tier1 = 0, transit = 0, stub = 0;
  for (const auto& node : ases) {
    switch (node.tier) {
      case AsTier::kTier1:
        ++tier1;
        // Tier-1s have no providers and peer with all other tier-1s.
        EXPECT_TRUE(node.providers.empty());
        EXPECT_GE(node.peers.size(), tier1 > 0 ? 1u : 0u);
        break;
      case AsTier::kTransit:
        ++transit;
        EXPECT_FALSE(node.providers.empty());
        break;
      case AsTier::kStub:
        ++stub;
        EXPECT_FALSE(node.providers.empty());
        EXPECT_TRUE(node.customers.empty());
        break;
    }
  }
  EXPECT_EQ(tier1, small_config().num_tier1);
  EXPECT_GT(transit, 0u);
  EXPECT_GT(stub, transit);
}

TEST(AsGraph, RelationshipsAreMutual) {
  util::Rng rng(1);
  const auto ases = generate_as_graph(small_config(), rng);
  auto find = [&](Asn asn) -> const AsNode& { return ases[asn - 1]; };
  for (const auto& node : ases) {
    for (Asn p : node.providers) {
      const auto& provider = find(p);
      EXPECT_NE(std::find(provider.customers.begin(), provider.customers.end(),
                          node.asn),
                provider.customers.end());
    }
    for (Asn q : node.peers) {
      const auto& peer = find(q);
      EXPECT_NE(std::find(peer.peers.begin(), peer.peers.end(), node.asn),
                peer.peers.end());
    }
  }
}

TEST(AsGraph, NoSelfOrDuplicateRelations) {
  util::Rng rng(1);
  const auto ases = generate_as_graph(small_config(), rng);
  for (const auto& node : ases) {
    std::set<Asn> seen;
    for (Asn other : node.providers) {
      EXPECT_NE(other, node.asn);
      EXPECT_TRUE(seen.insert(other).second);
    }
    for (Asn other : node.customers) {
      EXPECT_NE(other, node.asn);
      EXPECT_TRUE(seen.insert(other).second) << "dup with " << other;
    }
    for (Asn other : node.peers) {
      EXPECT_NE(other, node.asn);
      EXPECT_TRUE(seen.insert(other).second) << "dup with " << other;
    }
  }
}

TEST(AsGraph, Deterministic) {
  util::Rng rng_a(5), rng_b(5);
  const auto a = generate_as_graph(small_config(), rng_a);
  const auto b = generate_as_graph(small_config(), rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].providers, b[i].providers);
    EXPECT_EQ(a[i].peers, b[i].peers);
    EXPECT_EQ(a[i].category, b[i].category);
  }
}

// --------------------------------------------------------------------------
// Built topology invariants
// --------------------------------------------------------------------------

TEST_F(TopologyFixture, CountsPlausible) {
  EXPECT_EQ(topo_->num_ases(), small_config().num_ases);
  EXPECT_GT(topo_->num_routers(), topo_->num_ases());
  EXPECT_GT(topo_->num_links(), 0u);
  EXPECT_GT(topo_->num_hosts(), 0u);
  EXPECT_EQ(topo_->vantage_points().size(), small_config().num_vps);
  EXPECT_EQ(topo_->vantage_points_2016().size(), small_config().num_vps_2016);
  EXPECT_EQ(topo_->probe_hosts().size(), small_config().num_probe_hosts);
}

TEST_F(TopologyFixture, EveryAsHasRoutersAndPrefixes) {
  for (const auto& node : topo_->ases()) {
    EXPECT_FALSE(node.routers.empty()) << "AS " << node.asn;
    EXPECT_FALSE(node.customer_prefixes.empty()) << "AS " << node.asn;
    EXPECT_NE(node.infra_prefix, kInvalidId) << "AS " << node.asn;
  }
}

TEST_F(TopologyFixture, InterfaceAddressesResolveToOwners) {
  for (const auto& link : topo_->links()) {
    const auto owner_a = topo_->interface_at(link.addr_a);
    const auto owner_b = topo_->interface_at(link.addr_b);
    ASSERT_TRUE(owner_a && owner_b);
    EXPECT_EQ(owner_a->router, link.router_a);
    EXPECT_EQ(owner_b->router, link.router_b);
    EXPECT_EQ(owner_a->link, link.id);
    // /30 neighbours.
    EXPECT_EQ(link.addr_b.value() - link.addr_a.value(), 1u);
  }
}

TEST_F(TopologyFixture, LoopbacksResolve) {
  for (const auto& router : topo_->routers()) {
    const auto owner = topo_->interface_at(router.loopback);
    ASSERT_TRUE(owner);
    EXPECT_EQ(owner->router, router.id);
    EXPECT_EQ(owner->link, kInvalidId);
  }
}

TEST_F(TopologyFixture, HostsResolveAndAttachInsideTheirAs) {
  for (const auto& host : topo_->hosts()) {
    const auto found = topo_->host_at(host.addr);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, host.id);
    EXPECT_EQ(topo_->router(host.attachment).asn, host.asn);
    const auto asn = topo_->as_of(host.addr);
    ASSERT_TRUE(asn);
    EXPECT_EQ(*asn, host.asn);
    if (host.stamp == HostStamp::kDoubleStamp ||
        host.stamp == HostStamp::kAliasStamp) {
      const auto alias_owner = topo_->host_at(host.alias);
      ASSERT_TRUE(alias_owner);
      EXPECT_EQ(*alias_owner, host.id);
    }
  }
}

TEST_F(TopologyFixture, BorderLinksExistForAllAdjacencies) {
  for (const auto& node : topo_->ases()) {
    auto check = [&](Asn other) {
      const auto link_id = topo_->border_link(node.asn, other);
      ASSERT_TRUE(link_id) << node.asn << " <-> " << other;
      const auto& link = topo_->link(*link_id);
      EXPECT_TRUE(link.interdomain);
      const Asn asn_a = topo_->router(link.router_a).asn;
      const Asn asn_b = topo_->router(link.router_b).asn;
      EXPECT_TRUE((asn_a == node.asn && asn_b == other) ||
                  (asn_b == node.asn && asn_a == other));
    };
    for (Asn p : node.providers) check(p);
    for (Asn c : node.customers) check(c);
    for (Asn q : node.peers) check(q);
  }
}

TEST_F(TopologyFixture, IntraAsConnected) {
  // Union-find over intradomain links: every AS's routers form one
  // component (guaranteed by the spanning-tree construction).
  std::vector<RouterId> parent(topo_->num_routers());
  for (RouterId i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<RouterId(RouterId)> find = [&](RouterId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& link : topo_->links()) {
    if (link.interdomain) continue;
    parent[find(link.router_a)] = find(link.router_b);
  }
  for (const auto& node : topo_->ases()) {
    const RouterId root = find(node.routers.front());
    for (RouterId r : node.routers) {
      EXPECT_EQ(find(r), root) << "AS " << node.asn << " disconnected";
    }
  }
}

TEST_F(TopologyFixture, VantagePointsLiveOnDistinctAses) {
  std::set<Asn> ases;
  for (HostId vp : topo_->vantage_points()) {
    const auto& host = topo_->host(vp);
    EXPECT_TRUE(host.is_vantage_point);
    EXPECT_TRUE(host.ping_responsive);
    EXPECT_TRUE(ases.insert(host.asn).second) << "VPs share AS " << host.asn;
  }
}

TEST_F(TopologyFixture, PrefixLookupMatchesOrigin) {
  for (const auto& prefix : topo_->prefixes()) {
    const auto found = topo_->prefix_of(prefix.prefix.first_host());
    ASSERT_TRUE(found);
    EXPECT_EQ(topo_->prefix(*found).origin, prefix.origin);
  }
}

TEST_F(TopologyFixture, RouterAddressesIncludeAllInterfaces) {
  const auto& router = topo_->router(0);
  const auto addrs = topo_->router_addresses(0);
  EXPECT_NE(std::find(addrs.begin(), addrs.end(), router.loopback),
            addrs.end());
  for (LinkId link : router.links) {
    const auto addr = topo_->egress_addr(0, link);
    EXPECT_NE(std::find(addrs.begin(), addrs.end(), addr), addrs.end());
  }
}

TEST_F(TopologyFixture, SameRouterGroundTruth) {
  const auto& router = topo_->router(0);
  ASSERT_FALSE(router.links.empty());
  const auto iface = topo_->egress_addr(0, router.links.front());
  EXPECT_TRUE(topo_->same_router(router.loopback, iface));
  const auto& other = topo_->router(1);
  EXPECT_FALSE(topo_->same_router(router.loopback, other.loopback));
}

TEST_F(TopologyFixture, ResponsivenessRatesNearConfig) {
  // Statistical sanity on the behaviour mix (generous tolerances).
  std::size_t ping = 0, rr = 0, total = 0;
  for (const auto& host : topo_->hosts()) {
    if (host.is_vantage_point || host.is_probe_host) continue;
    ++total;
    ping += host.ping_responsive;
    rr += host.rr_responsive;
  }
  ASSERT_GT(total, 200u);
  const double ping_rate =
      static_cast<double>(ping) / static_cast<double>(total);
  const double rr_rate = static_cast<double>(rr) / static_cast<double>(total);
  EXPECT_NEAR(ping_rate, 0.77, 0.08);
  EXPECT_NEAR(rr_rate, 0.58, 0.08);
}

TEST_F(TopologyFixture, GatewayAddressesInsideCustomerPrefix) {
  for (const auto& host : topo_->hosts()) {
    const auto prefix = topo_->prefix_of(host.addr);
    ASSERT_TRUE(prefix);
    const auto gateway = topo_->gateway_addr(host.attachment, *prefix);
    ASSERT_TRUE(gateway);
    EXPECT_TRUE(topo_->prefix(*prefix).prefix.contains(*gateway));
  }
}

TEST_F(TopologyFixture, AddressesInPrefixCoversHostsAndInfra) {
  // Customer prefixes list hosts first.
  for (const auto& node : topo_->ases()) {
    const PrefixId customer = node.customer_prefixes.front();
    const auto addrs = topo_->addresses_in_prefix(customer, 4);
    ASSERT_FALSE(addrs.empty());
    EXPECT_TRUE(topo_->host_at(addrs.front()).has_value());
    // Infra prefixes yield router interfaces.
    const auto infra = topo_->addresses_in_prefix(node.infra_prefix, 8);
    ASSERT_FALSE(infra.empty());
    for (const auto addr : infra) {
      const auto owner = topo_->interface_at(addr);
      ASSERT_TRUE(owner);
      EXPECT_EQ(topo_->router(owner->router).asn, node.asn);
    }
    break;
  }
}

TEST_F(TopologyFixture, ParallelBorderLinksBetweenBigAses) {
  std::size_t multi = 0;
  for (const auto& node : topo_->ases()) {
    if (node.tier == AsTier::kStub) continue;
    for (const Asn peer : node.peers) {
      if (topo_->as_node(peer).tier == AsTier::kStub) continue;
      multi += topo_->border_links(node.asn, peer).size() > 1;
    }
  }
  EXPECT_GT(multi, 0u) << "no parallel interconnects generated";
}

TEST_F(TopologyFixture, BorderLinksSymmetricLookup) {
  for (const auto& node : topo_->ases()) {
    for (const Asn p : node.providers) {
      const auto forward = topo_->border_links(node.asn, p);
      const auto backward = topo_->border_links(p, node.asn);
      ASSERT_EQ(forward.size(), backward.size());
      for (std::size_t i = 0; i < forward.size(); ++i) {
        EXPECT_EQ(forward[i], backward[i]);
      }
    }
  }
}

TEST_F(TopologyFixture, HostAliasesLiveInInfraSpace) {
  for (const auto& host : topo_->hosts()) {
    if (host.stamp != HostStamp::kDoubleStamp &&
        host.stamp != HostStamp::kAliasStamp) {
      continue;
    }
    const auto prefix = topo_->prefix_of(host.alias);
    ASSERT_TRUE(prefix);
    EXPECT_TRUE(topo_->prefix(*prefix).infrastructure);
    EXPECT_EQ(topo_->prefix(*prefix).origin, host.asn);
  }
}

TEST(TopologyDeterminism, SameSeedSameTopology) {
  const auto a = TopologyBuilder::build(small_config());
  const auto b = TopologyBuilder::build(small_config());
  ASSERT_EQ(a.num_routers(), b.num_routers());
  ASSERT_EQ(a.num_links(), b.num_links());
  ASSERT_EQ(a.num_hosts(), b.num_hosts());
  for (HostId i = 0; i < a.num_hosts(); ++i) {
    EXPECT_EQ(a.host(i).addr, b.host(i).addr);
    EXPECT_EQ(a.host(i).rr_responsive, b.host(i).rr_responsive);
  }
  for (LinkId i = 0; i < a.num_links(); ++i) {
    EXPECT_EQ(a.link(i).addr_a, b.link(i).addr_a);
    EXPECT_EQ(a.link(i).delay_us, b.link(i).delay_us);
  }
}

TEST(TopologyDeterminism, DifferentSeedDifferentTopology) {
  auto config = small_config();
  const auto a = TopologyBuilder::build(config);
  config.seed = 8;
  const auto b = TopologyBuilder::build(config);
  // Host behaviour assignments should differ somewhere.
  bool differs = a.num_hosts() != b.num_hosts();
  for (HostId i = 0; !differs && i < a.num_hosts(); ++i) {
    differs = a.host(i).rr_responsive != b.host(i).rr_responsive ||
              a.host(i).attachment != b.host(i).attachment;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace revtr::topology
