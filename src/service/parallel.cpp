#include "service/parallel.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "core/request_task.h"
#include "probing/prober.h"
#include "sim/network.h"
#include "util/thread_pool.h"

namespace revtr::service {

namespace {

// One worker's private measurement stack. Members reference earlier members
// (prober holds the network, engine holds the prober), so stacks live behind
// unique_ptr and never move.
struct WorkerStack {
  sim::Network network;
  probing::Prober prober;
  core::RevtrEngine engine;
  util::SimClock clock;
  CampaignStats local;  // This worker's accumulator; merged at the barrier.

  WorkerStack(const CampaignDeps& deps, const core::EngineConfig& config,
              std::uint64_t net_seed,
              std::shared_ptr<core::EngineCaches> caches)
      : network(deps.topo, deps.plane, net_seed),
        prober(network),
        engine(prober, deps.topo, deps.atlas, deps.ingress, deps.ip2as,
               deps.relationships, config, net_seed) {
    engine.set_shared_caches(std::move(caches));
  }
};

}  // namespace

ParallelCampaignDriver::ParallelCampaignDriver(const CampaignDeps& deps,
                                              ParallelCampaignOptions options)
    : deps_(deps), options_(options) {}

void ParallelCampaignDriver::precompute_ingress_plans() {
  util::Rng rng(util::mix_hash(options_.seed, 0x1a9e55ULL));
  for (const auto& prefix : deps_.topo.prefixes()) {
    if (deps_.ingress.plan_for(prefix.id) == nullptr) {
      deps_.ingress.discover(prefix.id, deps_.topo.vantage_points(), rng);
    }
  }
}

ParallelCampaignReport ParallelCampaignDriver::run(
    std::span<const std::pair<topology::HostId, topology::HostId>> pairs) {
  const auto wall_begin = std::chrono::steady_clock::now();

  // Every prefix gets its ingress plan now, on this thread, through the
  // ingress module's own prober. Workers then only ever *read* plans, and a
  // plan pointer held across a spoofed batch cannot be invalidated by a
  // concurrent on-demand survey.
  precompute_ingress_plans();

  const std::size_t workers = std::max<std::size_t>(options_.workers, 1);
  // All workers share one cache and one network seed: identical seeds plus
  // content-addressed probe outcomes mean a request's result is independent
  // of which worker runs it.
  auto caches = std::make_shared<core::EngineCaches>();
  const std::uint64_t net_seed = util::mix_hash(options_.seed, 0x6e7ULL);
  std::vector<std::unique_ptr<WorkerStack>> stacks;
  stacks.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    stacks.push_back(std::make_unique<WorkerStack>(deps_, options_.engine,
                                                   net_seed, caches));
  }

  // Metric handles are registered once, up front, and shared by every
  // worker: the counters shard internally per worker thread, so attaching
  // the same handle set to all stacks is both correct and the cheap path.
  std::optional<probing::ProbeMetrics> probe_metrics;
  std::optional<core::EngineMetrics> engine_metrics;
  if (options_.metrics != nullptr) {
    probe_metrics.emplace(*options_.metrics);
    engine_metrics.emplace(*options_.metrics);
    for (const auto& stack : stacks) {
      stack->prober.set_metrics(&*probe_metrics);
      stack->engine.set_metrics(&*engine_metrics);
    }
  }

  ParallelCampaignReport report;
  report.results.resize(pairs.size());

  // Shared by both modes: fold one finished measurement into a worker's
  // private accumulator (merged at the barrier below).
  const auto account = [](CampaignStats& local,
                          const core::ReverseTraceroute& result) {
    const double latency = result.span.seconds();
    local.latency_seconds.add(latency);
    local.busy_seconds += latency;
    switch (result.status) {
      case core::RevtrStatus::kComplete:
        ++local.completed;
        break;
      case core::RevtrStatus::kAbortedInterdomainSymmetry:
        ++local.aborted;
        break;
      case core::RevtrStatus::kUnreachable:
        ++local.unreachable;
        break;
    }
  };

  if (options_.mode == EngineMode::kStaged) {
    // One scheduler shared by every worker: coalescing and per-VP windows
    // apply across the whole campaign, not per worker. Each worker loop
    // multiplexes the requests it owns (input index ≡ worker mod workers)
    // as resumable tasks; any worker's pump may issue any queued probe
    // (outcomes are content-addressed, so who issues is irrelevant).
    sched::ProbeScheduler scheduler(options_.sched);
    std::optional<sched::SchedMetrics> sched_metrics;
    if (options_.metrics != nullptr) {
      sched_metrics.emplace(*options_.metrics);
      scheduler.set_metrics(&*sched_metrics);
    }

    const auto pump_loop = [&](std::size_t w) {
      WorkerStack& stack = *stacks[w];
      // A task holds references into its ActiveRequest for the whole
      // measurement; unordered_map keeps element addresses stable.
      struct ActiveRequest {
        std::size_t index = 0;
        util::SimClock clock;
        util::Rng rng;
        std::optional<obs::Trace> trace;
        std::unique_ptr<core::RequestTask> task;
        explicit ActiveRequest(std::uint64_t rng_seed) : rng(rng_seed) {}
      };
      std::unordered_map<sched::ProbeScheduler::TaskId, ActiveRequest> active;
      std::size_t outstanding = 0;

      const auto finalize = [&](ActiveRequest& request) {
        auto result = request.task->take_result();
        if (request.trace) {
          options_.trace_sink->publish(*std::move(request.trace));
        }
        account(stack.local, result);
        report.results[request.index] = std::move(result);
      };

      // Admission: every owned request starts (and submits its first demand
      // set) before the first pump, so overlapping initial demands coalesce.
      // The per-request RNG seed matches blocking mode's per-request reseed,
      // and each request gets a fresh clock — its simulated latency is its
      // own probes' durations, same as a blocking slot.
      for (std::size_t i = w; i < pairs.size(); i += stacks.size()) {
        auto [it, inserted] = active.try_emplace(
            i, util::mix_hash(options_.seed, i, 0xca3aULL));
        ActiveRequest& request = it->second;
        request.index = i;
        if (options_.trace_sink != nullptr && options_.trace_sample_every > 0 &&
            i % options_.trace_sample_every == 0) {
          request.trace.emplace();
          request.trace->request_index = i;
        }
        request.task = stack.engine.start_request(
            pairs[i].first, pairs[i].second, request.clock, request.rng,
            request.trace ? &*request.trace : nullptr);
        const auto demands = request.task->advance();
        if (request.task->done()) {  // Atlas hit or trivial request.
          finalize(request);
          active.erase(it);
          continue;
        }
        scheduler.submit(i, w, {demands.begin(), demands.end()});
        ++outstanding;
      }

      while (outstanding > 0) {
        const auto pumped = scheduler.pump(stack.prober);
        auto ready = scheduler.collect_ready(w);
        for (auto& resolved : ready) {
          const auto it = active.find(resolved.task);
          REVTR_CHECK(it != active.end());
          ActiveRequest& request = it->second;
          request.task->supply(resolved.outcomes);
          const auto demands = request.task->advance();
          if (request.task->done()) {
            finalize(request);
            active.erase(it);
            --outstanding;
            continue;
          }
          scheduler.submit(resolved.task, w, {demands.begin(), demands.end()});
        }
        if (options_.pacing_scale > 0 && pumped.round_duration_us > 0) {
          // Probes within a pump round are concurrent: the round costs its
          // longest probe, not the sum (contrast blocking mode, which holds
          // a slot for a whole request's latency).
          std::this_thread::sleep_for(std::chrono::duration<double>(
              static_cast<double>(pumped.round_duration_us) * 1e-6 *
              options_.pacing_scale));
        } else if (ready.empty() && pumped.issued == 0) {
          // Nothing issued, nothing resumed: our outcomes are in another
          // worker's pump or our demands are throttled until the next
          // round's token refill. Yield rather than spin hot.
          std::this_thread::yield();
        }
      }
    };

    // Plain threads, not the pool: each worker runs exactly one long-lived
    // pump loop. A worker exception is rethrown after the barrier.
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(workers);
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        try {
          pump_loop(w);
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    report.sched = scheduler.stats();
  } else {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const topology::HostId destination = pairs[i].first;
      const topology::HostId source = pairs[i].second;
      futures.push_back(pool.submit([this, &stacks, &report, &account, i,
                                     destination, source] {
        const std::size_t w = util::ThreadPool::current_worker();
        REVTR_CHECK(w != util::ThreadPool::kNotAWorker);
        WorkerStack& stack = *stacks[w];
        // Per-request reseed from (campaign seed, request index): any
        // residual RNG use in the engine draws the same stream no matter
        // which worker runs the request or what ran before it.
        stack.engine.reseed(util::mix_hash(options_.seed, i, 0xca3aULL));
        // Sampling by input index keeps the sampled *set* independent of
        // which worker picks the task up; the Trace itself is thread-private
        // until published.
        const bool sampled = options_.trace_sink != nullptr &&
                             options_.trace_sample_every > 0 &&
                             i % options_.trace_sample_every == 0;
        std::optional<obs::Trace> trace;
        if (sampled) {
          trace.emplace();
          trace->request_index = i;
          stack.engine.set_trace(&*trace);
        }
        auto result = stack.engine.measure(destination, source, stack.clock);
        if (sampled) {
          stack.engine.set_trace(nullptr);
          options_.trace_sink->publish(*std::move(trace));
        }
        account(stack.local, result);
        const double latency = result.span.seconds();
        report.results[i] = std::move(result);
        // Latency pacing: hold this worker slot for real time proportional
        // to the simulated request latency, modelling the deployment's
        // latency-bound slots (most of a request is spent waiting out 10 s
        // spoofed-batch timeouts, §5.2.4).
        if (options_.pacing_scale > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              latency * options_.pacing_scale));
        }
      }));
    }
    // The barrier: get() rethrows anything a worker task threw.
    for (auto& future : futures) future.get();
  }

  // Merge per-worker accumulators. Workers are joined; no locks needed.
  CampaignStats& stats = report.stats;
  stats.requested = pairs.size();
  double slowest_worker = 0;
  for (const auto& stack : stacks) {
    const CampaignStats& local = stack->local;
    stats.completed += local.completed;
    stats.aborted += local.aborted;
    stats.unreachable += local.unreachable;
    stats.latency_seconds.add_all(local.latency_seconds.samples());
    stats.busy_seconds += local.busy_seconds;
    stats.probes += stack->prober.counters();  // Overflow-checked merge.
    report.worker_busy_seconds.push_back(local.busy_seconds);
    slowest_worker = std::max(slowest_worker, local.busy_seconds);
  }
  // The campaign is as long (in simulated time) as its busiest worker.
  stats.duration_seconds = slowest_worker;

  // Merge-at-barrier snapshot: workers are joined, so the sharded counters
  // hold every request's contribution and the snapshot is deterministic for
  // a given measurement set.
  if (options_.metrics != nullptr) {
    report.metrics = options_.metrics->snapshot();
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  return report;
}

}  // namespace revtr::service
