#include <gtest/gtest.h>
#include <memory>

#include <algorithm>

#include "routing/forwarding.h"
#include "sim/network.h"
#include "topology/builder.h"

namespace revtr::sim {
namespace {

using net::Ipv4Addr;
using net::Packet;
using topology::HostId;
using topology::Topology;
using topology::TopologyBuilder;
using topology::TopologyConfig;

TopologyConfig small_config() {
  TopologyConfig config;
  config.seed = 21;
  config.num_ases = 150;
  config.num_vps = 10;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 40;
  return config;
}

class SimFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = std::make_unique<Topology>(TopologyBuilder::build(small_config()));
    bgp_ = std::make_unique<routing::BgpTable>(*topo_);
    intra_ = std::make_unique<routing::IntraRouting>(*topo_);
    plane_ = std::make_unique<routing::ForwardingPlane>(*topo_, *bgp_, *intra_);
  }
  static void TearDownTestSuite() {
    plane_.reset();
    intra_.reset();
    bgp_.reset();
    topo_.reset();
  }

  Network make_network() { return Network(*topo_, *plane_, 3); }

  // A destination host guaranteed responsive with the given stamp policy.
  static HostId find_host(bool rr_responsive,
                          topology::HostStamp stamp =
                              topology::HostStamp::kNormal) {
    for (const auto& host : topo_->hosts()) {
      if (host.is_vantage_point || host.is_probe_host) continue;
      if (host.ping_responsive && host.rr_responsive == rr_responsive &&
          host.stamp == stamp) {
        return host.id;
      }
    }
    throw std::logic_error("no matching host");
  }

  static std::unique_ptr<Topology> topo_;
  static std::unique_ptr<routing::BgpTable> bgp_;
  static std::unique_ptr<routing::IntraRouting> intra_;
  static std::unique_ptr<routing::ForwardingPlane> plane_;
};

std::unique_ptr<Topology> SimFixture::topo_;
std::unique_ptr<routing::BgpTable> SimFixture::bgp_;
std::unique_ptr<routing::IntraRouting> SimFixture::intra_;
std::unique_ptr<routing::ForwardingPlane> SimFixture::plane_;

TEST_F(SimFixture, PingResponsiveHostAnswers) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1);
  const auto result = network.send(probe, vp);
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.reply->type, net::IcmpType::kEchoReply);
  EXPECT_EQ(result.reply->src, topo_->host(dst).addr);
  EXPECT_EQ(result.reply->dst, topo_->host(vp).addr);
  EXPECT_GT(result.rtt_us, 0);
}

TEST_F(SimFixture, UnresponsiveHostSilent) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  for (const auto& host : topo_->hosts()) {
    if (!host.ping_responsive) {
      Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                            host.addr, 1, 1);
      EXPECT_FALSE(network.send(probe, vp).answered());
      return;
    }
  }
  GTEST_SKIP() << "all hosts responsive in this topology";
}

TEST_F(SimFixture, RrUnresponsiveHostAnswersPingOnly) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/false);
  Packet ping = net::make_echo_request(topo_->host(vp).addr,
                                       topo_->host(dst).addr, 1, 1);
  EXPECT_TRUE(network.send(ping, vp).answered());
  Packet rr_probe = ping;
  rr_probe.rr = net::RecordRouteOption{};
  EXPECT_FALSE(network.send(rr_probe, vp).answered());
}

TEST_F(SimFixture, RecordRouteAccumulatesHops) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1);
  probe.rr = net::RecordRouteOption{};
  const auto result = network.send(probe, vp);
  ASSERT_TRUE(result.answered());
  ASSERT_TRUE(result.reply->rr);
  EXPECT_GT(result.reply->rr->size(), 0u);
}

TEST_F(SimFixture, NormalHostStampsItsOwnAddress) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(true, topology::HostStamp::kNormal);
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1);
  probe.rr = net::RecordRouteOption{};
  const auto result = network.send(probe, vp);
  ASSERT_TRUE(result.answered());
  const auto slots = result.reply->rr->to_vector();
  // Unless the forward path ate all nine slots, the destination address
  // must appear.
  if (!result.reply->rr->full() ||
      std::find(slots.begin(), slots.end(), topo_->host(dst).addr) !=
          slots.end()) {
    EXPECT_NE(std::find(slots.begin(), slots.end(), topo_->host(dst).addr),
              slots.end());
  }
}

TEST_F(SimFixture, DoubleStampHostStampsAliasTwice) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  HostId dst;
  try {
    dst = find_host(true, topology::HostStamp::kDoubleStamp);
  } catch (const std::logic_error&) {
    GTEST_SKIP() << "no double-stamp host generated";
  }
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1);
  probe.rr = net::RecordRouteOption{};
  const auto result = network.send(probe, vp);
  ASSERT_TRUE(result.answered());
  const auto slots = result.reply->rr->to_vector();
  const auto alias = topo_->host(dst).alias;
  int adjacent_doubles = 0;
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    if (slots[i] == alias && slots[i + 1] == alias) ++adjacent_doubles;
  }
  if (!result.reply->rr->full()) {
    EXPECT_EQ(adjacent_doubles, 1);
    // And the probed destination address itself never appears.
    EXPECT_EQ(std::find(slots.begin(), slots.end(), topo_->host(dst).addr),
              slots.end());
  }
}

TEST_F(SimFixture, SpoofedProbeReplyArrivesAtSpoofedSource) {
  auto network = make_network();
  // Find a VP that may spoof.
  HostId spoofer = topology::kInvalidId;
  for (HostId vp : topo_->vantage_points()) {
    if (network.can_spoof(vp)) {
      spoofer = vp;
      break;
    }
  }
  ASSERT_NE(spoofer, topology::kInvalidId);
  const HostId source = topo_->vantage_points()[0] == spoofer
                            ? topo_->vantage_points()[1]
                            : topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(topo_->host(source).addr,
                                        topo_->host(dst).addr, 1, 1);
  probe.rr = net::RecordRouteOption{};
  const auto result = network.send(probe, spoofer);
  ASSERT_TRUE(result.answered());
  // The reply lands at `source`, not at the spoofing VP.
  EXPECT_EQ(result.reply->dst, topo_->host(source).addr);
}

TEST_F(SimFixture, NonVantageHostsCannotSpoof) {
  auto network = make_network();
  const HostId ordinary = topo_->probe_hosts()[0];
  EXPECT_FALSE(network.can_spoof(ordinary));
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(net::Ipv4Addr(1, 2, 3, 4),
                                        topo_->host(dst).addr, 1, 1);
  EXPECT_FALSE(network.send(probe, ordinary).answered());
}

TEST_F(SimFixture, TtlExpiryYieldsTimeExceededFromIngressInterface) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1, 2);
  const auto result = network.send(probe, vp);
  if (!result.answered()) {
    GTEST_SKIP() << "hop 2 router is traceroute-silent";
  }
  EXPECT_EQ(result.reply->type, net::IcmpType::kTimeExceeded);
  EXPECT_EQ(result.reply->quoted_dst, topo_->host(dst).addr);
  // The source must be a known interface address.
  EXPECT_TRUE(topo_->interface_at(result.reply->src).has_value());
}

TEST_F(SimFixture, TtlOneExpiresAtFirstRouter) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1, 1);
  const auto result = network.send(probe, vp);
  if (!result.answered()) {
    GTEST_SKIP() << "access router is traceroute-silent";
  }
  EXPECT_EQ(result.reply->type, net::IcmpType::kTimeExceeded);
  const auto owner = topo_->interface_at(result.reply->src);
  ASSERT_TRUE(owner);
  EXPECT_EQ(owner->router, topo_->host(vp).attachment);
}

TEST_F(SimFixture, SufficientTtlDelivers) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1, 64);
  const auto result = network.send(probe, vp);
  ASSERT_TRUE(result.answered());
  EXPECT_EQ(result.reply->type, net::IcmpType::kEchoReply);
}

TEST_F(SimFixture, RouterInterfaceAnswersPing) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  // Find a responsive router and probe its loopback.
  for (const auto& router : topo_->routers()) {
    if (!router.responds_ping || !router.responds_options) continue;
    if (topo_->as_node(router.asn).filters_ip_options) continue;
    Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                          router.loopback, 1, 1);
    probe.rr = net::RecordRouteOption{};
    const auto result = network.send(probe, vp);
    if (!result.answered()) continue;  // Path artifacts possible; try next.
    EXPECT_EQ(result.reply->type, net::IcmpType::kEchoReply);
    return;
  }
  FAIL() << "no router answered";
}

TEST_F(SimFixture, RepliesTraverseReversePathStamps) {
  // A spoofed RR probe from a VP near the destination must reveal hops on
  // the reverse path toward the source: slots recorded after the
  // destination's position belong to the D->S direction.
  auto network = make_network();
  HostId spoofer = topology::kInvalidId;
  for (HostId vp : topo_->vantage_points()) {
    if (network.can_spoof(vp)) spoofer = vp;
  }
  ASSERT_NE(spoofer, topology::kInvalidId);
  const HostId source = topo_->vantage_points()[0] == spoofer
                            ? topo_->vantage_points()[1]
                            : topo_->vantage_points()[0];
  // Probe a destination in the spoofer's own AS so the forward path is
  // short and reverse slots remain.
  HostId dst = topology::kInvalidId;
  for (const auto& host : topo_->hosts()) {
    if (host.asn == topo_->host(spoofer).asn && host.rr_responsive &&
        host.stamp == topology::HostStamp::kNormal && !host.is_vantage_point) {
      dst = host.id;
      break;
    }
  }
  if (dst == topology::kInvalidId) GTEST_SKIP() << "no in-AS destination";
  Packet probe = net::make_echo_request(topo_->host(source).addr,
                                        topo_->host(dst).addr, 1, 1);
  probe.rr = net::RecordRouteOption{};
  const auto result = network.send(probe, spoofer);
  ASSERT_TRUE(result.answered());
  const auto slots = result.reply->rr->to_vector();
  const auto dst_it =
      std::find(slots.begin(), slots.end(), topo_->host(dst).addr);
  ASSERT_NE(dst_it, slots.end()) << "destination did not stamp";
  EXPECT_GT(slots.end() - dst_it, 1) << "no reverse hops revealed";
}

TEST_F(SimFixture, OptionFilteringAsDropsRrProbes) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  for (const auto& host : topo_->hosts()) {
    if (!topo_->as_node(host.asn).filters_ip_options) continue;
    if (!host.ping_responsive) continue;
    Packet ping = net::make_echo_request(topo_->host(vp).addr, host.addr,
                                         1, 1);
    const auto plain = network.send(ping, vp);
    Packet rr_probe = ping;
    rr_probe.rr = net::RecordRouteOption{};
    const auto with_options = network.send(rr_probe, vp);
    EXPECT_FALSE(with_options.answered());
    (void)plain;  // Plain ping may or may not succeed; options never do.
    return;
  }
  GTEST_SKIP() << "no option-filtering AS generated";
}

TEST_F(SimFixture, TimestampPrespecStampsInOrder) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  // First discover the path with RR to learn an on-path router address.
  Packet rr_probe = net::make_echo_request(topo_->host(vp).addr,
                                           topo_->host(dst).addr, 1, 1);
  rr_probe.rr = net::RecordRouteOption{};
  const auto rr_result = network.send(rr_probe, vp);
  ASSERT_TRUE(rr_result.answered());
  const auto slots = rr_result.reply->rr->to_vector();
  net::Ipv4Addr on_path;
  for (const auto addr : slots) {
    if (topo_->interface_at(addr)) {
      on_path = addr;
      break;
    }
  }
  if (on_path.is_unspecified()) GTEST_SKIP() << "no mappable RR hop";

  const net::Ipv4Addr prespec[] = {on_path};
  Packet ts_probe = net::make_echo_request(topo_->host(vp).addr,
                                           topo_->host(dst).addr, 1, 2);
  ts_probe.ts = net::TimestampOption::prespecified(prespec);
  const auto ts_result = network.send(ts_probe, vp);
  if (!ts_result.answered()) GTEST_SKIP() << "destination drops TS";
  ASSERT_TRUE(ts_result.reply->ts);
  EXPECT_TRUE(ts_result.reply->ts->stamped(0));
}

TEST_F(SimFixture, DeterministicReplay) {
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1);
  probe.rr = net::RecordRouteOption{};
  auto n1 = make_network();
  auto n2 = make_network();
  const auto r1 = n1.send(probe, vp);
  const auto r2 = n2.send(probe, vp);
  ASSERT_EQ(r1.answered(), r2.answered());
  if (r1.answered()) {
    EXPECT_EQ(r1.reply->rr->to_vector(), r2.reply->rr->to_vector());
    EXPECT_EQ(r1.rtt_us, r2.rtt_us);
  }
}

TEST_F(SimFixture, PacketsForwardedGrows) {
  auto network = make_network();
  const HostId vp = topo_->vantage_points()[0];
  const HostId dst = find_host(/*rr_responsive=*/true);
  const auto before = network.packets_forwarded();
  Packet probe = net::make_echo_request(topo_->host(vp).addr,
                                        topo_->host(dst).addr, 1, 1);
  network.send(probe, vp);
  EXPECT_GT(network.packets_forwarded(), before);
  EXPECT_EQ(network.probes_injected(), 1u);
}

}  // namespace
}  // namespace revtr::sim
