// Traffic engineering with Reverse Traceroute (§6.1, Fig 7).
//
// Recreates the PEERING case study: a multihomed edge network ("PEERING")
// wants to balance inbound traffic across its providers. Forward-path tools
// cannot see which provider remote networks use to reach it — reverse
// traceroutes can. The loop is:
//   1. measure reverse paths from many destinations to the PEERING source,
//   2. tally the provider catchment split,
//   3. apply a no-export-style announcement change toward the dominant
//      provider,
//   4. re-measure and confirm the shift (and the latency effect).
//
//   ./traffic_engineering [--ases=500] [--dests=150]
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/revtr.h"
#include "eval/harness.h"
#include "util/flags.h"
#include "util/stats.h"

using namespace revtr;

namespace {

struct Catchment {
  std::map<topology::Asn, std::size_t> per_provider;
  std::size_t measured = 0;
  util::Distribution rtt_ms;
};

// Which provider of `peering_asn` does each destination's reverse path
// enter through? The first AS hop after PEERING, read from the reverse
// traceroute (destination ... provider, PEERING).
Catchment measure_catchment(eval::Lab& lab, topology::HostId source,
                            topology::Asn peering_asn,
                            std::span<const topology::HostId> dests,
                            double* round_minutes = nullptr) {
  Catchment catchment;
  util::SimClock clock;
  lab.engine.clear_caches();
  for (const auto dest : dests) {
    const auto result = lab.engine.measure(dest, source, clock);
    if (!result.complete()) continue;
    const auto as_path = lab.ip2as.as_path(result.ip_hops());
    // Walk to PEERING at the end; the AS just before it is the provider.
    if (as_path.size() < 2 || as_path.back() != peering_asn) continue;
    ++catchment.measured;
    ++catchment.per_provider[as_path[as_path.size() - 2]];
    // RTT estimate: ping the destination from the source.
    const auto ping = lab.prober.ping(source, lab.topo.host(dest).addr);
    if (ping.responded) {
      catchment.rtt_ms.add(static_cast<double>(ping.duration_us) / 1000.0);
    }
  }
  if (round_minutes != nullptr) {
    // §6.1: measurement rounds took 9-13 minutes per configuration; on a
    // pipelined deployment the round is bounded by total busy time over
    // the measurement slots (16 here).
    *round_minutes = clock.now_seconds() / 16.0 / 60.0;
  }
  return catchment;
}

void print_catchment(const char* label, const Catchment& catchment,
                     const eval::Lab& lab) {
  std::printf("%s: %zu reverse paths reached PEERING\n", label,
              catchment.measured);
  for (const auto& [asn, count] : catchment.per_provider) {
    std::printf("  via AS%-5u (%s): %5.1f%%  (%zu paths)\n", asn,
                topology::to_string(lab.topo.as_node(asn).tier).c_str(),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(catchment.measured),
                count);
  }
  if (!catchment.rtt_ms.empty()) {
    std::printf("  median RTT to monitored destinations: %.1f ms\n",
                catchment.rtt_ms.median());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  topology::TopologyConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.num_ases = static_cast<std::size_t>(flags.get_int("ases", 500));
  const auto dest_count =
      static_cast<std::size_t>(flags.get_int("dests", 150));

  eval::Lab lab(config, core::EngineConfig::revtr2());

  // "PEERING": the multihomed stub AS hosting one of our vantage points
  // (so it can serve as a Reverse Traceroute source). Pick the VP whose AS
  // has the most providers.
  topology::HostId source = topology::kInvalidId;
  topology::Asn peering_asn = 0;
  for (const auto vp : lab.topo.vantage_points()) {
    const auto& node = lab.topo.as_node(lab.topo.host(vp).asn);
    if (peering_asn == 0 ||
        node.providers.size() >
            lab.topo.as_node(peering_asn).providers.size()) {
      source = vp;
      peering_asn = node.asn;
    }
  }
  const auto& peering = lab.topo.as_node(peering_asn);
  std::printf("PEERING site: AS%u with %zu upstreams (", peering_asn,
              peering.providers.size() + peering.peers.size());
  for (const auto p : peering.providers) std::printf(" AS%u", p);
  for (const auto p : peering.peers) std::printf(" AS%u(peer)", p);
  std::printf(" )\n\n");

  lab.bootstrap_source(source, 80);
  lab.precompute_all_ingresses();

  // Monitoring targets: representative destinations across prefixes
  // (standing in for the paper's 15,300 Speed-Test-weighted groups).
  util::Rng rng(config.seed + 5);
  std::vector<topology::HostId> dests;
  for (const auto prefix : lab.customer_prefixes()) {
    for (const auto host : lab.topo.hosts_in_prefix(prefix)) {
      if (lab.topo.host(host).rr_responsive) {
        dests.push_back(host);
        break;
      }
    }
  }
  rng.shuffle(dests);
  if (dests.size() > dest_count) dests.resize(dest_count);
  std::printf("monitoring %zu destination networks\n\n", dests.size());

  // --- Round 1: default announcement. ---
  double round_minutes = 0;
  const auto round1 =
      measure_catchment(lab, source, peering_asn, dests, &round_minutes);
  print_catchment("round 1 (anycast-style announcement)", round1, lab);
  std::printf("  measurement round: %.1f simulated minutes on 16 slots "
              "(paper: 9-13 min per configuration)\n",
              round_minutes);
  if (round1.per_provider.empty()) {
    std::printf("no catchment measured; try a larger topology\n");
    return 1;
  }

  // --- TE action: no-export toward the dominant upstream. ---
  const auto dominant = std::max_element(
      round1.per_provider.begin(), round1.per_provider.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  std::printf("\nTE action: no-export toward dominant upstream AS%u\n\n",
              dominant->first);
  lab.bgp.set_no_export(lab.topo.index_of(peering_asn), {dominant->first});

  // --- Round 2: re-measure after "convergence". ---
  const auto round2 = measure_catchment(lab, source, peering_asn, dests);
  print_catchment("round 2 (after no-export)", round2, lab);
  const auto still = round2.per_provider.find(dominant->first);
  std::printf("\ntraffic still entering via AS%u: %zu paths "
              "(paper saw residual paths via indirect exports too)\n",
              dominant->first,
              still == round2.per_provider.end() ? 0u : still->second);

  // --- Round 3: revert. ---
  lab.bgp.clear_no_export(lab.topo.index_of(peering_asn));
  const auto round3 = measure_catchment(lab, source, peering_asn, dests);
  print_catchment("\nround 3 (announcement restored)", round3, lab);

  std::printf(
      "\nWithout reverse traceroutes, none of the catchment shares above\n"
      "would be observable from PEERING: the forward paths to these\n"
      "destinations do not reveal which provider carries the return\n"
      "traffic (§6.1).\n");
  return 0;
}
