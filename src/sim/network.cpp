#include "sim/network.h"

namespace revtr::sim {

namespace {
using net::Ipv4Addr;
using net::Packet;
using topology::HostId;
using topology::HostStamp;
using topology::kInvalidId;
using topology::Router;
using topology::RouterId;
using topology::RrStampPolicy;
}  // namespace

Network::Network(const topology::Topology& topo,
                 const routing::ForwardingPlane& plane, std::uint64_t seed)
    : topo_(topo), plane_(plane), rng_(seed), salt_seed_(seed) {}

bool Network::can_spoof(HostId sender) const {
  const auto& host = topo_.host(sender);
  return host.is_vantage_point &&
         topo_.as_node(host.asn).allows_spoofed_egress;
}

std::vector<RouterId> Network::ground_truth_path(Ipv4Addr from, Ipv4Addr to,
                                                 std::uint64_t salt,
                                                 bool has_options) const {
  std::vector<RouterId> path;
  RouterId current = kInvalidId;
  if (const auto host = topo_.host_at(from)) {
    current = topo_.host(*host).attachment;
  } else if (const auto iface = topo_.interface_at(from)) {
    current = iface->router;
  } else {
    return path;
  }

  routing::PacketContext ctx;
  ctx.src = from;
  ctx.dst = to;
  ctx.flow_key = salt;
  ctx.has_options = has_options;
  ctx.packet_salt = salt * 0x9e3779b97f4a7c15ULL + 1;

  const auto resolved = plane_.resolve(ctx.dst);
  for (int hop = 0; hop < kHopLimit; ++hop) {
    path.push_back(current);
    const auto decision = plane_.decide(current, ctx, resolved);
    switch (decision.kind) {
      case routing::Decision::Kind::kForwardLink:
        current = decision.next_router;
        break;
      case routing::Decision::Kind::kDeliverHost:
      case routing::Decision::Kind::kDeliverRouter:
      case routing::Decision::Kind::kDrop:
        return path;
    }
  }
  return path;  // Hop limit: forwarding loop; callers see the repetition.
}

void Network::stamp_rr(Packet& packet, const Router& router,
                       Ipv4Addr arrival_addr, Ipv4Addr egress_addr) const {
  if (!packet.rr || packet.rr->full()) return;
  switch (router.rr_policy) {
    case RrStampPolicy::kEgress:
      packet.rr->stamp(egress_addr);
      break;
    case RrStampPolicy::kIngress:
      packet.rr->stamp(arrival_addr);
      break;
    case RrStampPolicy::kLoopback:
      packet.rr->stamp(router.loopback);
      break;
    case RrStampPolicy::kPrivate:
      packet.rr->stamp(router.private_alias);
      break;
    case RrStampPolicy::kNoStamp:
      break;
  }
}

void Network::stamp_ts(Packet& packet, const Router& router,
                       util::SimClock::Micros elapsed) const {
  if (!packet.ts) return;
  const auto pending = packet.ts->next_pending();
  if (!pending) return;
  const Ipv4Addr wanted = packet.ts->entries()[*pending].addr;
  const auto owner = topo_.interface_at(wanted);
  if (owner && owner->router == router.id) {
    packet.ts->try_stamp(wanted,
                         static_cast<std::uint32_t>(elapsed / 1000));
  }
}

std::optional<Packet> Network::host_response(
    const Packet& request, const topology::Host& host) const {
  if (request.type != net::IcmpType::kEchoRequest) return std::nullopt;
  if (request.has_options() ? !host.rr_responsive : !host.ping_responsive) {
    return std::nullopt;
  }
  Packet reply = net::make_echo_reply(request, host.addr);
  if (reply.rr && !reply.rr->full()) {
    switch (host.stamp) {
      case HostStamp::kNormal:
        reply.rr->stamp(host.addr);
        break;
      case HostStamp::kNoStamp:
        break;
      case HostStamp::kDoubleStamp:
        reply.rr->stamp(host.alias);
        reply.rr->stamp(host.alias);
        break;
      case HostStamp::kAliasStamp:
        reply.rr->stamp(host.alias);
        break;
    }
  }
  if (reply.ts) {
    // The destination host participates in tsprespec like a router would.
    auto pending = reply.ts->next_pending();
    if (pending && (reply.ts->entries()[*pending].addr == host.addr ||
                    reply.ts->entries()[*pending].addr == host.alias)) {
      reply.ts->try_stamp(reply.ts->entries()[*pending].addr, 0);
    }
  }
  return reply;
}

std::optional<Packet> Network::router_response(const Packet& request,
                                               const Router& router) const {
  if (request.type != net::IcmpType::kEchoRequest) return std::nullopt;
  if (request.has_options() ? !router.responds_options
                            : !router.responds_ping) {
    return std::nullopt;
  }
  Packet reply = net::make_echo_reply(request, request.dst);
  if (reply.rr && !reply.rr->full()) {
    switch (router.rr_policy) {
      case RrStampPolicy::kEgress:
      case RrStampPolicy::kIngress:
        reply.rr->stamp(request.dst);  // Replies are sourced from the
        break;                         // probed interface.
      case RrStampPolicy::kLoopback:
        reply.rr->stamp(router.loopback);
        break;
      case RrStampPolicy::kPrivate:
        reply.rr->stamp(router.private_alias);
        break;
      case RrStampPolicy::kNoStamp:
        break;
    }
  }
  if (reply.ts) {
    auto pending = reply.ts->next_pending();
    if (pending) {
      const Ipv4Addr wanted = reply.ts->entries()[*pending].addr;
      const auto owner = topo_.interface_at(wanted);
      if (owner && owner->router == router.id) {
        reply.ts->try_stamp(wanted, 0);
      }
    }
  }
  return reply;
}

void Network::forward_pass(Packet packet, RouterId origin,
                           Ipv4Addr arrival_addr, bool origin_emits,
                           PassResult& result) {
  result.reset();
  RouterId current = origin;
  routing::PacketContext ctx;
  ctx.src = packet.src;
  ctx.dst = packet.dst;
  ctx.flow_key = packet.flow_key();
  ctx.has_options = packet.has_options();
  // Per-packet balancing salt for optioned (slow-path) packets. This is a
  // pure function of the flow endpoints and the option kind — NOT a draw
  // from rng_ — so a probe's path depends only on the probe itself, never
  // on how many packets this Network forwarded before it. That content
  // addressing is what lets parallel campaign workers share RR/traceroute
  // caches without cache hits perturbing later measurements (DESIGN.md §8).
  ctx.packet_salt = util::mix_hash(
      salt_seed_,
      (std::uint64_t{packet.src.value()} << 32) ^ packet.dst.value(),
      packet.rr.has_value() ? 0x5252ULL : (packet.ts ? 0x7373ULL : 0));

  const auto resolved = plane_.resolve(ctx.dst);
  for (int hop = 0; hop < kHopLimit; ++hop) {
    ++packets_forwarded_;
    result.path.push_back(current);
    const auto& router = topo_.router(current);

    // Option filtering at AS boundaries: the whole AS drops RR/TS packets.
    if (packet.has_options() &&
        topo_.as_at(router.as_index).filters_ip_options) {
      return;
    }

    const auto decision = plane_.decide(current, ctx, resolved);
    if (decision.kind == routing::Decision::Kind::kDeliverRouter) {
      result.delivered = packet;
      result.router = current;
      return;
    }
    if (decision.kind == routing::Decision::Kind::kDrop) {
      return;
    }

    // The packet must be forwarded: TTL check first.
    if (packet.ttl <= 1) {
      if (router.responds_ttl_exceeded) {
        result.icmp_error = net::make_time_exceeded(packet, arrival_addr);
        result.error_router = current;
      }
      return;
    }
    --packet.ttl;

    stamp_ts(packet, router, result.elapsed_us);

    const bool emitting = origin_emits && hop == 0;
    if (decision.kind == routing::Decision::Kind::kDeliverHost) {
      const auto& host = topo_.host(decision.host);
      // Outgoing interface into the destination subnet = gateway address.
      Ipv4Addr egress = router.loopback;
      if (const auto prefix = topo_.prefix_of(host.addr)) {
        if (const auto gateway = topo_.gateway_addr(current, *prefix)) {
          egress = *gateway;
        }
      }
      if (!emitting) stamp_rr(packet, router, arrival_addr, egress);
      result.elapsed_us += kAccessDelayUs;
      result.delivered = packet;
      result.host = decision.host;
      return;
    }

    // Forward over a link.
    const auto& link = topo_.link(decision.link);
    if (!emitting) {
      stamp_rr(packet, router, arrival_addr,
               topo_.egress_addr(current, decision.link));
    }
    result.elapsed_us += link.delay_us;
    arrival_addr = topo_.egress_addr(decision.next_router, decision.link);
    current = decision.next_router;
  }
  // Hop limit exceeded: dropped.
}

SendResult Network::send(const Packet& packet, HostId sender) {
  SendResult result;
  send_into(packet, sender, result);
  return result;
}

void Network::send_batch(std::span<const BatchProbe> probes,
                         std::vector<SendResult>& results) {
  // Sequential per probe on purpose: the loss draws must happen in batch
  // order for outcomes to match per-probe send() calls byte for byte. The
  // batching win is the reused scratch, not reordered work.
  results.resize(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    send_into(probes[i].packet, probes[i].sender, results[i]);
  }
}

void Network::send_into(const Packet& packet, HostId sender,
                        SendResult& out) {
  out.reply.reset();
  out.rtt_us = 0;
  out.request_path.clear();
  out.reply_path.clear();
  ++probes_injected_;
  const auto& host = topo_.host(sender);

  // Random loss applies to the probe/reply as a whole: either direction
  // failing looks the same to the measurer (no answer).
  if (loss_rate_ > 0.0 &&
      static_cast<double>(rng_() >> 11) * 0x1.0p-53 < loss_rate_) {
    return;
  }

  // Source address validation: a spoofed packet leaves the sender's network
  // only when the host may spoof and its AS does not filter.
  if (packet.src != host.addr && !can_spoof(sender)) {
    return;
  }

  const auto src_prefix = topo_.prefix_of(host.addr);
  Ipv4Addr first_arrival = topo_.router(host.attachment).loopback;
  if (src_prefix) {
    if (const auto gw = topo_.gateway_addr(host.attachment, *src_prefix)) {
      first_arrival = *gw;
    }
  }

  util::SimClock::Micros elapsed = kAccessDelayUs;
  PassResult& request_pass = pass_scratch_;
  forward_pass(packet, host.attachment, first_arrival, false, request_pass);
  elapsed += request_pass.elapsed_us;
  std::swap(out.request_path, request_pass.path);

  // Determine the response packet and its origin.
  std::optional<Packet> response;
  RouterId response_origin = kInvalidId;
  Ipv4Addr response_arrival;

  if (request_pass.icmp_error) {
    response = request_pass.icmp_error;
    response_origin = request_pass.error_router;
    response_arrival = topo_.router(response_origin).loopback;
  } else if (request_pass.delivered && request_pass.host != kInvalidId) {
    const auto& dest = topo_.host(request_pass.host);
    response = host_response(*request_pass.delivered, dest);
    if (response) {
      response_origin = dest.attachment;
      elapsed += kAccessDelayUs;
      response_arrival = topo_.router(response_origin).loopback;
      if (const auto prefix = topo_.prefix_of(dest.addr)) {
        if (const auto gw = topo_.gateway_addr(dest.attachment, *prefix)) {
          response_arrival = *gw;
        }
      }
    }
  } else if (request_pass.delivered && request_pass.router != kInvalidId) {
    response = router_response(*request_pass.delivered,
                               topo_.router(request_pass.router));
    response_origin = request_pass.router;
    response_arrival = topo_.router(request_pass.router).loopback;
  }

  if (!response) return;

  // Route the response to the IP source of the probe. It is observable only
  // if that address belongs to a host (the unspoofed sender, or the spoofed
  // victim S in the Reverse Traceroute dance).
  const auto observer = topo_.host_at(response->dst);
  if (!observer) return;

  // A router answering for itself emits the reply rather than forwarding
  // a received packet, so it must not add a second stamp. Both facts are
  // read out of request_pass before the scratch is reused for the reply.
  const bool origin_emits =
      request_pass.icmp_error.has_value() ||
      (request_pass.delivered && request_pass.router != kInvalidId);
  PassResult& reply_pass = pass_scratch_;
  forward_pass(*response, response_origin, response_arrival, origin_emits,
               reply_pass);
  elapsed += reply_pass.elapsed_us;
  std::swap(out.reply_path, reply_pass.path);

  if (!reply_pass.delivered || reply_pass.host != *observer) {
    return;  // Reply lost (filtered, unroutable, expired).
  }
  out.reply = std::move(reply_pass.delivered);
  out.rtt_us = elapsed + kAccessDelayUs;
}

}  // namespace revtr::sim
