#include "topology/builder.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "topology/address_plan.h"
#include "topology/as_graph.h"
#include "util/rng.h"

namespace revtr::topology {

namespace detail {

using util::Rng;

// Per-AS infrastructure address state; an AS can grow extra /18s if its
// first one fills up (very large tier-1s).
struct InfraState {
  std::vector<AddressPlan::InfraCursor> cursors;
};

class BuildContext {
 public:
  BuildContext(const TopologyConfig& config, Topology& topo)
      : config_(config),
        topo_(topo),
        rng_(config.seed),
        as_rng_(rng_.fork("as-graph")),
        router_rng_(rng_.fork("routers")),
        host_rng_(rng_.fork("hosts")) {}

  void run() {
    topo_.ases_ = generate_as_graph(config_, as_rng_);
    for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
      topo_.asn_to_index_[topo_.ases_[i].asn] = i;
    }
    infra_.resize(topo_.ases_.size());
    build_routers();
    build_intra_links();
    build_inter_links();
    build_prefixes_and_hosts();
    place_vantage_points();
    place_probe_hosts();
    topo_.router_gateways_.resize(topo_.routers_.size());
    for (const auto& [key, gateway] : topo_.gateway_map_) {
      topo_.router_gateways_[static_cast<RouterId>(key >> 32)].push_back(
          gateway);
    }
  }

 private:
  std::size_t router_count_for(const AsNode& node) {
    switch (node.tier) {
      case AsTier::kTier1:
        return static_cast<std::size_t>(router_rng_.range(
            static_cast<std::int64_t>(config_.tier1_routers_min),
            static_cast<std::int64_t>(config_.tier1_routers_max)));
      case AsTier::kTransit:
        return static_cast<std::size_t>(router_rng_.range(
            static_cast<std::int64_t>(config_.transit_routers_min),
            static_cast<std::int64_t>(config_.transit_routers_max)));
      case AsTier::kStub:
        return static_cast<std::size_t>(router_rng_.range(
            static_cast<std::int64_t>(config_.stub_routers_min),
            static_cast<std::int64_t>(config_.stub_routers_max)));
    }
    return 1;
  }

  net::Ipv4Addr take_loopback(AsIndex as) {
    auto& state = infra_[as];
    if (state.cursors.empty()) new_infra_prefix(as);
    if (auto addr = state.cursors.back().take_loopback()) return *addr;
    new_infra_prefix(as);
    return *state.cursors.back().take_loopback();
  }

  net::Ipv4Addr take_p2p_block(AsIndex as) {
    auto& state = infra_[as];
    if (state.cursors.empty()) new_infra_prefix(as);
    if (auto addr = state.cursors.back().take_p2p_block()) return *addr;
    new_infra_prefix(as);
    return *state.cursors.back().take_p2p_block();
  }

  void new_infra_prefix(AsIndex as) {
    const net::Ipv4Prefix prefix = plan_.allocate_infra_prefix();
    BgpPrefix bgp;
    bgp.id = static_cast<PrefixId>(topo_.prefixes_.size());
    bgp.prefix = prefix;
    bgp.origin = topo_.ases_[as].asn;
    bgp.infrastructure = true;
    topo_.prefixes_.push_back(bgp);
    topo_.prefix_trie_.insert(prefix, bgp.id);
    if (topo_.ases_[as].infra_prefix == kInvalidId) {
      topo_.ases_[as].infra_prefix = bgp.id;
    }
    infra_[as].cursors.push_back(AddressPlan::InfraCursor{prefix});
  }

  void build_routers() {
    for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
      AsNode& node = topo_.ases_[i];
      const std::size_t count = router_count_for(node);
      for (std::size_t r = 0; r < count; ++r) {
        Router router;
        router.id = static_cast<RouterId>(topo_.routers_.size());
        router.asn = node.asn;
        router.as_index = i;
        router.loopback = take_loopback(i);
        router.rr_policy = pick_rr_policy();
        if (router.rr_policy == RrStampPolicy::kPrivate) {
          router.private_alias = AddressPlan::private_alias(router.id + 1);
        }
        router.responds_ttl_exceeded =
            router_rng_.chance(config_.router_ttl_responsive);
        router.responds_ping =
            router_rng_.chance(config_.router_ping_responsive);
        router.responds_options =
            router.responds_ping && !node.filters_ip_options &&
            router_rng_.chance(0.92);
        router.snmp_responder =
            router_rng_.chance(config_.router_snmp_responder);
        router.per_packet_lb =
            router_rng_.chance(config_.router_per_packet_lb);
        router.source_sensitive =
            router_rng_.chance(config_.router_source_sensitive);
        topo_.interface_map_[router.loopback] =
            InterfaceOwner{router.id, kInvalidId};
        if (!router.private_alias.is_unspecified()) {
          // Private addresses collide across ASes in reality; the map keeps
          // the first owner, which is fine: they are unmappable anyway.
          topo_.interface_map_.try_emplace(
              router.private_alias, InterfaceOwner{router.id, kInvalidId});
        }
        node.routers.push_back(router.id);
        topo_.routers_.push_back(std::move(router));
      }
    }
  }

  RrStampPolicy pick_rr_policy() {
    const double roll = router_rng_.uniform();
    double acc = config_.rr_ingress_frac;
    if (roll < acc) return RrStampPolicy::kIngress;
    acc += config_.rr_loopback_frac;
    if (roll < acc) return RrStampPolicy::kLoopback;
    acc += config_.rr_private_frac;
    if (roll < acc) return RrStampPolicy::kPrivate;
    acc += config_.rr_nostamp_frac;
    if (roll < acc) return RrStampPolicy::kNoStamp;
    return RrStampPolicy::kEgress;
  }

  LinkId add_link(RouterId a, RouterId b, AsIndex addr_owner,
                  bool interdomain) {
    Link link;
    link.id = static_cast<LinkId>(topo_.links_.size());
    link.router_a = a;
    link.router_b = b;
    const net::Ipv4Addr base = take_p2p_block(addr_owner);
    link.addr_a = net::Ipv4Addr(base.value() + 1);
    link.addr_b = net::Ipv4Addr(base.value() + 2);
    link.interdomain = interdomain;
    link.delay_us = interdomain
                        ? router_rng_.range(config_.inter_delay_min_us,
                                            config_.inter_delay_max_us)
                        : router_rng_.range(config_.intra_delay_min_us,
                                            config_.intra_delay_max_us);
    topo_.interface_map_[link.addr_a] = InterfaceOwner{a, link.id};
    topo_.interface_map_[link.addr_b] = InterfaceOwner{b, link.id};
    topo_.routers_[a].links.push_back(link.id);
    topo_.routers_[b].links.push_back(link.id);
    topo_.links_.push_back(link);
    return link.id;
  }

  void build_intra_links() {
    for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
      const auto& routers = topo_.ases_[i].routers;
      if (routers.size() < 2) continue;
      // Random spanning tree: connect each router to a random earlier one.
      for (std::size_t r = 1; r < routers.size(); ++r) {
        const std::size_t parent = router_rng_.below(r);
        add_link(routers[r], routers[parent], i, /*interdomain=*/false);
      }
      // Redundant shortcuts create ECMP and path diversity.
      const auto extras = static_cast<std::size_t>(
          static_cast<double>(routers.size()) * config_.intra_extra_edge_prob);
      for (std::size_t e = 0; e < extras; ++e) {
        const std::size_t a = router_rng_.below(routers.size());
        const std::size_t b = router_rng_.below(routers.size());
        if (a == b) continue;
        add_link(routers[a], routers[b], i, /*interdomain=*/false);
      }
    }
  }

  RouterId border_router(AsIndex as, Asn neighbor, std::size_t slot) const {
    const auto& routers = topo_.ases_[as].routers;
    const std::uint64_t h =
        util::mix_hash(topo_.ases_[as].asn, neighbor, 0x5eed + slot * 7919);
    return routers[h % routers.size()];
  }

  void build_inter_links() {
    for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
      const AsNode& node = topo_.ases_[i];
      // provider_side: 0 = node provides to neighbor, 1 = neighbor provides
      // to node, 2 = settlement-free peers.
      auto connect = [&](Asn neighbor_asn, int provider_side) {
        if (neighbor_asn < node.asn) return;  // Each pair once.
        const AsIndex j = topo_.index_of(neighbor_asn);
        const AsNode& other = topo_.ases_[j];
        // Big networks interconnect at multiple locations; which interconnect
        // a packet uses depends on the destination, so parallel links are a
        // real source of router-level asymmetry (§6.2).
        std::size_t parallel = 1;
        const std::size_t cap =
            std::min(node.routers.size(), other.routers.size());
        if (node.tier != AsTier::kStub && other.tier != AsTier::kStub) {
          parallel =
              (node.tier == AsTier::kTier1 && other.tier == AsTier::kTier1)
                  ? 3
                  : 2;
        } else if (router_rng_.chance(0.5)) {
          parallel = 2;
        }
        parallel = std::max<std::size_t>(1, std::min(parallel, cap));
        for (std::size_t slot = 0; slot < parallel; ++slot) {
          const RouterId ra = border_router(i, neighbor_asn, slot);
          const RouterId rb = border_router(j, node.asn, slot);
          // The /30 usually comes from the provider's infrastructure
          // prefix (providers number customer links); either way the far
          // side's interface maps to the *other* AS (Fig 4).
          AsIndex owner;
          if (provider_side == 2) {
            owner = router_rng_.chance(0.5) ? i : j;
          } else {
            const AsIndex provider = provider_side == 0 ? i : j;
            const AsIndex customer = provider_side == 0 ? j : i;
            owner = router_rng_.chance(0.85) ? provider : customer;
          }
          const LinkId link = add_link(ra, rb, owner, /*interdomain=*/true);
          topo_.border_links_[(std::uint64_t{node.asn} << 32) | neighbor_asn]
              .push_back(link);
          topo_.border_links_[(std::uint64_t{neighbor_asn} << 32) | node.asn]
              .push_back(link);
        }
      };
      for (Asn p : node.providers) connect(p, 1);
      for (Asn c : node.customers) connect(c, 0);
      for (Asn p : node.peers) connect(p, 2);
    }
  }

  // Gateway interface of `router` inside `prefix`; allocated on first use
  // from the prefix's reserved low offsets. The slot cursor is per prefix
  // and persists across all host insertions so distinct routers never share
  // a gateway address.
  net::Ipv4Addr gateway_for(RouterId router, PrefixId prefix_id) {
    const std::uint64_t key = (std::uint64_t{router} << 32) | prefix_id;
    const auto it = topo_.gateway_map_.find(key);
    if (it != topo_.gateway_map_.end()) return it->second;
    std::uint32_t& next_gateway_slot = gateway_cursor_[prefix_id];
    const std::uint32_t slot =
        1 + (next_gateway_slot++ % (AddressPlan::kGatewaySlots - 1));
    const net::Ipv4Addr addr = topo_.prefixes_[prefix_id].prefix.at(slot);
    topo_.gateway_map_[key] = addr;
    topo_.interface_map_.try_emplace(addr,
                                     InterfaceOwner{router, kInvalidId});
    return addr;
  }

  HostId add_host(AsIndex as, PrefixId prefix_id, std::uint32_t& next_addr) {
    const AsNode& node = topo_.ases_[as];
    Host host;
    host.id = static_cast<HostId>(topo_.hosts_.size());
    host.asn = node.asn;
    host.addr = topo_.prefixes_[prefix_id].prefix.at(next_addr++);
    host.attachment = node.routers[host_rng_.below(node.routers.size())];
    host.ping_responsive = host_rng_.chance(config_.host_ping_responsive);
    host.rr_responsive =
        host.ping_responsive && !node.filters_ip_options &&
        host_rng_.chance(config_.host_rr_responsive_given_ping);
    const double roll = host_rng_.uniform();
    if (roll < config_.host_nostamp_frac) {
      host.stamp = HostStamp::kNoStamp;
    } else if (roll < config_.host_nostamp_frac +
                          config_.host_doublestamp_frac) {
      host.stamp = HostStamp::kDoubleStamp;
    } else if (roll < config_.host_nostamp_frac +
                          config_.host_doublestamp_frac +
                          config_.host_aliasstamp_frac) {
      host.stamp = HostStamp::kAliasStamp;
    }
    if (host.stamp == HostStamp::kDoubleStamp ||
        host.stamp == HostStamp::kAliasStamp) {
      // The alias is a router-side interface outside the customer prefix
      // (infrastructure space), so RR replies stamped with it cannot be
      // recognized by prefix membership — exactly the situation the Appx C
      // double-stamp heuristic exists for.
      host.alias = take_loopback(as);
      topo_.host_map_[host.alias] = host.id;
    }
    // Ensure the access router has a gateway interface in this prefix so
    // traceroutes and RR probes see a plausible last hop.
    gateway_for(host.attachment, prefix_id);
    topo_.host_map_[host.addr] = host.id;
    topo_.prefix_hosts_[prefix_id].push_back(host.id);
    topo_.hosts_.push_back(std::move(host));
    return static_cast<HostId>(topo_.hosts_.size() - 1);
  }

  void build_prefixes_and_hosts() {
    for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
      AsNode& node = topo_.ases_[i];
      const std::size_t prefix_count = node.tier == AsTier::kStub ? 1 : 2;
      for (std::size_t p = 0; p < prefix_count; ++p) {
        BgpPrefix bgp;
        bgp.id = static_cast<PrefixId>(topo_.prefixes_.size());
        bgp.prefix = plan_.allocate_customer_prefix();
        bgp.origin = node.asn;
        topo_.prefixes_.push_back(bgp);
        topo_.prefix_trie_.insert(bgp.prefix, bgp.id);
        topo_.prefix_hosts_.resize(topo_.prefixes_.size());
        node.customer_prefixes.push_back(bgp.id);
        std::uint32_t next_addr = AddressPlan::kGatewaySlots;
        for (std::size_t h = 0; h < config_.hosts_per_prefix; ++h) {
          add_host(i, bgp.id, next_addr);
        }
        prefix_cursor_[bgp.id] = next_addr;
      }
    }
    topo_.prefix_hosts_.resize(topo_.prefixes_.size());
  }

  // Adds a special always-on host (vantage point or probe host) to the
  // first customer prefix of the AS.
  HostId add_special_host(AsIndex as) {
    AsNode& node = topo_.ases_[as];
    if (node.customer_prefixes.empty()) {
      throw std::logic_error("AS without customer prefix");
    }
    const PrefixId prefix_id = node.customer_prefixes.front();
    std::uint32_t& next_addr = prefix_cursor_[prefix_id];
    const HostId id = add_host(as, prefix_id, next_addr);
    Host& host = topo_.hosts_[id];
    host.ping_responsive = true;
    host.rr_responsive = !node.filters_ip_options;
    host.stamp = HostStamp::kNormal;
    return id;
  }

  void place_vantage_points() {
    auto pick_hosts = [&](AsCategory preferred, AsTier fallback_tier,
                          std::size_t count, bool era_2016) {
      std::vector<AsIndex> candidates;
      for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
        if (topo_.ases_[i].category == preferred) candidates.push_back(i);
      }
      if (candidates.size() < count) {
        for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
          if (topo_.ases_[i].tier == fallback_tier &&
              topo_.ases_[i].category != preferred) {
            candidates.push_back(i);
          }
        }
      }
      host_rng_.shuffle(candidates);
      for (std::size_t k = 0; k < count && k < candidates.size(); ++k) {
        const HostId id = add_special_host(candidates[k]);
        topo_.hosts_[id].is_vantage_point = true;
        if (era_2016) {
          topo_.vps_2016_.push_back(id);
        } else {
          topo_.vps_.push_back(id);
        }
      }
    };
    pick_hosts(AsCategory::kColo, AsTier::kTransit, config_.num_vps,
               /*era_2016=*/false);
    pick_hosts(AsCategory::kEdu, AsTier::kStub, config_.num_vps_2016,
               /*era_2016=*/true);
  }

  void place_probe_hosts() {
    std::vector<AsIndex> stubs;
    for (AsIndex i = 0; i < topo_.ases_.size(); ++i) {
      if (topo_.ases_[i].tier == AsTier::kStub) stubs.push_back(i);
    }
    host_rng_.shuffle(stubs);
    const std::size_t count = std::min(config_.num_probe_hosts, stubs.size());
    for (std::size_t k = 0; k < count; ++k) {
      const HostId id = add_special_host(stubs[k]);
      topo_.hosts_[id].is_probe_host = true;
      topo_.probe_hosts_.push_back(id);
    }
  }

  const TopologyConfig& config_;
  Topology& topo_;
  Rng rng_;
  Rng as_rng_;
  Rng router_rng_;
  Rng host_rng_;
  AddressPlan plan_;
  std::vector<InfraState> infra_;
  std::unordered_map<PrefixId, std::uint32_t> prefix_cursor_;
  std::unordered_map<PrefixId, std::uint32_t> gateway_cursor_;
};

}  // namespace detail

Topology TopologyBuilder::build(const TopologyConfig& config) {
  Topology topo;
  detail::BuildContext context(config, topo);
  context.run();
  return topo;
}

}  // namespace revtr::topology
