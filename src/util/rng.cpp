#include "util/rng.h"

#include <cmath>

namespace revtr::util {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF sampling; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

double Rng::pareto(double minimum, double alpha) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return minimum / std::pow(1.0 - u, 1.0 / alpha);
}

Rng Rng::fork(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the label.
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Rng(splitmix64((*this)() ^ h));
}

}  // namespace revtr::util
