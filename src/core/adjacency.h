// Router adjacency knowledge for the IP timestamp technique (§2, Q4).
//
// revtr 1.0 tested "adjacencies of the current hop in traceroute topologies"
// as candidate reverse hops via tsprespec probes. The adjacency data came
// from public traceroute archives (iPlane, Ark); we build the equivalent map
// from any collection of measured traceroutes. The Appx D.1 experiment also
// needs a ground-truth oracle that hands the engine the *true* next reverse
// hop, so the provider is a std::function the engine consults.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"

namespace revtr::core {

using AdjacencyProvider =
    std::function<std::vector<net::Ipv4Addr>(net::Ipv4Addr current)>;

class AdjacencyMap {
 public:
  // Records hop adjacencies (undirected) from a measured path.
  void add_path(std::span<const net::Ipv4Addr> hops);
  void add_pair(net::Ipv4Addr a, net::Ipv4Addr b);

  // Neighbors of `addr` seen in the corpus, capped at `limit`.
  std::vector<net::Ipv4Addr> adjacent_to(net::Ipv4Addr addr,
                                         std::size_t limit = 16) const;

  std::size_t size() const noexcept { return neighbors_.size(); }

  // Adapter for the engine.
  AdjacencyProvider provider(std::size_t limit = 16) const;

 private:
  std::unordered_map<net::Ipv4Addr, std::vector<net::Ipv4Addr>> neighbors_;
};

}  // namespace revtr::core
