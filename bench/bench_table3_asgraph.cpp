// Table 3: correctness and completeness of the reverse AS graph obtained
// with three techniques (§5.1):
//  * revtr 2.0 reverse traceroutes,
//  * RIPE-Atlas-style forward traceroutes from probe hosts only,
//  * forward traceroutes + assuming symmetry.
//
// For each source, every technique infers, per AS, the AS-level link that
// AS uses to route *toward* the source. Correctness = fraction of inferred
// links matching the BGP ground truth; completeness = fraction of all ASes
// for which any link was inferred.
//
// Paper: revtr 2.0 1.00 / 0.55, RIPE Atlas 1.00 / 0.06, forward+symmetry
// 0.60 / 0.78.
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "eval/harness.h"

using namespace revtr;

namespace {

struct Technique {
  std::set<std::pair<topology::Asn, topology::Asn>> links;  // (from, via).
  std::set<topology::Asn> covered;

  void add_link(topology::Asn from, topology::Asn via) {
    if (from == via) return;
    links.insert({from, via});
    covered.insert(from);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  auto setup = bench::parse_setup(flags);
  // Completeness is campaign-size dependent (the paper used one destination
  // per routed prefix); default to one per prefix here too.
  if (!flags.has("revtrs")) setup.revtrs = setup.topo.num_ases * 2;
  bench::warn_unknown_flags(flags);
  bench::print_header("Table 3: reverse AS graph correctness/completeness",
                      setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto vps = lab.topo.vantage_points();
  const std::size_t sources = std::min(setup.sources, vps.size());
  for (std::size_t s = 0; s < sources; ++s) {
    lab.bootstrap_source(vps[s], setup.atlas_size);
  }
  lab.precompute_all_ingresses();

  util::Rng rng(setup.seed * 3 + 1);
  std::vector<topology::HostId> dests;
  for (const auto prefix : lab.customer_prefixes()) {
    for (const auto host : lab.topo.hosts_in_prefix(prefix)) {
      if (lab.topo.host(host).ping_responsive) {
        dests.push_back(host);
        break;
      }
    }
  }
  rng.shuffle(dests);
  if (dests.size() > setup.revtrs) dests.resize(setup.revtrs);

  double revtr_correct_sum = 0, revtr_complete_sum = 0;
  double atlas_correct_sum = 0, atlas_complete_sum = 0;
  double fwd_correct_sum = 0, fwd_complete_sum = 0;

  util::SimClock clock;
  for (std::size_t s = 0; s < sources; ++s) {
    const topology::HostId source = vps[s];
    const auto source_as = lab.topo.index_of(lab.topo.host(source).asn);
    const auto& truth_column = lab.bgp.column(source_as);

    auto link_correct = [&](topology::Asn from, topology::Asn via) {
      if (!lab.topo.has_as(from)) return false;
      const auto index = lab.topo.index_of(from);
      return truth_column.next[index] == via ||
             (truth_column.alt[index] != 0 &&
              lab.topo.as_at(index).source_sensitive &&
              truth_column.alt[index] == via);
    };

    Technique revtr, atlas_technique, fwd;

    // --- revtr 2.0: reverse traceroutes from the destinations. ---
    for (const auto dest : dests) {
      const auto result = lab.engine.measure(dest, source, clock);
      if (!result.complete()) continue;
      const auto as_path = lab.ip2as.as_path(result.ip_hops());
      for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
        revtr.add_link(as_path[i], as_path[i + 1]);
      }
    }

    // --- RIPE Atlas: forward traceroutes from probe hosts to the source
    // measure true toward-source links, but only from probe-host ASes.
    // RIPE probes sit in ~5% of ASes (3,682 of 72,272 in the paper), so
    // only a proportional subset of our probe hosts plays that role. ---
    const auto all_probes = lab.topo.probe_hosts();
    const std::size_t ripe_count = std::min(
        all_probes.size(),
        std::max<std::size_t>(4, lab.topo.num_ases() / 20));
    for (std::size_t p = 0; p < ripe_count; ++p) {
      const auto probe = all_probes[p];
      const auto trace =
          lab.prober.traceroute(probe, lab.topo.host(source).addr);
      if (!trace.reached) continue;
      const auto as_path = lab.ip2as.as_path(trace.responsive_hops());
      for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
        atlas_technique.add_link(as_path[i], as_path[i + 1]);
      }
    }

    // --- Forward traceroutes + assume symmetry. ---
    for (const auto dest : dests) {
      const auto trace =
          lab.prober.traceroute(source, lab.topo.host(dest).addr);
      if (!trace.reached) continue;
      auto as_path = lab.ip2as.as_path(trace.responsive_hops());
      // Prepend the source AS (traceroute hops start past it).
      const topology::Asn source_asn = lab.topo.host(source).asn;
      if (as_path.empty() || as_path.front() != source_asn) {
        as_path.insert(as_path.begin(), source_asn);
      }
      // Reversed: each AS's toward-source link assumed = forward link.
      for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
        fwd.add_link(as_path[i + 1], as_path[i]);
      }
    }

    auto score = [&](const Technique& technique, double& correct_sum,
                     double& complete_sum) {
      std::size_t correct = 0;
      for (const auto& [from, via] : technique.links) {
        correct += link_correct(from, via);
      }
      if (!technique.links.empty()) {
        correct_sum += static_cast<double>(correct) /
                       static_cast<double>(technique.links.size());
      }
      complete_sum += static_cast<double>(technique.covered.size()) /
                      static_cast<double>(lab.topo.num_ases());
    };
    score(revtr, revtr_correct_sum, revtr_complete_sum);
    score(atlas_technique, atlas_correct_sum, atlas_complete_sum);
    score(fwd, fwd_correct_sum, fwd_complete_sum);
  }

  const double n = static_cast<double>(sources);
  util::TextTable table({"Technique", "Correctness", "Completeness"});
  table.add_row({"revtr 2.0", util::cell(revtr_correct_sum / n),
                 util::cell(revtr_complete_sum / n)});
  table.add_row({"RIPE Atlas", util::cell(atlas_correct_sum / n),
                 util::cell(atlas_complete_sum / n)});
  table.add_row({"Forward traceroutes + assume symmetry",
                 util::cell(fwd_correct_sum / n),
                 util::cell(fwd_complete_sum / n)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: revtr 2.0 1.00/0.55, RIPE Atlas 1.00/0.06, forward+symmetry\n"
      "0.60/0.78 — only revtr 2.0 combines correctness with coverage.\n");
  return 0;
}
