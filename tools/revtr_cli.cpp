// revtr_cli — command-line front end to the whole system.
//
//   revtr_cli <command> [--ases=N --seed=N ...]
//
// Commands:
//   topology   summarize the generated Internet
//   measure    one reverse traceroute (--dest=K --source=K [--json])
//   campaign   batch measurement run on real worker threads
//              (--revtrs=N --parallel=K [--pacing=S] [--archive=FILE]
//              writes an NDJSON archive; --staged runs resumable requests
//              over the probe scheduler, tuned by [--sched-window=N]
//              [--sched-pacing=TOKENS] [--sched-no-coalesce])
//   atlas      show a source's traceroute atlas (--source=K)
//   ingress    show a prefix's ingress plan (--prefix=K)
//   client     submit one request to a running revtr_serverd
//              (--socket=PATH --dest=K [--source=K] [--key=S]
//              [--deadline-ms=N] [--priority=high|normal|low] [--pull]
//              [--timeout=MS] gives up waiting for the RESULT after MS
//              milliseconds instead of blocking forever)
//
// Exit codes: 0 success, 1 runtime failure, 2 usage, 3 daemon rejected the
// request, 4 campaign finished with incomplete measurements, 5 daemon
// disconnected while waiting for the result, 6 --timeout expired.
//
// Everything runs against the simulated Internet; the same binary on the
// real system would differ only in the probing backend.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/serialize.h"
#include "eval/harness.h"
#include "server/client.h"
#include "service/archive.h"
#include "service/parallel.h"
#include "service/service.h"
#include "util/flags.h"

using namespace revtr;

namespace {

topology::TopologyConfig config_from(const util::Flags& flags) {
  topology::TopologyConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.num_ases = static_cast<std::size_t>(flags.get_int("ases", 400));
  config.num_vps = static_cast<std::size_t>(flags.get_int("vps", 20));
  config.num_probe_hosts =
      static_cast<std::size_t>(flags.get_int("probes", 150));
  return config;
}

int cmd_topology(eval::Lab& lab) {
  std::size_t tier1 = 0, transit = 0, stub = 0, nren = 0, colo = 0;
  for (const auto& node : lab.topo.ases()) {
    switch (node.tier) {
      case topology::AsTier::kTier1:
        ++tier1;
        break;
      case topology::AsTier::kTransit:
        ++transit;
        break;
      case topology::AsTier::kStub:
        ++stub;
        break;
    }
    nren += node.category == topology::AsCategory::kNren;
    colo += node.category == topology::AsCategory::kColo;
  }
  std::size_t interdomain_links = 0;
  for (const auto& link : lab.topo.links()) {
    interdomain_links += link.interdomain;
  }
  std::printf("ASes:      %zu (tier-1 %zu, transit %zu, stub %zu; "
              "%zu NREN, %zu colo)\n",
              lab.topo.num_ases(), tier1, transit, stub, nren, colo);
  std::printf("routers:   %zu\n", lab.topo.num_routers());
  std::printf("links:     %zu (%zu interdomain)\n", lab.topo.num_links(),
              interdomain_links);
  std::printf("prefixes:  %zu announced\n", lab.topo.num_prefixes());
  std::printf("hosts:     %zu (%zu vantage points, %zu probe hosts)\n",
              lab.topo.num_hosts(), lab.topo.vantage_points().size(),
              lab.topo.probe_hosts().size());
  return 0;
}

int cmd_measure(eval::Lab& lab, const util::Flags& flags) {
  const auto dest_index =
      static_cast<std::size_t>(flags.get_int("dest", 0));
  const auto source_index =
      static_cast<std::size_t>(flags.get_int("source", 0));
  const bool as_json = flags.get_bool("json", false);
  if (source_index >= lab.topo.vantage_points().size() ||
      dest_index >= lab.topo.probe_hosts().size()) {
    std::fprintf(stderr, "index out of range\n");
    return 1;
  }
  const auto source = lab.topo.vantage_points()[source_index];
  const auto dest = lab.topo.probe_hosts()[dest_index];
  lab.bootstrap_source(source, 50);
  util::SimClock clock;
  const auto result = lab.engine.measure(dest, source, clock);
  if (as_json) {
    std::printf("%s\n", core::to_json(result, lab.topo).dump().c_str());
    return 0;
  }
  std::printf("reverse traceroute %s -> %s: %s (%.1f s, %llu probes)\n",
              lab.topo.host(dest).addr.to_string().c_str(),
              lab.topo.host(source).addr.to_string().c_str(),
              core::to_string(result.status).c_str(), result.span.seconds(),
              static_cast<unsigned long long>(result.probes.total()));
  int index = 0;
  for (const auto& hop : result.hops) {
    if (hop.source == core::HopSource::kSuspiciousGap) {
      std::printf("  %2d  *\n", index++);
      continue;
    }
    const auto asn = lab.ip2as.lookup(hop.addr);
    std::printf("  %2d  %-15s AS%-6s %s\n", index++,
                hop.addr.to_string().c_str(),
                asn ? std::to_string(*asn).c_str() : "?",
                core::to_string(hop.source).c_str());
  }
  return 0;
}

int cmd_campaign(eval::Lab& lab, const util::Flags& flags) {
  const auto revtrs = static_cast<std::size_t>(flags.get_int("revtrs", 100));
  const auto parallel =
      static_cast<std::size_t>(flags.get_int("parallel", 4));
  const std::string archive_path = flags.get_string("archive", "");
  const std::string metrics_path = flags.get_string("metrics-out", "");
  const std::string trace_path = flags.get_string("trace-out", "");
  const auto trace_sample =
      static_cast<std::size_t>(flags.get_int("trace-sample", 0));

  // One registry covers the whole campaign: control-plane activity (source
  // bootstrap, atlas builds, ingress surveys) and the worker probe/engine
  // counters all land in the same snapshot.
  obs::MetricsRegistry registry;
  obs::TraceSink trace_sink;
  const service::ServiceMetrics svc_metrics(registry);
  const atlas::AtlasMetrics atlas_metrics(registry);
  const vpselect::IngressMetrics ingress_metrics(registry);
  const probing::ProbeMetrics probe_metrics(registry);
  lab.atlas.set_metrics(&atlas_metrics);
  lab.ingress.set_metrics(&ingress_metrics);
  // The lab's control-plane prober serves bootstrap and ingress surveys; the
  // campaign workers' probers are instrumented by the driver and resolve to
  // the same registry counters.
  lab.prober.set_metrics(&probe_metrics);

  service::RevtrService svc(lab.engine, lab.atlas, lab.prober, lab.topo);
  svc.set_metrics(&svc_metrics);
  service::MeasurementArchive archive(lab.topo);

  const auto source = lab.topo.vantage_points()[0];
  if (!svc.add_source(source, 50, lab.rng)) {
    std::fprintf(stderr, "source bootstrap failed\n");
    return 1;
  }
  std::vector<std::pair<topology::HostId, topology::HostId>> pairs;
  const auto probes = lab.topo.probe_hosts();
  for (std::size_t i = 0; i < revtrs; ++i) {
    pairs.emplace_back(probes[i % probes.size()], source);
  }

  // The campaign itself runs on real threads: each worker owns a private
  // measurement stack and the workers share the lock-striped engine caches.
  const service::CampaignDeps deps{lab.topo,  lab.plane, lab.atlas,
                                   lab.ingress, lab.ip2as, lab.relationships};
  service::ParallelCampaignOptions options;
  options.workers = parallel == 0 ? 1 : parallel;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  options.pacing_scale = flags.get_double("pacing", 0.0);
  // --staged multiplexes requests as resumable tasks over the probe
  // scheduler (DESIGN.md §10); the sched-* knobs tune its per-VP window,
  // token refill, and cross-request coalescing.
  if (flags.get_bool("staged", false)) {
    options.mode = service::EngineMode::kStaged;
  }
  options.sched.vp_window = static_cast<std::size_t>(flags.get_int(
      "sched-window", static_cast<std::int64_t>(options.sched.vp_window)));
  // Fractional rates are legal: e.g. --sched-pacing=0.5 issues one probe
  // from a VP every second pump round.
  options.sched.vp_tokens_per_round =
      flags.get_double("sched-pacing", options.sched.vp_tokens_per_round);
  if (flags.get_bool("sched-no-coalesce", false)) {
    options.sched.coalesce = false;
  }
  options.metrics = &registry;
  options.trace_sink = &trace_sink;
  options.trace_sample_every = trace_sample;
  service::ParallelCampaignDriver driver(deps, options);
  const auto report = driver.run(pairs);
  for (const auto& result : report.results) {
    archive.record(result, result.span.end);
  }

  const auto& stats = report.stats;
  std::printf("campaign: %zu requested, %zu complete (%.0f%%), "
              "%zu aborted, %zu unreachable\n",
              stats.requested, stats.completed, stats.coverage() * 100,
              stats.aborted, stats.unreachable);
  std::printf("latency: median %.1f s, p90 %.1f s; %zu workers, "
              "%.3f s wall\n",
              stats.latency_seconds.median(),
              stats.latency_seconds.quantile(0.9), options.workers,
              report.wall_seconds);
  std::printf("throughput: %.2f processed/s, %.2f completed/s "
              "(simulated time, busiest worker)\n",
              stats.processed_per_second(), stats.completed_per_second());
  std::printf("probes: %llu total (%llu spoofed RR)\n",
              static_cast<unsigned long long>(stats.probes.total()),
              static_cast<unsigned long long>(stats.probes.spoofed_rr));
  if (report.sched.has_value()) {
    const auto& sched = *report.sched;
    std::printf("sched: %llu demanded, %llu issued, %llu coalesced; "
                "%llu throttled, %llu spoof batches, %llu rounds\n",
                static_cast<unsigned long long>(sched.demanded),
                static_cast<unsigned long long>(sched.issued),
                static_cast<unsigned long long>(sched.coalesced),
                static_cast<unsigned long long>(sched.throttled),
                static_cast<unsigned long long>(sched.wire_batches),
                static_cast<unsigned long long>(sched.rounds));
  }
  const auto archive_stats = archive.stats();
  std::printf("archive: %zu measurements, %zu flagged\n",
              archive_stats.total, archive_stats.flagged);
  // Partial campaigns exit 4 (after all the reporting below) so scripted
  // callers can distinguish "ran but some measurements fell short" from
  // clean runs instead of always seeing 0.
  const int exit_code = stats.completed < stats.requested ? 4 : 0;
  if (!archive_path.empty()) {
    std::ofstream out(archive_path);
    out << archive.export_ndjson();
    std::printf("archive written to %s\n", archive_path.c_str());
  }
  if (report.metrics.has_value()) {
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      out << report.metrics->to_prometheus();
      std::printf("metrics written to %s\n", metrics_path.c_str());
    } else {
      std::printf("\n%s", report.metrics->to_table().c_str());
    }
  }
  if (trace_sample > 0) {
    std::printf("\ntraces: %zu retained, %llu evicted (sampling 1/%zu)\n",
                trace_sink.size(),
                static_cast<unsigned long long>(trace_sink.dropped()),
                trace_sample);
    std::printf("%s", trace_sink.to_table().c_str());
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      out << trace_sink.to_json().dump() << '\n';
      std::printf("traces written to %s\n", trace_path.c_str());
    }
  }
  return exit_code;
}

// Talks to a running revtr_serverd: HELLO, one SUBMIT, wait for the RESULT,
// print the path. Needs no Lab of its own — the daemon owns the topology.
int cmd_client(const util::Flags& flags) {
  const std::string socket_path =
      flags.get_string("socket", "/tmp/revtr_serverd.sock");
  const std::string api_key = flags.get_string("key", "demo-key");
  const std::string priority_name = flags.get_string("priority", "normal");
  const bool pull = flags.get_bool("pull", false);

  server::Submit request;
  request.request_id = 1;
  request.dest_index =
      static_cast<std::uint32_t>(flags.get_int("dest", 0));
  request.source_index =
      static_cast<std::uint32_t>(flags.get_int("source", 0));
  if (priority_name == "high") {
    request.priority = server::Priority::kHigh;
  } else if (priority_name == "low") {
    request.priority = server::Priority::kLow;
  } else if (priority_name == "normal") {
    request.priority = server::Priority::kNormal;
  } else {
    std::fprintf(stderr, "bad --priority: %s\n", priority_name.c_str());
    return 2;
  }

  server::DaemonClient client;
  if (!client.connect(socket_path, /*retries=*/10)) {
    std::fprintf(stderr, "cannot connect to %s\n", socket_path.c_str());
    return 1;
  }
  const auto welcome = client.hello(api_key, /*push_results=*/!pull);
  if (!welcome.has_value()) {
    if (client.reject_reason().has_value()) {
      std::fprintf(stderr, "hello rejected: %s\n",
                   std::string(to_string(*client.reject_reason())).c_str());
      return 3;
    }
    std::fprintf(stderr, "hello failed (daemon gone?)\n");
    return 1;
  }
  const auto deadline_ms = flags.get_int("deadline-ms", 0);
  if (deadline_ms > 0) {
    request.deadline_us = welcome->server_now_us + deadline_ms * 1000;
  }

  if (!client.submit(request)) {
    if (client.reject_reason().has_value()) {
      std::fprintf(stderr, "submit rejected: %s\n",
                   std::string(to_string(*client.reject_reason())).c_str());
      return 3;
    }
    std::fprintf(stderr, "submit failed (daemon gone?)\n");
    return 1;
  }
  // --timeout bounds the whole wait for the RESULT; 0 waits forever. The
  // daemon vanishing mid-wait is exit 5 either way — distinct from the
  // generic runtime failure so scripts can retry connect-level trouble
  // without re-submitting a request the daemon may still be measuring.
  const auto timeout_ms = static_cast<int>(flags.get_int("timeout", 0));
  std::optional<server::Result> result;
  if (pull) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms);
    while (!result.has_value()) {
      if (client.stashed_results() > 0) {
        result = client.next_result();
        break;
      }
      if (timeout_ms > 0 && std::chrono::steady_clock::now() >= give_up) {
        std::fprintf(stderr, "timed out after %d ms\n", timeout_ms);
        return 6;
      }
      if (!client.poll_results().has_value()) {
        std::fprintf(stderr, "daemon disconnected while polling\n");
        return 5;
      }
    }
  } else {
    switch (client.next_result_for(result, timeout_ms)) {
      case server::DaemonClient::WaitStatus::kOk:
        break;
      case server::DaemonClient::WaitStatus::kTimeout:
        std::fprintf(stderr, "timed out after %d ms\n", timeout_ms);
        return 6;
      case server::DaemonClient::WaitStatus::kDisconnected:
        std::fprintf(stderr, "daemon disconnected while waiting\n");
        return 5;
    }
  }
  if (!result.has_value()) {
    std::fprintf(stderr, "no result (daemon gone?)\n");
    return 1;
  }

  std::printf("tenant %s (id %u), request %llu: %s%s%s\n",
              welcome->tenant_name.c_str(), welcome->tenant,
              static_cast<unsigned long long>(result->request_id),
              result->shed ? "shed"
                           : core::to_string(result->status).c_str(),
              result->deadline_missed ? " (deadline missed)" : "",
              result->shed ? " (not measured)" : "");
  if (!result->shed) {
    std::printf("latency: %.3f s simulated; probes: %llu (%llu coalesced)\n",
                static_cast<double>(result->sim_latency_us) / 1e6,
                static_cast<unsigned long long>(result->probes),
                static_cast<unsigned long long>(result->coalesced_probes));
    int index = 0;
    for (const auto& hop : result->hops) {
      if (hop.source == core::HopSource::kSuspiciousGap) {
        std::printf("  %2d  *\n", index++);
        continue;
      }
      std::printf("  %2d  %-15s %s\n", index++, hop.addr.to_string().c_str(),
                  core::to_string(hop.source).c_str());
    }
  }
  // A shed or incomplete measurement is still a successful client exchange;
  // scripted callers key off the printed status.
  return 0;
}

int cmd_atlas(eval::Lab& lab, const util::Flags& flags) {
  const auto source_index =
      static_cast<std::size_t>(flags.get_int("source", 0));
  if (source_index >= lab.topo.vantage_points().size()) {
    std::fprintf(stderr, "index out of range\n");
    return 1;
  }
  const auto source = lab.topo.vantage_points()[source_index];
  lab.bootstrap_source(source, static_cast<std::size_t>(
                                   flags.get_int("size", 50)));
  const auto& traceroutes = lab.atlas.traceroutes(source);
  std::printf("atlas for %s: %zu traceroutes, %zu RR-learned addresses\n",
              lab.topo.host(source).addr.to_string().c_str(),
              traceroutes.size(), lab.atlas.rr_index_size(source));
  util::Distribution lengths;
  std::size_t reached = 0;
  for (const auto& tr : traceroutes) {
    lengths.add(static_cast<double>(tr.hops.size()));
    reached += tr.reached_source;
  }
  if (!lengths.empty()) {
    std::printf("hops per traceroute: median %.0f, max %.0f; "
                "%zu reached the source\n",
                lengths.median(), lengths.max(), reached);
  }
  return 0;
}

int cmd_ingress(eval::Lab& lab, const util::Flags& flags) {
  const auto prefix_index =
      static_cast<std::size_t>(flags.get_int("prefix", 0));
  const auto prefixes = lab.customer_prefixes();
  if (prefix_index >= prefixes.size()) {
    std::fprintf(stderr, "index out of range\n");
    return 1;
  }
  const auto prefix = prefixes[prefix_index];
  const auto plan_snap =
      lab.ingress.discover(prefix, lab.topo.vantage_points(), lab.rng);
  const auto& plan = *plan_snap;
  std::printf("prefix %s (AS%u): %zu ingresses\n",
              lab.topo.prefix(prefix).prefix.to_string().c_str(),
              lab.topo.prefix(prefix).origin, plan.ingresses.size());
  for (const auto& ingress : plan.ingresses) {
    std::printf("  ingress %-15s covers %zu VPs, closest at %d RR hops\n",
                ingress.addr.to_string().c_str(), ingress.vps.size(),
                ingress.vps.empty() ? -1 : ingress.vps.front().distance);
  }
  if (!plan.has_ingresses()) {
    const auto fallback = plan.fallback_ranking();
    std::printf("  no ingresses; %zu VPs in fallback ranking\n",
                fallback.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: revtr_cli "
                 "<topology|measure|campaign|atlas|ingress|client> "
                 "[--ases=N --seed=N ...]\n");
    return 2;
  }
  const std::string command = argv[1];
  const util::Flags flags(argc, argv);

  // `client` talks to a daemon that already owns the simulated Internet —
  // don't spend seconds building a second one here.
  if (command == "client") return cmd_client(flags);

  eval::Lab lab(config_from(flags));
  if (command == "topology") return cmd_topology(lab);
  if (command == "measure") return cmd_measure(lab, flags);
  if (command == "campaign") return cmd_campaign(lab, flags);
  if (command == "atlas") return cmd_atlas(lab, flags);
  if (command == "ingress") return cmd_ingress(lab, flags);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
