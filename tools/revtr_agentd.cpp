// revtr_agentd — the VP-agent daemon (src/agent/), the remote half of the
// controller/agent split (DESIGN.md §15).
//
//   revtr_agentd [--socket=PATH] [--name=S] [--window=N] [--pps=R]
//                [--heartbeat-ms=N] [--ases=N --vps=N --probes=N --seed=N]
//
// Builds its own copy of the simulated Internet (the topology flags MUST
// match the controller's — outcome byte-equality depends on it), connects
// to a revtr_serverd running with --remote-probing, registers as a remote
// prober, and executes AGENT_PROBE assignments until the controller drains
// it or SIGTERM/SIGINT arrives. --pps rate-limits probes per vantage point
// on the wall clock (0 = unlimited).
//
// Exit codes: 0 clean drain (or controller EOF), 1 connect/register failure
// or protocol error.
#include <cstdio>
#include <string>

#include "agent/agent.h"
#include "util/flags.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  agent::AgentOptions options;
  options.socket_path = flags.get_string("socket", "/tmp/revtr_serverd.sock");
  options.name = flags.get_string("name", "vp-agent");
  options.topo.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  options.topo.num_ases = static_cast<std::size_t>(flags.get_int("ases", 400));
  options.topo.num_vps = static_cast<std::size_t>(flags.get_int("vps", 20));
  options.topo.num_probe_hosts =
      static_cast<std::size_t>(flags.get_int("probes", 150));
  options.seed = options.topo.seed;
  options.window = static_cast<std::size_t>(flags.get_int("window", 16));
  options.probes_per_sec = flags.get_double("pps", 0.0);
  options.heartbeat_interval_ms = flags.get_int("heartbeat-ms", 200);

  agent::AgentDaemon daemon(options);
  agent::AgentDaemon::install_signal_handlers(&daemon);
  std::printf("revtr_agentd: %s joining %s (window %zu)\n",
              options.name.c_str(), options.socket_path.c_str(),
              options.window);
  std::fflush(stdout);

  const bool clean = daemon.run();
  agent::AgentDaemon::install_signal_handlers(nullptr);
  const auto counters = daemon.counters();
  std::printf("revtr_agentd: %s; %llu probes executed, %llu heartbeats\n",
              clean ? "drained" : "failed",
              static_cast<unsigned long long>(counters.executed),
              static_cast<unsigned long long>(counters.heartbeats));
  return clean ? 0 : 1;
}
