#include <gtest/gtest.h>

#include "util/json.h"
#include "util/rng.h"

namespace revtr::util {
namespace {

TEST(Json, ScalarsDumpAndParse) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json("hello").dump(), "\"hello\"");

  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_EQ(Json::parse("42")->as_int(), 42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5")->as_double(), 2.5);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ObjectAndArrayRoundTrip) {
  Json doc = Json::object();
  doc["name"] = "revtr";
  doc["count"] = std::int64_t{3};
  doc["flags"] = Json::object();
  doc["flags"]["ok"] = true;
  Json hops = Json::array();
  hops.push_back("1.2.3.4");
  hops.push_back("5.6.7.8");
  doc["hops"] = std::move(hops);

  const auto text = doc.dump();
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, doc);
  EXPECT_EQ(parsed->find("name")->as_string(), "revtr");
  EXPECT_EQ(parsed->find("hops")->as_array().size(), 2u);
  EXPECT_TRUE(parsed->find("flags")->find("ok")->as_bool());
  EXPECT_EQ(parsed->find("missing"), nullptr);
}

TEST(Json, StringEscaping) {
  const Json value(std::string("a\"b\\c\nd\te"));
  const auto text = value.dump();
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd\te");
  // Control characters become \u escapes.
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
  EXPECT_EQ(Json::parse("\"\\u0041\"")->as_string(), "A");
}

TEST(Json, WhitespaceTolerated) {
  const auto parsed = Json::parse("  { \"a\" : [ 1 , 2 ] , \"b\" : null } ");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->find("a")->as_array()[1].as_int(), 2);
}

TEST(Json, MalformedRejected) {
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
        "[1] trailing", "{\"a\":1,}", "nan", "--3", "{'a':1}"}) {
    EXPECT_FALSE(Json::parse(bad)) << bad;
  }
}

TEST(Json, NestedDepth) {
  std::string deep;
  for (int i = 0; i < 50; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 50; ++i) deep += "]";
  const auto parsed = Json::parse(deep);
  ASSERT_TRUE(parsed);
  const Json* cursor = &*parsed;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cursor->is_array());
    cursor = &cursor->as_array()[0];
  }
  EXPECT_EQ(cursor->as_int(), 1);
}

TEST(Json, LargeIntegersExact) {
  const std::int64_t big = 9007199254740993;  // Above double's exact range.
  const auto parsed = Json::parse(Json(big).dump());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->as_int(), big);
}

TEST(JsonFuzz, RandomInputNeverCrashes) {
  Rng rng(31337);
  const char alphabet[] = "{}[]\",:0123456789.truefalsn\\ ";
  for (int round = 0; round < 3000; ++round) {
    std::string text;
    const auto length = rng.below(40);
    for (std::uint64_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.below(sizeof alphabet - 1)]);
    }
    (void)Json::parse(text);  // Must not crash or hang.
  }
}

}  // namespace
}  // namespace revtr::util
