// Per-hop forwarding decisions.
//
// Combines the BGP table (interdomain) and intra-AS shortest paths into the
// single question the simulator asks at every hop: given this packet at this
// router, what happens next? The answer reflects all the phenomena the
// paper's techniques must cope with:
//  * destination-based forwarding by default (Insight 1.1),
//  * AS-level violations for source-sensitive ASes (Appx E),
//  * per-flow ECMP for ordinary packets and per-packet/random ECMP for
//    packets carrying IP options (Appx E's load-balancer discussion),
//  * inter-AS /30s owned by either side (Fig 4 ingress ambiguity).
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "routing/bgp.h"
#include "routing/intra.h"
#include "topology/topology.h"

namespace revtr::routing {

struct PacketContext {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::uint64_t flow_key = 0;
  bool has_options = false;
  // Fresh random value per packet; per-packet load balancers mix it so each
  // option-carrying packet can take a different equal-cost branch.
  std::uint64_t packet_salt = 0;
};

struct Decision {
  enum class Kind : std::uint8_t {
    kForwardLink,    // Send over `link` to `next_router`.
    kDeliverHost,    // `host` hangs off the current router; hand it over.
    kDeliverRouter,  // The current router itself owns the destination.
    kDrop,           // No route / unknown destination.
  };

  Kind kind = Kind::kDrop;
  topology::LinkId link = topology::kInvalidId;
  topology::RouterId next_router = topology::kInvalidId;
  topology::HostId host = topology::kInvalidId;
};

// Destination-derived facts that are invariant across every hop of one
// packet: which interface/host owns the address, its longest-match prefix,
// and the origin AS. The simulator resolves them once per forwarding pass
// instead of re-walking the prefix trie and address maps at each router.
struct ResolvedDst {
  std::optional<topology::InterfaceOwner> iface;
  std::optional<topology::PrefixId> prefix;
  topology::Asn dest_asn = 0;
  topology::AsIndex dest_as = topology::kInvalidId;
  std::optional<topology::HostId> host;
};

class ForwardingPlane {
 public:
  ForwardingPlane(const topology::Topology& topo, const BgpTable& bgp,
                  const IntraRouting& intra);

  // Resolves the per-destination facts `decide` consumes at every hop.
  ResolvedDst resolve(net::Ipv4Addr dst) const;

  Decision decide(topology::RouterId current, const PacketContext& ctx,
                  const ResolvedDst& dst) const;
  // Convenience for single-shot queries: resolve + decide.
  Decision decide(topology::RouterId current, const PacketContext& ctx) const;

  // The first router a packet from this host traverses.
  topology::RouterId origin_router(topology::HostId host) const;

  // Convenience for evaluation: the AS-level route (list of ASNs) a packet
  // from `src_as` to `dst_as` follows, accounting for source sensitivity.
  std::vector<topology::Asn> as_level_route(topology::AsIndex src_as,
                                            topology::AsIndex dst_as,
                                            net::Ipv4Addr src,
                                            net::Ipv4Addr dst) const;

 private:
  // Resolves the next-hop AS for `as_index` toward the destination AS,
  // applying the AS's source-sensitive alternate choice when configured.
  topology::Asn next_as(topology::AsIndex dest_as, topology::AsIndex as_index,
                        net::Ipv4Addr src, net::Ipv4Addr dst) const;

  // Chooses between ECMP next hops at `router`.
  topology::LinkId choose_link(const IntraRouting::NextHops& hops,
                               const topology::Router& router,
                               const PacketContext& ctx) const;

  Decision step_toward_router(topology::RouterId current,
                              topology::RouterId target,
                              const PacketContext& ctx) const;

  const topology::Topology& topo_;
  const BgpTable& bgp_;
  const IntraRouting& intra_;
};

}  // namespace revtr::routing
