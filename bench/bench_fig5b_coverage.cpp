// Fig 5b + Appx D.1: coverage cost of revtr 2.0's accuracy choices, and the
// (tiny) benefit of the abandoned timestamp technique.
//
// Rows: revtr 1.0 (always completes by assuming symmetry), revtr 2.0
// (aborts rather than assume interdomain symmetry), revtr 2.0 + TS with
// atlas-mined adjacencies, and revtr 2.0 + TS with *ground-truth*
// adjacencies (the unrealistically generous oracle of Appx D.1).
//
// Paper: 100% / 78.1% / 78.2% / 79.2% — timestamp buys ~1% even with
// perfect adjacency knowledge, which is why Q4 drops it.
#include <cstdio>

#include "ablation.h"
#include "bench_common.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Fig 5b: coverage of each configuration", setup);

  std::vector<bench::AblationConfig> configs;

  bench::AblationConfig revtr1;
  revtr1.label = "revtr 1.0";
  revtr1.engine = core::EngineConfig::revtr1();
  revtr1.use_alias_store = true;
  revtr1.adjacency = bench::AdjacencySource::kAtlas;
  configs.push_back(revtr1);

  bench::AblationConfig revtr2;
  revtr2.label = "revtr 2.0";
  revtr2.engine = core::EngineConfig::revtr2();
  configs.push_back(revtr2);

  bench::AblationConfig revtr2_ts = revtr2;
  revtr2_ts.label = "revtr 2.0 + TS";
  revtr2_ts.engine.use_timestamp = true;
  revtr2_ts.adjacency = bench::AdjacencySource::kAtlas;
  configs.push_back(revtr2_ts);

  bench::AblationConfig revtr2_oracle = revtr2_ts;
  revtr2_oracle.label = "revtr 2.0 + TS + ground truth adj.";
  revtr2_oracle.adjacency = bench::AdjacencySource::kGroundTruth;
  configs.push_back(revtr2_oracle);

  util::TextTable table({"Technique", "Coverage", "(# complete paths)",
                         "aborted", "unreachable", "TS packets"});
  for (const auto& config : configs) {
    const auto result = bench::run_ablation(setup, config);
    table.add_row(
        {result.label, util::cell_percent(result.coverage()),
         util::cell_count(result.complete), util::cell_count(result.aborted),
         util::cell_count(result.unreachable),
         util::cell_count(result.online.ts + result.online.spoofed_ts)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: 100%% / 78.1%% / 78.2%% / 79.2%% — the TS technique adds at\n"
      "most ~1%% coverage even with oracle adjacencies, so revtr 2.0 drops\n"
      "it to save ~34%% of online probes (Insight 1.9).\n");
  return 0;
}
