#!/bin/sh
# Correctness gate: builds and tests the tree under each hardening config.
#
#   1. default  -Werror with extended warnings (-Wconversion -Wshadow
#               -Wold-style-cast -Wnon-virtual-dtor), full ctest suite —
#               includes revtr_lint (with the layering analyzer), the
#               wire-codec fuzzer, and the revtr_mc model-checker sweep.
#   2. asan     AddressSanitizer build, full ctest suite (the revtr_mc
#               state sweep under ASan is the deepest memory check we run).
#   3. ubsan    UndefinedBehaviorSanitizer with -fno-sanitize-recover=all
#               (any UB aborts the test), full ctest suite.
#   4. tsan     ThreadSanitizer over the concurrency suite (thread pool,
#               synchronized Distribution, striped caches, parallel campaign
#               driver) — the racy paths the parallel batch driver actually
#               exercises. REVTR_CHECK_TSAN=0 skips the stage;
#               REVTR_CHECK_TSAN=full runs the whole ctest suite under TSan.
#
# --quick: inner-loop mode — default preset only, and only the fast
# correctness tiers: revtr_lint (lint + layering + self-test) and the unit
# tests, skipping the fuzzer and the model-checker sweep. Use before a
# commit when the full multi-preset gate is too slow; CI runs the full one.
#
# Also runs clang-tidy (config in .clang-tidy) when the binary exists; the
# default container ships gcc only, so that step is skipped there.
set -eu
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
    esac
done

run_config() {
    name="$1"
    echo "==> [$name] configure"
    cmake --preset "$name" >/dev/null
    echo "==> [$name] build"
    cmake --build --preset "$name" -j "$JOBS"
    echo "==> [$name] test"
    ctest --preset "$name"
}

if [ "$QUICK" = "1" ]; then
    echo "==> [default] configure"
    cmake --preset default >/dev/null
    echo "==> [default] build"
    cmake --build --preset default -j "$JOBS"
    echo "==> [default] lint + layering"
    ./build/tools/revtr_lint --self-test
    ./build/tools/revtr_lint .
    echo "==> [default] unit tests (no fuzzer, no model-checker sweep)"
    ctest --preset default -E 'wire_fuzz|revtr_mc'
    echo "check.sh: quick gate passed (full gate: scripts/check.sh)"
    exit 0
fi

run_config default
run_config asan
run_config ubsan
case "${REVTR_CHECK_TSAN:-1}" in
    0)
        echo "==> [tsan] skipped (REVTR_CHECK_TSAN=0)"
        ;;
    full)
        run_config tsan
        ;;
    *)
        echo "==> [tsan] configure"
        cmake --preset tsan >/dev/null
        echo "==> [tsan] build"
        cmake --build --preset tsan -j "$JOBS"
        echo "==> [tsan] concurrency suite"
        ctest --preset tsan -R 'ThreadPool|Distribution|StripedMap|ParallelCampaign'
        ;;
esac

if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy"
    find src -name '*.cpp' -print0 |
        xargs -0 clang-tidy -p build --quiet
else
    echo "==> clang-tidy skipped (binary not installed; see .clang-tidy)"
fi

echo "check.sh: all configurations passed"
