#include "core/serialize.h"

#include "util/check.h"

namespace revtr::core {

namespace {

std::optional<HopSource> hop_source_from_string(const std::string& text) {
  for (const auto source :
       {HopSource::kDestination, HopSource::kRecordRoute,
        HopSource::kSpoofedRecordRoute, HopSource::kTimestamp,
        HopSource::kAtlasIntersection, HopSource::kAssumedSymmetric,
        HopSource::kSuspiciousGap}) {
    if (to_string(source) == text) return source;
  }
  return std::nullopt;
}

std::optional<RevtrStatus> status_from_string(const std::string& text) {
  for (const auto status :
       {RevtrStatus::kComplete, RevtrStatus::kAbortedInterdomainSymmetry,
        RevtrStatus::kUnreachable}) {
    if (to_string(status) == text) return status;
  }
  return std::nullopt;
}

}  // namespace

util::Json to_json(const ReverseTraceroute& result,
                   const topology::Topology& topo) {
  util::Json json = util::Json::object();
  json["destination"] = topo.host(result.destination).addr.to_string();
  json["source"] = topo.host(result.source).addr.to_string();
  json["status"] = to_string(result.status);

  util::Json hops = util::Json::array();
  for (const auto& hop : result.hops) {
    util::Json entry = util::Json::object();
    entry["via"] = to_string(hop.source);
    if (hop.source != HopSource::kSuspiciousGap) {
      entry["addr"] = hop.addr.to_string();
    }
    hops.push_back(std::move(entry));
  }
  json["hops"] = std::move(hops);

  json["latency_us"] = result.span.duration();
  json["spoofed_batches"] =
      util::checked_cast<std::int64_t>(result.spoofed_batches);
  json["symmetry_assumptions"] =
      util::checked_cast<std::int64_t>(result.symmetry_assumptions);

  util::Json probes = util::Json::object();
  probes["ping"] = util::checked_cast<std::int64_t>(result.probes.ping);
  probes["rr"] = util::checked_cast<std::int64_t>(result.probes.rr);
  probes["spoofed_rr"] = util::checked_cast<std::int64_t>(result.probes.spoofed_rr);
  probes["ts"] = util::checked_cast<std::int64_t>(result.probes.ts);
  probes["spoofed_ts"] = util::checked_cast<std::int64_t>(result.probes.spoofed_ts);
  probes["traceroute_packets"] =
      util::checked_cast<std::int64_t>(result.probes.traceroute_packets);
  json["probes"] = std::move(probes);

  if (result.coalesced_probes > 0) {
    json["coalesced_probes"] =
        util::checked_cast<std::int64_t>(result.coalesced_probes);
  }

  if (result.offline_probes.total() > 0) {
    util::Json offline = util::Json::object();
    offline["rr"] = util::checked_cast<std::int64_t>(result.offline_probes.rr);
    offline["traceroute_packets"] = util::checked_cast<std::int64_t>(
        result.offline_probes.traceroute_packets);
    json["offline_probes"] = std::move(offline);
  }

  util::Json flags = util::Json::object();
  flags["suspicious_gap"] = result.has_suspicious_gap;
  flags["private_hops"] = result.has_private_hops;
  flags["stale_traceroute"] = result.used_stale_traceroute;
  flags["dbr_suspect"] = result.dbr_suspect;
  flags["interdomain_symmetry"] = result.used_interdomain_symmetry;
  json["flags"] = std::move(flags);
  return json;
}

std::optional<ReverseTraceroute> reverse_traceroute_from_json(
    const util::Json& json, const topology::Topology& topo) {
  if (!json.is_object()) return std::nullopt;
  ReverseTraceroute result;

  auto host_field = [&](const char* key) -> std::optional<topology::HostId> {
    const auto* field = json.find(key);
    if (field == nullptr || !field->is_string()) return std::nullopt;
    const auto addr = net::Ipv4Addr::parse(field->as_string());
    if (!addr) return std::nullopt;
    return topo.host_at(*addr);
  };
  const auto destination = host_field("destination");
  const auto source = host_field("source");
  if (!destination || !source) return std::nullopt;
  result.destination = *destination;
  result.source = *source;

  const auto* status = json.find("status");
  if (status == nullptr || !status->is_string()) return std::nullopt;
  const auto parsed_status = status_from_string(status->as_string());
  if (!parsed_status) return std::nullopt;
  result.status = *parsed_status;

  const auto* hops = json.find("hops");
  if (hops == nullptr || !hops->is_array()) return std::nullopt;
  for (const auto& entry : hops->as_array()) {
    const auto* via = entry.find("via");
    if (via == nullptr || !via->is_string()) return std::nullopt;
    const auto source_kind = hop_source_from_string(via->as_string());
    if (!source_kind) return std::nullopt;
    ReverseHop hop;
    hop.source = *source_kind;
    if (*source_kind != HopSource::kSuspiciousGap) {
      const auto* addr = entry.find("addr");
      if (addr == nullptr || !addr->is_string()) return std::nullopt;
      const auto parsed = net::Ipv4Addr::parse(addr->as_string());
      if (!parsed) return std::nullopt;
      hop.addr = *parsed;
    }
    result.hops.push_back(hop);
  }

  if (const auto* latency = json.find("latency_us");
      latency != nullptr && latency->is_number()) {
    result.span.begin = 0;
    result.span.end = latency->as_int();
  }
  // Counts are external input: a negative value is malformed, not a value to
  // wrap around (the old static_cast turned -1 into 2^64 - 1 probes).
  auto non_negative = [](const util::Json* field) -> std::uint64_t {
    const std::int64_t v = field->as_int();
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
  };
  if (const auto* coalesced = json.find("coalesced_probes");
      coalesced != nullptr && coalesced->is_number()) {
    result.coalesced_probes = non_negative(coalesced);
  }
  if (const auto* batches = json.find("spoofed_batches");
      batches != nullptr && batches->is_number()) {
    result.spoofed_batches =
        util::checked_cast<std::size_t>(non_negative(batches));
  }
  if (const auto* assumptions = json.find("symmetry_assumptions");
      assumptions != nullptr && assumptions->is_number()) {
    result.symmetry_assumptions =
        util::checked_cast<std::size_t>(non_negative(assumptions));
  }
  if (const auto* probes = json.find("probes");
      probes != nullptr && probes->is_object()) {
    auto count = [&](const char* key) -> std::uint64_t {
      const auto* field = probes->find(key);
      return field != nullptr && field->is_number() ? non_negative(field) : 0;
    };
    result.probes.ping = count("ping");
    result.probes.rr = count("rr");
    result.probes.spoofed_rr = count("spoofed_rr");
    result.probes.ts = count("ts");
    result.probes.spoofed_ts = count("spoofed_ts");
    result.probes.traceroute_packets = count("traceroute_packets");
  }
  if (const auto* offline = json.find("offline_probes");
      offline != nullptr && offline->is_object()) {
    auto count = [&](const char* key) -> std::uint64_t {
      const auto* field = offline->find(key);
      return field != nullptr && field->is_number() ? non_negative(field) : 0;
    };
    result.offline_probes.rr = count("rr");
    result.offline_probes.traceroute_packets = count("traceroute_packets");
  }
  if (const auto* flags = json.find("flags");
      flags != nullptr && flags->is_object()) {
    auto flag = [&](const char* key) {
      const auto* field = flags->find(key);
      return field != nullptr && field->is_bool() && field->as_bool();
    };
    result.has_suspicious_gap = flag("suspicious_gap");
    result.has_private_hops = flag("private_hops");
    result.used_stale_traceroute = flag("stale_traceroute");
    result.dbr_suspect = flag("dbr_suspect");
    result.used_interdomain_symmetry = flag("interdomain_symmetry");
  }
  return result;
}

}  // namespace revtr::core
