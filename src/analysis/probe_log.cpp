#include "analysis/probe_log.h"

namespace revtr::analysis {

probing::ProbeCounters ProbeLog::tally(
    std::span<const probing::ProbeEvent> events, bool offline) {
  probing::ProbeCounters counters;
  for (const auto& event : events) {
    if (event.offline != offline) continue;
    switch (event.type) {
      case probing::ProbeType::kPing:
        ++counters.ping;
        break;
      case probing::ProbeType::kRecordRoute:
        ++counters.rr;
        break;
      case probing::ProbeType::kSpoofedRecordRoute:
        ++counters.spoofed_rr;
        break;
      case probing::ProbeType::kTimestamp:
        ++counters.ts;
        break;
      case probing::ProbeType::kSpoofedTimestamp:
        ++counters.spoofed_ts;
        break;
      case probing::ProbeType::kTraceroute:
        counters.traceroute_packets += event.packets;
        ++counters.traceroutes;
        break;
    }
  }
  return counters;
}

}  // namespace revtr::analysis
