#include "net/packet.h"

namespace revtr::net {

std::string to_string(IcmpType type) {
  switch (type) {
    case IcmpType::kEchoRequest:
      return "echo-request";
    case IcmpType::kEchoReply:
      return "echo-reply";
    case IcmpType::kTimeExceeded:
      return "time-exceeded";
    case IcmpType::kDestUnreachable:
      return "dest-unreachable";
  }
  return "unknown";
}

Packet make_echo_request(Ipv4Addr src, Ipv4Addr dst, std::uint16_t icmp_id,
                         std::uint16_t icmp_seq, std::uint8_t ttl) {
  Packet packet;
  packet.src = src;
  packet.dst = dst;
  packet.ttl = ttl;
  packet.type = IcmpType::kEchoRequest;
  packet.icmp_id = icmp_id;
  packet.icmp_seq = icmp_seq;
  return packet;
}

Packet make_echo_reply(const Packet& request, Ipv4Addr replier) {
  Packet reply;
  reply.src = replier;
  reply.dst = request.src;  // Routed to the (possibly spoofed) source.
  reply.ttl = 64;
  reply.type = IcmpType::kEchoReply;
  reply.icmp_id = request.icmp_id;
  reply.icmp_seq = request.icmp_seq;
  // RFC 791: the options of the request are reflected into the reply, and
  // Record Route keeps recording along the reverse path.
  reply.rr = request.rr;
  reply.ts = request.ts;
  return reply;
}

Packet make_time_exceeded(const Packet& request, Ipv4Addr router_addr) {
  Packet error;
  error.src = router_addr;
  error.dst = request.src;
  error.ttl = 64;
  error.type = IcmpType::kTimeExceeded;
  error.icmp_id = request.icmp_id;
  error.icmp_seq = request.icmp_seq;
  error.quoted_dst = request.dst;
  return error;
}

}  // namespace revtr::net
