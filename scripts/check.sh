#!/bin/sh
# Correctness gate: builds and tests the tree under each hardening config.
#
#   1. default  -Werror with extended warnings (-Wconversion -Wshadow
#               -Wold-style-cast -Wnon-virtual-dtor), full ctest suite —
#               includes revtr_lint and the wire-codec fuzzer.
#   2. asan     AddressSanitizer build, full ctest suite.
#   3. ubsan    UndefinedBehaviorSanitizer with -fno-sanitize-recover=all
#               (any UB aborts the test), full ctest suite.
#   4. tsan     ThreadSanitizer; opt-in via REVTR_CHECK_TSAN=1 because the
#               pipeline is single-threaded today and the extra build is
#               expensive on small machines.
#
# Also runs clang-tidy (config in .clang-tidy) when the binary exists; the
# default container ships gcc only, so that step is skipped there.
set -eu
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_config() {
    name="$1"
    echo "==> [$name] configure"
    cmake --preset "$name" >/dev/null
    echo "==> [$name] build"
    cmake --build --preset "$name" -j "$JOBS"
    echo "==> [$name] test"
    ctest --preset "$name"
}

run_config default
run_config asan
run_config ubsan
if [ "${REVTR_CHECK_TSAN:-0}" = "1" ]; then
    run_config tsan
else
    echo "==> [tsan] skipped (set REVTR_CHECK_TSAN=1 to enable)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy"
    find src -name '*.cpp' -print0 |
        xargs -0 clang-tidy -p build --quiet
else
    echo "==> clang-tidy skipped (binary not installed; see .clang-tidy)"
fi

echo "check.sh: all configurations passed"
