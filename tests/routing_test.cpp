#include <gtest/gtest.h>
#include <memory>

#include <algorithm>
#include <set>

#include "routing/bgp.h"
#include "routing/forwarding.h"
#include "routing/intra.h"
#include "topology/builder.h"

namespace revtr::routing {
namespace {

using topology::AsIndex;
using topology::Asn;
using topology::AsTier;
using topology::Topology;
using topology::TopologyBuilder;
using topology::TopologyConfig;

TopologyConfig small_config() {
  TopologyConfig config;
  config.seed = 11;
  config.num_ases = 150;
  config.num_vps = 8;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 20;
  return config;
}

class RoutingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = std::make_unique<Topology>(TopologyBuilder::build(small_config()));
    bgp_ = std::make_unique<BgpTable>(*topo_);
    intra_ = std::make_unique<IntraRouting>(*topo_);
    plane_ = std::make_unique<ForwardingPlane>(*topo_, *bgp_, *intra_);
  }
  static void TearDownTestSuite() {
    plane_.reset();
    intra_.reset();
    bgp_.reset();
    topo_.reset();
  }

  static std::unique_ptr<Topology> topo_;
  static std::unique_ptr<BgpTable> bgp_;
  static std::unique_ptr<IntraRouting> intra_;
  static std::unique_ptr<ForwardingPlane> plane_;
};

std::unique_ptr<Topology> RoutingFixture::topo_;
std::unique_ptr<BgpTable> RoutingFixture::bgp_;
std::unique_ptr<IntraRouting> RoutingFixture::intra_;
std::unique_ptr<ForwardingPlane> RoutingFixture::plane_;

// --------------------------------------------------------------------------
// BGP
// --------------------------------------------------------------------------

TEST_F(RoutingFixture, EveryAsReachesEveryDestination) {
  // Sample destinations; full n^2 would be slow in a unit test.
  for (AsIndex dest = 0; dest < topo_->num_ases(); dest += 17) {
    const auto& column = bgp_->column(dest);
    for (AsIndex from = 0; from < topo_->num_ases(); ++from) {
      if (from == dest) continue;
      EXPECT_NE(column.next[from], 0u)
          << "AS " << topo_->as_at(from).asn << " cannot reach AS "
          << topo_->as_at(dest).asn;
    }
  }
}

TEST_F(RoutingFixture, NextHopIsAnActualNeighbor) {
  const AsIndex dest = 3;
  const auto& column = bgp_->column(dest);
  for (AsIndex from = 0; from < topo_->num_ases(); ++from) {
    if (from == dest) continue;
    const Asn next = column.next[from];
    const auto& node = topo_->as_at(from);
    const bool neighbor =
        std::find(node.providers.begin(), node.providers.end(), next) !=
            node.providers.end() ||
        std::find(node.customers.begin(), node.customers.end(), next) !=
            node.customers.end() ||
        std::find(node.peers.begin(), node.peers.end(), next) !=
            node.peers.end();
    EXPECT_TRUE(neighbor) << "AS " << node.asn << " -> " << next;
  }
}

TEST_F(RoutingFixture, AsPathsAreLoopFree) {
  for (AsIndex dest = 0; dest < topo_->num_ases(); dest += 13) {
    for (AsIndex from = 0; from < topo_->num_ases(); from += 7) {
      const auto path = bgp_->as_path(from, dest);
      ASSERT_FALSE(path.empty());
      std::set<Asn> unique(path.begin(), path.end());
      EXPECT_EQ(unique.size(), path.size()) << "loop in AS path";
      EXPECT_EQ(path.front(), topo_->as_at(from).asn);
      EXPECT_EQ(path.back(), topo_->as_at(dest).asn);
    }
  }
}

TEST_F(RoutingFixture, PathLengthsConsistentWithNextHops) {
  const AsIndex dest = 5;
  const auto& column = bgp_->column(dest);
  for (AsIndex from = 0; from < topo_->num_ases(); ++from) {
    if (from == dest) continue;
    const auto path = bgp_->as_path(from, dest);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.size(), column.path_len[from] + 1u);
  }
}

TEST_F(RoutingFixture, ValleyFreePaths) {
  // Gao-Rexford: once a path goes from provider-to-customer (down) or
  // across a peer link, it must keep going down.
  auto relationship = [&](Asn from, Asn to) -> int {
    const auto& node = topo_->as_node(from);
    if (std::find(node.customers.begin(), node.customers.end(), to) !=
        node.customers.end()) {
      return -1;  // down
    }
    if (std::find(node.peers.begin(), node.peers.end(), to) !=
        node.peers.end()) {
      return 0;  // across
    }
    return 1;  // up
  };
  for (AsIndex dest = 0; dest < topo_->num_ases(); dest += 29) {
    for (AsIndex from = 0; from < topo_->num_ases(); from += 11) {
      const auto path = bgp_->as_path(from, dest);
      ASSERT_FALSE(path.empty());
      bool descending = false;
      int peer_links = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const int rel = relationship(path[i], path[i + 1]);
        if (rel == 0) ++peer_links;
        if (descending) {
          EXPECT_EQ(rel, -1) << "valley in path";
        }
        if (rel <= 0) descending = true;
      }
      EXPECT_LE(peer_links, 1) << "multiple peer links in path";
    }
  }
}

TEST_F(RoutingFixture, AltRoutesShareClassAndLength) {
  const AsIndex dest = 2;
  const auto& column = bgp_->column(dest);
  for (AsIndex from = 0; from < topo_->num_ases(); ++from) {
    if (column.alt[from] == 0) continue;
    EXPECT_NE(column.alt[from], column.next[from]);
  }
}

TEST_F(RoutingFixture, ColumnsAreLazilyCachedAndStable) {
  const std::size_t before = bgp_->computed_columns();
  const auto& col1 = bgp_->column(9);
  const auto& col2 = bgp_->column(9);
  EXPECT_EQ(&col1, &col2);
  EXPECT_GE(bgp_->computed_columns(), before);
}

TEST_F(RoutingFixture, SomePathsAreAsymmetric) {
  // The directional tiebreak must produce asymmetric AS routes; this is the
  // structural basis of the paper's §6.2 study.
  std::size_t asymmetric = 0, total = 0;
  for (AsIndex a = 0; a < topo_->num_ases(); a += 5) {
    for (AsIndex b = a + 3; b < topo_->num_ases(); b += 17) {
      auto forward = bgp_->as_path(a, b);
      auto backward = bgp_->as_path(b, a);
      std::reverse(backward.begin(), backward.end());
      ++total;
      if (forward != backward) ++asymmetric;
    }
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(asymmetric, total / 10);  // Plenty of asymmetry...
  EXPECT_LT(asymmetric, total);       // ...but not universal.
}

// --------------------------------------------------------------------------
// Intra-AS routing
// --------------------------------------------------------------------------

TEST_F(RoutingFixture, IntraNextHopsReachEveryPair) {
  for (const auto& node : topo_->ases()) {
    for (auto from : node.routers) {
      for (auto to : node.routers) {
        if (from == to) {
          EXPECT_EQ(intra_->distance(from, to), 0);
          continue;
        }
        const auto hops = intra_->next_hops(from, to);
        ASSERT_TRUE(hops.reachable())
            << "AS " << node.asn << ": " << from << " -> " << to;
        // The next hop must make progress.
        const auto next = topo_->far_end(from, hops.primary);
        EXPECT_EQ(intra_->distance(next, to) + 1, intra_->distance(from, to));
      }
    }
    if (node.asn > 40) break;  // Sampling is enough.
  }
}

TEST_F(RoutingFixture, IntraDistanceSymmetric) {
  const auto& node = topo_->as_at(0);
  for (auto a : node.routers) {
    for (auto b : node.routers) {
      EXPECT_EQ(intra_->distance(a, b), intra_->distance(b, a));
    }
  }
}

TEST_F(RoutingFixture, IntraEcmpAlternateAlsoShortest) {
  std::size_t checked = 0;
  for (const auto& node : topo_->ases()) {
    for (auto from : node.routers) {
      for (auto to : node.routers) {
        if (from == to) continue;
        const auto hops = intra_->next_hops(from, to);
        if (!hops.has_ecmp()) continue;
        const auto via_primary = topo_->far_end(from, hops.primary);
        const auto via_alt = topo_->far_end(from, hops.alternate);
        EXPECT_EQ(intra_->distance(via_primary, to),
                  intra_->distance(via_alt, to));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u) << "topology has no ECMP at all";
}

TEST_F(RoutingFixture, CrossAsIntraQueriesRejected) {
  const auto& a = topo_->as_at(0);
  const auto& b = topo_->as_at(1);
  EXPECT_FALSE(intra_->next_hops(a.routers[0], b.routers[0]).reachable());
}

// --------------------------------------------------------------------------
// Forwarding plane
// --------------------------------------------------------------------------

PacketContext context_for(const Topology& topo, topology::HostId from,
                          net::Ipv4Addr dst, bool options = false) {
  PacketContext ctx;
  ctx.src = topo.host(from).addr;
  ctx.dst = dst;
  ctx.flow_key = 42;
  ctx.has_options = options;
  ctx.packet_salt = 7;
  return ctx;
}

TEST_F(RoutingFixture, WalkReachesRemoteHost) {
  const auto src_host = topo_->vantage_points()[0];
  const auto dst_host = topo_->probe_hosts()[0];
  const auto ctx =
      context_for(*topo_, src_host, topo_->host(dst_host).addr);
  auto current = plane_->origin_router(src_host);
  for (int hop = 0; hop < 80; ++hop) {
    const auto decision = plane_->decide(current, ctx);
    ASSERT_NE(decision.kind, Decision::Kind::kDrop);
    if (decision.kind == Decision::Kind::kDeliverHost) {
      EXPECT_EQ(decision.host, dst_host);
      return;
    }
    ASSERT_EQ(decision.kind, Decision::Kind::kForwardLink);
    current = decision.next_router;
  }
  FAIL() << "forwarding loop";
}

TEST_F(RoutingFixture, WalkReachesRouterInterface) {
  // Probe a /30 interface address of some interdomain link.
  const auto& link = [&]() -> const topology::Link& {
    for (const auto& l : topo_->links()) {
      if (l.interdomain) return l;
    }
    throw std::logic_error("no interdomain link");
  }();
  const auto src_host = topo_->vantage_points()[0];
  const auto ctx = context_for(*topo_, src_host, link.addr_a);
  auto current = plane_->origin_router(src_host);
  for (int hop = 0; hop < 80; ++hop) {
    const auto decision = plane_->decide(current, ctx);
    ASSERT_NE(decision.kind, Decision::Kind::kDrop) << "hop " << hop;
    if (decision.kind == Decision::Kind::kDeliverRouter) {
      EXPECT_EQ(current, link.router_a);
      return;
    }
    ASSERT_EQ(decision.kind, Decision::Kind::kForwardLink);
    current = decision.next_router;
  }
  FAIL() << "forwarding loop";
}

TEST_F(RoutingFixture, PrivateAddressesUnroutable) {
  const auto src_host = topo_->vantage_points()[0];
  const auto ctx =
      context_for(*topo_, src_host, net::Ipv4Addr(10, 1, 2, 3));
  const auto decision =
      plane_->decide(plane_->origin_router(src_host), ctx);
  EXPECT_EQ(decision.kind, Decision::Kind::kDrop);
}

TEST_F(RoutingFixture, AsLevelRouteMatchesWalk) {
  const auto src_host = topo_->vantage_points()[1];
  const auto dst_host = topo_->probe_hosts()[1];
  const auto src_as = topo_->index_of(topo_->host(src_host).asn);
  const auto dst_as = topo_->index_of(topo_->host(dst_host).asn);
  const auto route = plane_->as_level_route(
      src_as, dst_as, topo_->host(src_host).addr, topo_->host(dst_host).addr);
  ASSERT_FALSE(route.empty());
  EXPECT_EQ(route.front(), topo_->host(src_host).asn);
  EXPECT_EQ(route.back(), topo_->host(dst_host).asn);

  // Walk the forwarding plane and collect the AS sequence.
  const auto ctx =
      context_for(*topo_, src_host, topo_->host(dst_host).addr);
  auto current = plane_->origin_router(src_host);
  std::vector<Asn> walked = {topo_->router(current).asn};
  for (int hop = 0; hop < 80; ++hop) {
    const auto decision = plane_->decide(current, ctx);
    if (decision.kind != Decision::Kind::kForwardLink) break;
    current = decision.next_router;
    if (topo_->router(current).asn != walked.back()) {
      walked.push_back(topo_->router(current).asn);
    }
  }
  EXPECT_EQ(route, walked);
}

TEST_F(RoutingFixture, SourceSensitivityOnlyAffectsFlaggedAses) {
  // For a non-source-sensitive AS the next hop must not depend on src.
  const AsIndex dest = 4;
  for (AsIndex from = 0; from < topo_->num_ases(); ++from) {
    if (from == dest) continue;
    const auto& node = topo_->as_at(from);
    if (node.source_sensitive) continue;
    // decide() is deterministic given ctx; vary src and verify stability via
    // as_level_route, which applies the same policy.
    const auto r1 = plane_->as_level_route(from, dest, net::Ipv4Addr(1, 0, 0, 1),
                                           net::Ipv4Addr(2, 0, 0, 2));
    const auto r2 = plane_->as_level_route(from, dest, net::Ipv4Addr(9, 9, 9, 9),
                                           net::Ipv4Addr(2, 0, 0, 2));
    if (r1.empty() || r2.empty()) continue;
    EXPECT_EQ(r1.front(), r2.front());
    if (topo_->as_node(r1[std::min<std::size_t>(1, r1.size() - 1)])
            .source_sensitive) {
      continue;  // Downstream AS may deviate; only check the first hop.
    }
    ASSERT_GE(r1.size(), 2u);
    ASSERT_GE(r2.size(), 2u);
    EXPECT_EQ(r1[1], r2[1]) << "AS " << node.asn;
  }
}

}  // namespace
}  // namespace revtr::routing
