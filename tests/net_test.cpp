#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/ip_options.h"
#include "net/ipv4.h"
#include "net/packet.h"
#include "net/prefix_trie.h"
#include "net/wire.h"

namespace revtr::net {
namespace {

// --------------------------------------------------------------------------
// Ipv4Addr / Ipv4Prefix
// --------------------------------------------------------------------------

TEST(Ipv4Addr, RoundTripString) {
  const Ipv4Addr addr(192, 168, 1, 42);
  EXPECT_EQ(addr.to_string(), "192.168.1.42");
  const auto parsed = Ipv4Addr::parse("192.168.1.42");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, addr);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
}

TEST(Ipv4Addr, PrivateClassification) {
  EXPECT_TRUE(Ipv4Addr(10, 1, 2, 3).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Addr(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(192, 168, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Addr(192, 169, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Addr(8, 8, 8, 8).is_private());
  EXPECT_TRUE(Ipv4Addr(127, 0, 0, 1).is_loopback());
}

TEST(Ipv4Prefix, NormalizesHostBits) {
  const Ipv4Prefix prefix(Ipv4Addr(10, 1, 2, 200), 24);
  EXPECT_EQ(prefix.network(), Ipv4Addr(10, 1, 2, 0));
  EXPECT_EQ(prefix.to_string(), "10.1.2.0/24");
}

TEST(Ipv4Prefix, Containment) {
  const Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 255, 1, 1)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 0, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Prefix(Ipv4Addr(10, 2, 0, 0), 16)));
  EXPECT_FALSE(p.contains(Ipv4Prefix(Ipv4Addr(0, 0, 0, 0), 4)));
}

TEST(Ipv4Prefix, SizeAndIndexing) {
  const Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 30);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(1), Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(p.first_host(), Ipv4Addr(10, 0, 0, 1));
  const Ipv4Prefix p31(Ipv4Addr(10, 0, 0, 0), 31);
  EXPECT_EQ(p31.first_host(), Ipv4Addr(10, 0, 0, 0));
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  const auto p = Ipv4Prefix::parse("203.0.113.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 24);
  EXPECT_FALSE(Ipv4Prefix::parse("203.0.113.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("203.0.113.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("banana/8"));
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  const Ipv4Prefix all(Ipv4Addr(1, 2, 3, 4), 0);
  EXPECT_TRUE(all.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Addr(0, 0, 0, 0)));
}

// --------------------------------------------------------------------------
// PrefixTrie
// --------------------------------------------------------------------------

TEST(PrefixTrie, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 3);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 9, 9)), 2);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 9, 9, 9)), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(11, 0, 0, 1)), std::nullopt);
  EXPECT_EQ(trie.size(), 3u);
}

TEST(PrefixTrie, LookupPrefixReturnsMatchedLength) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  const auto hit = trie.lookup_prefix(Ipv4Addr(10, 20, 30, 40));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first.length(), 8);
  EXPECT_EQ(hit->second, 1);
}

TEST(PrefixTrie, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 9);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), 9);
}

TEST(PrefixTrie, ExactFind) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  EXPECT_EQ(trie.find(*Ipv4Prefix::parse("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.find(*Ipv4Prefix::parse("10.0.0.0/8")), std::nullopt);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(1, 2, 3, 4), 32), 7);
  EXPECT_EQ(trie.lookup(Ipv4Addr(1, 2, 3, 4)), 7);
  EXPECT_EQ(trie.lookup(Ipv4Addr(1, 2, 3, 5)), std::nullopt);
}

TEST(PrefixTrie, DefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(0, 0, 0, 0), 0), 99);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(8, 8, 8, 8)), 99);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), 1);
}

TEST(PrefixTrie, EmptyTrieLookups) {
  const PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), std::nullopt);
  EXPECT_EQ(trie.lookup_prefix(Ipv4Addr(10, 0, 0, 1)), std::nullopt);
  EXPECT_EQ(trie.find(Ipv4Prefix(Ipv4Addr(0, 0, 0, 0), 0)), std::nullopt);
  EXPECT_EQ(trie.find(Ipv4Prefix(Ipv4Addr(10, 0, 0, 1), 32)), std::nullopt);
}

// The /0 and /32 boundaries together: a default route, a host route, and a
// covering /8 must resolve by specificity, and lookup_prefix must report the
// matched length at both extremes.
TEST(PrefixTrie, BoundaryPrefixesCoexist) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(0, 0, 0, 0), 0), 0);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 1, 2, 3), 32), 32);
  EXPECT_EQ(trie.size(), 3u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 32);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 4)), 8);
  EXPECT_EQ(trie.lookup(Ipv4Addr(192, 0, 2, 1)), 0);

  const auto host = trie.lookup_prefix(Ipv4Addr(10, 1, 2, 3));
  ASSERT_TRUE(host);
  EXPECT_EQ(host->first.length(), 32);
  const auto fallback = trie.lookup_prefix(Ipv4Addr(192, 0, 2, 1));
  ASSERT_TRUE(fallback);
  EXPECT_EQ(fallback->first.length(), 0);

  // Exact find distinguishes the nested prefixes; it never falls back.
  EXPECT_EQ(trie.find(Ipv4Prefix(Ipv4Addr(10, 1, 2, 3), 32)), 32);
  EXPECT_EQ(trie.find(Ipv4Prefix(Ipv4Addr(0, 0, 0, 0), 0)), 0);
  EXPECT_EQ(trie.find(*Ipv4Prefix::parse("10.1.0.0/16")), std::nullopt);
}

TEST(PrefixTrie, OverlappingInsertsResolveBySpecificity) {
  PrefixTrie<int> trie;
  // Insert from most to least specific so insertion order cannot matter.
  trie.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 24);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  // A sibling /24 under the same /16 must not shadow its neighbor.
  trie.insert(*Ipv4Prefix::parse("10.1.3.0/24"), 243);
  EXPECT_EQ(trie.size(), 4u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 1)), 24);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 3, 1)), 243);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 4, 1)), 16);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 2, 0, 1)), 8);
  // Overwriting the middle prefix leaves the nested ones untouched.
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 160);
  EXPECT_EQ(trie.size(), 4u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 4, 1)), 160);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 1)), 24);
}

// --------------------------------------------------------------------------
// RecordRouteOption
// --------------------------------------------------------------------------

TEST(RecordRoute, StampsUpToNine) {
  RecordRouteOption rr;
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(rr.stamp(Ipv4Addr(1, 1, 1, static_cast<std::uint8_t>(i))));
  }
  EXPECT_TRUE(rr.full());
  EXPECT_FALSE(rr.stamp(Ipv4Addr(9, 9, 9, 9)));
  EXPECT_EQ(rr.size(), 9u);
  EXPECT_EQ(rr.remaining(), 0u);
}

TEST(RecordRoute, WireRoundTrip) {
  RecordRouteOption rr;
  rr.stamp(Ipv4Addr(10, 0, 0, 1));
  rr.stamp(Ipv4Addr(10, 0, 0, 2));
  std::vector<std::uint8_t> bytes;
  rr.encode(bytes);
  ASSERT_EQ(bytes.size(), RecordRouteOption::kLength);
  EXPECT_EQ(bytes[0], 7);        // Type.
  EXPECT_EQ(bytes[1], 39);       // Length.
  EXPECT_EQ(bytes[2], 4 + 8);    // Pointer past two slots.
  const auto decoded = RecordRouteOption::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, rr);
}

TEST(RecordRoute, DecodeRejectsMalformed) {
  RecordRouteOption rr;
  rr.stamp(Ipv4Addr(10, 0, 0, 1));
  std::vector<std::uint8_t> bytes;
  rr.encode(bytes);

  auto truncated = bytes;
  truncated.resize(10);
  EXPECT_FALSE(RecordRouteOption::decode(truncated));

  auto bad_type = bytes;
  bad_type[0] = 68;
  EXPECT_FALSE(RecordRouteOption::decode(bad_type));

  auto bad_pointer = bytes;
  bad_pointer[2] = 5;  // Misaligned.
  EXPECT_FALSE(RecordRouteOption::decode(bad_pointer));

  auto bad_length = bytes;
  bad_length[1] = 11;
  EXPECT_FALSE(RecordRouteOption::decode(bad_length));
}

TEST(RecordRoute, FullOptionDecodes) {
  RecordRouteOption rr;
  for (int i = 1; i <= 9; ++i) {
    rr.stamp(Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i)));
  }
  std::vector<std::uint8_t> bytes;
  rr.encode(bytes);
  EXPECT_EQ(bytes[2], 40);  // Pointer past the last slot.
  const auto decoded = RecordRouteOption::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->full());
  EXPECT_EQ(decoded->slot(8), Ipv4Addr(10, 0, 0, 9));
}

// --------------------------------------------------------------------------
// TimestampOption
// --------------------------------------------------------------------------

TEST(Timestamp, PrespecOrderingEnforced) {
  const Ipv4Addr a(1, 1, 1, 1), b(2, 2, 2, 2);
  const Ipv4Addr prespec[] = {a, b};
  auto ts = TimestampOption::prespecified(prespec);
  ASSERT_EQ(ts.size(), 2u);
  // b cannot stamp before a.
  EXPECT_FALSE(ts.try_stamp(b, 100));
  EXPECT_TRUE(ts.try_stamp(a, 50));
  EXPECT_TRUE(ts.try_stamp(b, 100));
  EXPECT_TRUE(ts.stamped(0));
  EXPECT_TRUE(ts.stamped(1));
  EXPECT_FALSE(ts.next_pending());
}

TEST(Timestamp, CapsAtFourEntries) {
  std::vector<Ipv4Addr> many(6, Ipv4Addr(1, 2, 3, 4));
  const auto ts = TimestampOption::prespecified(many);
  EXPECT_EQ(ts.size(), TimestampOption::kMaxEntries);
}

TEST(Timestamp, WireRoundTrip) {
  const Ipv4Addr prespec[] = {Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2)};
  auto ts = TimestampOption::prespecified(prespec);
  ts.try_stamp(Ipv4Addr(1, 1, 1, 1), 12345);
  std::vector<std::uint8_t> bytes;
  ts.encode(bytes);
  EXPECT_EQ(bytes[0], 68);
  EXPECT_EQ(bytes[1], 4 + 16);
  EXPECT_EQ(bytes[3] & 0x0f, 3);  // Prespec flag.
  const auto decoded = TimestampOption::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->stamped(0));
  EXPECT_FALSE(decoded->stamped(1));
  EXPECT_EQ(decoded->entries()[0].timestamp, 12345u);
}

// Regression for the tainted-length contract the prober relies on: ts_ping
// reserves its stamped vector from the reply's entry count, so a decoded
// option may never claim more than kMaxEntries however large a length byte
// the wire carries (revtr_lint's taint pass flags the reserve otherwise).
TEST(Timestamp, DecodeRejectsOversizedEntryCount) {
  std::vector<Ipv4Addr> full(TimestampOption::kMaxEntries,
                             Ipv4Addr(1, 2, 3, 4));
  const auto ts = TimestampOption::prespecified(full);
  std::vector<std::uint8_t> bytes;
  ts.encode(bytes);
  // Claim five 8-byte entries (length 4 + 40) with enough buffer behind the
  // claim that only the entry-count cap can reject it.
  bytes[1] = 4 + 8 * (TimestampOption::kMaxEntries + 1);
  bytes.resize(bytes[1], 0);
  EXPECT_FALSE(TimestampOption::decode(bytes));
}

TEST(Timestamp, DecodeRejectsWrongFlag) {
  const Ipv4Addr prespec[] = {Ipv4Addr(1, 1, 1, 1)};
  auto ts = TimestampOption::prespecified(prespec);
  std::vector<std::uint8_t> bytes;
  ts.encode(bytes);
  bytes[3] = (bytes[3] & 0xf0) | 0x01;  // "timestamps only" flag.
  EXPECT_FALSE(TimestampOption::decode(bytes));
}

// --------------------------------------------------------------------------
// Checksum
// --------------------------------------------------------------------------

TEST(Checksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, BufferWithChecksumSumsToZero) {
  std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                    0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t sum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(sum >> 8));
  data.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_TRUE(checksum_ok(data));
}

TEST(Checksum, OddLengthPadded) {
  const std::uint8_t data[] = {0xff};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xff00));
}

// --------------------------------------------------------------------------
// Packet helpers + wire codec
// --------------------------------------------------------------------------

TEST(Packet, EchoReplyCopiesOptionsAndTargetsSource) {
  Packet request = make_echo_request(Ipv4Addr(1, 1, 1, 1),
                                     Ipv4Addr(2, 2, 2, 2), 7, 9);
  request.rr = RecordRouteOption{};
  request.rr->stamp(Ipv4Addr(3, 3, 3, 3));
  const Packet reply = make_echo_reply(request, Ipv4Addr(2, 2, 2, 2));
  EXPECT_EQ(reply.type, IcmpType::kEchoReply);
  EXPECT_EQ(reply.dst, request.src);
  EXPECT_EQ(reply.src, Ipv4Addr(2, 2, 2, 2));
  ASSERT_TRUE(reply.rr);
  EXPECT_EQ(reply.rr->size(), 1u);
  EXPECT_EQ(reply.icmp_id, 7);
}

TEST(Packet, TimeExceededQuotesDestination) {
  const Packet request = make_echo_request(Ipv4Addr(1, 1, 1, 1),
                                           Ipv4Addr(2, 2, 2, 2), 7, 9, 3);
  const Packet error = make_time_exceeded(request, Ipv4Addr(5, 5, 5, 5));
  EXPECT_EQ(error.type, IcmpType::kTimeExceeded);
  EXPECT_EQ(error.src, Ipv4Addr(5, 5, 5, 5));
  EXPECT_EQ(error.dst, request.src);
  EXPECT_EQ(error.quoted_dst, request.dst);
  EXPECT_FALSE(error.rr);
}

TEST(Packet, FlowKeyDirectionSensitive) {
  const Packet forward = make_echo_request(Ipv4Addr(1, 1, 1, 1),
                                           Ipv4Addr(2, 2, 2, 2), 7, 9);
  const Packet backward = make_echo_request(Ipv4Addr(2, 2, 2, 2),
                                            Ipv4Addr(1, 1, 1, 1), 7, 9);
  EXPECT_NE(forward.flow_key(), backward.flow_key());
}

TEST(Wire, EchoRoundTrip) {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1, 17);
  const auto bytes = encode_packet(packet);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->src, packet.src);
  EXPECT_EQ(decoded->dst, packet.dst);
  EXPECT_EQ(decoded->ttl, 17);
  EXPECT_EQ(decoded->icmp_id, 42);
  EXPECT_EQ(decoded->type, IcmpType::kEchoRequest);
  EXPECT_FALSE(decoded->rr);
}

TEST(Wire, RecordRouteRoundTrip) {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  packet.rr = RecordRouteOption{};
  packet.rr->stamp(Ipv4Addr(9, 9, 9, 9));
  const auto bytes = encode_packet(packet);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_TRUE(decoded->rr);
  EXPECT_EQ(decoded->rr->size(), 1u);
  EXPECT_EQ(decoded->rr->slot(0), Ipv4Addr(9, 9, 9, 9));
  EXPECT_FALSE(decoded->ts);
}

TEST(Wire, TimestampRoundTrip) {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  const Ipv4Addr prespec[] = {Ipv4Addr(7, 7, 7, 7)};
  packet.ts = TimestampOption::prespecified(prespec);
  const auto bytes = encode_packet(packet);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_TRUE(decoded->ts);
  EXPECT_EQ(decoded->ts->size(), 1u);
  EXPECT_FALSE(decoded->rr);
}

TEST(Wire, CombinedOptionsExceedHeaderBudget) {
  // RR (39 bytes) + TS cannot share the 40-byte option area; the codec
  // refuses rather than emitting an invalid IHL.
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  packet.rr = RecordRouteOption{};
  const Ipv4Addr prespec[] = {Ipv4Addr(7, 7, 7, 7)};
  packet.ts = TimestampOption::prespecified(prespec);
  EXPECT_THROW(encode_packet(packet), std::length_error);
}

TEST(Wire, TimeExceededRoundTrip) {
  Packet request = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                     Ipv4Addr(5, 6, 7, 8), 42, 3);
  const Packet error = make_time_exceeded(request, Ipv4Addr(9, 8, 7, 6));
  const auto bytes = encode_packet(error);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, IcmpType::kTimeExceeded);
  EXPECT_EQ(decoded->src, Ipv4Addr(9, 8, 7, 6));
  EXPECT_EQ(decoded->quoted_dst, Ipv4Addr(5, 6, 7, 8));
  EXPECT_EQ(decoded->icmp_id, 42);
}

TEST(Wire, CorruptionDetected) {
  const Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                          Ipv4Addr(5, 6, 7, 8), 42, 1);
  auto bytes = encode_packet(packet);
  bytes[14] ^= 0xff;  // Flip a source-address byte.
  EXPECT_FALSE(decode_packet(bytes));
}

TEST(Wire, TruncationDetected) {
  const Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                          Ipv4Addr(5, 6, 7, 8), 42, 1);
  auto bytes = encode_packet(packet);
  bytes.resize(20);
  EXPECT_FALSE(decode_packet(bytes));
}

// --------------------------------------------------------------------------
// Malformed-input decode paths: every rejection carries the DecodeError of
// the *first* violated invariant, in the codec's validation order.
// --------------------------------------------------------------------------

namespace malformed {

// Recompute header/ICMP checksums (mirrors what a sender in control of the
// buffer can always do), so the case under test is the invariant that
// actually fires rather than a checksum mismatch.
void fix_checksums(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 20) return;
  const std::size_t header_len = std::size_t{bytes[0] & 0x0fu} * 4;
  if (header_len < 20 || header_len > bytes.size()) return;
  bytes[10] = 0;
  bytes[11] = 0;
  const std::uint16_t header_sum =
      internet_checksum({bytes.data(), header_len});
  bytes[10] = util::truncate_cast<std::uint8_t>(header_sum >> 8);
  bytes[11] = util::truncate_cast<std::uint8_t>(header_sum);
  if (bytes.size() < header_len + 8) return;
  bytes[header_len + 2] = 0;
  bytes[header_len + 3] = 0;
  const std::uint16_t icmp_sum = internet_checksum(
      {bytes.data() + header_len, bytes.size() - header_len});
  bytes[header_len + 2] = util::truncate_cast<std::uint8_t>(icmp_sum >> 8);
  bytes[header_len + 3] = util::truncate_cast<std::uint8_t>(icmp_sum);
}

std::vector<std::uint8_t> echo_bytes() {
  return encode_packet(make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                         Ipv4Addr(5, 6, 7, 8), 42, 1));
}

std::vector<std::uint8_t> rr_bytes() {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  packet.rr = RecordRouteOption{};
  packet.rr->stamp(Ipv4Addr(9, 9, 9, 9));
  return encode_packet(packet);
}

std::vector<std::uint8_t> ts_bytes() {
  Packet packet = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                    Ipv4Addr(5, 6, 7, 8), 42, 1);
  const Ipv4Addr prespec[] = {Ipv4Addr(7, 7, 7, 7), Ipv4Addr(8, 8, 8, 8)};
  packet.ts = TimestampOption::prespecified(prespec);
  return encode_packet(packet);
}

std::vector<std::uint8_t> time_exceeded_bytes() {
  const Packet request = make_echo_request(Ipv4Addr(1, 2, 3, 4),
                                           Ipv4Addr(5, 6, 7, 8), 42, 3);
  return encode_packet(make_time_exceeded(request, Ipv4Addr(9, 8, 7, 6)));
}

struct Case {
  const char* name;
  std::vector<std::uint8_t> (*base)();
  void (*corrupt)(std::vector<std::uint8_t>&);
  bool refix_checksums;
  DecodeError expected;
};

const Case kCases[] = {
    {"version 6", echo_bytes,
     [](std::vector<std::uint8_t>& b) { b[0] = 0x65; }, true,
     DecodeError::kBadVersion},
    {"IHL < 5", echo_bytes,
     [](std::vector<std::uint8_t>& b) { b[0] = 0x44; }, true,
     DecodeError::kBadHeaderLength},
    {"IHL beyond buffer", echo_bytes,
     [](std::vector<std::uint8_t>& b) { b[0] = 0x4f; }, false,
     DecodeError::kBadHeaderLength},
    {"total length < header + ICMP", echo_bytes,
     [](std::vector<std::uint8_t>& b) {
       b[2] = 0;
       b[3] = 10;
     },
     true, DecodeError::kBadTotalLength},
    {"total length beyond buffer", echo_bytes,
     [](std::vector<std::uint8_t>& b) {
       b[2] = 0;
       b[3] = util::checked_cast<std::uint8_t>(b.size() + 4);
     },
     true, DecodeError::kBadTotalLength},
    {"buffer truncated below total length", echo_bytes,
     [](std::vector<std::uint8_t>& b) { b.resize(24); }, false,
     DecodeError::kBadTotalLength},
    {"header checksum flipped", echo_bytes,
     [](std::vector<std::uint8_t>& b) { b[14] ^= 0xff; }, false,
     DecodeError::kHeaderChecksum},
    {"protocol not ICMP", echo_bytes,
     [](std::vector<std::uint8_t>& b) { b[9] = 6; }, true,
     DecodeError::kNotIcmp},
    {"option length 1", rr_bytes,
     [](std::vector<std::uint8_t>& b) { b[21] = 1; }, true,
     DecodeError::kBadOptionLength},
    {"option length overruns IHL header", rr_bytes,
     [](std::vector<std::uint8_t>& b) { b[21] = 50; }, true,
     DecodeError::kBadOptionLength},
    {"option area ends mid-option", rr_bytes,
     // Option kind with no room for its length byte right at the end of
     // the option area (39 NOP-covered bytes, kind at the last byte).
     [](std::vector<std::uint8_t>& b) {
       for (std::size_t i = 20; i < 59; ++i) b[i] = 1;  // NOP flood.
       b[59] = RecordRouteOption::kType;
     },
     true, DecodeError::kBadOptionLength},
    {"RR pointer below first slot", rr_bytes,
     [](std::vector<std::uint8_t>& b) { b[22] = 3; }, true,
     DecodeError::kBadRecordRoute},
    {"RR pointer misaligned", rr_bytes,
     [](std::vector<std::uint8_t>& b) { b[22] = 6; }, true,
     DecodeError::kBadRecordRoute},
    {"RR pointer past the option", rr_bytes,
     [](std::vector<std::uint8_t>& b) { b[22] = 44; }, true,
     DecodeError::kBadRecordRoute},
    {"RR length lies", rr_bytes,
     [](std::vector<std::uint8_t>& b) { b[21] = 35; }, true,
     DecodeError::kBadRecordRoute},
    {"TS flag not prespecified", ts_bytes,
     [](std::vector<std::uint8_t>& b) { b[23] = (b[23] & 0xf0u) | 1u; }, true,
     DecodeError::kBadTimestamp},
    {"TS pointer misaligned", ts_bytes,
     [](std::vector<std::uint8_t>& b) { b[22] = 6; }, true,
     DecodeError::kBadTimestamp},
    {"TS length not 4 mod 8", ts_bytes,
     [](std::vector<std::uint8_t>& b) { b[21] = 13; }, true,
     DecodeError::kBadTimestamp},
    {"ICMP checksum flipped", echo_bytes,
     [](std::vector<std::uint8_t>& b) { b[24] ^= 0xff; }, false,
     DecodeError::kIcmpChecksum},
    {"ICMP type unknown", echo_bytes,
     [](std::vector<std::uint8_t>& b) {
       b[20] = 42;  // ICMP type byte (no options on this packet).
     },
     true, DecodeError::kBadIcmpType},
    {"ICMP error quote truncated", time_exceeded_bytes,
     [](std::vector<std::uint8_t>& b) {
       // Keep header + 8 ICMP bytes + 20 quote bytes: one u16 short of the
       // quoted id/seq the prober needs for matching.
       b.resize(48);
       b[2] = 0;
       b[3] = 48;
     },
     true, DecodeError::kTruncatedQuote},
};

TEST(WireMalformed, TableDrivenRejections) {
  for (const auto& test_case : kCases) {
    auto bytes = test_case.base();
    test_case.corrupt(bytes);
    if (test_case.refix_checksums) fix_checksums(bytes);
    DecodeError error = DecodeError::kNone;
    const auto decoded = decode_packet(bytes, &error);
    EXPECT_FALSE(decoded.has_value()) << test_case.name;
    EXPECT_EQ(error, test_case.expected)
        << test_case.name << ": got " << to_string(error);
  }
}

TEST(WireMalformed, TsOverflowFlagSurvivesRoundTrip) {
  // A router that cannot stamp increments the overflow counter (RFC 791);
  // the codec must carry it through decode -> encode unchanged.
  auto bytes = ts_bytes();
  bytes[23] = util::checked_cast<std::uint8_t>(
      (0xau << 4) | (bytes[23] & 0x0fu));
  fix_checksums(bytes);
  DecodeError error = DecodeError::kNone;
  const auto decoded = decode_packet(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << to_string(error);
  ASSERT_TRUE(decoded->ts);
  const auto reencoded = encode_packet(*decoded);
  EXPECT_EQ(reencoded[23], bytes[23]);
}

TEST(WireMalformed, UnstampedTimestampGarbageIsNormalized) {
  // Wire garbage in a pending (unstamped) entry's timestamp field must not
  // survive decode: the entry is semantically empty, and keeping the bytes
  // would make decode(encode(p)) diverge from p.
  auto bytes = ts_bytes();
  // The first entry's timestamp word sits 4 bytes after the 4-byte TS
  // option header + 4-byte address (option starts at 20).
  bytes[28] = 0xde;
  bytes[29] = 0xad;
  fix_checksums(bytes);
  const auto decoded = decode_packet(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->ts);
  EXPECT_FALSE(decoded->ts->entries()[0].stamped);
  EXPECT_EQ(decoded->ts->entries()[0].timestamp, 0u);
}

TEST(WireMalformed, SuccessReportsNoError) {
  DecodeError error = DecodeError::kIcmpChecksum;  // Stale value.
  EXPECT_TRUE(decode_packet(echo_bytes(), &error).has_value());
  EXPECT_EQ(error, DecodeError::kNone);
}

}  // namespace malformed

}  // namespace
}  // namespace revtr::net
