#include <gtest/gtest.h>
#include <memory>

#include "asmap/asmap.h"
#include "asmap/bdrmap.h"
#include "topology/builder.h"

namespace revtr::asmap {
namespace {

using net::Ipv4Addr;
using topology::Asn;
using topology::Topology;
using topology::TopologyBuilder;
using topology::TopologyConfig;

TopologyConfig small_config() {
  TopologyConfig config;
  config.seed = 51;
  config.num_ases = 100;
  config.num_vps = 6;
  config.num_vps_2016 = 3;
  config.num_probe_hosts = 20;
  return config;
}

class AsmapFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = std::make_unique<Topology>(TopologyBuilder::build(small_config()));
    ip2as_ = std::make_unique<IpToAs>(*topo_);
    rel_ = std::make_unique<AsRelationships>(*topo_);
  }
  static void TearDownTestSuite() {
    rel_.reset();
    ip2as_.reset();
    topo_.reset();
  }
  static std::unique_ptr<Topology> topo_;
  static std::unique_ptr<IpToAs> ip2as_;
  static std::unique_ptr<AsRelationships> rel_;
};

std::unique_ptr<Topology> AsmapFixture::topo_;
std::unique_ptr<IpToAs> AsmapFixture::ip2as_;
std::unique_ptr<AsRelationships> AsmapFixture::rel_;

TEST_F(AsmapFixture, HostsMapToTheirAs) {
  for (const auto& host : topo_->hosts()) {
    const auto asn = ip2as_->lookup(host.addr);
    ASSERT_TRUE(asn);
    EXPECT_EQ(*asn, host.asn);
    if (host.id > 100) break;
  }
}

TEST_F(AsmapFixture, PrivateUnmappable) {
  EXPECT_FALSE(ip2as_->lookup(Ipv4Addr(10, 1, 2, 3)));
  EXPECT_FALSE(ip2as_->lookup(Ipv4Addr(192, 168, 0, 1)));
  EXPECT_FALSE(ip2as_->lookup(Ipv4Addr(127, 0, 0, 1)));
}

TEST_F(AsmapFixture, InterdomainLinkAddressesMayMapToNeighbor) {
  // The /30 of an interdomain link is allocated from one side's prefix:
  // at least one link in a sizable topology maps the far interface to the
  // "wrong" AS (the Fig 4 artifact our ingress heuristics must handle).
  std::size_t misattributed = 0, total = 0;
  for (const auto& link : topo_->links()) {
    if (!link.interdomain) continue;
    ++total;
    const auto as_a = ip2as_->lookup(link.addr_a);
    ASSERT_TRUE(as_a);
    if (*as_a != topo_->router(link.router_a).asn) ++misattributed;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(misattributed, 0u);
  EXPECT_LT(misattributed, total);
}

TEST_F(AsmapFixture, AsPathCollapsesAndSkips) {
  const auto& host = topo_->host(0);
  const std::vector<Ipv4Addr> hops = {
      host.addr, host.addr, Ipv4Addr(10, 0, 0, 1), host.addr};
  const auto path = ip2as_->as_path(hops);
  ASSERT_EQ(path.size(), 1u);  // Dups collapse; private skipped.
  EXPECT_EQ(path[0], host.asn);
  EXPECT_TRUE(ip2as_->has_unmappable_hop(hops));
  const std::vector<Ipv4Addr> clean = {host.addr};
  EXPECT_FALSE(ip2as_->has_unmappable_hop(clean));
}

TEST_F(AsmapFixture, RelationsMatchTopology) {
  for (const auto& node : topo_->ases()) {
    for (const auto customer : node.customers) {
      EXPECT_EQ(rel_->relation(node.asn, customer),
                AsRelationships::Rel::kProvider);
      EXPECT_EQ(rel_->relation(customer, node.asn),
                AsRelationships::Rel::kCustomer);
    }
    for (const auto peer : node.peers) {
      EXPECT_EQ(rel_->relation(node.asn, peer), AsRelationships::Rel::kPeer);
    }
  }
  EXPECT_EQ(rel_->relation(1, 1), AsRelationships::Rel::kNone);
}

TEST_F(AsmapFixture, CustomerConeProperties) {
  // A stub's cone is exactly itself.
  for (const auto& node : topo_->ases()) {
    if (node.tier == topology::AsTier::kStub) {
      EXPECT_EQ(rel_->customer_cone_size(node.asn), 1u);
    }
  }
  // A provider's cone strictly contains each customer's cone size.
  for (const auto& node : topo_->ases()) {
    for (const auto customer : node.customers) {
      EXPECT_GT(rel_->customer_cone_size(node.asn),
                rel_->customer_cone_size(customer) - 1);
    }
  }
  // Tier-1s have the biggest cones around.
  std::size_t max_cone = 0, tier1_cone = 0;
  for (const auto& node : topo_->ases()) {
    max_cone = std::max(max_cone, rel_->customer_cone_size(node.asn));
    if (node.tier == topology::AsTier::kTier1) {
      tier1_cone = std::max(tier1_cone, rel_->customer_cone_size(node.asn));
    }
  }
  EXPECT_EQ(max_cone, tier1_cone);
}

TEST_F(AsmapFixture, SmallAsClassification) {
  // All stubs are small; the best-connected tier-1 never is.
  std::size_t max_cone = 0;
  topology::Asn biggest = 0;
  for (const auto& node : topo_->ases()) {
    if (node.tier == topology::AsTier::kStub) {
      EXPECT_TRUE(rel_->is_small(node.asn));
    }
    const auto cone = rel_->customer_cone_size(node.asn);
    if (cone > max_cone) {
      max_cone = cone;
      biggest = node.asn;
    }
  }
  ASSERT_NE(biggest, 0u);
  EXPECT_FALSE(rel_->is_small(biggest));
}

TEST_F(AsmapFixture, SuspiciousLinkDetection) {
  // Construct the textbook case: stub s with provider p, and pp a provider
  // of p. The link (s, pp) skips p, so it is suspicious.
  for (const auto& node : topo_->ases()) {
    if (node.tier != topology::AsTier::kStub || node.providers.empty()) {
      continue;
    }
    const auto& provider = topo_->as_node(node.providers[0]);
    if (provider.providers.empty()) continue;
    const Asn pp = provider.providers[0];
    if (rel_->adjacent(node.asn, pp)) continue;  // Multihomed directly.
    EXPECT_TRUE(rel_->suspicious_link(node.asn, pp));
    // And the path scanner finds it.
    const std::vector<Asn> path = {node.asn, pp};
    EXPECT_EQ(rel_->suspicious_links_in(path).size(), 1u);
    // Whereas the complete path is clean.
    const std::vector<Asn> complete = {node.asn, provider.asn, pp};
    EXPECT_TRUE(rel_->suspicious_links_in(complete).empty());
    return;
  }
  GTEST_SKIP() << "no matching stub/provider chain";
}

TEST_F(AsmapFixture, InterconnectOverrideFixesBorderInterfaces) {
  // With full interconnect coverage, every interdomain interface maps to
  // its operating AS; with coverage 0, misattribution reappears.
  const IpToAs full(*topo_, /*interconnect_coverage=*/1.0);
  const IpToAs naive(*topo_, /*interconnect_coverage=*/0.0);
  std::size_t naive_wrong = 0, full_wrong = 0, borders = 0;
  for (const auto& link : topo_->links()) {
    if (!link.interdomain) continue;
    ++borders;
    const auto truth_a = topo_->router(link.router_a).asn;
    if (const auto mapped = naive.lookup(link.addr_a); mapped &&
        *mapped != truth_a) {
      ++naive_wrong;
    }
    if (const auto mapped = full.lookup(link.addr_a); mapped &&
        *mapped != truth_a) {
      ++full_wrong;
    }
  }
  ASSERT_GT(borders, 0u);
  EXPECT_GT(naive_wrong, 0u);
  EXPECT_EQ(full_wrong, 0u);
}

TEST(BdrmapLite, VotesOverrulePrefixMapping) {
  // Synthetic scenario: address X allocated from AS 100's prefix but
  // operated by AS 200, revealed by successors in AS 200's space.
  topology::TopologyConfig config;
  config.seed = 3;
  config.num_ases = 60;
  config.num_vps = 4;
  config.num_vps_2016 = 2;
  config.num_probe_hosts = 10;
  const auto topo = topology::TopologyBuilder::build(config);
  const IpToAs ip2as(topo, /*interconnect_coverage=*/0.0);
  BdrmapLite bdrmap(ip2as);

  // Find a misattributed border interface.
  for (const auto& link : topo.links()) {
    if (!link.interdomain) continue;
    const auto truth = topo.router(link.router_a).asn;
    const auto mapped = ip2as.lookup(link.addr_a);
    if (!mapped || *mapped == truth) continue;
    // Feed paths where link.addr_a is followed by AS-`truth` addresses.
    const auto& router = topo.router(link.router_a);
    const std::vector<net::Ipv4Addr> path = {
        link.addr_a, topo.prefix(topo.as_node(truth).customer_prefixes[0])
                         .prefix.first_host()};
    bdrmap.add_path(path);
    bdrmap.add_path(path);
    (void)router;
    const auto inferred = bdrmap.router_as(link.addr_a);
    ASSERT_TRUE(inferred);
    EXPECT_EQ(*inferred, truth);
    EXPECT_NE(*inferred, *mapped);
    EXPECT_GE(bdrmap.remapped_addresses(), 1u);
    return;
  }
  GTEST_SKIP() << "no misattributed border interface";
}

TEST(BdrmapLite, FallsBackToPrefixMapping) {
  topology::TopologyConfig config;
  config.seed = 3;
  config.num_ases = 60;
  config.num_vps = 4;
  config.num_vps_2016 = 2;
  config.num_probe_hosts = 10;
  const auto topo = topology::TopologyBuilder::build(config);
  const IpToAs ip2as(topo);
  const BdrmapLite bdrmap(ip2as);
  const auto addr = topo.host(0).addr;
  EXPECT_EQ(bdrmap.router_as(addr), ip2as.lookup(addr));
  EXPECT_EQ(bdrmap.observed_addresses(), 0u);
}

TEST_F(AsmapFixture, AdjacentLinksNeverSuspicious) {
  for (const auto& node : topo_->ases()) {
    for (const auto customer : node.customers) {
      EXPECT_FALSE(rel_->suspicious_link(node.asn, customer));
      EXPECT_FALSE(rel_->suspicious_link(customer, node.asn));
    }
  }
}

}  // namespace
}  // namespace revtr::asmap
