#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace revtr::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    if (arg.starts_with("benchmark_")) continue;  // gbench's own flags.
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.contains(name);
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> result;
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) result.push_back(name);
  }
  return result;
}

}  // namespace revtr::util
