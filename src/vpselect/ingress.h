// Record Route vantage point selection (design question Q3, §4.3).
//
// Offline, the system probes two destinations in every BGP prefix from every
// vantage point with RR pings and extracts *ingress candidates*: addresses
// appearing on both paths, up to and including the first address inside the
// destination prefix. Two heuristics rescue prefixes whose destinations do
// not stamp RR packets (Appx C): the double-stamp rule and the loop rule.
// A greedy set cover then picks ingresses that cover the vantage points;
// each ingress keeps its VPs ranked by RR distance, closest first.
//
// Online, revtr 2.0 probes a destination only from the closest VP per
// ingress, in batches of 3, ordered by ingress coverage — this is the main
// source of the paper's probe savings (Insight 1.8, Table 4).
//
// The module also implements the evaluation baselines of §5.3: the revtr 1.0
// per-prefix set cover, the Global ranking, and the Optimal (closest-VP)
// oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "obs/metrics.h"
#include "probing/prober.h"
#include "topology/topology.h"
#include "util/annotate.h"
#include "util/rng.h"

namespace revtr::vpselect {

// Result of one offline RR probe from a VP toward a destination.
struct RrReach {
  bool responded = false;
  // 1-based number of RR slots consumed to reach the destination prefix
  // (the "RR distance"); -1 when the probe shows no evidence of reaching.
  int reach_distance = -1;
  std::vector<net::Ipv4Addr> slots;

  bool in_range() const noexcept { return reach_distance >= 0; }
};

// Analyzes one RR reply against the destination prefix, applying the
// Appx C heuristics. Exposed for direct unit testing.
//  * direct: a slot address inside the prefix.
//  * double-stamp: equal adjacent slots (destination alias stamped twice).
//  * loop: pattern a ... a; the packet reached the destination in between.
struct ReachAnalysis {
  int reach_slot = -1;  // Index of the reach point, -1 if unreached.
  enum class Via : std::uint8_t { kNone, kDirect, kDoubleStamp, kLoop } via =
      Via::kNone;
  // Candidate ingress addresses: slots up to and including the reach point
  // (for loops: the loop body).
  std::vector<net::Ipv4Addr> candidates;
};

ReachAnalysis analyze_reach(std::span<const net::Ipv4Addr> slots,
                            const net::Ipv4Prefix& prefix,
                            bool enable_double_stamp = true,
                            bool enable_loop = true);

struct VpDistance {
  topology::HostId vp = topology::kInvalidId;
  int distance = 0;  // RR slots to the ingress (or to the destination).
};

struct Ingress {
  net::Ipv4Addr addr;
  std::vector<VpDistance> vps;  // Closest first.
};

struct PrefixPlan {
  topology::PrefixId prefix = topology::kInvalidId;
  // Chosen ingresses, ordered by number of covering VPs (descending).
  std::vector<Ingress> ingresses;
  // Per-VP summary used by the fallback path and the §5.3 baselines.
  struct VpInfo {
    topology::HostId vp = topology::kInvalidId;
    int dist_d1 = -1;
    int dist_d2 = -1;

    bool in_range() const noexcept { return dist_d1 >= 0 || dist_d2 >= 0; }
    double mean_distance() const noexcept {
      if (dist_d1 >= 0 && dist_d2 >= 0) return (dist_d1 + dist_d2) / 2.0;
      return dist_d1 >= 0 ? dist_d1 : dist_d2;
    }
  };
  std::vector<VpInfo> vp_info;

  bool has_ingresses() const noexcept { return !ingresses.empty(); }
  // VPs within 8 RR hops ranked by mean distance (fallback ordering).
  std::vector<VpDistance> fallback_ranking() const;
};

struct DiscoveryOptions {
  std::size_t destinations_per_prefix = 2;
  bool enable_double_stamp = true;
  bool enable_loop = true;
};

// Registry handles for the offline ingress-survey path.
struct IngressMetrics {
  explicit IngressMetrics(obs::MetricsRegistry& registry);

  obs::Counter* surveys;           // revtr_ingress_surveys_total
  obs::Gauge* plans;               // Prefix plans currently held.
  obs::Counter* prefixes_covered;  // Surveys that found >= 1 ingress.
};

class IngressDiscovery {
 public:
  using Options = DiscoveryOptions;

  IngressDiscovery(probing::Prober& prober, const topology::Topology& topo,
                   Options options = Options());

  // nullptr (default) = no instrumentation; handles must outlive their use.
  void set_metrics(const IngressMetrics* metrics) noexcept {
    metrics_.store(metrics, std::memory_order_release);
  }

  // Runs the offline survey for one prefix; uses the prefix's first
  // RR-responsive hosts as survey destinations (callers can exclude hosts,
  // e.g. the evaluation destination, via `exclude`). Re-discovering an
  // already-surveyed prefix re-runs the survey and replaces its plan.
  //
  // Thread safety: discover() serializes on an internal mutex; plan_for()
  // takes it shared, so concurrent campaign workers can read plans freely.
  // Both return an immutable snapshot: a re-discovery of the same prefix
  // builds a fresh plan and swaps the map entry, so holders of an earlier
  // snapshot keep reading a consistent (if stale) plan instead of racing
  // an in-place rebuild.
  std::shared_ptr<const PrefixPlan> discover(
      topology::PrefixId prefix, std::span<const topology::HostId> vps,
      util::Rng& rng, std::span<const topology::HostId> exclude = {});

  std::shared_ptr<const PrefixPlan> plan_for(topology::PrefixId prefix) const;

  const Options& options() const noexcept { return options_; }

 private:
  probing::Prober& prober_;
  const topology::Topology& topo_;
  const Options options_;
  // Atomic, not guarded: set_metrics() races benignly with surveys (the
  // handle is a pointer to registry-owned counters, themselves atomic).
  std::atomic<const IngressMetrics*> metrics_{nullptr};
  mutable util::SharedMutex mu_;
  std::unordered_map<topology::PrefixId, std::shared_ptr<const PrefixPlan>>
      plans_ REVTR_GUARDED_BY(mu_);
};

// One (vp, expected ingress) probing attempt in the online plan.
struct Attempt {
  topology::HostId vp = topology::kInvalidId;
  net::Ipv4Addr expected_ingress;  // Unspecified for fallback attempts.
  std::size_t ingress_rank = 0;    // Which ingress this attempt belongs to.
};

// Flattens a PrefixPlan into the ordered attempt list the engine batches:
// round-robin over ingresses (by coverage), up to `max_per_ingress` backup
// VPs each; falls back to the mean-distance ranking when no ingresses.
std::vector<Attempt> attempt_plan(const PrefixPlan& plan,
                                  std::size_t max_per_ingress = 5);

// --- §5.3 baselines -------------------------------------------------------

// revtr 1.0: per prefix, order VPs by how many of the prefix's surveyed
// destinations they can reach within RR range (greedy set cover), then try
// them all in that order.
std::vector<topology::HostId> revtr1_vp_order(const PrefixPlan& plan);

// Global: one ranking for all prefixes — VPs ordered by the number of
// surveyed prefixes they are in range of.
std::vector<topology::HostId> global_vp_order(
    std::span<const PrefixPlan* const> plans);

// Optimal oracle: the closest in-range VP for this prefix (by mean
// distance), or nullopt when no VP is in range.
std::optional<VpDistance> optimal_vp(const PrefixPlan& plan);

}  // namespace revtr::vpselect
