#include "server/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <span>
#include <thread>
#include <utility>

namespace revtr::server {

DaemonClient::~DaemonClient() { close(); }

void DaemonClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  in_.clear();
}

bool DaemonClient::connect(const std::string& socket_path, int retries) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  for (int attempt = 0; attempt <= retries; ++attempt) {
    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      return true;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool DaemonClient::send_frame(const Message& message) {
  if (fd_ < 0) return false;
  const auto frame = encode_frame(message);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        write(fd_, frame.data() + written, frame.size() - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Message> DaemonClient::read_frame() {
  if (fd_ < 0) return std::nullopt;
  std::array<std::uint8_t, 16384> buf;
  for (;;) {
    // Try to decode a whole frame from what we have.
    const std::span<const std::uint8_t> avail(in_);
    if (avail.size() >= kFrameHeaderSize) {
      FrameError error = FrameError::kNone;
      const auto header = decode_frame_header(avail, &error);
      if (!header.has_value()) return std::nullopt;
      const std::size_t total = kFrameHeaderSize + header->payload_len;
      if (avail.size() >= total) {
        auto decoded = decode_payload(
            header->type, avail.subspan(kFrameHeaderSize, header->payload_len),
            &error);
        in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(total));
        return decoded;
      }
    }
    const ssize_t n = read(fd_, buf.data(), buf.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;  // EOF or hard error.
    }
    in_.insert(in_.end(), buf.data(), buf.data() + n);
  }
}

std::optional<Message> DaemonClient::wait_for(FrameType a, FrameType b) {
  for (;;) {
    auto message = read_frame();
    if (!message.has_value()) return std::nullopt;
    const FrameType type = frame_type_of(*message);
    if (type == a || type == b) return message;
    if (Result* result = std::get_if<Result>(&*message)) {
      results_.push_back(std::move(*result));
      continue;
    }
    return std::nullopt;  // Unexpected interleaved frame: protocol error.
  }
}

std::optional<HelloOk> DaemonClient::hello(const std::string& api_key,
                                           bool push_results) {
  reject_reason_.reset();
  Hello request;
  request.proto_version = kProtoVersion;
  request.push_results = push_results;
  request.api_key = api_key;
  if (!send_frame(request)) return std::nullopt;
  auto reply = wait_for(FrameType::kHelloOk, FrameType::kHelloErr);
  if (!reply.has_value()) return std::nullopt;
  if (const HelloErr* err = std::get_if<HelloErr>(&*reply)) {
    reject_reason_ = err->reason;
    return std::nullopt;
  }
  return std::get<HelloOk>(*std::move(reply));
}

bool DaemonClient::submit(const Submit& request) {
  reject_reason_.reset();
  if (!send_frame(request)) return false;
  auto reply = wait_for(FrameType::kSubmitOk, FrameType::kSubmitErr);
  if (!reply.has_value()) return false;
  if (const SubmitErr* err = std::get_if<SubmitErr>(&*reply)) {
    reject_reason_ = err->reason;
    return false;
  }
  return true;
}

std::optional<Result> DaemonClient::next_result() {
  if (!results_.empty()) {
    Result result = std::move(results_.front());
    results_.pop_front();
    return result;
  }
  for (;;) {
    auto message = read_frame();
    if (!message.has_value()) return std::nullopt;
    if (Result* result = std::get_if<Result>(&*message)) {
      return std::move(*result);
    }
    // Any other frame here is unexpected (we only read results between
    // round trips); drop it rather than desynchronize.
  }
}

DaemonClient::WaitStatus DaemonClient::next_result_for(
    std::optional<Result>& out, int timeout_ms) {
  out.reset();
  if (!results_.empty()) {
    out = std::move(results_.front());
    results_.pop_front();
    return WaitStatus::kOk;
  }
  if (fd_ < 0) return WaitStatus::kDisconnected;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::array<std::uint8_t, 16384> buf;
  for (;;) {
    // Decode every whole frame already buffered before touching the socket.
    for (;;) {
      const std::span<const std::uint8_t> avail(in_);
      if (avail.size() < kFrameHeaderSize) break;
      FrameError error = FrameError::kNone;
      const auto header = decode_frame_header(avail, &error);
      if (!header.has_value()) {
        close();
        return WaitStatus::kDisconnected;
      }
      const std::size_t total = kFrameHeaderSize + header->payload_len;
      if (avail.size() < total) break;
      auto decoded = decode_payload(
          header->type, avail.subspan(kFrameHeaderSize, header->payload_len),
          &error);
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(total));
      if (!decoded.has_value()) {
        close();
        return WaitStatus::kDisconnected;
      }
      if (Result* result = std::get_if<Result>(&*decoded)) {
        out = std::move(*result);
        return WaitStatus::kOk;
      }
      // Other frames between round trips are dropped, like next_result().
    }
    int wait_ms = -1;
    if (timeout_ms > 0) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (left <= 0) return WaitStatus::kTimeout;
      wait_ms = static_cast<int>(
          std::min<long long>(left, std::numeric_limits<int>::max()));
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc == 0) return WaitStatus::kTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      close();
      return WaitStatus::kDisconnected;
    }
    const ssize_t n = read(fd_, buf.data(), buf.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();  // EOF or hard error: the daemon went away mid-wait.
      return WaitStatus::kDisconnected;
    }
    in_.insert(in_.end(), buf.data(), buf.data() + n);
  }
}

std::optional<std::uint32_t> DaemonClient::poll_results(
    std::uint32_t max_results) {
  Poll request;
  request.max_results = max_results;
  if (!send_frame(request)) return std::nullopt;
  auto reply = wait_for(FrameType::kPollDone, FrameType::kPollDone);
  if (!reply.has_value()) return std::nullopt;
  return std::get<PollDone>(*reply).pending;
}

std::optional<std::string> DaemonClient::stats() {
  if (!send_frame(Stats{})) return std::nullopt;
  auto reply = wait_for(FrameType::kStatsReply, FrameType::kStatsReply);
  if (!reply.has_value()) return std::nullopt;
  return std::get<StatsReply>(*std::move(reply)).json;
}

std::optional<DrainDone> DaemonClient::drain() {
  if (!send_frame(Drain{})) return std::nullopt;
  auto reply = wait_for(FrameType::kDrainDone, FrameType::kDrainDone);
  if (!reply.has_value()) return std::nullopt;
  return std::get<DrainDone>(*reply);
}

}  // namespace revtr::server
