// Robustness ablation (DESIGN.md §5): how does random probe loss degrade
// revtr 2.0's coverage, accuracy, probe budget, and latency?
//
// Not a paper figure — the deployed system inevitably lives with loss, and
// this sweep shows where the design's redundancy (batched spoofed probes,
// backup VPs per ingress, the symmetry fallback) starts to give out.
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Ablation: coverage/accuracy under random probe loss",
                      setup);

  util::TextTable table({"loss rate", "coverage", "AS exact-or-missing",
                         "probes/revtr", "median latency (s)"});
  for (const double loss : {0.0, 0.01, 0.03, 0.10, 0.25}) {
    eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
    lab.network.set_loss_rate(loss);
    const auto source = lab.topo.vantage_points()[0];
    lab.bootstrap_source(source, setup.atlas_size);
    lab.precompute_all_ingresses();
    lab.prober.reset_counters();

    util::SimClock clock;
    util::Distribution latency;
    std::size_t complete = 0, attempted = 0, as_ok = 0, with_truth = 0;
    const auto probes = lab.topo.probe_hosts();
    for (std::size_t i = 0; i < setup.revtrs && i < probes.size(); ++i) {
      ++attempted;
      const auto result = lab.engine.measure(probes[i], source, clock);
      latency.add(result.span.seconds());
      if (!result.complete()) continue;
      ++complete;
      const auto direct =
          lab.prober.traceroute(probes[i], lab.topo.host(source).addr);
      if (!direct.reached) continue;
      ++with_truth;
      const auto match = eval::compare_as_paths(
          lab.ip2as.as_path(direct.responsive_hops()),
          lab.ip2as.as_path(result.ip_hops()));
      as_ok += match != eval::AsMatch::kMismatch;
    }
    const auto counters = lab.prober.counters();
    table.add_row(
        {util::cell_percent(loss, 0),
         util::cell_percent(attempted == 0
                                ? 0.0
                                : static_cast<double>(complete) /
                                      static_cast<double>(attempted)),
         util::cell_percent(with_truth == 0
                                ? 0.0
                                : static_cast<double>(as_ok) /
                                      static_cast<double>(with_truth)),
         util::cell(attempted == 0
                        ? 0.0
                        : static_cast<double>(counters.total()) /
                              static_cast<double>(attempted),
                    1),
         util::cell(latency.empty() ? 0.0 : latency.median(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: coverage and accuracy degrade gracefully to ~10%%\n"
      "loss (redundant VPs and the symmetry fallback absorb failures) and\n"
      "collapse beyond it, while probes and latency per path climb.\n");
  return 0;
}
