// Fig 6: comparison of techniques for selecting record-route VPs (§5.3).
//   (a) reverse hops uncovered by the first batch, batch sizes 1/3/5;
//   (b) reverse hops uncovered by the first batch (size 3) per technique;
//   (c) number of spoofing VPs tried before a reverse hop is found.
//
// Paper: batch size 3 is the sweet spot; revtr 2.0 uncovers 4+ hops for
// 50% of prefixes (20% for revtr 1.0) and tries 10+ VPs for <5% of
// prefixes (28% for revtr 1.0 / Global).
#include <cstdio>

#include "bench_common.h"
#include "vpsurvey.h"

using namespace revtr;

namespace {

util::Series hops_ccdf(const std::string& name,
                       const util::Distribution& dist) {
  util::Series series;
  series.name = name;
  for (int hops = 0; hops <= 8; ++hops) {
    series.xs.push_back(hops);
    series.ys.push_back(dist.ccdf_at(hops));
  }
  return series;
}

util::Series tried_ccdf(const std::string& name,
                        const util::Distribution& dist) {
  util::Series series;
  series.name = name;
  for (const double tried : {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    series.xs.push_back(tried);
    series.ys.push_back(dist.ccdf_at(tried));
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  const auto max_prefixes =
      static_cast<std::size_t>(flags.get_int("prefixes", 400));
  bench::warn_unknown_flags(flags);
  bench::print_header("Fig 6: record-route VP selection comparison", setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto survey = bench::run_vp_survey(lab, setup, max_prefixes);
  std::printf("prefixes surveyed: %zu\n\n", survey.prefixes.size());

  std::vector<const vpselect::PrefixPlan*> plans;
  for (const auto& entry : survey.prefixes) plans.push_back(&entry.plan);
  const auto global_order = vpselect::global_vp_order(plans);
  const auto global_attempts = bench::order_to_attempts(global_order);

  // --- (a) batch size sweep on the revtr 2.0 ingress plan. ---
  util::Distribution batch1, batch3, batch5, optimal_hops;
  // --- (b) techniques at batch size 3. ---
  util::Distribution ingress3, revtr1_3, global3;
  // --- (c) spoofers tried until success. ---
  util::Distribution ingress_tried, revtr1_tried, global_tried;

  for (const auto& entry : survey.prefixes) {
    const auto ingress_attempts = vpselect::attempt_plan(entry.plan);
    const auto revtr1_attempts =
        bench::order_to_attempts(vpselect::revtr1_vp_order(entry.plan));

    batch1.add(static_cast<double>(
        bench::first_batch_hops(entry, ingress_attempts, 1)));
    batch3.add(static_cast<double>(
        bench::first_batch_hops(entry, ingress_attempts, 3)));
    batch5.add(static_cast<double>(
        bench::first_batch_hops(entry, ingress_attempts, 5)));

    // Optimal: the closest in-range VP's reveal.
    std::size_t best = 0;
    const bench::VpProbe* closest = nullptr;
    for (const auto& [vp, probe] : entry.probes) {
      if (!probe.in_range()) continue;
      if (closest == nullptr || probe.distance < closest->distance) {
        closest = &probe;
      }
    }
    if (closest != nullptr) best = closest->reverse_hops;
    optimal_hops.add(static_cast<double>(best));

    ingress3.add(static_cast<double>(
        bench::first_batch_hops(entry, ingress_attempts, 3)));
    revtr1_3.add(static_cast<double>(
        bench::first_batch_hops(entry, revtr1_attempts, 3)));
    global3.add(static_cast<double>(
        bench::first_batch_hops(entry, global_attempts, 3)));

    ingress_tried.add(static_cast<double>(
        bench::spoofers_tried(entry, ingress_attempts, 3)));
    revtr1_tried.add(static_cast<double>(
        bench::spoofers_tried(entry, revtr1_attempts, 3)));
    global_tried.add(static_cast<double>(
        bench::spoofers_tried(entry, global_attempts, 3)));
  }

  std::printf("%s\n",
              util::render_figure(
                  "Fig 6a: CCDF of reverse hops uncovered by first batch",
                  {hops_ccdf("optimal", optimal_hops),
                   hops_ccdf("batch-of-5", batch5),
                   hops_ccdf("batch-of-3", batch3),
                   hops_ccdf("batch-of-1", batch1)},
                  3)
                  .c_str());

  std::printf("%s\n",
              util::render_figure(
                  "Fig 6b: CCDF of hops uncovered by first batch (size 3)",
                  {hops_ccdf("optimal", optimal_hops),
                   hops_ccdf("ingress (revtr 2.0)", ingress3),
                   hops_ccdf("revtr 1.0", revtr1_3),
                   hops_ccdf("global", global3)},
                  3)
                  .c_str());

  std::printf("%s\n",
              util::render_figure(
                  "Fig 6c: CCDF of spoofing VPs tried",
                  {tried_ccdf("ingress (revtr 2.0)", ingress_tried),
                   tried_ccdf("revtr 1.0", revtr1_tried),
                   tried_ccdf("global", global_tried)},
                  3)
                  .c_str());

  util::TextTable table({"Metric", "ingress", "revtr 1.0", "global"});
  table.add_row({"P(4+ hops in first batch of 3)",
                 util::cell(ingress3.ccdf_at(4)),
                 util::cell(revtr1_3.ccdf_at(4)),
                 util::cell(global3.ccdf_at(4))});
  table.add_row({"P(10+ spoofers tried)",
                 util::cell(ingress_tried.ccdf_at(10)),
                 util::cell(revtr1_tried.ccdf_at(10)),
                 util::cell(global_tried.ccdf_at(10))});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: revtr 2.0 uncovers 4+ hops for ~50%% of prefixes (vs 20%% for\n"
      "revtr 1.0) and tries 10+ VPs for <5%% of prefixes (vs 28%%).\n");
  return 0;
}
