#include "analysis/oracle.h"

#include <optional>
#include <unordered_set>

namespace revtr::analysis {

namespace {
using net::Ipv4Addr;
using topology::RouterId;

std::optional<RouterId> router_of(const topology::Topology& topo,
                                  Ipv4Addr addr) {
  if (const auto host = topo.host_at(addr)) {
    return topo.host(*host).attachment;
  }
  if (const auto iface = topo.interface_at(addr)) return iface->router;
  return std::nullopt;
}

// Union of the routers any ECMP branch could place on the route from
// `from` back to the source.
std::unordered_set<RouterId> feasible_routers(const sim::Network& network,
                                              Ipv4Addr from, Ipv4Addr to,
                                              std::uint64_t salts) {
  std::unordered_set<RouterId> routers;
  for (std::uint64_t salt = 0; salt < salts; ++salt) {
    for (const bool options : {false, true}) {
      for (const RouterId r :
           network.ground_truth_path(from, to, salt, options)) {
        routers.insert(r);
      }
    }
  }
  return routers;
}

}  // namespace

OracleReport check_against_truth(const core::ReverseTraceroute& result,
                                 const sim::Network& network,
                                 std::uint64_t salts) {
  OracleReport report;
  if (!result.complete()) return report;  // Only accepted paths are claims.
  const auto& topo = network.topo();
  const Ipv4Addr src_addr = topo.host(result.source).addr;

  std::optional<core::ReverseHop> from;
  for (const auto& hop : result.hops) {
    if (hop.source == core::HopSource::kSuspiciousGap ||
        hop.addr.is_unspecified()) {
      continue;
    }
    if (!from.has_value()) {  // The destination endpoint itself.
      from = hop;
      continue;
    }
    const auto from_router = router_of(topo, from->addr);
    const auto hop_router = router_of(topo, hop.addr);
    if (!from_router || !hop_router) {
      ++report.unresolved;
      if (!hop.addr.is_private()) from = hop;
      continue;
    }
    ++report.pairs_checked;
    const auto feasible =
        feasible_routers(network, from->addr, src_addr, salts);
    if (feasible.contains(*hop_router)) {
      ++report.on_true_path;
    } else {
      switch (hop.source) {
        case core::HopSource::kAssumedSymmetric:
        case core::HopSource::kAtlasIntersection:
        case core::HopSource::kTimestamp:
          ++report.permitted_divergences;
          break;
        case core::HopSource::kDestination:
        case core::HopSource::kRecordRoute:
        case core::HopSource::kSpoofedRecordRoute:
        case core::HopSource::kSuspiciousGap:
          report.violations.push_back(Violation{
              InvariantId::kOracle,
              "hop " + hop.addr.to_string() + " (" +
                  core::to_string(hop.source) + ") after " +
                  from->addr.to_string() +
                  " is on no ECMP-feasible reverse route to " +
                  src_addr.to_string()});
          break;
      }
    }
    // Continue from hops the engine itself continued from.
    if (!hop.addr.is_private()) from = hop;
  }
  return report;
}

}  // namespace revtr::analysis
