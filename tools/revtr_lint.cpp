// revtr-lint: repo-specific invariants that -Wall/-Wextra cannot express.
//
// Runs as a normal build target and as a ctest entry (`revtr_lint <repo
// root>`), so `ctest` alone enforces the rules. The checks are lexical: each
// file is stripped of comments and string/char literals first, so rule text
// inside documentation or log messages never trips a rule. A line can opt
// out of one rule with a trailing comment `lint:allow(<rule>)` — the marker
// is searched on the *raw* line, keeping suppressions greppable.
//
// Rules (see README.md "Correctness tooling" for how to add one):
//   raw-new-delete   Raw `new`/`delete` anywhere; owners use RAII
//                    (std::unique_ptr, containers). `= delete` is fine.
//   narrowing-cast   `static_cast` to a narrow integer type inside src/net/,
//                    the wire trust boundary; use util::checked_cast (abort
//                    on loss) or util::truncate_cast (intentional wrap).
//   header-hygiene   Every header under src/ carries `#pragma once` and
//                    lives in the `revtr` namespace.
//   std-endl         `std::endl` in src/ or bench/ (hot paths): it forces a
//                    flush per line; use '\n'.
//   layering         src/ include edges must follow the module DAG below:
//                    a module may include only strictly lower-ranked
//                    modules (or itself). Cycles are therefore impossible;
//                    a generic cycle detector still runs as a backstop.
//   enum-switch-default
//                    A switch in src/ whose cases name qualified
//                    enumerators (`case Foo::kBar:`) must not carry a
//                    `default:` label: it would swallow new enumerators
//                    that -Wswitch would otherwise force every switch to
//                    handle (pins HopSource/RevtrStatus exhaustiveness).
//   const-cast       `const_cast` anywhere in src/. Casting away const to
//                    mutate from a const accessor hid a data race in
//                    Distribution::quantile (lazy sort under readers) until
//                    TSan caught it; mutable members + a mutex make the
//                    sharing explicit. Genuinely const-adding casts are
//                    rare enough to justify a lint:allow(const-cast).
//   bare-output      `std::cout` or a bare `printf(` in src/: library code
//                    must not write to stdout — route data through the obs
//                    exporters (src/obs/) or return it to the caller.
//                    fprintf/snprintf stay legal (stderr diagnostics,
//                    formatting into buffers); tools/, tests/, bench/ and
//                    examples/ own their stdout and are exempt.
//   core-probe-issue Direct probe-issuing Prober calls (ping/rr_ping/
//                    ts_ping/traceroute) inside src/core/: the staged engine
//                    yields sched::ProbeDemand sets and all wire probes
//                    funnel through sched::execute_demand, so scheduler
//                    coalescing and pacing cannot be bypassed. Non-issuing
//                    Prober methods (offline_counters, OfflineScope) stay
//                    legal.
//   mutex-capability Raw std synchronization types (std::mutex,
//                    std::shared_mutex, std::lock_guard, std::unique_lock,
//                    std::shared_lock, std::scoped_lock, plain
//                    std::condition_variable) in src/: shared state uses
//                    the annotated util::Mutex / util::SharedMutex wrappers
//                    and their RAII guards (src/util/annotate.h) so clang
//                    -Wthread-safety can track every acquisition.
//                    std::condition_variable_any stays legal (it parks on
//                    the annotated MutexLock). annotate.h itself, which
//                    wraps the std types, is exempt.
//   guarded-member   Every non-atomic, non-const data member of a class
//                    that owns a util::Mutex/util::SharedMutex must carry
//                    REVTR_GUARDED_BY / REVTR_PT_GUARDED_BY, or waive with
//                    a `// lint: lock-free(<reason>)` comment on its
//                    declaration line. Mutex members, references, statics,
//                    std::atomic members and condition variables are exempt
//                    by construction.
//   raii-guard       Manual .lock()/.unlock()/.try_lock() calls in src/:
//                    critical sections are scoped by the RAII guards of
//                    annotate.h, so no early return or exception can leak a
//                    held mutex.
//   lock-order       Every RAII-guard acquisition in src/ must name a mutex
//                    with a declared rank (lock_order_table() below), and
//                    nested acquisitions must take strictly increasing
//                    ranks — util < obs < sched < vpselect/atlas — making
//                    the process-wide acquisition order deadlock-free by
//                    construction (DESIGN.md §11).
//
// Dataflow passes (DESIGN.md §12). These go beyond single-line regexes:
// they share the stripped-token model above plus a lexical scope tracker
// (brace depth), a function-definition scanner, and a cross-file collect
// phase that runs over every file before any file is judged.
//   taint            Untrusted-input taint, scoped to src/net/ and
//                    src/probing/ (the wire trust boundary). A local whose
//                    initializer reads network bytes (ByteReader .u8/.u16/
//                    .u32/.peek_u8, or any `reply` field of a probe result)
//                    is tainted; taint propagates through assignment.
//                    Tainted values must not reach a sink — subscript,
//                    .resize/.reserve/.assign/.substr/.subspan/.first/.last,
//                    or a loop bound — until sanitized by checked_cast/
//                    truncate_cast or an adjacent comparison against a bound
//                    (if/while/REVTR_CHECK/REVTR_DCHECK on the value).
//                    Bounds-checked ByteReader accessors (.bytes/.skip) are
//                    not sinks. Waive with `// lint: trusted(<reason>)`.
//   guard-escape     Methods of a mutex-owning class must not return
//                    references, pointers, iterators, spans or string_views
//                    into REVTR_GUARDED_BY members (or locals derived from
//                    them): the guard is gone when the caller dereferences.
//                    Return by value or std::shared_ptr<const T> snapshots
//                    instead (the PR 6 atlas fix, now an enforced contract).
//                    REVTR_REQUIRES-annotated internal accessors are exempt
//                    (the caller holds the lock by contract). Waive a
//                    deliberately stable handle with
//                    `// lint: stable-ref(<reason>)` on or above the
//                    definition, or on the return line.
//   stage-graph      The RequestTask stage machine must match its declared
//                    DAG: each `// lint: stage(kFrom -> kTo, ...)` comment
//                    next to the Stage enum declares the legal successors
//                    of one stage (empty list = terminal). Every enumerator
//                    must be declared, every declared node must exist,
//                    every switch over Stage must name every enumerator,
//                    and every `stage_ = ...` assignment reachable from a
//                    stage's dispatch handler (transitively, through the
//                    call graph) must target a declared successor.
//   stage-span       open_stage/close_stage balance, checked by abstract
//                    interpretation of the handler bodies (branch/loop/call
//                    aware): no double open, no close without an open, a
//                    consistent span balance at every stage entry, and no
//                    open span left when a terminal stage is reached.
//
// Module DAG (rank order; an include edge must point strictly downward):
//   util(0) → net(1), obs(1) → topology(2) → routing(3) → sim(4)
//   → probing(5) → alias(6), asmap(6), sched(6) → atlas(7), vpselect(7)
//   → core(8) → analysis(9) → eval(10), service(10)
// tools/, tests/, bench/ and examples/ sit on top and may include anything.
//
// `revtr_lint --self-test` exercises both accept and reject paths of the
// layering and enum-switch rules on synthetic inputs; it is registered in
// ctest so the analyzer itself cannot silently rot.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;  // 0 = whole-file finding.
  std::string rule;
  std::string message;
  bool waived = false;  // Suppressed by an in-source waiver; kept for JSON.
};

bool has_extension(const fs::path& path, std::string_view ext) {
  return path.extension() == ext;
}

bool is_source(const fs::path& path) {
  return has_extension(path, ".cpp") || has_extension(path, ".h");
}

// Removes comments and the contents of string/char literals while keeping
// line structure, so later regex passes see only code. This is a lexer-level
// approximation (no raw strings in this codebase), which is exactly the
// fidelity a lexical linter wants: cheap and predictable.
std::string strip_comments_and_literals(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);  // Unterminated; keep line numbers aligned.
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

bool allows(const std::string& raw_line, std::string_view rule) {
  const std::string marker = "lint:allow(" + std::string(rule) + ")";
  return raw_line.find(marker) != std::string::npos;
}

// --- Layering. -------------------------------------------------------------

// The module DAG, as ranks. An include edge src/<A>/… → "<B>/…" is legal
// iff A == B or rank[B] < rank[A]. Adding a module under src/ requires
// adding it here, which forces a layering decision in review.
const std::map<std::string, int, std::less<>>& module_ranks() {
  static const std::map<std::string, int, std::less<>> kRanks = {
      {"util", 0},  {"net", 1},      {"obs", 1},      {"topology", 2},
      {"routing", 3}, {"sim", 4},    {"probing", 5},  {"alias", 6},
      {"asmap", 6}, {"sched", 6},    {"atlas", 7},    {"vpselect", 7},
      {"core", 8},  {"analysis", 9}, {"eval", 10},    {"service", 10},
      {"server", 11},  // The daemon sits on the whole stack.
      {"agent", 12},   // The VP agent speaks the server's frames and owns
                       // its own eval stack, so it sits above both.
  };
  return kRanks;
}

// Module of a repo-relative path, or "" when the file is not under a
// src/<module>/ directory (tools, tests, bench sit above the DAG).
std::string module_of(const std::string& rel) {
  constexpr std::string_view kPrefix = "src/";
  if (rel.rfind(kPrefix, 0) != 0) return "";
  const std::size_t slash = rel.find('/', kPrefix.size());
  if (slash == std::string::npos) return "";
  return rel.substr(kPrefix.size(), slash - kPrefix.size());
}

// Generic cycle finder over the collected module graph. With strictly
// decreasing ranks a cycle cannot pass the rank check, so this only fires
// if the rank table itself is edited into an inconsistency — or in the
// self-test, which feeds it synthetic graphs.
std::optional<std::vector<std::string>> find_cycle(
    const std::set<std::pair<std::string, std::string>>& edges) {
  std::map<std::string, std::vector<std::string>> adjacent;
  for (const auto& [from, to] : edges) adjacent[from].push_back(to);

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::optional<std::vector<std::string>> cycle;

  const std::function<bool(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = Color::kGray;
        stack.push_back(node);
        for (const auto& next : adjacent[node]) {
          const Color c = color.count(next) ? color[next] : Color::kWhite;
          if (c == Color::kGray) {
            // Slice the stack from the first occurrence of `next`.
            std::vector<std::string> path;
            bool in_cycle = false;
            for (const auto& n : stack) {
              if (n == next) in_cycle = true;
              if (in_cycle) path.push_back(n);
            }
            path.push_back(next);
            cycle = std::move(path);
            return true;
          }
          if (c == Color::kWhite && visit(next)) return true;
        }
        stack.pop_back();
        color[node] = Color::kBlack;
        return false;
      };

  for (const auto& [from, to] : edges) {
    if (!color.count(from) && visit(from)) break;
  }
  return cycle;
}

// --- Switch scanning. ------------------------------------------------------

struct SwitchSpan {
  std::size_t keyword = 0;  // Position of the `switch` token.
  std::size_t open = 0;     // Its block's '{'.
  std::size_t close = 0;    // The matching '}'.
};

std::vector<SwitchSpan> find_switches(const std::string& code) {
  std::vector<SwitchSpan> out;
  static const std::regex kSwitch(R"(\bswitch\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kSwitch);
       it != std::sregex_iterator(); ++it) {
    SwitchSpan span;
    span.keyword = static_cast<std::size_t>(it->position());
    span.open = code.find('{', span.keyword);
    if (span.open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = span.open; i < code.size(); ++i) {
      if (code[i] == '{') ++depth;
      if (code[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) continue;
    span.close = close;
    out.push_back(span);
  }
  return out;
}

// The switch body with nested switch statements excised, so an inner
// switch's `default:` cannot be attributed to the outer one.
std::string own_body(const std::string& code, const SwitchSpan& span,
                     const std::vector<SwitchSpan>& all) {
  std::string own;
  std::size_t i = span.open + 1;
  while (i < span.close) {
    bool skipped = false;
    for (const auto& nested : all) {
      if (nested.keyword == i && nested.open > span.open &&
          nested.close < span.close) {
        i = nested.close + 1;
        skipped = true;
        break;
      }
    }
    if (!skipped) own.push_back(code[i++]);
  }
  return own;
}

// --- Lock discipline. ------------------------------------------------------

// Process-wide lock-acquisition order (DESIGN.md §11). Keyed by
// (module, mutex name); ranks follow the module DAG (module rank x 10), so
// the declared order is exactly the layering order: a thread holding a
// higher-ranked lock never acquires a lower-ranked one. Adding a mutex to
// src/ requires adding it here, which forces an ordering decision in review.
const std::map<std::pair<std::string, std::string>, int>& lock_order_table() {
  static const std::map<std::pair<std::string, std::string>, int> kOrder = {
      {{"util", "mu"}, 0},             // StripedMap stripe mutexes.
      {{"util", "mu_"}, 0},            // Distribution, ThreadPool.
      {{"obs", "mu_"}, 10},            // MetricsRegistry, TraceSink.
      {{"sched", "mu_"}, 60},          // ProbeScheduler.
      {{"vpselect", "mu_"}, 70},       // IngressDiscovery.
      {{"atlas", "sources_mu_"}, 70},  // TracerouteAtlas source map.
      {{"atlas", "stripe_of"}, 71},    // A stripe nests inside sources_mu_;
                                       // never two stripes at once.
      {{"server", "mu_"}, 110},        // ServerDaemon: above everything —
                                       // registry lookups and scheduler
                                       // reads happen before, never under.
      {{"agent", "mu_"}, 120},         // AgentDaemon counters. Never nests
                                       // with the server's mu_ in one
                                       // process; ranked above it because
                                       // in-process tests run both.
  };
  return kOrder;
}

// A mutex expression as it appears in a guard construction, normalized to
// its lock_order_table() key: `other.mu_` -> "mu_", `s.mu` -> "mu",
// `stripe_of(source)` -> "stripe_of".
std::string normalize_mutex_expr(const std::string& arg) {
  if (arg.find("stripe_of") != std::string::npos) return "stripe_of";
  std::string name;
  static const std::regex kIdent(R"((\w+))");
  for (auto it = std::sregex_iterator(arg.begin(), arg.end(), kIdent);
       it != std::sregex_iterator(); ++it) {
    name = it->str();
  }
  return name;
}

struct ClassSpan {
  std::size_t keyword = 0;  // Position of the `class`/`struct` token.
  std::size_t open = 0;     // The body's '{'.
  std::size_t close = 0;    // The matching '}'.
  std::string name;
};

// Every class/struct *definition* in the stripped code, nested ones
// included (each nested type is judged as its own class). Forward
// declarations, template parameters and elaborated-type uses are skipped.
std::vector<ClassSpan> find_classes(const std::string& code) {
  std::vector<ClassSpan> out;
  static const std::regex kClass(R"(\b(class|struct)\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kClass);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position());
    {  // `enum class` / `enum struct` are enums, not classes.
      std::size_t p = pos;
      while (p > 0 && std::isspace(static_cast<unsigned char>(code[p - 1]))) {
        --p;
      }
      if (p >= 4 && code.compare(p - 4, 4, "enum") == 0) continue;
    }
    // Scan ahead for the body's '{'. A ';' first means a forward
    // declaration; ',' '>' '=' ')' mean a template parameter or an
    // elaborated-type mention. Balanced parens (attribute macros like
    // REVTR_CAPABILITY("...")) are skipped.
    std::size_t open = std::string::npos;
    for (std::size_t i = pos + static_cast<std::size_t>(it->length());
         i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') {
        int depth = 1;
        while (++i < code.size() && depth > 0) {
          if (code[i] == '(') ++depth;
          if (code[i] == ')') --depth;
        }
        --i;
        continue;
      }
      if (c == '{') {
        open = i;
        break;
      }
      if (c == ';' || c == ',' || c == '>' || c == '=' || c == ')') break;
    }
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == '{') ++depth;
      if (code[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) continue;
    ClassSpan span;
    span.keyword = pos;
    span.open = open;
    span.close = close;
    const std::string head = code.substr(pos, open - pos);
    static const std::regex kName(
        R"(^(class|struct)\s+(?:REVTR_\w+\s*(?:\([^)]*\))?\s*)*(\w+))");
    std::smatch name;
    span.name = std::regex_search(head, name, kName) ? name[2].str()
                                                     : std::string("(anon)");
    out.push_back(span);
  }
  return out;
}

struct MemberStmt {
  std::string text;            // Stripped statement, whitespace-collapsed.
  std::string top;             // `text` outside template angle brackets.
  std::size_t line_begin = 0;  // 1-based, inclusive.
  std::size_t line_end = 0;
};

// The class body split into top-level statements with nested brace groups
// (function bodies, nested types, brace initializers) excised. A statement
// ends at ';', or at a brace group not followed by ';' (a function body).
std::vector<MemberStmt> class_statements(const std::string& code,
                                         const ClassSpan& span) {
  std::vector<MemberStmt> out;
  std::string text;
  std::size_t stmt_start = span.open + 1;
  const auto line_of = [&code](std::size_t pos) {
    return 1 + static_cast<std::size_t>(
                   std::count(code.begin(),
                              code.begin() + static_cast<long>(pos), '\n'));
  };
  const auto flush = [&](std::size_t end_pos) {
    std::string collapsed;
    bool in_space = true;
    for (const char c : text) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) collapsed.push_back(' ');
        in_space = true;
      } else {
        collapsed.push_back(c);
        in_space = false;
      }
    }
    while (!collapsed.empty() && collapsed.back() == ' ') collapsed.pop_back();
    // Access specifiers prefix the statement they precede; drop them.
    static const std::regex kAccess(R"(^\s*(public|private|protected)\s*:\s*)");
    collapsed = std::regex_replace(collapsed, kAccess, "");
    text.clear();
    if (collapsed.empty()) return;
    MemberStmt stmt;
    stmt.text = collapsed;
    int angle = 0;
    for (const char c : collapsed) {
      if (c == '<') {
        ++angle;
        continue;
      }
      if (c == '>') {
        if (angle > 0) --angle;
        continue;
      }
      if (angle == 0) stmt.top.push_back(c);
    }
    stmt.line_begin = line_of(stmt_start);
    stmt.line_end = line_of(end_pos < code.size() ? end_pos : code.size() - 1);
    out.push_back(std::move(stmt));
  };

  std::size_t i = span.open + 1;
  int parens = 0;  // A '{' inside parens is a default argument, not a body.
  while (i < span.close) {
    const char c = code[i];
    if (c == '(') ++parens;
    if (c == ')' && parens > 0) --parens;
    if (c == '{') {
      int depth = 1;
      ++i;
      while (i < span.close && depth > 0) {
        if (code[i] == '{') ++depth;
        if (code[i] == '}') --depth;
        ++i;
      }
      text += "{}";
      if (parens > 0) continue;  // `f(std::span<T> xs = {})` and the like.
      std::size_t peek = i;
      while (peek < span.close &&
             std::isspace(static_cast<unsigned char>(code[peek]))) {
        ++peek;
      }
      if (peek < span.close && code[peek] == ';') continue;  // Brace init.
      flush(i);  // Function body: the statement ends here.
      stmt_start = i;
      continue;
    }
    if (c == ';' && parens == 0) {
      flush(i);
      ++i;
      stmt_start = i;
      continue;
    }
    text += c;
    ++i;
  }
  flush(span.close);
  return out;
}

// True when the statement declares data, not a function, type alias, nested
// type, or static. Operates on the angle-stripped `top` so parentheses in
// template arguments (std::function<void()>) do not read as functions.
bool is_data_member(const MemberStmt& stmt) {
  if (stmt.top.empty()) return false;
  if (stmt.top.find('(') != std::string::npos ||
      stmt.top.find(')') != std::string::npos) {
    return false;
  }
  static const std::regex kOperator(R"(\boperator\b)");
  if (std::regex_search(stmt.text, kOperator)) return false;
  static const std::regex kNonData(
      R"(^\s*(static|constexpr|using|typedef|friend|template|enum|class|struct|union)\b)");
  return !std::regex_search(stmt.top, kNonData);
}

// --- Shared token/scope helpers for the dataflow passes. --------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Start of the identifier whose last character is code[end - 1], or npos
// when the preceding token is not an identifier.
std::size_t ident_begin(const std::string& code, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && is_ident_char(code[b - 1])) --b;
  return b == end ? std::string::npos : b;
}

std::size_t skip_space_backward(const std::string& code, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(code[pos - 1]))) {
    --pos;
  }
  return pos;
}

std::size_t line_of_pos(const std::string& code, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(code.begin(),
                            code.begin() + static_cast<long>(
                                               std::min(pos, code.size())),
                            '\n'));
}

// Whole-word containment: `name` appears in `text` with no identifier
// character on either side.
bool word_in(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

struct FuncDef {
  std::string name;
  std::string qualifier;    // `Class` for `Class::name`, empty otherwise.
  std::string return_type;  // Text before the (qualified) name.
  std::string trailer;      // Tokens between ')' and '{': const, REVTR_*...
  std::size_t name_pos = 0;
  std::size_t open = 0;   // The body's '{'.
  std::size_t close = 0;  // The matching '}'.
};

// Parses backward from a '{' to decide whether it opens a function body.
// Returns nullopt for control statements, lambdas, class/namespace bodies,
// brace initializers, and constructor initializer lists (filtered by the
// caller via return_type heuristics).
std::optional<FuncDef> function_at(const std::string& code,
                                   std::size_t brace) {
  static const std::set<std::string, std::less<>> kNotNames = {
      "if", "for", "while", "switch", "catch", "return",
      "sizeof", "alignof", "decltype", "new"};
  static const std::set<std::string, std::less<>> kTrailerWords = {
      "const", "noexcept", "override", "final", "try"};
  std::string trailer;
  std::size_t p = brace;
  while (true) {
    p = skip_space_backward(code, p);
    if (p == 0) return std::nullopt;
    const char c = code[p - 1];
    if (c == ')') {
      int depth = 0;
      std::size_t i = p;
      while (i > 0) {
        --i;
        if (code[i] == ')') ++depth;
        if (code[i] == '(' && --depth == 0) break;
      }
      if (code[i] != '(' || depth != 0) return std::nullopt;
      const std::size_t q = skip_space_backward(code, i);
      const std::size_t nb = ident_begin(code, q);
      if (nb == std::string::npos) return std::nullopt;  // Lambda etc.
      const std::string name = code.substr(nb, q - nb);
      if (name.rfind("REVTR_", 0) == 0) {
        trailer += name + " ";  // Attribute macro; keep walking back.
        p = nb;
        continue;
      }
      if (kNotNames.count(name)) return std::nullopt;
      FuncDef def;
      def.name = name;
      def.name_pos = nb;
      def.trailer = trailer;
      // `Class::` qualifiers (innermost one names the owner).
      std::size_t r = skip_space_backward(code, nb);
      if (r >= 2 && code[r - 1] == ':' && code[r - 2] == ':') {
        const std::size_t qe = skip_space_backward(code, r - 2);
        const std::size_t qb = ident_begin(code, qe);
        if (qb != std::string::npos) {
          def.qualifier = code.substr(qb, qe - qb);
          r = qb;
          // Swallow any outer `ns::` qualifiers into the boundary scan.
          while (true) {
            const std::size_t r2 = skip_space_backward(code, r);
            if (r2 < 2 || code[r2 - 1] != ':' || code[r2 - 2] != ':') break;
            const std::size_t e2 = skip_space_backward(code, r2 - 2);
            const std::size_t b2 = ident_begin(code, e2);
            if (b2 == std::string::npos) break;
            r = b2;
          }
        }
      }
      // Return type: back to the statement boundary. `::` passes through;
      // a single ':' (access specifier, ctor init list) stops the scan.
      std::size_t b = r;
      while (b > 0) {
        const char bc = code[b - 1];
        if (bc == ';' || bc == '{' || bc == '}') break;
        if (bc == ':') {
          if (b >= 2 && code[b - 2] == ':') {
            b -= 2;
            continue;
          }
          break;
        }
        --b;
      }
      def.return_type = code.substr(b, r - b);
      int d = 0;
      std::size_t close = std::string::npos;
      for (std::size_t j = brace; j < code.size(); ++j) {
        if (code[j] == '{') ++d;
        if (code[j] == '}' && --d == 0) {
          close = j;
          break;
        }
      }
      if (close == std::string::npos) return std::nullopt;
      def.open = brace;
      def.close = close;
      return def;
    }
    if (is_ident_char(c)) {
      const std::size_t b = ident_begin(code, p);
      const std::string word = code.substr(b, p - b);
      if (kTrailerWords.count(word)) {
        trailer += word + " ";
        p = b;
        continue;
      }
      return std::nullopt;  // class X {, namespace x {, do {, else {, X x{.
    }
    return std::nullopt;
  }
}

// Every function definition in the stripped code, filtered down to things
// that plausibly have a return type (constructors, destructors, operators
// and initializer-list fragments are dropped).
std::vector<FuncDef> find_functions(const std::string& code) {
  std::vector<FuncDef> out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '{') continue;
    auto def = function_at(code, i);
    if (!def) continue;
    const std::string& rt = def->return_type;
    const bool blank =
        rt.find_first_not_of(" \t\n") == std::string::npos;
    if (blank || rt.find('(') != std::string::npos ||
        rt.find(')') != std::string::npos ||
        rt.find('~') != std::string::npos ||
        rt.find("operator") != std::string::npos) {
      continue;
    }
    out.push_back(std::move(*def));
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::size_t skip_space_forward(const std::string& code, std::size_t pos,
                               std::size_t end) {
  while (pos < end && std::isspace(static_cast<unsigned char>(code[pos]))) {
    ++pos;
  }
  return pos;
}

// Matching close brace/paren for the opener at `open`, bounded by `end`.
std::size_t match_group(const std::string& code, std::size_t open,
                        std::size_t end, char open_c, char close_c) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    if (code[i] == open_c) ++depth;
    if (code[i] == close_c && --depth == 0) return i;
  }
  return end;
}

// Reads one plain statement starting at `from`: returns the index of its
// terminating ';' (or `end`) and the statement text with the contents of
// brace groups (lambda bodies, init lists) excised — those run elsewhere.
std::pair<std::size_t, std::string> read_statement(const std::string& code,
                                                   std::size_t from,
                                                   std::size_t end) {
  std::string text;
  int parens = 0;
  std::size_t i = from;
  while (i < end) {
    const char c = code[i];
    if (c == '{') {
      i = match_group(code, i, end, '{', '}') + 1;
      text += "{}";
      continue;
    }
    if (c == '(') ++parens;
    if (c == ')' && parens > 0) --parens;
    if (c == ';' && parens == 0) return {i, text};
    text.push_back(c);
    ++i;
  }
  return {end, text};
}

class Linter {
 public:
  // A collected RequestTask method body for the stage passes.
  struct StageMethod {
    std::string file;
    std::string body;           // Stripped text between the braces.
    std::size_t body_line = 0;  // 1-based line of the opening '{'.
  };

  explicit Linter(fs::path root) : root_(std::move(root)) {}

  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report(relative_path(path), 0, "io", "cannot open file");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    lint_source(relative_path(path), buffer.str());
  }

  void collect_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return;  // lint_file reports the IO failure.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    collect_source(relative_path(path), buffer.str());
  }

  // Cross-file collect phase: guarded-member registries for the escape
  // pass and the stage enum / DAG / method bodies for the stage passes.
  // main() runs it over every file before linting any; lint_source also
  // invokes it (idempotently) so single-source self-test fixtures work.
  void collect_source(const std::string& rel, const std::string& raw) {
    if (!collected_.insert(rel).second) return;
    if (rel.rfind("src/", 0) != 0) return;
    const std::string code = strip_comments_and_literals(raw);
    const auto raw_lines = split_lines(raw);

    // Mutex-owning classes and their REVTR_GUARDED_BY members.
    static const std::regex kMutexType(
        R"(\b(util\s*::\s*)?(Mutex|SharedMutex)\b)");
    static const std::regex kGuardedName(
        R"((\w+)\s+REVTR_(PT_)?GUARDED_BY\s*\()");
    for (const auto& span : find_classes(code)) {
      const auto statements = class_statements(code, span);
      bool owns_mutex = false;
      for (const auto& stmt : statements) {
        if (is_data_member(stmt) && std::regex_search(stmt.text, kMutexType)) {
          owns_mutex = true;
          break;
        }
      }
      if (!owns_mutex) continue;
      mutex_classes_.insert(span.name);
      for (const auto& stmt : statements) {
        // Not filtered through is_data_member: the annotation's own parens
        // make annotated members look like function declarations to it.
        std::smatch m;
        if (std::regex_search(stmt.text, m, kGuardedName)) {
          guarded_members_[span.name].insert(m[1].str());
        }
      }
    }

    // Stage enum enumerators (first `enum class Stage` definition wins).
    static const std::regex kStageEnum(R"(\benum\s+class\s+Stage\b)");
    std::smatch enum_match;
    if (stage_enum_.empty() &&
        std::regex_search(code, enum_match, kStageEnum)) {
      const auto pos = static_cast<std::size_t>(enum_match.position());
      const std::size_t open = code.find('{', pos);
      const std::size_t close =
          open == std::string::npos ? std::string::npos : code.find('}', open);
      if (close != std::string::npos) {
        const std::string body = code.substr(open + 1, close - open - 1);
        static const std::regex kEnumerator(R"(\b(k\w+)\b)");
        for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                            kEnumerator);
             it != std::sregex_iterator(); ++it) {
          if (stage_enum_order_.empty()) stage_initial_ = it->str(1);
          stage_enum_order_.push_back(it->str(1));
          stage_enum_[it->str(1)] =
              line_of_pos(code, open + static_cast<std::size_t>(
                                          it->position()));
        }
        stage_enum_file_ = rel;
      }
    }

    // Declared stage DAG: `// lint: stage(kFrom -> kTo, ...)` on raw lines
    // (the declarations live in comments next to the enum).
    static const std::regex kStageDecl(
        R"re(lint:\s*stage\(\s*(\w+)\s*->([^)]*)\))re");
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(raw_lines[i], m, kStageDecl)) continue;
      const std::string node = m[1].str();
      std::set<std::string>& succ = stage_dag_[node];
      const std::string rest = m[2].str();
      static const std::regex kIdent(R"((\w+))");
      for (auto it = std::sregex_iterator(rest.begin(), rest.end(), kIdent);
           it != std::sregex_iterator(); ++it) {
        succ.insert(it->str());
      }
      stage_decl_site_[node] = {rel, i + 1};
    }

    // RequestTask method bodies (out-of-line `RequestTask::f` definitions
    // and inline methods of a class named RequestTask), for the stage
    // transition closure and the span interpreter.
    const auto classes = find_classes(code);
    for (const auto& def : find_functions(code)) {
      std::string owner = def.qualifier;
      if (owner.empty()) {
        for (const auto& span : classes) {
          if (span.open < def.name_pos && def.name_pos < span.close) {
            owner = span.name;  // Innermost enclosing class wins.
          }
        }
      }
      if (owner != "RequestTask") continue;
      StageMethod method;
      method.file = rel;
      method.body = code.substr(def.open + 1, def.close - def.open - 1);
      method.body_line = line_of_pos(code, def.open);
      stage_methods_[def.name] = std::move(method);
    }
    collected_raw_[rel] = raw_lines;
  }

  // The actual pass, separated from file IO so --self-test can feed
  // synthetic sources.
  void lint_source(const std::string& rel, const std::string& raw) {
    collect_source(rel, raw);
    const std::string code = strip_comments_and_literals(raw);
    const auto raw_lines = split_lines(raw);
    const auto code_lines = split_lines(code);

    const bool in_net = rel.rfind("src/net/", 0) == 0;
    const bool in_src = rel.rfind("src/", 0) == 0;
    const bool in_hot = in_src || rel.rfind("bench/", 0) == 0;
    // annotate.h wraps the raw std types and owns the only legal manual
    // lock/unlock calls; every other src/ file obeys the lock rules.
    const bool lock_rules = in_src && rel != "src/util/annotate.h";
    const std::string module = module_of(rel);

    if (in_src && has_extension(fs::path(rel), ".h")) check_header(rel, code);

    // clang-format off
    static const std::regex kRawNew(
        R"((^|[^\w.>])new\s+[\w:<(])");
    static const std::regex kRawDelete(
        R"((^|[^\w])delete(\s*\[\s*\])?\s+[\w:*(])");
    static const std::regex kNarrowingCast(
        R"(static_cast<\s*(std::)?(u?int(8|16|32)_t|(un)?signed\s+char|char|short|(un)?signed\s+short)\s*>)");
    static const std::regex kStdEndl(R"(std\s*::\s*endl)");
    static const std::regex kConstCast(R"(\bconst_cast\s*<)");
    static const std::regex kStdCout(R"(\bstd\s*::\s*cout\b)");
    // Bare printf only: the [^\w] guard keeps fprintf/snprintf/vsnprintf
    // legal, the optional std:: prefix catches <cstdio>'s qualified form.
    static const std::regex kBarePrintf(
        R"((^|[^\w])(std\s*::\s*)?printf\s*\()");
    // Probe-issuing Prober methods called on any identifier naming a prober
    // (prober_, engine_.prober_, a local `probing::Prober& prober`, ...).
    // Non-issuing members (offline_counters, counters) do not match.
    static const std::regex kProbeIssue(
        R"re((\b\w*[Pp]rober\w*\s*(\.|->)|\bProber\s*::\s*)(ping|rr_ping|ts_ping|traceroute)\s*\()re");
    // The stripper blanks string contents, so the include *path* must come
    // from the raw line; the stripped line still proves the directive is
    // not inside a comment.
    static const std::regex kIncludeStripped(R"(^\s*#\s*include\s*"")");
    static const std::regex kIncludeRaw(R"re(^\s*#\s*include\s*"([^"]+)")re");
    // Raw std synchronization vocabulary. condition_variable_any is legal
    // (the \b after condition_variable does not match before '_').
    static const std::regex kStdSync(
        R"(\bstd\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b)");
    // Manual lock-management calls on any object.
    static const std::regex kManualLock(
        R"((\.|->)\s*(unlock_shared|lock_shared|try_lock_shared|try_lock|unlock|lock)\s*\()");
    // clang-format on

    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& line = code_lines[i];
      const std::string& raw_line = i < raw_lines.size() ? raw_lines[i] : line;
      const std::size_t lineno = i + 1;

      if (std::regex_search(line, kRawNew) && !allows(raw_line, "raw-new-delete")) {
        report(rel, lineno, "raw-new-delete",
               "raw new; use std::make_unique or a container");
      }
      if (std::regex_search(line, kRawDelete) &&
          !allows(raw_line, "raw-new-delete")) {
        report(rel, lineno, "raw-new-delete",
               "raw delete; owners must use RAII");
      }
      if (in_net && std::regex_search(line, kNarrowingCast) &&
          !allows(raw_line, "narrowing-cast")) {
        report(rel, lineno, "narrowing-cast",
               "unchecked narrowing static_cast in src/net/; use "
               "util::checked_cast or util::truncate_cast");
      }
      if (in_hot && std::regex_search(line, kStdEndl) &&
          !allows(raw_line, "std-endl")) {
        report(rel, lineno, "std-endl",
               "std::endl flushes per line; use '\\n'");
      }
      if (in_src && std::regex_search(line, kConstCast) &&
          !allows(raw_line, "const-cast")) {
        report(rel, lineno, "const-cast",
               "const_cast in src/; mutation behind a const interface hides "
               "data races (see Distribution) — use mutable members with "
               "explicit synchronization");
      }
      if (in_src &&
          (std::regex_search(line, kStdCout) ||
           std::regex_search(line, kBarePrintf)) &&
          !allows(raw_line, "bare-output")) {
        report(rel, lineno, "bare-output",
               "bare stdout write in src/; library code returns data or "
               "exports it via src/obs/ — printing belongs to tools/");
      }
      if (module == "core" && std::regex_search(line, kProbeIssue) &&
          !allows(raw_line, "core-probe-issue")) {
        report(rel, lineno, "core-probe-issue",
               "direct probe-issuing Prober call in src/core/; the staged "
               "engine must yield a sched::ProbeDemand so the scheduler can "
               "coalesce and pace it (all wire probes funnel through "
               "sched::execute_demand)");
      }
      if (!module.empty() && std::regex_search(line, kIncludeStripped)) {
        std::smatch match;
        if (std::regex_search(raw_line, match, kIncludeRaw)) {
          check_include(rel, lineno, module, match[1].str(), raw_line);
        }
      }
      if (lock_rules && std::regex_search(line, kStdSync) &&
          !allows(raw_line, "mutex-capability")) {
        report(rel, lineno, "mutex-capability",
               "raw std synchronization type in src/; use the annotated "
               "util::Mutex / util::SharedMutex and the RAII guards of "
               "util/annotate.h so -Wthread-safety can track the capability");
      }
      if (lock_rules && std::regex_search(line, kManualLock) &&
          !allows(raw_line, "raii-guard")) {
        report(rel, lineno, "raii-guard",
               "manual lock()/unlock() call in src/; scope the critical "
               "section with MutexLock/SharedLock/ExclusiveLock so no "
               "early return or exception can leak a held mutex");
      }
    }

    if (in_src) check_switches(rel, code, raw_lines);
    if (lock_rules) {
      check_guarded_members(rel, code, raw_lines);
      check_lock_order(rel, code, raw_lines, module);
      check_guard_escape(rel, code, raw_lines);
    }
    if (module == "net" || module == "probing") {
      check_taint(rel, code_lines, raw_lines);
    }
    static const std::regex kStageDispatch(R"(\bcase\s+Stage\s*::)");
    if (in_src && std::regex_search(code, kStageDispatch)) {
      check_stage_machine();
    }
  }

  int finish(bool json = false) {
    // Backstop: a cycle among modules can only appear if the rank table is
    // edited into inconsistency, but it is cheap to prove there is none.
    if (const auto cycle = find_cycle(module_edges_)) {
      std::string path;
      for (const auto& node : *cycle) {
        if (!path.empty()) path += " -> ";
        path += node;
      }
      report("src", 0, "layering", "module include cycle: " + path);
    }
    std::size_t unwaived = 0;
    for (const auto& v : violations_) {
      if (!v.waived) ++unwaived;
    }
    if (json) {
      // Machine-readable findings (waived ones included, marked) so CI can
      // annotate diffs; the exit code still reflects unwaived only.
      std::printf("[");
      const char* sep = "\n";
      for (const auto& v : violations_) {
        std::printf(
            "%s  {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
            "\"message\": \"%s\", \"waived\": %s}",
            sep, json_escape(v.file).c_str(), v.line,
            json_escape(v.rule).c_str(), json_escape(v.message).c_str(),
            v.waived ? "true" : "false");
        sep = ",\n";
      }
      std::printf("%s]\n", violations_.empty() ? "" : "\n");
      return unwaived == 0 ? 0 : 1;
    }
    if (unwaived == 0) {
      std::printf("revtr-lint: ok (%zu files)\n", files_checked_);
      return 0;
    }
    for (const auto& v : violations_) {
      if (v.waived) continue;
      if (v.line == 0) {
        std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                     v.message.c_str());
      } else {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                     v.rule.c_str(), v.message.c_str());
      }
    }
    std::fprintf(stderr, "revtr-lint: %zu violation(s) in %zu files\n",
                 unwaived, files_checked_);
    return 1;
  }

  void note_file() { ++files_checked_; }
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  void check_header(const std::string& rel, const std::string& code) {
    if (code.find("#pragma once") == std::string::npos) {
      report(rel, 0, "header-hygiene", "missing #pragma once");
    }
    static const std::regex kRevtrNamespace(R"(namespace\s+revtr\b)");
    if (!std::regex_search(code, kRevtrNamespace)) {
      report(rel, 0, "header-hygiene",
             "public header must declare the revtr namespace");
    }
  }

  void check_include(const std::string& rel, std::size_t lineno,
                     const std::string& module, const std::string& target,
                     const std::string& raw_line) {
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) return;  // Not a module-qualified path.
    const std::string to_module = target.substr(0, slash);
    if (to_module == module) return;
    module_edges_.insert({module, to_module});
    if (allows(raw_line, "layering")) return;

    const auto& ranks = module_ranks();
    const auto from_rank = ranks.find(module);
    const auto to_rank = ranks.find(to_module);
    if (from_rank == ranks.end()) {
      report(rel, lineno, "layering",
             "module '" + module +
                 "' is not in the module DAG; add it to module_ranks() in "
                 "tools/revtr_lint.cpp");
      return;
    }
    if (to_rank == ranks.end()) {
      report(rel, lineno, "layering",
             "included module '" + to_module + "' is not in the module DAG");
      return;
    }
    if (to_rank->second >= from_rank->second) {
      report(rel, lineno, "layering",
             "upward include: " + module + " (rank " +
                 std::to_string(from_rank->second) + ") must not include " +
                 to_module + " (rank " + std::to_string(to_rank->second) +
                 "); the module DAG is util -> net -> topology -> routing -> "
                 "sim -> probing -> alias/asmap/sched -> atlas/vpselect -> "
                 "core -> analysis -> eval/service");
    }
  }

  void check_switches(const std::string& rel, const std::string& code,
                      const std::vector<std::string>& raw_lines) {
    static const std::regex kEnumCase(R"(\bcase\s+\w+\s*::)");
    static const std::regex kDefaultLabel(R"(\bdefault\s*:)");
    const auto switches = find_switches(code);
    for (const auto& span : switches) {
      const std::string body = own_body(code, span, switches);
      if (!std::regex_search(body, kEnumCase) ||
          !std::regex_search(body, kDefaultLabel)) {
        continue;
      }
      const std::size_t lineno =
          1 + static_cast<std::size_t>(
                  std::count(code.begin(),
                             code.begin() + static_cast<long>(span.keyword),
                             '\n'));
      const std::string& raw_line =
          lineno - 1 < raw_lines.size() ? raw_lines[lineno - 1] : std::string();
      if (allows(raw_line, "enum-switch-default")) continue;
      report(rel, lineno, "enum-switch-default",
             "switch over an enum class has a default: label, which would "
             "swallow new enumerators; enumerate every case so -Wswitch "
             "stays exhaustive");
    }
  }

  // guarded-member: within every class that owns a util::Mutex /
  // util::SharedMutex, each mutable data member must be attributed to its
  // mutex with REVTR_GUARDED_BY or carry an explicit lock-free waiver.
  void check_guarded_members(const std::string& rel, const std::string& code,
                             const std::vector<std::string>& raw_lines) {
    static const std::regex kMutexType(
        R"(\b(util\s*::\s*)?(Mutex|SharedMutex)\b)");
    static const std::regex kAtomicTop(R"(\batomic\b)");
    static const std::regex kConstTop(R"(\bconst\b)");
    static const std::regex kMutable(R"(^\s*mutable\b)");
    static const std::regex kGuardedAnno(R"(\bREVTR_(PT_)?GUARDED_BY\s*\()");
    static const std::regex kLastName(R"((\w+)[^\w]*$)");

    for (const auto& span : find_classes(code)) {
      const auto statements = class_statements(code, span);
      bool owns_mutex = false;
      for (const auto& stmt : statements) {
        if (is_data_member(stmt) && std::regex_search(stmt.text, kMutexType)) {
          owns_mutex = true;
          break;
        }
      }
      if (!owns_mutex) continue;
      for (const auto& stmt : statements) {
        if (!is_data_member(stmt)) continue;
        if (std::regex_search(stmt.text, kMutexType)) continue;  // The locks.
        if (stmt.text.find("condition_variable_any") != std::string::npos) {
          continue;  // Parks on the guard; stateless on its own.
        }
        if (std::regex_search(stmt.top, kAtomicTop)) continue;
        if (stmt.top.find('&') != std::string::npos) continue;  // Reference.
        // const members are immutable after construction — unless marked
        // mutable, which reopens the race.
        if (std::regex_search(stmt.top, kConstTop) &&
            !std::regex_search(stmt.top, kMutable)) {
          continue;
        }
        if (std::regex_search(stmt.text, kGuardedAnno)) continue;
        bool waived = false;
        for (std::size_t l = stmt.line_begin;
             l <= stmt.line_end && l <= raw_lines.size(); ++l) {
          const std::string& raw = raw_lines[l - 1];
          if (raw.find("lint: lock-free(") != std::string::npos ||
              allows(raw, "guarded-member")) {
            waived = true;
            break;
          }
        }
        if (waived) continue;
        // Name = last identifier once initializers are cut away.
        std::string top = stmt.top;
        if (const auto eq = top.find('='); eq != std::string::npos) {
          top.resize(eq);
        }
        if (const auto brace = top.find('{'); brace != std::string::npos) {
          top.resize(brace);
        }
        std::smatch name;
        const std::string member =
            std::regex_search(top, name, kLastName) ? name[1].str() : top;
        report(rel, stmt.line_begin, "guarded-member",
               "member '" + member + "' of mutex-owning class '" + span.name +
                   "' has no REVTR_GUARDED_BY annotation; attribute it to "
                   "its mutex or waive with `// lint: lock-free(<reason>)`");
      }
    }
  }

  // lock-order: every RAII-guard acquisition must name a mutex with a
  // declared rank, and while a guard is live any further acquisition must
  // take a strictly higher rank. Guard lifetimes are tracked lexically by
  // brace depth — exactly the RAII scoping the raii-guard rule enforces.
  void check_lock_order(const std::string& rel, const std::string& code,
                        const std::vector<std::string>& raw_lines,
                        const std::string& module) {
    static const std::regex kGuard(
        R"(\b(MutexLock|SharedLock|ExclusiveLock|ScopedLock2)\s+\w+\s*(\(|\{))");
    std::vector<std::pair<std::size_t, std::size_t>> sites;  // pos, open.
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kGuard);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position());
      sites.push_back(
          {pos, pos + static_cast<std::size_t>(it->length()) - 1});
    }
    if (sites.empty()) return;

    struct Held {
      int depth = 0;
      int rank = 0;
      std::string name;
    };
    std::vector<Held> held;
    std::size_t next = 0;
    int depth = 0;
    std::size_t line = 1;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] == '\n') {
        ++line;
        continue;
      }
      if (next < sites.size() && i == sites[next].first) {
        const std::size_t open = sites[next].second;
        ++next;
        // Argument list up to the matching close (parens or brace init).
        const char open_c = code[open];
        const char close_c = open_c == '(' ? ')' : '}';
        int arg_depth = 1;
        std::size_t close = open;
        std::vector<std::string> args(1);
        for (std::size_t j = open + 1; j < code.size() && arg_depth > 0; ++j) {
          const char c = code[j];
          if (c == open_c) ++arg_depth;
          if (c == close_c && --arg_depth == 0) {
            close = j;
            break;
          }
          if (c == ',' && arg_depth == 1) {
            args.emplace_back();
          } else {
            args.back().push_back(c);
          }
        }
        const std::size_t site_line = line;
        line += static_cast<std::size_t>(
            std::count(code.begin() + static_cast<long>(i),
                       code.begin() + static_cast<long>(close), '\n'));
        i = close;  // Skip the argument list (incl. any init braces).

        const std::string& raw_line = site_line - 1 < raw_lines.size()
                                          ? raw_lines[site_line - 1]
                                          : std::string();
        if (allows(raw_line, "lock-order")) continue;

        const auto& order = lock_order_table();
        int rank = -1;
        std::string name;
        bool known = true;
        for (const auto& arg : args) {
          const std::string mutex_name = normalize_mutex_expr(arg);
          const auto entry = order.find({module, mutex_name});
          if (entry == order.end()) {
            report(rel, site_line, "lock-order",
                   "mutex '" + mutex_name + "' in module '" + module +
                       "' has no declared rank; add it to lock_order_table() "
                       "in tools/revtr_lint.cpp (the declared order is "
                       "util < obs < sched < vpselect/atlas)");
            known = false;
            continue;
          }
          if (entry->second > rank) {
            rank = entry->second;
            name = mutex_name;
          }
        }
        if (!known) continue;
        if (!held.empty() && rank <= held.back().rank) {
          report(rel, site_line, "lock-order",
                 "acquiring '" + name + "' (rank " + std::to_string(rank) +
                     ") while holding '" + held.back().name + "' (rank " +
                     std::to_string(held.back().rank) +
                     "); nested acquisitions must take strictly increasing "
                     "ranks — util < obs < sched < vpselect/atlas (see "
                     "lock_order_table())");
          continue;
        }
        held.push_back(Held{depth, rank, name});
        continue;
      }
      if (code[i] == '{') ++depth;
      if (code[i] == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
    }
  }

  // --- Untrusted-input taint (src/net, src/probing). -----------------------
  //
  // Per-line forward scan with brace-depth scoping. Sources taint a local;
  // checked_cast/truncate_cast on the right-hand side or an adjacent bounds
  // comparison (if/while/REVTR_CHECK) sanitizes it; using a still-tainted
  // value as an index, allocation size, or loop bound is a violation.
  void check_taint(const std::string& rel,
                   const std::vector<std::string>& code_lines,
                   const std::vector<std::string>& raw_lines) {
    static const std::regex kSource(
        R"(\.\s*(u8|u16|u32|peek_u8)\s*\(|\breply\b\s*(->|\.))");
    static const std::regex kCast(R"(\b(checked_cast|truncate_cast)\s*<)");
    static const std::regex kAssign(R"((^|[^.\w>])([A-Za-z_]\w*)\s*=(?!=))");
    static const std::regex kSanitizerCtx(
        R"(\bif\s*\(|\bwhile\s*\(|\bREVTR_D?CHECK\s*\()");
    static const std::regex kForHead(R"(\bfor\s*\()");
    std::map<std::string, int> tainted;  // name -> declaration depth
    int depth = 0;
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& line = code_lines[i];
      const std::string& raw = i < raw_lines.size() ? raw_lines[i] : line;
      const std::size_t lineno = i + 1;
      int opens = 0;
      int closes = 0;
      for (const char c : line) {
        if (c == '{') ++opens;
        if (c == '}') ++closes;
      }
      const int decl_depth = depth + opens;

      // Assignments: the left-hand side inherits the right-hand side's
      // taint state (a sanitizing cast anywhere on the RHS clears it).
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kAssign);
           it != std::sregex_iterator(); ++it) {
        const std::string lhs = (*it)[2].str();
        const std::string rhs =
            line.substr(static_cast<std::size_t>(it->position()) +
                        static_cast<std::size_t>(it->length()));
        bool taint = false;
        if (!std::regex_search(rhs, kCast)) {
          if (std::regex_search(rhs, kSource)) {
            taint = true;
          } else {
            for (const auto& [name, d] : tainted) {
              if (word_in(rhs, name)) {
                taint = true;
                break;
              }
            }
          }
        }
        if (taint) {
          tainted[lhs] = decl_depth;
        } else {
          tainted.erase(lhs);
        }
      }

      // A bounds comparison adjacent to the value sanitizes it from here
      // on. `<<`/`>>`/`->` are stripped first so stream operators and
      // member arrows cannot fake a comparator (std::regex has no
      // lookbehind to do this in the pattern itself).
      if (!tainted.empty() && std::regex_search(line, kSanitizerCtx)) {
        std::string flat = line;
        for (const char* op : {"<<", ">>", "->"}) {
          std::size_t p = 0;
          while ((p = flat.find(op, p)) != std::string::npos) flat.erase(p, 2);
        }
        for (auto it = tainted.begin(); it != tainted.end();) {
          const std::string& name = it->first;
          const std::regex left(
              "\\b" + name +
              R"(\b(\s*\.\s*\w+\s*\(\s*\))?\s*(==|!=|<=|>=|<|>))");
          const std::regex right(R"((==|!=|<=|>=|<|>)\s*)" + name + "\\b");
          if (std::regex_search(flat, left) ||
              std::regex_search(flat, right)) {
            it = tainted.erase(it);
          } else {
            ++it;
          }
        }
      }

      // Sinks: subscript, size-taking container calls, loop bounds.
      for (const auto& [name, d] : tainted) {
        const std::regex subscript("\\[[^\\[\\]]*\\b" + name +
                                   "\\b[^\\[\\]]*\\]");
        const std::regex alloc(
            R"(\.\s*(resize|reserve|assign|substr|subspan|first|last)\s*\([^()]*\b)" +
            name + "\\b");
        const std::regex loop_bound(R"(;[^;]*[<>]=?\s*\b)" + name + "\\b");
        const bool sink =
            std::regex_search(line, subscript) ||
            std::regex_search(line, alloc) ||
            (std::regex_search(line, kForHead) &&
             std::regex_search(line, loop_bound));
        if (!sink) continue;
        const bool waived = allows(raw, "taint") ||
                            raw.find("lint: trusted(") != std::string::npos;
        report(rel, lineno, "taint",
               "network-derived value '" + name +
                   "' used as an index, length, or loop bound without a "
                   "bounds check; sanitize with checked_cast/truncate_cast "
                   "or an adjacent comparison (if/REVTR_CHECK), or waive "
                   "with `// lint: trusted(<reason>)`",
               waived);
      }

      depth += opens - closes;
      for (auto it = tainted.begin(); it != tainted.end();) {
        if (it->second > depth) {
          it = tainted.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // --- Guarded-state escape (all mutex-owning classes). ---------------------
  //
  // A method of a mutex-owning class must not return a reference, pointer,
  // iterator, or view into a REVTR_GUARDED_BY member (or a local derived
  // from one): the lock is released on return, so the caller dereferences
  // unguarded state. Methods annotated REVTR_REQUIRES shift that duty to
  // the caller and are exempt; `// lint: stable-ref(<reason>)` waives a
  // return whose target is documented as stable (e.g. node-based map
  // values never moved or erased).
  void check_guard_escape(const std::string& rel, const std::string& code,
                          const std::vector<std::string>& raw_lines) {
    if (mutex_classes_.empty()) return;
    static const std::regex kAssign(R"((^|[^.\w>])([A-Za-z_]\w*)\s*=(?!=))");
    static const std::regex kReturn(R"(\breturn\b)");
    const auto classes = find_classes(code);
    for (const auto& def : find_functions(code)) {
      std::string owner = def.qualifier;
      if (owner.empty()) {
        for (const auto& span : classes) {
          if (span.open < def.name_pos && def.name_pos < span.close) {
            owner = span.name;  // Innermost enclosing class wins.
          }
        }
      }
      if (owner.empty() || mutex_classes_.count(owner) == 0) continue;
      const auto members_it = guarded_members_.find(owner);
      if (members_it == guarded_members_.end()) continue;
      const std::string& rt = def.return_type;
      const bool flaggy = rt.find('&') != std::string::npos ||
                          rt.find('*') != std::string::npos ||
                          word_in(rt, "iterator") || word_in(rt, "span") ||
                          word_in(rt, "string_view");
      if (!flaggy) continue;
      if (def.trailer.find("REVTR_REQUIRES") != std::string::npos ||
          def.trailer.find("REVTR_SHARED_REQUIRES") != std::string::npos) {
        continue;  // The caller holds the lock by annotated contract.
      }
      const auto line_waived = [&](std::size_t lineno) {
        if (lineno == 0 || lineno > raw_lines.size()) return false;
        const std::string& raw = raw_lines[lineno - 1];
        return raw.find("lint: stable-ref(") != std::string::npos ||
               allows(raw, "guard-escape");
      };
      const std::size_t sig_line = line_of_pos(code, def.name_pos);
      const bool sig_waived =
          line_waived(sig_line) || (sig_line > 1 && line_waived(sig_line - 1));

      const std::string body =
          code.substr(def.open + 1, def.close - def.open - 1);
      // Guarded members plus locals assigned from them (auto it =
      // map_.find(...) is as much an escape hatch as map_ itself).
      std::set<std::string> derived = members_it->second;
      for (auto it = std::sregex_iterator(body.begin(), body.end(), kAssign);
           it != std::sregex_iterator(); ++it) {
        const auto rhs_begin = static_cast<std::size_t>(it->position()) +
                               static_cast<std::size_t>(it->length());
        std::size_t rhs_end = body.find(';', rhs_begin);
        if (rhs_end == std::string::npos) rhs_end = body.size();
        const std::string rhs = body.substr(rhs_begin, rhs_end - rhs_begin);
        for (const auto& name : derived) {
          if (word_in(rhs, name)) {
            derived.insert((*it)[2].str());
            break;
          }
        }
      }
      for (auto it = std::sregex_iterator(body.begin(), body.end(), kReturn);
           it != std::sregex_iterator(); ++it) {
        const auto pos = static_cast<std::size_t>(it->position());
        std::size_t end = body.find(';', pos);
        if (end == std::string::npos) end = body.size();
        const std::string expr = body.substr(pos, end - pos);
        std::string leaked;
        for (const auto& name : derived) {
          if (word_in(expr, name)) {
            leaked = name;
            break;
          }
        }
        if (leaked.empty()) continue;
        const std::size_t lineno = line_of_pos(code, def.open + 1 + pos);
        report(rel, lineno, "guard-escape",
               "'" + owner + "::" + def.name +
                   "' returns a reference/pointer into guarded state ('" +
                   leaked +
                   "' is REVTR_GUARDED_BY-protected or derived from it); "
                   "the lock is released when the caller uses it — return "
                   "a copy or a shared_ptr<const T> snapshot, annotate "
                   "REVTR_REQUIRES, or waive with "
                   "`// lint: stable-ref(<reason>)`",
               sig_waived || line_waived(lineno));
      }
    }
  }

  // --- Stage-graph conformance + span balance (RequestTask). ----------------

  // Live abstract states for the span interpreter: (open-span balance,
  // current stage).
  using SpanStates = std::set<std::pair<int, std::string>>;

  struct SpanSimCtx {
    std::set<std::string> call_stack;  // Recursion guard for inlining.
    std::set<std::string> reported;    // Dedup across the fixpoint.
  };

  void span_violation(const StageMethod& m, std::size_t pos,
                      const std::string& msg, SpanSimCtx& ctx) {
    const std::size_t lineno =
        m.body_line +
        static_cast<std::size_t>(std::count(
            m.body.begin(), m.body.begin() + static_cast<long>(pos), '\n'));
    const std::string key = m.file + ":" + std::to_string(lineno) + ":" + msg;
    if (!ctx.reported.insert(key).second) return;
    const bool waived = allows(collected_raw_line(m.file, lineno),
                               "stage-span");
    report(m.file, lineno, "stage-span", msg, waived);
  }

  // Applies one statement's effects: open_stage/close_stage adjust the
  // balance, calls to collected RequestTask methods are inlined, and a
  // `stage_ = Stage::kX` assignment re-targets the stage component.
  SpanStates sim_stmt(const StageMethod& m, const std::string& text,
                      std::size_t pos, SpanStates cur, SpanSimCtx& ctx) {
    static const std::regex kCall(R"((^|[^.\w:>])([A-Za-z_]\w*)\s*\()");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[2].str();
      if (name == "open_stage") {
        SpanStates next;
        for (const auto& state : cur) {
          if (state.first >= 1) {
            span_violation(m, pos,
                           "open_stage while a stage span is already open; "
                           "close_stage the previous span first",
                           ctx);
            next.insert(state);
          } else {
            next.insert({state.first + 1, state.second});
          }
        }
        cur = std::move(next);
      } else if (name == "close_stage") {
        SpanStates next;
        for (const auto& state : cur) {
          if (state.first <= 0) {
            span_violation(m, pos, "close_stage without an open stage span",
                           ctx);
            next.insert(state);
          } else {
            next.insert({state.first - 1, state.second});
          }
        }
        cur = std::move(next);
      } else if (name != "annotate_stage" && stage_methods_.count(name) > 0) {
        cur = sim_method(name, cur, ctx);
      }
    }
    static const std::regex kStageAssign(R"(\bstage_\s*=(?!=))");
    std::smatch am;
    if (std::regex_search(text, am, kStageAssign)) {
      const std::string rhs =
          text.substr(static_cast<std::size_t>(am.position()) +
                      static_cast<std::size_t>(am.length()));
      static const std::regex kStageToken(R"(\bStage\s*::\s*(k\w+))");
      std::set<std::string> targets;
      for (auto it = std::sregex_iterator(rhs.begin(), rhs.end(),
                                          kStageToken);
           it != std::sregex_iterator(); ++it) {
        targets.insert(it->str(1));
      }
      if (!targets.empty()) {
        SpanStates next;
        for (const auto& state : cur) {
          for (const auto& target : targets) {
            next.insert({state.first, target});
          }
        }
        cur = std::move(next);
      }
    }
    return cur;
  }

  // Interprets exactly one statement or control construct starting at `i`
  // in m.body (bounded by `e`), updating `cur`; `return` moves the live
  // states into `exits`. Returns the index just past the construct.
  std::size_t sim_one(const StageMethod& m, std::size_t i, std::size_t e,
                      SpanStates& cur, SpanStates& exits, SpanSimCtx& ctx) {
    const std::string& body = m.body;
    i = skip_space_forward(body, i, e);
    if (i >= e) return e;
    const char c = body[i];
    if (c == '{') {
      const std::size_t close = match_group(body, i, e, '{', '}');
      std::size_t j = i + 1;
      while (j < close) j = sim_one(m, j, close, cur, exits, ctx);
      return close + 1;
    }
    if (c == '}' || c == ';') return i + 1;
    if (is_ident_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t we = i;
      while (we < e && is_ident_char(body[we])) ++we;
      const std::string word = body.substr(i, we - i);
      if (word == "if") {
        const std::size_t po = body.find('(', we);
        if (po == std::string::npos || po >= e) return e;
        const std::size_t pc = match_group(body, po, e, '(', ')');
        cur = sim_stmt(m, body.substr(po + 1, pc - po - 1), i, cur, ctx);
        SpanStates then_out;
        std::size_t j = sim_unit(m, pc + 1, e, cur, then_out, exits, ctx);
        const std::size_t k = skip_space_forward(body, j, e);
        if (k + 4 <= e && body.compare(k, 4, "else") == 0 &&
            (k + 4 == e || !is_ident_char(body[k + 4]))) {
          SpanStates else_out;
          j = sim_unit(m, k + 4, e, cur, else_out, exits, ctx);
          then_out.insert(else_out.begin(), else_out.end());
        } else {
          then_out.insert(cur.begin(), cur.end());  // Not-taken branch.
        }
        cur = std::move(then_out);
        return j;
      }
      if (word == "while" || word == "for" || word == "switch") {
        const std::size_t po = body.find('(', we);
        if (po == std::string::npos || po >= e) return e;
        const std::size_t pc = match_group(body, po, e, '(', ')');
        cur = sim_stmt(m, body.substr(po + 1, pc - po - 1), i, cur, ctx);
        SpanStates body_out;
        const std::size_t j =
            sim_unit(m, pc + 1, e, cur, body_out, exits, ctx);
        if (word == "switch") {
          cur = std::move(body_out);  // Linear over the labelled body.
        } else {
          cur.insert(body_out.begin(), body_out.end());  // 0-or-1 iteration.
        }
        return j;
      }
      if (word == "do") {
        SpanStates body_out;
        std::size_t j = sim_unit(m, we, e, cur, body_out, exits, ctx);
        cur = std::move(body_out);
        const std::size_t k = skip_space_forward(body, j, e);
        if (k + 5 <= e && body.compare(k, 5, "while") == 0) {
          const std::size_t sc = body.find(';', k);
          j = sc == std::string::npos || sc >= e ? e : sc + 1;
        }
        return j;
      }
      if (word == "return") {
        const auto stmt = read_statement(body, i, e);
        cur = sim_stmt(m, stmt.second, i, cur, ctx);
        exits.insert(cur.begin(), cur.end());
        cur.clear();
        return stmt.first + 1;
      }
      if (word == "case") {
        std::size_t j = we;
        while (j < e) {
          if (body[j] == ':') {
            if (j + 1 < e && body[j + 1] == ':') {
              j += 2;
              continue;
            }
            break;
          }
          ++j;
        }
        return j + 1;
      }
      if (word == "default") {
        const std::size_t j = body.find(':', we);
        return j == std::string::npos || j >= e ? e : j + 1;
      }
      if (word == "break" || word == "continue") {
        const std::size_t j = body.find(';', we);
        return j == std::string::npos || j >= e ? e : j + 1;
      }
    }
    const auto stmt = read_statement(body, i, e);
    cur = sim_stmt(m, stmt.second, i, cur, ctx);
    return stmt.first + 1;
  }

  // One unit for an if/else/loop body: a braced block or a single
  // statement (which may itself be another `if`, giving else-if chains).
  std::size_t sim_unit(const StageMethod& m, std::size_t i, std::size_t e,
                       const SpanStates& in, SpanStates& out,
                       SpanStates& exits, SpanSimCtx& ctx) {
    const std::string& body = m.body;
    i = skip_space_forward(body, i, e);
    if (i >= e) {
      out = in;
      return e;
    }
    SpanStates cur = in;
    std::size_t j;
    if (body[i] == '{') {
      const std::size_t close = match_group(body, i, e, '{', '}');
      j = i + 1;
      while (j < close) j = sim_one(m, j, close, cur, exits, ctx);
      j = close + 1;
    } else {
      j = sim_one(m, i, e, cur, exits, ctx);
    }
    out = std::move(cur);
    return j;
  }

  // Inlines a collected method: returns the union of its return-exits and
  // fall-off states. Unknown or recursive callees pass states through.
  SpanStates sim_method(const std::string& name, const SpanStates& in,
                        SpanSimCtx& ctx) {
    const auto it = stage_methods_.find(name);
    if (it == stage_methods_.end() || !ctx.call_stack.insert(name).second) {
      return in;
    }
    const StageMethod& m = it->second;
    SpanStates exits;
    SpanStates cur = in;
    std::size_t i = 0;
    const std::size_t e = m.body.size();
    while (i < e) i = sim_one(m, i, e, cur, exits, ctx);
    ctx.call_stack.erase(name);
    exits.insert(cur.begin(), cur.end());
    return exits;
  }

  // Runs once per tree: checks the declared stage DAG against the enum,
  // Stage-switch exhaustiveness, every stage_ assignment reachable from a
  // stage's handler against the DAG, and open/close span balance over all
  // paths via an abstract interpretation from the initial stage.
  void check_stage_machine() {
    if (stage_checked_) return;
    stage_checked_ = true;
    if (stage_enum_.empty()) return;

    // (a) Declared DAG <-> enum conformance, both directions.
    if (stage_dag_.empty()) {
      report(stage_enum_file_, 0, "stage-graph",
             "enum class Stage has no declared stage DAG; declare the legal "
             "transitions with `// lint: stage(kFrom -> kTo, ...)` comments "
             "next to the enumerators");
      return;
    }
    for (const auto& [name, line] : stage_enum_) {
      if (stage_dag_.count(name) > 0) continue;
      report(stage_enum_file_, line, "stage-graph",
             "stage '" + name + "' has no `// lint: stage(" + name +
                 " -> ...)` declaration (terminal stages declare an empty "
                 "successor list)");
    }
    for (const auto& [node, succ] : stage_dag_) {
      const auto& site = stage_decl_site_[node];
      if (stage_enum_.count(node) == 0) {
        report(site.first, site.second, "stage-graph",
               "declared stage '" + node + "' is not a Stage enumerator");
      }
      for (const auto& s : succ) {
        if (stage_enum_.count(s) == 0) {
          report(site.first, site.second, "stage-graph",
                 "declared successor '" + s + "' of '" + node +
                     "' is not a Stage enumerator");
        }
      }
    }

    // (b) Dispatch switches: exhaustiveness + the stage -> handler map.
    static const std::regex kCaseStage(R"(\bcase\s+Stage\s*::\s*(k\w+)\s*:)");
    std::map<std::string, std::string> handler;
    for (const auto& [mname, method] : stage_methods_) {
      const auto switches = find_switches(method.body);
      for (const auto& span : switches) {
        const std::string sbody = own_body(method.body, span, switches);
        if (!std::regex_search(sbody, kCaseStage)) continue;
        struct Label {
          std::string name;
          std::size_t end = 0;    // Just past the label's ':'.
          std::size_t start = 0;  // The label's own position.
        };
        std::vector<Label> labels;
        std::set<std::string> named;
        for (auto it =
                 std::sregex_iterator(sbody.begin(), sbody.end(), kCaseStage);
             it != std::sregex_iterator(); ++it) {
          Label label;
          label.name = (*it)[1].str();
          label.start = static_cast<std::size_t>(it->position());
          label.end = label.start + static_cast<std::size_t>(it->length());
          named.insert(label.name);
          labels.push_back(std::move(label));
        }
        const std::size_t switch_line =
            method.body_line +
            static_cast<std::size_t>(std::count(
                method.body.begin(),
                method.body.begin() + static_cast<long>(span.keyword), '\n'));
        if (!allows(collected_raw_line(method.file, switch_line),
                    "stage-graph")) {
          for (const auto& [ename, eline] : stage_enum_) {
            if (named.count(ename) > 0) continue;
            report(method.file, switch_line, "stage-graph",
                   "switch over Stage in '" + mname + "' does not handle '" +
                       ename + "'; Stage switches must be exhaustive");
          }
        }
        // Fall-through label groups map to the first collected-method call
        // in their shared segment; REVTR_CHECK/break-only segments (the
        // wrong-phase guards) map to nothing.
        static const std::regex kCall(R"((^|[^.\w:>])([A-Za-z_]\w*)\s*\()");
        std::vector<std::string> pending;
        for (std::size_t li = 0; li < labels.size(); ++li) {
          pending.push_back(labels[li].name);
          const std::size_t seg_end =
              li + 1 < labels.size() ? labels[li + 1].start : sbody.size();
          const std::string segment =
              sbody.substr(labels[li].end, seg_end - labels[li].end);
          if (segment.find_first_not_of(" \t\n") == std::string::npos) {
            continue;  // Pure fall-through.
          }
          for (auto it = std::sregex_iterator(segment.begin(), segment.end(),
                                              kCall);
               it != std::sregex_iterator(); ++it) {
            const std::string callee = (*it)[2].str();
            if (stage_methods_.count(callee) > 0) {
              for (const auto& p : pending) handler[p] = callee;
              break;
            }
          }
          pending.clear();
        }
      }
    }

    // (c) Transition conformance: every `stage_ =` assignment reachable
    // from a stage's handler (call-graph closure) must target a declared
    // successor of that stage.
    static const std::regex kCall(R"((^|[^.\w:>])([A-Za-z_]\w*)\s*\()");
    static const std::regex kStageAssign(R"(\bstage_\s*=(?!=))");
    static const std::regex kStageToken(R"(\bStage\s*::\s*(k\w+))");
    std::set<std::string> transition_reported;
    for (const auto& [stage, hname] : handler) {
      const auto succ_it = stage_dag_.find(stage);
      static const std::set<std::string> kNoSucc;
      const std::set<std::string>& succ =
          succ_it == stage_dag_.end() ? kNoSucc : succ_it->second;
      std::set<std::string> seen;
      std::vector<std::string> work{hname};
      while (!work.empty()) {
        const std::string mname = work.back();
        work.pop_back();
        if (!seen.insert(mname).second) continue;
        const auto mit = stage_methods_.find(mname);
        if (mit == stage_methods_.end()) continue;
        const std::string& mbody = mit->second.body;
        for (auto it =
                 std::sregex_iterator(mbody.begin(), mbody.end(), kCall);
             it != std::sregex_iterator(); ++it) {
          const std::string callee = (*it)[2].str();
          if (stage_methods_.count(callee) > 0) work.push_back(callee);
        }
        for (auto it = std::sregex_iterator(mbody.begin(), mbody.end(),
                                            kStageAssign);
             it != std::sregex_iterator(); ++it) {
          const auto pos = static_cast<std::size_t>(it->position());
          std::size_t end = mbody.find(';', pos);
          if (end == std::string::npos) end = mbody.size();
          const std::string stmt = mbody.substr(pos, end - pos);
          const std::size_t lineno =
              mit->second.body_line +
              static_cast<std::size_t>(std::count(
                  mbody.begin(), mbody.begin() + static_cast<long>(pos),
                  '\n'));
          if (allows(collected_raw_line(mit->second.file, lineno),
                     "stage-graph")) {
            continue;
          }
          for (auto t = std::sregex_iterator(stmt.begin(), stmt.end(),
                                             kStageToken);
               t != std::sregex_iterator(); ++t) {
            const std::string target = (*t)[1].str();
            if (succ.count(target) > 0) continue;
            const std::string key = stage + ">" + target + "@" +
                                    mit->second.file + ":" +
                                    std::to_string(lineno);
            if (!transition_reported.insert(key).second) continue;
            report(mit->second.file, lineno, "stage-graph",
                   "transition " + stage + " -> " + target + " (via '" +
                       mname + "') is not declared in the stage DAG; add "
                       "it to the `// lint: stage(...)` declaration or fix "
                       "the transition");
          }
        }
      }
    }

    // (d) Span balance: abstract interpretation from the initial stage.
    // Every path through a stage's handler must leave the same number of
    // open spans, and no path may reach a terminal stage with one open.
    if (!stage_initial_.empty()) {
      std::map<std::string, std::set<int>> entry;
      entry[stage_initial_].insert(0);
      std::vector<std::string> work{stage_initial_};
      SpanSimCtx ctx;
      std::size_t steps = 0;
      while (!work.empty() && steps++ < 10000) {
        const std::string stage = work.back();
        work.pop_back();
        const auto h = handler.find(stage);
        if (h == handler.end()) continue;
        SpanStates in;
        for (const int bal : entry[stage]) in.insert({bal, stage});
        ctx.call_stack.clear();
        const SpanStates out = sim_method(h->second, in, ctx);
        for (const auto& [bal, next] : out) {
          const auto succ_it = stage_dag_.find(next);
          const bool terminal =
              succ_it != stage_dag_.end() && succ_it->second.empty();
          if (terminal) {
            if (bal != 0 &&
                ctx.reported.insert("terminal:" + next).second) {
              report(stage_enum_file_, stage_enum_[next], "stage-span",
                     "terminal stage '" + next + "' is reachable (from '" +
                         stage + "') with an open stage span; some path "
                         "has an open_stage without a matching "
                         "close_stage");
            }
            continue;
          }
          if (entry[next].insert(bal).second) work.push_back(next);
        }
      }
      for (const auto& [stage, bals] : entry) {
        if (bals.size() <= 1) continue;
        report(stage_enum_file_, stage_enum_[stage], "stage-span",
               "stage '" + stage + "' is entered with inconsistent "
               "open-span balances; every path into a stage must leave "
               "the same number of stage spans open");
      }
    }
  }

  const std::string& collected_raw_line(const std::string& file,
                                        std::size_t lineno) const {
    static const std::string kEmpty;
    const auto it = collected_raw_.find(file);
    if (it == collected_raw_.end() || lineno == 0 ||
        lineno > it->second.size()) {
      return kEmpty;
    }
    return it->second[lineno - 1];
  }

  std::string relative_path(const fs::path& path) const {
    return fs::relative(path, root_).generic_string();
  }

  void report(std::string file, std::size_t line, std::string rule,
              std::string message, bool waived = false) {
    violations_.push_back(Violation{std::move(file), line, std::move(rule),
                                    std::move(message), waived});
  }

  fs::path root_;
  std::vector<Violation> violations_;
  std::set<std::pair<std::string, std::string>> module_edges_;
  std::size_t files_checked_ = 0;

  // Cross-file registries built by collect_source().
  std::set<std::string> collected_;
  std::set<std::string> mutex_classes_;
  std::map<std::string, std::set<std::string>> guarded_members_;
  std::map<std::string, std::size_t> stage_enum_;  // enumerator -> line
  std::vector<std::string> stage_enum_order_;
  std::string stage_initial_;
  std::string stage_enum_file_;
  std::map<std::string, std::set<std::string>> stage_dag_;
  std::map<std::string, std::pair<std::string, std::size_t>> stage_decl_site_;
  std::map<std::string, StageMethod> stage_methods_;
  std::map<std::string, std::vector<std::string>> collected_raw_;
  bool stage_checked_ = false;
};

// --- Self-test. ------------------------------------------------------------

int run_self_test() {
  std::size_t checks = 0;
  std::size_t failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    ++checks;
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "revtr-lint self-test FAIL: %s\n", what);
    }
  };
  const auto count_rule = [](const Linter& linter, std::string_view rule) {
    std::size_t n = 0;
    for (const auto& v : linter.violations()) {
      if (v.rule == rule && !v.waived) ++n;
    }
    return n;
  };
  const auto count_waived = [](const Linter& linter, std::string_view rule) {
    std::size_t n = 0;
    for (const auto& v : linter.violations()) {
      if (v.rule == rule && v.waived) ++n;
    }
    return n;
  };

  {  // A downward include edge conforms to the DAG.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/revtr.cpp", "#include \"atlas/atlas.h\"\n");
    expect(count_rule(linter, "layering") == 0, "downward include accepted");
  }
  {  // An artificially introduced upward include fails.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/rng.cpp", "#include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 1, "upward include rejected");
  }
  {  // Same-rank cross-module includes are upward edges too.
    Linter linter{fs::path(".")};
    linter.lint_source("src/alias/alias.cpp", "#include \"asmap/asmap.h\"\n");
    expect(count_rule(linter, "layering") == 1, "lateral include rejected");
  }
  {  // Intra-module includes are always fine.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/serialize.cpp", "#include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 0, "intra-module include accepted");
  }
  {  // A module missing from the rank table must be declared.
    Linter linter{fs::path(".")};
    linter.lint_source("src/newmod/thing.cpp", "#include \"util/rng.h\"\n");
    expect(count_rule(linter, "layering") == 1, "unknown module rejected");
  }
  {  // Commented-out includes do not create edges.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/rng.cpp",
                       "// #include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 0, "commented include ignored");
  }
  {  // Suppression marker works for layering.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/rng.cpp",
        "#include \"core/revtr.h\"  // lint:allow(layering)\n");
    expect(count_rule(linter, "layering") == 0, "layering suppression honored");
  }
  {  // The generic cycle detector finds a 3-cycle and accepts a chain.
    const std::set<std::pair<std::string, std::string>> cyclic = {
        {"a", "b"}, {"b", "c"}, {"c", "a"}};
    expect(find_cycle(cyclic).has_value(), "3-cycle detected");
    const std::set<std::pair<std::string, std::string>> chain = {
        {"a", "b"}, {"b", "c"}};
    expect(!find_cycle(chain).has_value(), "acyclic chain accepted");
  }
  {  // default: in an enum-class switch is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 1,
           "enum switch with default flagged");
  }
  {  // A switch over plain values keeps its default.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(char c) {\n"
                       "  switch (c) {\n"
                       "    case 'a': return 1;\n"
                       "    default: return 0;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "non-enum switch with default accepted");
  }
  {  // An exhaustive enum switch without default is clean.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: return 1;\n"
                       "    case E::kB: return 2;\n"
                       "  }\n"
                       "  return 0;\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "exhaustive enum switch accepted");
  }
  {  // An inner char-switch default is not attributed to the outer
     // enum switch.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(E e, char c) {\n"
                       "  switch (e) {\n"
                       "    case E::kA:\n"
                       "      switch (c) {\n"
                       "        case 'x': return 1;\n"
                       "        default: return 2;\n"
                       "      }\n"
                       "    case E::kB: return 3;\n"
                       "  }\n"
                       "  return 0;\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "nested switch default not misattributed");
  }
  {  // Suppression marker works for the switch rule.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f(E e) {\n"
                       "  switch (e) {  // lint:allow(enum-switch-default)\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "switch suppression honored");
  }
  {  // const_cast in src/ is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats.cpp",
                       "void f(const T& t) {\n"
                       "  const_cast<T&>(t).mutate();\n"
                       "}\n");
    expect(count_rule(linter, "const-cast") == 1, "const_cast flagged");
  }
  {  // ...but a commented const_cast or one in tests/ is not.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats.cpp",
                       "// const_cast<T&>(t) was the old racy approach\n");
    linter.lint_source("tests/x_test.cpp",
                       "auto& m = const_cast<T&>(t);\n");
    expect(count_rule(linter, "const-cast") == 0,
           "const-cast scoped to src/ code");
  }
  {  // Suppression marker works for const-cast.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/stats.cpp",
        "auto& m = const_cast<T&>(t);  // lint:allow(const-cast)\n");
    expect(count_rule(linter, "const-cast") == 0,
           "const-cast suppression honored");
  }
  {  // std::cout and bare printf in src/ are flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/revtr.cpp",
                       "void f() { std::cout << 1; }\n");
    linter.lint_source("src/atlas/atlas.cpp",
                       "void g() { printf(\"%d\", 1); }\n");
    linter.lint_source("src/sim/network.cpp",
                       "void h() { std::printf(\"x\"); }\n");
    expect(count_rule(linter, "bare-output") == 3,
           "std::cout / bare printf flagged in src/");
  }
  {  // fprintf(stderr) and snprintf stay legal; tools/ owns its stdout.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/check.cpp",
                       "void f() { fprintf(stderr, \"x\"); }\n");
    linter.lint_source("src/util/json.cpp",
                       "void g(char* b) { snprintf(b, 4, \"x\"); }\n");
    linter.lint_source("tools/revtr_cli.cpp",
                       "int h() { std::printf(\"ok\"); return 0; }\n");
    expect(count_rule(linter, "bare-output") == 0,
           "fprintf/snprintf and tools/ output accepted");
  }
  {  // Suppression marker works for bare-output.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/revtr.cpp",
        "std::cout << debug;  // lint:allow(bare-output)\n");
    expect(count_rule(linter, "bare-output") == 0,
           "bare-output suppression honored");
  }
  {  // obs sits at rank 1: usable from probing and above, barred from
     // reaching laterally into net.
    Linter linter{fs::path(".")};
    linter.lint_source("src/probing/prober.cpp",
                       "#include \"obs/metrics.h\"\n");
    expect(count_rule(linter, "layering") == 0, "probing -> obs accepted");
    Linter lateral{fs::path(".")};
    lateral.lint_source("src/obs/metrics.cpp", "#include \"net/ipv4.h\"\n");
    expect(count_rule(lateral, "layering") == 1, "obs -> net rejected");
  }
  {  // sched sits at rank 6: usable from core, barred from reaching up
     // into vpselect or core.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/request_task.cpp",
                       "#include \"sched/scheduler.h\"\n");
    linter.lint_source("src/sched/scheduler.cpp",
                       "#include \"probing/prober.h\"\n");
    expect(count_rule(linter, "layering") == 0,
           "core -> sched -> probing accepted");
    Linter upward{fs::path(".")};
    upward.lint_source("src/sched/scheduler.cpp",
                       "#include \"vpselect/ingress.h\"\n");
    upward.lint_source("src/sched/scheduler.h", "#include \"core/revtr.h\"\n");
    expect(count_rule(upward, "layering") == 2,
           "sched -> vpselect/core rejected");
  }
  {  // Probe-issuing Prober calls are barred from src/core/.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f() { prober_.rr_ping(a, b); }\n");
    linter.lint_source("src/core/y.cpp",
                       "void g() { engine_.prober_->traceroute(a, b); }\n");
    expect(count_rule(linter, "core-probe-issue") == 2,
           "direct probe call in src/core/ flagged");
  }
  {  // ...but the demand funnel, non-issuing members, and other modules
     // are fine.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/x.cpp",
        "auto o = sched::execute_demand(prober_, demand);\n"
        "auto c = engine_.prober_.offline_counters();\n");
    linter.lint_source("src/sched/scheduler.cpp",
                       "auto r = prober.rr_ping(a, b, spoof);\n");
    linter.lint_source("tests/x_test.cpp",
                       "auto r = prober.rr_ping(a, b);\n");
    expect(count_rule(linter, "core-probe-issue") == 0,
           "core-probe-issue scoped to issuing calls in src/core/");
  }
  {  // Suppression marker works for core-probe-issue.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/x.cpp",
        "prober_.ping(a, b);  // lint:allow(core-probe-issue)\n");
    expect(count_rule(linter, "core-probe-issue") == 0,
           "core-probe-issue suppression honored");
  }
  {  // Raw std synchronization types are barred from src/.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/trace.h", "mutable std::mutex mu_;\n");
    linter.lint_source("src/atlas/atlas.cpp",
                       "const std::shared_lock<std::shared_mutex> l(mu_);\n");
    linter.lint_source("src/util/thread_pool.h",
                       "std::condition_variable cv_;\n");
    expect(count_rule(linter, "mutex-capability") == 3,
           "raw std sync types flagged in src/");
  }
  {  // The annotated wrappers, condition_variable_any, annotate.h itself
     // (which wraps the std types), and tests are all fine.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/thread_pool.h",
                       "util::Mutex mu_;\n"
                       "std::condition_variable_any not_empty_;\n");
    linter.lint_source("src/util/annotate.h", "std::mutex mu_;\n");
    linter.lint_source("tests/x_test.cpp", "std::mutex mu;\n");
    expect(count_rule(linter, "mutex-capability") == 0,
           "wrappers, cv_any, annotate.h and tests accepted");
  }
  {  // Suppression marker works for mutex-capability.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/obs/trace.h",
        "std::mutex legacy_;  // lint:allow(mutex-capability)\n");
    expect(count_rule(linter, "mutex-capability") == 0,
           "mutex-capability suppression honored");
  }
  {  // An unannotated mutable member of a mutex-owning class is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/sink.cpp",
                       "class Sink {\n"
                       " private:\n"
                       "  mutable util::Mutex mu_;\n"
                       "  std::deque<int> ring_;\n"
                       "};\n");
    expect(count_rule(linter, "guarded-member") == 1,
           "unannotated guarded member flagged");
  }
  {  // GUARDED_BY, atomics, const, references, statics, the mutexes
     // themselves and condition variables all satisfy the rule.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/sink.cpp",
                       "class Sink {\n"
                       "  mutable util::SharedMutex mu_;\n"
                       "  util::Mutex aux_mu_;\n"
                       "  std::condition_variable_any cv_;\n"
                       "  std::deque<int> ring_ REVTR_GUARDED_BY(mu_);\n"
                       "  std::atomic<const M*> metrics_{nullptr};\n"
                       "  const std::size_t capacity_;\n"
                       "  probing::Prober& prober_;\n"
                       "  static constexpr std::size_t kN = 4;\n"
                       "};\n");
    expect(count_rule(linter, "guarded-member") == 0,
           "annotated/exempt members accepted");
  }
  {  // The lock-free waiver and lint:allow both work; member functions and
     // classes without a mutex are never judged.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/pool.cpp",
        "class Pool {\n"
        "  util::Mutex mu_;\n"
        "  std::vector<std::thread> threads_;  // lint: lock-free(ctor/dtor "
        "only)\n"
        "  bool quirk_;  // lint:allow(guarded-member)\n"
        "  void drain() { std::size_t local = 0; use(local); }\n"
        "};\n"
        "class Plain {\n"
        "  std::deque<int> unguarded_;\n"
        "};\n");
    expect(count_rule(linter, "guarded-member") == 0,
           "waivers honored; functions and mutex-free classes skipped");
  }
  {  // A mutable member is a race even when const-qualified... it is not
     // const, so the exemption must not fire on `mutable`.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats2.cpp",
                       "class D {\n"
                       "  mutable util::Mutex mu_;\n"
                       "  mutable bool sorted_ = true;\n"
                       "};\n");
    expect(count_rule(linter, "guarded-member") == 1,
           "mutable member without annotation flagged");
  }
  {  // Manual lock management in src/ is flagged; waits on the guard and
     // code outside src/ are not.
    Linter linter{fs::path(".")};
    linter.lint_source("src/sched/x.cpp",
                       "void f() { mu_.lock(); work(); mu_.unlock(); }\n");
    expect(count_rule(linter, "raii-guard") == 1,  // Both on one line.
           "manual lock/unlock flagged");
    Linter clean{fs::path(".")};
    clean.lint_source("src/util/thread_pool.cpp",
                      "not_empty_.wait(lock);\n");
    clean.lint_source("tests/x_test.cpp", "mu.lock();\nmu.unlock();\n");
    clean.lint_source(
        "src/util/once.cpp",
        "if (mu_.try_lock()) { }  // lint:allow(raii-guard)\n");
    expect(count_rule(clean, "raii-guard") == 0,
           "cv wait, tests, and suppressed try_lock accepted");
  }
  {  // sources_mu_ before a stripe follows the declared order.
    Linter linter{fs::path(".")};
    linter.lint_source("src/atlas/x.cpp",
                       "void f() {\n"
                       "  const util::SharedLock a(sources_mu_);\n"
                       "  {\n"
                       "    const util::ExclusiveLock b(stripe_of(source));\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 0,
           "increasing-rank nesting accepted");
  }
  {  // The inversion — a stripe held while taking the source map — is
     // rejected, as is re-acquiring the same rank (self-deadlock).
    Linter linter{fs::path(".")};
    linter.lint_source("src/atlas/x.cpp",
                       "void f() {\n"
                       "  const util::ExclusiveLock b(stripe_of(source));\n"
                       "  {\n"
                       "    const util::SharedLock a(sources_mu_);\n"
                       "  }\n"
                       "}\n");
    linter.lint_source("src/sched/y.cpp",
                       "void g() {\n"
                       "  const util::MutexLock a(mu_);\n"
                       "  { const util::MutexLock b(mu_); }\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 2,
           "rank inversion and same-rank re-acquisition rejected");
  }
  {  // Sibling scopes do not overlap; a released guard is not held.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/x.cpp",
                       "void f() {\n"
                       "  { const util::SharedLock a(mu_); }\n"
                       "  const util::ExclusiveLock b(mu_);\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 0,
           "sequential guards in sibling scopes accepted");
  }
  {  // Every guarded mutex must have a declared rank.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/x.cpp",
                       "void f() { const util::MutexLock l(weird_mu_); }\n");
    expect(count_rule(linter, "lock-order") == 1,
           "undeclared mutex rank rejected");
  }
  {  // Suppression marker works for lock-order; guards outside src/ are
     // not tracked.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/obs/x.cpp",
        "void f() { const util::MutexLock l(weird_mu_); }  "
        "// lint:allow(lock-order)\n");
    linter.lint_source("tests/x_test.cpp",
                       "void f() { const util::MutexLock l(anything_); }\n");
    expect(count_rule(linter, "lock-order") == 0,
           "lock-order suppression honored and scoped to src/");
  }
  {  // Outside src/, neither rule applies (tests may include anything and
     // keep defensive defaults).
    Linter linter{fs::path(".")};
    linter.lint_source("tests/x_test.cpp",
                       "#include \"core/revtr.h\"\n"
                       "void f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(linter.violations().empty(), "rules scoped to src/");
  }

  // --- Taint pass fixtures. -------------------------------------------------

  {  // A ByteReader-derived length used as an allocation size is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/net/x.cpp",
                       "void f(ByteReader& r) {\n"
                       "  const auto len = r.u8();\n"
                       "  out.resize(len);\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 1, "unchecked wire length flagged");
  }
  {  // checked_cast on the right-hand side sanitizes the value.
    Linter linter{fs::path(".")};
    linter.lint_source("src/net/x.cpp",
                       "void f(ByteReader& r) {\n"
                       "  const auto len = util::checked_cast<std::size_t>("
                       "r.u8());\n"
                       "  out.resize(len);\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 0, "checked_cast sanitizes");
  }
  {  // An adjacent REVTR_CHECK bounds comparison sanitizes, including
     // through a member call like .size().
    Linter linter{fs::path(".")};
    linter.lint_source("src/probing/x.cpp",
                       "void f(const Result& result) {\n"
                       "  const auto entries = result.reply->ts->entries();\n"
                       "  REVTR_CHECK(entries.size() <= kMax);\n"
                       "  out.reserve(entries.size());\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 0,
           "REVTR_CHECK adjacency sanitizes via .size()");
  }
  {  // The same code without the check is the real prober.cpp defect.
    Linter linter{fs::path(".")};
    linter.lint_source("src/probing/x.cpp",
                       "void f(const Result& result) {\n"
                       "  const auto entries = result.reply->ts->entries();\n"
                       "  out.reserve(entries.size());\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 1,
           "reply-derived size without bounds check flagged");
  }
  {  // `// lint: trusted(<reason>)` waives but keeps the finding for JSON.
    Linter linter{fs::path(".")};
    linter.lint_source("src/net/x.cpp",
                       "void f(ByteReader& r) {\n"
                       "  const auto len = r.u8();\n"
                       "  out.resize(len);  // lint: trusted(capped by "
                       "wire format)\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 0, "trusted waiver suppresses");
    expect(count_waived(linter, "taint") == 1, "waived finding kept");
  }
  {  // Taint propagates through arithmetic into a loop bound.
    Linter linter{fs::path(".")};
    linter.lint_source("src/net/x.cpp",
                       "void f(ByteReader& r) {\n"
                       "  const auto len = r.u8();\n"
                       "  const auto words = (len - 3) / 4;\n"
                       "  for (std::size_t i = 0; i < words; ++i) use(i);\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 1,
           "derived loop bound still tainted");
  }
  {  // Scope exit pops a tainted local; an inner redeclaration does not
     // leak taint into the enclosing scope.
    Linter linter{fs::path(".")};
    linter.lint_source("src/net/x.cpp",
                       "void f(ByteReader& r) {\n"
                       "  {\n"
                       "    const auto len = r.u8();\n"
                       "    use(len);\n"
                       "  }\n"
                       "  const auto len = kFixed;\n"
                       "  out.resize(len);\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 0, "scope exit clears taint");
  }
  {  // Member assignments and bulk-copy calls are not sinks, and the pass
     // only runs for src/net and src/probing.
    Linter linter{fs::path(".")};
    linter.lint_source("src/net/x.cpp",
                       "void f(ByteReader& r) {\n"
                       "  const auto len = r.u8();\n"
                       "  out.len = len;\n"
                       "}\n");
    linter.lint_source("src/core/x.cpp",
                       "void f(ByteReader& r) {\n"
                       "  const auto len = r.u8();\n"
                       "  out.resize(len);\n"
                       "}\n");
    expect(count_rule(linter, "taint") == 0,
           "member stores not sinks; pass scoped to net/probing");
  }

  // --- Guard-escape fixtures. -----------------------------------------------

  {  // The PR 6 atlas defect, verbatim shape: a reference into a guarded
     // vector returned from under a SharedLock.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/atlas/x.h",
        "class TracerouteAtlas {\n"
        " public:\n"
        "  const std::vector<Hop>& hops(HostId source) const {\n"
        "    const util::SharedLock lock(mu_);\n"
        "    return sources_.at(source).hops;\n"
        "  }\n"
        " private:\n"
        "  mutable util::SharedMutex mu_;\n"
        "  std::map<HostId, SourceAtlas> sources_ REVTR_GUARDED_BY(mu_);\n"
        "};\n");
    expect(count_rule(linter, "guard-escape") == 1,
           "reference into guarded member flagged (PR 6 atlas shape)");
  }
  {  // Returning by value is the sanctioned snapshot pattern.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/atlas/x.h",
        "class TracerouteAtlas {\n"
        " public:\n"
        "  std::vector<Hop> hops(HostId source) const {\n"
        "    const util::SharedLock lock(mu_);\n"
        "    return sources_.at(source).hops;\n"
        "  }\n"
        "  std::shared_ptr<const SourceAtlas> atlas(HostId s) const {\n"
        "    const util::SharedLock lock(mu_);\n"
        "    return sources_.at(s);\n"
        "  }\n"
        " private:\n"
        "  mutable util::SharedMutex mu_;\n"
        "  std::map<HostId, SourceAtlas> sources_ REVTR_GUARDED_BY(mu_);\n"
        "};\n");
    expect(count_rule(linter, "guard-escape") == 0,
           "by-value and shared_ptr<const> snapshots accepted");
  }
  {  // A local derived from a guarded member leaks just the same.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/obs/x.h",
        "class Registry {\n"
        " public:\n"
        "  Counter* find(std::string_view name) {\n"
        "    const util::MutexLock lock(mu_);\n"
        "    auto it = entries_.find(name);\n"
        "    return it == entries_.end() ? nullptr : &it->second;\n"
        "  }\n"
        " private:\n"
        "  util::Mutex mu_;\n"
        "  std::map<std::string, Counter> entries_ REVTR_GUARDED_BY(mu_);\n"
        "};\n");
    expect(count_rule(linter, "guard-escape") == 1,
           "derived iterator local flagged");
  }
  {  // REVTR_REQUIRES methods hand the locking duty to the caller.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/sched/x.h",
        "class Queue {\n"
        " public:\n"
        "  Entry& head() REVTR_REQUIRES(mu_) { return entries_.front(); }\n"
        " private:\n"
        "  util::Mutex mu_;\n"
        "  std::deque<Entry> entries_ REVTR_GUARDED_BY(mu_);\n"
        "};\n");
    expect(count_rule(linter, "guard-escape") == 0,
           "REVTR_REQUIRES accessor exempt");
  }
  {  // `// lint: stable-ref(<reason>)` above the signature waives every
     // return in the method; the finding stays visible as waived.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/obs/x.h",
        "class Registry {\n"
        " public:\n"
        "  // lint: stable-ref(map nodes are never erased)\n"
        "  Counter& at(const std::string& name) {\n"
        "    const util::MutexLock lock(mu_);\n"
        "    return entries_[name];\n"
        "  }\n"
        " private:\n"
        "  util::Mutex mu_;\n"
        "  std::map<std::string, Counter> entries_ REVTR_GUARDED_BY(mu_);\n"
        "};\n");
    expect(count_rule(linter, "guard-escape") == 0, "stable-ref waives");
    expect(count_waived(linter, "guard-escape") == 1,
           "waived escape kept for JSON");
  }
  {  // Cross-file: the class registry comes from the header, the escaping
     // out-of-line definition from the .cpp.
    Linter linter{fs::path(".")};
    linter.collect_source(
        "src/vpselect/x.h",
        "class Discovery {\n"
        " private:\n"
        "  mutable util::SharedMutex mu_;\n"
        "  std::unordered_map<PrefixId, Plan> plans_ REVTR_GUARDED_BY(mu_);\n"
        "};\n");
    linter.lint_source("src/vpselect/x.cpp",
                       "const Plan* Discovery::plan_for(PrefixId p) const {\n"
                       "  const util::SharedLock lock(mu_);\n"
                       "  const auto it = plans_.find(p);\n"
                       "  return it == plans_.end() ? nullptr : &it->second;\n"
                       "}\n");
    expect(count_rule(linter, "guard-escape") == 1,
           "out-of-line definition checked against header registry");
  }

  // --- Stage-graph / stage-span fixtures. -----------------------------------

  const char* kGoodMachineHeader =
      "class RequestTask {\n"
      " public:\n"
      "  enum class Stage : std::uint8_t {\n"
      "    kA,     // lint: stage(kA -> kB, kDone)\n"
      "    kB,     // lint: stage(kB -> kA, kDone)\n"
      "    kDone,  // lint: stage(kDone ->)\n"
      "  };\n"
      "};\n";
  const char* kGoodMachineBody =
      "void RequestTask::advance() {\n"
      "  switch (stage_) {\n"
      "    case Stage::kA:\n"
      "      step_a();\n"
      "      break;\n"
      "    case Stage::kB:\n"
      "      step_b();\n"
      "      break;\n"
      "    case Stage::kDone:\n"
      "      REVTR_CHECK(false);\n"
      "      break;\n"
      "  }\n"
      "}\n"
      "void RequestTask::step_a() {\n"
      "  open_stage(\"a\");\n"
      "  if (fast_path()) {\n"
      "    close_stage();\n"
      "    stage_ = Stage::kDone;\n"
      "    return;\n"
      "  }\n"
      "  close_stage();\n"
      "  stage_ = Stage::kB;\n"
      "}\n"
      "void RequestTask::step_b() {\n"
      "  stage_ = done() ? Stage::kDone : Stage::kA;\n"
      "}\n";
  {  // A conforming machine: declared DAG, exhaustive dispatch, balanced
     // spans on every path.
    Linter linter{fs::path(".")};
    linter.collect_source("src/core/x.h", kGoodMachineHeader);
    linter.lint_source("src/core/x.cpp", kGoodMachineBody);
    expect(count_rule(linter, "stage-graph") == 0 &&
               count_rule(linter, "stage-span") == 0,
           "conforming stage machine accepted");
  }
  {  // An undeclared transition (kB -> kB is not in the DAG) is flagged.
    Linter linter{fs::path(".")};
    linter.collect_source("src/core/x.h", kGoodMachineHeader);
    linter.lint_source("src/core/x.cpp",
                       "void RequestTask::advance() {\n"
                       "  switch (stage_) {\n"
                       "    case Stage::kA:\n"
                       "      step_a();\n"
                       "      break;\n"
                       "    case Stage::kB:\n"
                       "      step_b();\n"
                       "      break;\n"
                       "    case Stage::kDone:\n"
                       "      break;\n"
                       "  }\n"
                       "}\n"
                       "void RequestTask::step_a() { stage_ = Stage::kB; }\n"
                       "void RequestTask::step_b() { stage_ = Stage::kB; }\n");
    expect(count_rule(linter, "stage-graph") == 1,
           "undeclared transition rejected");
  }
  {  // A path that reaches the terminal stage with an open span (missing
     // close_stage) is a stage-span violation.
    Linter linter{fs::path(".")};
    linter.collect_source("src/core/x.h", kGoodMachineHeader);
    linter.lint_source("src/core/x.cpp",
                       "void RequestTask::advance() {\n"
                       "  switch (stage_) {\n"
                       "    case Stage::kA:\n"
                       "      step_a();\n"
                       "      break;\n"
                       "    case Stage::kB:\n"
                       "      step_b();\n"
                       "      break;\n"
                       "    case Stage::kDone:\n"
                       "      break;\n"
                       "  }\n"
                       "}\n"
                       "void RequestTask::step_a() {\n"
                       "  open_stage(\"a\");\n"
                       "  stage_ = Stage::kDone;\n"
                       "}\n"
                       "void RequestTask::step_b() {\n"
                       "  stage_ = Stage::kA;\n"
                       "}\n");
    expect(count_rule(linter, "stage-span") >= 1,
           "open_stage without close_stage on a path rejected");
  }
  {  // Double open without an intervening close.
    Linter linter{fs::path(".")};
    linter.collect_source("src/core/x.h", kGoodMachineHeader);
    linter.lint_source("src/core/x.cpp",
                       "void RequestTask::advance() {\n"
                       "  switch (stage_) {\n"
                       "    case Stage::kA:\n"
                       "      step_a();\n"
                       "      break;\n"
                       "    case Stage::kB:\n"
                       "    case Stage::kDone:\n"
                       "      break;\n"
                       "  }\n"
                       "}\n"
                       "void RequestTask::step_a() {\n"
                       "  open_stage(\"a\");\n"
                       "  open_stage(\"b\");\n"
                       "  close_stage();\n"
                       "  close_stage();\n"
                       "  stage_ = Stage::kDone;\n"
                       "}\n");
    expect(count_rule(linter, "stage-span") >= 1, "double open rejected");
  }
  {  // A switch over Stage that misses an enumerator is non-exhaustive.
    Linter linter{fs::path(".")};
    linter.collect_source("src/core/x.h", kGoodMachineHeader);
    linter.lint_source("src/core/x.cpp",
                       "void RequestTask::advance() {\n"
                       "  switch (stage_) {\n"
                       "    case Stage::kA:\n"
                       "      step_a();\n"
                       "      break;\n"
                       "    case Stage::kDone:\n"
                       "      break;\n"
                       "  }\n"
                       "}\n"
                       "void RequestTask::step_a() { stage_ = Stage::kB; }\n");
    expect(count_rule(linter, "stage-graph") >= 1,
           "non-exhaustive Stage switch rejected");
  }
  {  // An enumerator with no DAG declaration at all is flagged once.
    Linter linter{fs::path(".")};
    linter.collect_source("src/core/x.h",
                          "class RequestTask {\n"
                          " public:\n"
                          "  enum class Stage : std::uint8_t {\n"
                          "    kA,     // lint: stage(kA -> kDone)\n"
                          "    kB,\n"
                          "    kDone,  // lint: stage(kDone ->)\n"
                          "  };\n"
                          "};\n");
    linter.lint_source("src/core/x.cpp",
                       "void RequestTask::advance() {\n"
                       "  switch (stage_) {\n"
                       "    case Stage::kA:\n"
                       "    case Stage::kB:\n"
                       "    case Stage::kDone:\n"
                       "      break;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "stage-graph") == 1,
           "enumerator missing from the DAG flagged");
  }
  {  // lint:allow(stage-graph) on the offending assignment waives it.
    Linter linter{fs::path(".")};
    linter.collect_source("src/core/x.h", kGoodMachineHeader);
    linter.lint_source(
        "src/core/x.cpp",
        "void RequestTask::advance() {\n"
        "  switch (stage_) {\n"
        "    case Stage::kA:\n"
        "      step_a();\n"
        "      break;\n"
        "    case Stage::kB:\n"
        "    case Stage::kDone:\n"
        "      break;\n"
        "  }\n"
        "}\n"
        "void RequestTask::step_a() {\n"
        "  stage_ = Stage::kA;  // lint:allow(stage-graph)\n"
        "}\n");
    expect(count_rule(linter, "stage-graph") == 0,
           "stage-graph waiver honored");
  }

  // --- Server module fixtures (DESIGN.md §14). ------------------------------

  {  // The daemon sits above the whole stack: server -> service/sched/eval
     // are all downward edges.
    Linter linter{fs::path(".")};
    linter.lint_source("src/server/daemon.cpp",
                       "#include \"service/service.h\"\n"
                       "#include \"sched/scheduler.h\"\n"
                       "#include \"eval/harness.h\"\n");
    expect(count_rule(linter, "layering") == 0,
           "server includes the stack below it");
  }
  {  // Nothing below may reach back up into the daemon.
    Linter linter{fs::path(".")};
    linter.lint_source("src/service/service.cpp",
                       "#include \"server/frame.h\"\n");
    linter.lint_source("src/eval/harness.cpp",
                       "#include \"server/daemon.h\"\n");
    expect(count_rule(linter, "layering") == 2,
           "includes of server from lower modules rejected");
  }
  {  // The daemon mutex has a declared rank (110); plain sequential use is
     // fine.
    Linter linter{fs::path(".")};
    linter.lint_source("src/server/daemon.cpp",
                       "void f() {\n"
                       "  { const util::MutexLock a(mu_); }\n"
                       "  const util::MutexLock b(mu_);\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 0,
           "server mu_ rank declared; sequential guards accepted");
  }
  {  // Re-acquiring the daemon mutex under itself is a self-deadlock; the
     // rank table makes server mu_ the top rank, so nothing nests inside it.
    Linter linter{fs::path(".")};
    linter.lint_source("src/server/daemon.cpp",
                       "void f() {\n"
                       "  const util::MutexLock a(mu_);\n"
                       "  { const util::MutexLock b(mu_); }\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 1,
           "nesting under server mu_ rejected");
  }

  // --- Agent module fixtures (DESIGN.md §15). -------------------------------

  {  // The VP agent sits above the server (it speaks server/frame.h) and
     // owns its own eval stack: all downward edges.
    Linter linter{fs::path(".")};
    linter.lint_source("src/agent/agent.cpp",
                       "#include \"server/frame.h\"\n"
                       "#include \"eval/harness.h\"\n"
                       "#include \"probing/prober.h\"\n");
    expect(count_rule(linter, "layering") == 0,
           "agent includes server frames and the stack below");
  }
  {  // The controller may not include the agent: the split stays one-way
     // (the daemon knows frames, not the agent's implementation).
    Linter linter{fs::path(".")};
    linter.lint_source("src/server/daemon.cpp",
                       "#include \"agent/agent.h\"\n");
    expect(count_rule(linter, "layering") == 1,
           "server including agent rejected");
  }
  {  // The agent mutex has a declared rank (120); plain sequential use is
     // fine, and nesting under it is a self-deadlock like the daemon's.
    Linter linter{fs::path(".")};
    linter.lint_source("src/agent/agent.cpp",
                       "void f() {\n"
                       "  { const util::MutexLock a(mu_); }\n"
                       "  const util::MutexLock b(mu_);\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 0,
           "agent mu_ rank declared; sequential guards accepted");
  }
  {  // Re-acquiring the agent mutex under itself is a self-deadlock; rank
     // 120 is the top of the table, so nothing nests inside it.
    Linter linter{fs::path(".")};
    linter.lint_source("src/agent/agent.cpp",
                       "void f() {\n"
                       "  const util::MutexLock a(mu_);\n"
                       "  { const util::MutexLock b(mu_); }\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 1,
           "nesting under agent mu_ rejected");
  }

  if (failures != 0) {
    std::fprintf(stderr, "revtr-lint self-test: %zu/%zu checks failed\n",
                 failures, checks);
    return 1;
  }
  std::printf("revtr-lint self-test: ok (%zu checks)\n", checks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--format=json") {
      json = true;
    } else if (arg == "--self-test") {
      return run_self_test();
    } else {
      positional.emplace_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: revtr_lint [--format=json] <repo-root> | "
                 "--self-test\n");
    return 2;
  }
  const fs::path root = positional.front();
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "revtr_lint: not a directory: %s\n",
                 positional.front().c_str());
    return 2;
  }

  Linter linter(root);
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !is_source(entry.path())) continue;
      files.push_back(entry.path());
    }
  }
  // Collect first so cross-file registries (guarded members, the stage
  // enum/DAG) are complete before any file is linted.
  for (const auto& path : files) linter.collect_file(path);
  for (const auto& path : files) {
    linter.note_file();
    linter.lint_file(path);
  }
  return linter.finish(json);
}
