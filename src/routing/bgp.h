// AS-level route computation with Gao-Rexford policies.
//
// For each destination AS we compute, for every other AS, the preferred
// next-hop AS under the standard policy model: prefer customer routes over
// peer routes over provider routes, then shorter AS paths, then a
// deterministic direction-sensitive tiebreak. The tiebreak hashes
// (chooser, candidate, destination), so the route from A to B need not be
// the reverse of the route from B to A — interdomain asymmetry emerges from
// policy, exactly as the paper measures in §6.2 (DESIGN.md §4.1).
//
// Each AS also records an *alternate* equally-preferred next hop when one
// exists; source-sensitive routers use it to violate destination-based
// routing at a controlled rate (Appx E).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "topology/topology.h"

namespace revtr::routing {

// Route preference classes, higher is better.
enum class RouteClass : std::uint8_t {
  kNone = 0,
  kProvider = 1,
  kPeer = 2,
  kCustomer = 3,
  kOrigin = 4,
};

class BgpTable {
 public:
  explicit BgpTable(const topology::Topology& topo);

  // The per-destination routing column; computed lazily and cached.
  struct Column {
    // Indexed by AS index; the ASN of the preferred next-hop AS toward the
    // destination, 0 when unreachable, own ASN at the origin.
    std::vector<topology::Asn> next;
    // Equally-preferred alternate next hop, 0 when none.
    std::vector<topology::Asn> alt;
    // AS-path length of the chosen route (0 at the origin).
    std::vector<std::uint16_t> path_len;
    std::vector<RouteClass> route_class;
  };

  const Column& column(topology::AsIndex dest) const;

  // Preferred next-hop ASN from `from` toward destination AS `dest`;
  // 0 when unreachable.
  topology::Asn next_hop(topology::AsIndex dest, topology::AsIndex from) const;
  topology::Asn alt_next_hop(topology::AsIndex dest,
                             topology::AsIndex from) const;

  // The AS-level path from `from` to `dest` by walking next-hop pointers.
  // Empty when unreachable. Includes both endpoints.
  std::vector<topology::Asn> as_path(topology::AsIndex from,
                                     topology::AsIndex dest) const;

  // Number of columns computed so far (for tests / memory awareness).
  std::size_t computed_columns() const noexcept { return computed_; }

  // --- Announcement policies (§6.1 traffic engineering). ---
  // Suppresses the origin's announcement toward specific neighbors — the
  // effect of a "no-export" community or prepending/poisoning aimed at one
  // upstream. Traffic toward `origin` then cannot take a first hop through
  // those neighbors. Cached columns for `origin` are dropped.
  void set_no_export(topology::AsIndex origin,
                     std::vector<topology::Asn> suppressed_neighbors);
  void clear_no_export(topology::AsIndex origin);

  // --- Route churn (Appx D.2.2 staleness experiments). ---
  // Advancing the epoch makes a fraction `flip_fraction` of (AS,
  // destination) decisions re-roll their tiebreak, modelling the slow
  // background churn of interdomain routes. All cached columns are dropped.
  void set_epoch(std::uint32_t epoch, double flip_fraction);
  std::uint32_t epoch() const noexcept { return epoch_; }

 private:
  void compute_column(topology::AsIndex dest, Column& column) const;
  std::uint64_t tiebreak(topology::Asn chooser, topology::Asn candidate,
                         topology::Asn dest) const;

  const topology::Topology& topo_;
  mutable std::vector<std::unique_ptr<Column>> columns_;
  mutable std::size_t computed_ = 0;
  std::uint32_t epoch_ = 0;
  std::uint32_t flip_per_million_ = 0;
  std::unordered_map<topology::AsIndex, std::vector<topology::Asn>>
      no_export_;
};

}  // namespace revtr::routing
