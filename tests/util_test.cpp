#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/flags.h"
#include "util/rng.h"
#include "util/sim_clock.h"
#include "util/stats.h"
#include "util/table.h"

namespace revtr::util {
namespace {

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto copy = v;
  rng.shuffle(copy);
  EXPECT_NE(copy, v);  // Astronomically unlikely to be identity.
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, SampleDistinct) {
  Rng rng(23);
  std::vector<int> pool(100);
  for (int i = 0; i < 100; ++i) pool[i] = i;
  const auto picked = rng.sample(pool, 10);
  EXPECT_EQ(picked.size(), 10u);
  std::set<int> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleMoreThanPoolReturnsAll) {
  Rng rng(29);
  std::vector<int> pool = {1, 2, 3};
  const auto picked = rng.sample(pool, 10);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(31);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ParetoAboveMinimum) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(MixHash, DirectionSensitive) {
  EXPECT_NE(mix_hash(1, 2, 3), mix_hash(2, 1, 3));
  EXPECT_EQ(mix_hash(1, 2, 3), mix_hash(1, 2, 3));
}

// --------------------------------------------------------------------------
// Distribution
// --------------------------------------------------------------------------

TEST(Distribution, BasicMoments) {
  Distribution d;
  for (double x : {1.0, 2.0, 3.0, 4.0}) d.add(x);
  EXPECT_EQ(d.count(), 4u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_DOUBLE_EQ(d.median(), 2.5);
}

TEST(Distribution, QuantileInterpolates) {
  Distribution d;
  for (double x : {0.0, 10.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 10.0);
}

TEST(Distribution, QuantileOnEmptyThrows) {
  Distribution d;
  EXPECT_THROW(d.quantile(0.5), std::logic_error);
  EXPECT_THROW(d.min(), std::logic_error);
}

TEST(Distribution, CdfAndCcdf) {
  Distribution d;
  for (double x : {1.0, 2.0, 2.0, 3.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ccdf_at(2.0), 0.75);  // Samples >= 2.
  EXPECT_DOUBLE_EQ(d.ccdf_at(3.1), 0.0);
}

TEST(Distribution, AddAfterQuantileStillSorted) {
  Distribution d;
  d.add(5.0);
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.median(), 3.0);
  d.add(0.0);  // Invalidates sort; must re-sort lazily.
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.median(), 1.0);
}

TEST(Distribution, StddevKnownValue) {
  Distribution d;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) d.add(x);
  EXPECT_NEAR(d.stddev(), 2.138, 0.001);  // Sample stddev.
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MonotoneAndBounded) {
  Distribution d;
  Rng rng(101);
  for (int i = 0; i < 500; ++i) d.add(rng.uniform() * 100);
  const double q = GetParam();
  const double v = d.quantile(q);
  EXPECT_GE(v, d.min());
  EXPECT_LE(v, d.max());
  if (q >= 0.05) {
    EXPECT_LE(d.quantile(q - 0.05), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 0.95, 0.99, 1.0));

TEST(Fraction, TallyAndValue) {
  Fraction f;
  EXPECT_DOUBLE_EQ(f.value(), 0.0);
  f.tally(true);
  f.tally(false);
  f.tally(true);
  f.tally(true);
  EXPECT_EQ(f.hits, 3u);
  EXPECT_EQ(f.total, 4u);
  EXPECT_DOUBLE_EQ(f.value(), 0.75);
}

TEST(KeyedCounter, AddAndTotal) {
  KeyedCounter c;
  c.add("a");
  c.add("a", 2);
  c.add("b", 5);
  EXPECT_EQ(c.get("a"), 3u);
  EXPECT_EQ(c.get("b"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.total(), 8u);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto xs = linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(Linspace, DegenerateSizes) {
  EXPECT_TRUE(linspace(0, 1, 0).empty());
  const auto one = linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
}

// --------------------------------------------------------------------------
// SimClock
// --------------------------------------------------------------------------

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(SimClock::kSecond);
  EXPECT_EQ(clock.now(), SimClock::kSecond);
  clock.advance(-5);  // Negative deltas ignored.
  EXPECT_EQ(clock.now(), SimClock::kSecond);
  clock.advance_to(SimClock::kSecond / 2);  // Cannot go backwards.
  EXPECT_EQ(clock.now(), SimClock::kSecond);
  clock.advance_to(3 * SimClock::kSecond);
  EXPECT_EQ(clock.now(), 3 * SimClock::kSecond);
}

TEST(SimClock, SecondsConversion) {
  SimClock clock;
  clock.advance_seconds(2.5);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 2.5);
}

TEST(SimSpan, Duration) {
  SimSpan span{SimClock::kSecond, 4 * SimClock::kSecond};
  EXPECT_EQ(span.duration(), 3 * SimClock::kSecond);
  EXPECT_DOUBLE_EQ(span.seconds(), 3.0);
}

// --------------------------------------------------------------------------
// TextTable / figures
// --------------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Each line has the same structure: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NO_THROW(table.render());
}

TEST(Cells, Formatting) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell_percent(0.123, 1), "12.3%");
  EXPECT_EQ(cell_count(1234567), "1,234,567");
  EXPECT_EQ(cell_count(42), "42");
  EXPECT_EQ(cell_count(0), "0");
}

TEST(Figures, RenderSeries) {
  Series s{"line", {1, 2}, {0.5, 0.25}};
  const std::string out = render_figure("Fig X", {s});
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("series: line"), std::string::npos);
  EXPECT_NE(out.find("1.0000 0.5000"), std::string::npos);
}

// --------------------------------------------------------------------------
// Flags
// --------------------------------------------------------------------------

TEST(Flags, ParsesTypes) {
  const char* argv[] = {"prog", "--ases=100", "--rate=0.5", "--verbose",
                        "--name=test", "--off=false"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("ases", 0), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("off", true));
  EXPECT_EQ(flags.get_string("name", ""), "test");
  EXPECT_EQ(flags.get_int("missing", 7), 7);
}

TEST(Flags, IgnoresBenchmarkFlags) {
  const char* argv[] = {"prog", "--benchmark_filter=all", "--x=1"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_FALSE(flags.has("benchmark_filter"));
  EXPECT_EQ(flags.get_int("x", 0), 1);
}

TEST(Flags, ReportsUnknown) {
  const char* argv[] = {"prog", "--typo=1", "--used=2"};
  Flags flags(3, const_cast<char**>(argv));
  (void)flags.get_int("used", 0);
  const auto unknown = flags.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace revtr::util
