// revtr_serverd: the long-running measurement daemon (ROADMAP item 1).
//
// The paper's revtr 2.0 is a deployed on-demand *service*: a controller
// that stays up, keeps the traceroute atlas and engine caches hot, and
// serves third-party measurement requests under a probe budget. ServerDaemon
// is that controller over the simulated Internet — it owns one RevtrService
// (tenant quotas), one staged ProbeScheduler (cross-request coalescing
// across *connections*, not just within one campaign), one TracerouteAtlas,
// and one shared EngineCaches for the daemon's whole lifetime, and speaks
// the framed protocol in server/frame.h over a local AF_UNIX stream socket.
//
// Thread architecture (three kinds of threads, one daemon mutex):
//
//   net thread    poll() event loop over the listening socket, a self-pipe,
//                 and every client connection. Owns ALL per-connection state
//                 (buffers, auth, pull-mode result queues) without locks —
//                 nothing else touches a connection. Parses frames, runs
//                 admission, enqueues accepted requests.
//   workers       mirror service/parallel.cpp's staged pump loop: each owns
//                 a private Network + Prober + RevtrEngine stack, pops
//                 queued requests, multiplexes them as resumable
//                 core::RequestTasks over the shared scheduler, and pushes
//                 encoded RESULT frames back through the completion queue.
//   caller        start() / request_drain() / wait_until_drained() / stop().
//
// mu_ (lock rank 110, above every library mutex) guards the submission
// queue, the admission controller, the quota service, the counters, and the
// completion queue. Obs registry lookups (rank 10) and scheduler state
// reads (rank 60) are resolved or sampled BEFORE taking mu_ — never under
// it — so the daemon can sit on top of the whole stack without inverting
// the lock order.
//
// Shutdown: request_drain() is async-signal-safe (SIGTERM handler calls it:
// one atomic store + one write() to the self-pipe). The net thread then
// flips the daemon into draining — admission refuses with kDraining, the
// workers finish every queued + in-flight request, and when the last one
// completes the daemon is drained: DRAIN_DONE goes to every client that
// asked, wait_until_drained() returns, and stop() joins everything.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/revtr.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "sched/scheduler.h"
#include "server/admission.h"
#include "server/frame.h"
#include "service/service.h"
#include "topology/builder.h"
#include "util/annotate.h"

namespace revtr::server {

struct TenantConfig {
  std::string name = "demo";
  std::string api_key = "demo-key";
  service::UserLimits limits;
  TokenBucketOptions bucket;
  // WFQ share against other tenants at the same priority level (see
  // FairQueue in server/admission.h). Relative, not absolute: 2.0 dequeues
  // twice as often as 1.0 under contention.
  double weight = 1.0;
};

struct ServerOptions {
  std::string socket_path = "/tmp/revtr_serverd.sock";
  topology::TopologyConfig topo;
  core::EngineConfig engine = core::EngineConfig::revtr2();
  sched::SchedOptions sched;
  AdmissionConfig admission;
  std::uint64_t seed = 7;
  std::size_t workers = 2;
  // Vantage points bootstrapped as sources at startup (SUBMIT source_index
  // addresses them in order).
  std::size_t sources = 1;
  std::size_t atlas_size = 50;
  // Requests a worker multiplexes concurrently over the scheduler.
  std::size_t max_inflight_per_worker = 16;
  // Tenants provisioned at startup; empty = one default TenantConfig{}.
  std::vector<TenantConfig> tenants;
  // Distributed controller mode (ROADMAP item 5 / DESIGN.md §15): workers
  // never execute probes locally; wire demands are dispatched as AGENT_PROBE
  // frames to VP agents that joined with AGENT_REGISTER. With no agent
  // connected, accepted requests wait in the scheduler until one registers.
  bool remote_probing = false;
  // Remote mode: an agent silent (no heartbeat, result, or register) for
  // longer than this is declared dead and its in-flight assignments requeue
  // for reassignment. 0 disables expiry (EOF still detaches).
  std::int64_t agent_timeout_us = 2'000'000;
  // Test hook: when set, the scheduler records its issue/delivery audit
  // here so tests can run invariant I7 over a daemon campaign. Must outlive
  // the daemon; the caller reads it only after stop().
  sched::SchedulerAudit* sched_audit = nullptr;
};

// Lifetime totals, copied out under the daemon mutex. The same numbers back
// the STATS reply and the Prometheus counters; this plain struct is for
// tests and the replayer's artifact.
struct ServerCounters {
  std::uint64_t connections = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;        // Measured (not shed).
  std::uint64_t shed_queued = 0;      // Accepted, then shed from the queue.
  std::uint64_t deadline_missed = 0;  // Measured but past deadline.
  std::uint64_t protocol_errors = 0;
};

class ServerDaemon {
 public:
  explicit ServerDaemon(ServerOptions options);
  ~ServerDaemon();

  ServerDaemon(const ServerDaemon&) = delete;
  ServerDaemon& operator=(const ServerDaemon&) = delete;

  // Builds the Lab (topology + routing + atlas + ingress survey), provisions
  // tenants and sources, binds the socket, and spawns the net thread and
  // workers. False on socket errors (message on stderr).
  bool start();

  // Begins a graceful drain. Async-signal-safe: an atomic flag plus a
  // write() to the self-pipe; the net thread does the actual transition.
  void request_drain() noexcept;

  // Blocks until every accepted request has completed or been shed after a
  // drain was requested.
  void wait_until_drained();

  // Joins all threads and closes the socket. Implies request_drain() —
  // accepted work is finished, not dropped. Idempotent.
  void stop();

  bool draining() const;
  ServerCounters counters() const;
  // Scheduler counters (remote-mode tests assert on reassigned /
  // stale_results). Valid between start() and stop().
  sched::SchedulerStats sched_stats() const;
  obs::MetricsRegistry& registry() noexcept { return registry_; }

  // Micros since start() on the daemon's steady clock — the timebase
  // HELLO_OK advertises and SUBMIT deadlines are expressed in.
  std::int64_t now_us() const;

  // Test hook: while held, workers park instead of popping the queue, so a
  // test can pile up queued requests (expiring deadlines, exhausting
  // quotas) deterministically before releasing the workers.
  void set_worker_hold(bool hold);

  // Routes SIGTERM/SIGINT to daemon->request_drain(). One daemon per
  // process; passing nullptr uninstalls.
  static void install_signal_handlers(ServerDaemon* daemon);

 private:
  struct QueuedRequest {
    std::uint64_t index = 0;       // Daemon-internal, dense; seeds the RNG.
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;  // Client-chosen, echoed in replies.
    service::UserId tenant = 0;
    topology::HostId destination = topology::kInvalidId;
    topology::HostId source = topology::kInvalidId;
    Priority priority = Priority::kNormal;
    std::int64_t deadline_us = 0;
    std::int64_t accepted_us = 0;
  };

  // An encoded frame bound for a connection; workers produce these, the net
  // thread routes them (push mode: connection outbuf; pull mode: the
  // connection's POLL queue).
  struct Completion {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> frame;
  };

  // Per-tenant counter handles, resolved once at start() (registry lookups
  // take the rank-10 registry mutex and must never run under mu_).
  struct TenantMetrics {
    obs::Counter* requests = nullptr;
  };

  void net_loop();
  void worker_loop(std::size_t w);
  // Remote-mode pump replacement (any worker): steals queued offline jobs,
  // expires silent agents, then encodes each live agent's next assignment
  // batch as AGENT_PROBE completions for the net thread to flush. Returns
  // the number of jobs + assignments moved (the workers' idle heuristic).
  std::size_t dispatch_to_agents();
  // Handles one decoded frame from a connection. Defined in daemon.cpp on
  // the net thread's connection table.
  struct Conn;
  void handle_message(Conn& conn, Message message);
  // Snapshot of counters + SLO quantiles as JSON text. Takes the registry
  // snapshot before mu_ (rank 10 under rank 110 — never nested).
  std::string build_stats_json();
  void wake_net() noexcept;

  const ServerOptions options_;

  // --- Measurement stack, built by start(), immutable afterwards. The
  // pointed-to objects do their own locking (sharded metrics, the scheduler
  // and service mutexes); the pointers themselves never change. ---
  obs::MetricsRegistry registry_;  // lint: lock-free(internally synchronized)
  std::unique_ptr<eval::Lab> lab_;  // lint: lock-free(immutable after start)
  std::unique_ptr<service::ServiceMetrics>
      service_metrics_;  // lint: lock-free(immutable after start)
  std::unique_ptr<service::RevtrService>
      service_;  // lint: lock-free(internally synchronized)
  std::unique_ptr<core::EngineMetrics>
      engine_metrics_;  // lint: lock-free(immutable after start)
  std::unique_ptr<probing::ProbeMetrics>
      probe_metrics_;  // lint: lock-free(immutable after start)
  std::unique_ptr<sched::SchedMetrics>
      sched_metrics_;  // lint: lock-free(immutable after start)
  std::unique_ptr<sched::ProbeScheduler>
      scheduler_;  // lint: lock-free(internally synchronized)
  std::shared_ptr<core::EngineCaches>
      caches_;  // lint: lock-free(internally synchronized)
  struct WorkerStack;
  std::vector<std::unique_ptr<WorkerStack>>
      stacks_;  // lint: lock-free(each stack private to one worker)
  std::vector<topology::HostId>
      source_hosts_;  // lint: lock-free(immutable after start)
  // Effective tenant set (options_.tenants, or one default when empty) and
  // the UserIds RevtrService assigned them, index-parallel.
  std::vector<TenantConfig>
      tenant_configs_;  // lint: lock-free(immutable after start)
  std::vector<service::UserId>
      tenant_ids_;  // lint: lock-free(immutable after start)
  // Indexed by UserId.
  std::vector<TenantMetrics>
      tenant_metrics_;  // lint: lock-free(immutable after start)

  // Metric handles, resolved once at start(); counters/histograms are
  // sharded relaxed atomics, safe from any thread.
  obs::Counter* requests_total_ = nullptr;  // lint: lock-free(set at start)
  obs::Counter* completed_total_ = nullptr;  // lint: lock-free(set at start)
  obs::Counter* sheds_total_ = nullptr;  // lint: lock-free(set at start)
  obs::Counter* deadline_miss_total_ =
      nullptr;  // lint: lock-free(set at start)
  obs::Counter* connections_total_ = nullptr;  // lint: lock-free(set at start)
  obs::Counter* protocol_errors_total_ =
      nullptr;  // lint: lock-free(set at start)
  // Indexed by RejectReason.
  std::vector<obs::Counter*> reject_reasons_;  // lint: lock-free(set at start)
  obs::Histogram* wall_latency_us_ = nullptr;  // lint: lock-free(set at start)
  obs::Histogram* sim_latency_us_ = nullptr;  // lint: lock-free(set at start)
  obs::Gauge* queue_depth_ = nullptr;  // lint: lock-free(set at start)
  obs::Gauge* inflight_ = nullptr;  // lint: lock-free(set at start)

  // --- Sockets (owned by start()/stop(); the net loop reads them). ---
  int listen_fd_ = -1;  // lint: lock-free(set at start, read by net thread)
  int wake_pipe_[2] = {-1, -1};  // lint: lock-free(set at start)
  // steady_clock at start().
  std::int64_t epoch_ns_ = 0;  // lint: lock-free(set once at start)

  // Set by request_drain() (possibly from a signal handler); the net thread
  // converts it into the guarded draining_ transition.
  std::atomic<bool> drain_requested_{false};

  // --- The daemon mutex (lock rank 110; see tools/revtr_lint.cpp). ---
  mutable util::Mutex mu_;
  std::condition_variable_any work_cv_;     // Queue became non-empty / state.
  std::condition_variable_any drained_cv_;  // drained_ flipped true.
  FairQueue<QueuedRequest> queue_ REVTR_GUARDED_BY(mu_);
  std::size_t queued_ REVTR_GUARDED_BY(mu_) = 0;
  // Remote mode: registered agents as (conn id, scheduler agent id). The
  // net thread adds/removes entries (register / EOF / drain); workers
  // snapshot the list under mu_, then dispatch assignments per agent via
  // the scheduler (rank 60 — taken after mu_ is released, never under it).
  std::vector<std::pair<std::uint64_t, sched::ProbeScheduler::AgentId>>
      agent_conns_ REVTR_GUARDED_BY(mu_);
  std::size_t inflight_count_ REVTR_GUARDED_BY(mu_) = 0;
  std::uint64_t next_request_index_ REVTR_GUARDED_BY(mu_) = 0;
  AdmissionController admission_ REVTR_GUARDED_BY(mu_);
  ServerCounters counters_ REVTR_GUARDED_BY(mu_);
  std::deque<Completion> completions_ REVTR_GUARDED_BY(mu_);
  bool draining_ REVTR_GUARDED_BY(mu_) = false;
  bool drained_ REVTR_GUARDED_BY(mu_) = false;
  bool stopping_ REVTR_GUARDED_BY(mu_) = false;
  bool worker_hold_ REVTR_GUARDED_BY(mu_) = false;

  bool started_ = false;  // lint: lock-free(caller thread only)
  std::vector<std::thread> threads_;  // lint: lock-free(start/stop only)
};

}  // namespace revtr::server
