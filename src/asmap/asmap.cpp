#include "asmap/asmap.h"

#include <functional>

#include "util/rng.h"

namespace revtr::asmap {

namespace {
std::uint64_t pair_key(topology::Asn a, topology::Asn b) {
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

IpToAs::IpToAs(const topology::Topology& topo, double interconnect_coverage,
               std::uint64_t seed) {
  for (const auto& prefix : topo.prefixes()) {
    trie_.insert(prefix.prefix, prefix.origin);
  }
  if (interconnect_coverage <= 0) return;
  util::Rng rng(seed);
  for (const auto& link : topo.links()) {
    if (!link.interdomain) continue;
    // Register each border interface under its operating AS when the
    // (simulated) interconnect datasets cover it.
    const auto fix = [&](net::Ipv4Addr addr, topology::RouterId router) {
      const auto mapped = trie_.lookup(addr);
      const topology::Asn truth = topo.router(router).asn;
      if (mapped && *mapped != truth && rng.chance(interconnect_coverage)) {
        interconnect_[addr] = truth;
      }
    };
    fix(link.addr_a, link.router_a);
    fix(link.addr_b, link.router_b);
  }
}

std::optional<topology::Asn> IpToAs::lookup(net::Ipv4Addr addr) const {
  if (addr.is_private() || addr.is_loopback()) return std::nullopt;
  const auto it = interconnect_.find(addr);
  if (it != interconnect_.end()) return it->second;
  return trie_.lookup(addr);
}

std::vector<topology::Asn> IpToAs::as_path(
    std::span<const net::Ipv4Addr> hops) const {
  std::vector<topology::Asn> path;
  for (const auto hop : hops) {
    const auto asn = lookup(hop);
    if (!asn) continue;
    if (path.empty() || path.back() != *asn) path.push_back(*asn);
  }
  return path;
}

bool IpToAs::has_unmappable_hop(std::span<const net::Ipv4Addr> hops) const {
  for (const auto hop : hops) {
    if (!lookup(hop)) return true;
  }
  return false;
}

AsRelationships::AsRelationships(const topology::Topology& topo)
    : topo_(topo) {
  for (const auto& node : topo.ases()) {
    for (const auto customer : node.customers) {
      relations_[pair_key(node.asn, customer)] = Rel::kProvider;
      relations_[pair_key(customer, node.asn)] = Rel::kCustomer;
    }
    for (const auto peer : node.peers) {
      relations_[pair_key(node.asn, peer)] = Rel::kPeer;
    }
  }
}

AsRelationships::Rel AsRelationships::relation(topology::Asn a,
                                               topology::Asn b) const {
  const auto it = relations_.find(pair_key(a, b));
  return it == relations_.end() ? Rel::kNone : it->second;
}

std::size_t AsRelationships::customer_cone_size(topology::Asn asn) const {
  const auto cached = cone_cache_.find(asn);
  if (cached != cone_cache_.end()) return cached->second;
  // Iterative DFS down customer links; cones can share sub-cones, so track
  // visited set per query (cone = set of distinct ASes).
  std::vector<topology::Asn> stack = {asn};
  std::unordered_map<topology::Asn, bool> visited;
  std::size_t count = 0;
  while (!stack.empty()) {
    const auto current = stack.back();
    stack.pop_back();
    auto& seen = visited[current];
    if (seen) continue;
    seen = true;
    ++count;
    for (const auto customer : topo_.as_node(current).customers) {
      stack.push_back(customer);
    }
  }
  cone_cache_[asn] = count;
  return count;
}

std::size_t AsRelationships::provider_count(topology::Asn asn) const {
  return topo_.as_node(asn).providers.size();
}

bool AsRelationships::is_small(topology::Asn asn) const {
  return provider_count(asn) <= 5 && customer_cone_size(asn) <= 10;
}

bool AsRelationships::suspicious_link(topology::Asn s,
                                      topology::Asn p) const {
  if (adjacent(s, p)) return false;
  if (!is_small(s)) return false;
  for (const auto provider : topo_.as_node(s).providers) {
    // Is p a provider of this provider?
    if (relation(p, provider) == Rel::kProvider) return true;
  }
  return false;
}

std::vector<std::size_t> AsRelationships::suspicious_links_in(
    std::span<const topology::Asn> path) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!topo_.has_as(path[i]) || !topo_.has_as(path[i + 1])) continue;
    if (suspicious_link(path[i], path[i + 1]) ||
        suspicious_link(path[i + 1], path[i])) {
      indices.push_back(i);
    }
  }
  return indices;
}

}  // namespace revtr::asmap
