#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace revtr::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::left
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string cell(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string cell_percent(double fraction, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return out.str();
}

std::string cell_count(std::uint64_t n) {
  // Group digits with commas for readability, matching the paper's tables.
  std::string digits = std::to_string(n);
  std::string grouped;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++run;
  }
  std::reverse(grouped.begin(), grouped.end());
  return grouped;
}

std::string render_figure(const std::string& title,
                          const std::vector<Series>& series, int precision) {
  std::ostringstream out;
  out << "== " << title << " ==\n";
  out << std::fixed << std::setprecision(precision);
  for (const auto& s : series) {
    out << "series: " << s.name << '\n';
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      out << "  " << s.xs[i] << ' ' << s.ys[i] << '\n';
    }
  }
  return out.str();
}

}  // namespace revtr::util
