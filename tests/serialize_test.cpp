#include <gtest/gtest.h>
#include <memory>

#include "core/serialize.h"
#include "eval/harness.h"
#include "service/archive.h"

namespace revtr {
namespace {

using topology::HostId;

topology::TopologyConfig small_config() {
  topology::TopologyConfig config;
  config.seed = 111;
  config.num_ases = 150;
  config.num_vps = 8;
  config.num_vps_2016 = 3;
  config.num_probe_hosts = 40;
  return config;
}

class SerializeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lab_ = std::make_unique<eval::Lab>(small_config());
    source_ = lab_->topo.vantage_points()[0];
    lab_->bootstrap_source(source_, 30);
    util::SimClock clock;
    for (std::size_t i = 0; i < 6; ++i) {
      results_.push_back(lab_->engine.measure(lab_->topo.probe_hosts()[i],
                                              source_, clock));
    }
  }
  static void TearDownTestSuite() {
    lab_.reset();
    results_.clear();
  }
  static std::unique_ptr<eval::Lab> lab_;
  static HostId source_;
  static std::vector<core::ReverseTraceroute> results_;
};

std::unique_ptr<eval::Lab> SerializeFixture::lab_;
HostId SerializeFixture::source_ = topology::kInvalidId;
std::vector<core::ReverseTraceroute> SerializeFixture::results_;

TEST_F(SerializeFixture, JsonContainsCoreFields) {
  const auto json = core::to_json(results_[0], lab_->topo);
  EXPECT_TRUE(json.find("destination")->is_string());
  EXPECT_TRUE(json.find("source")->is_string());
  EXPECT_TRUE(json.find("status")->is_string());
  EXPECT_EQ(json.find("hops")->as_array().size(), results_[0].hops.size());
  EXPECT_TRUE(json.find("flags")->find("dbr_suspect")->is_bool());
  EXPECT_GE(json.find("probes")->find("spoofed_rr")->as_int(), 0);
}

TEST_F(SerializeFixture, RoundTripPreservesEverything) {
  for (const auto& result : results_) {
    const auto json = core::to_json(result, lab_->topo);
    // Through text and back, like the archive does.
    const auto reparsed = util::Json::parse(json.dump());
    ASSERT_TRUE(reparsed);
    const auto restored =
        core::reverse_traceroute_from_json(*reparsed, lab_->topo);
    ASSERT_TRUE(restored);
    EXPECT_EQ(restored->destination, result.destination);
    EXPECT_EQ(restored->source, result.source);
    EXPECT_EQ(restored->status, result.status);
    ASSERT_EQ(restored->hops.size(), result.hops.size());
    for (std::size_t h = 0; h < result.hops.size(); ++h) {
      EXPECT_EQ(restored->hops[h].source, result.hops[h].source);
      if (result.hops[h].source != core::HopSource::kSuspiciousGap) {
        EXPECT_EQ(restored->hops[h].addr, result.hops[h].addr);
      }
    }
    EXPECT_EQ(restored->span.duration(), result.span.duration());
    EXPECT_EQ(restored->probes.spoofed_rr, result.probes.spoofed_rr);
    EXPECT_EQ(restored->symmetry_assumptions, result.symmetry_assumptions);
    EXPECT_EQ(restored->has_suspicious_gap, result.has_suspicious_gap);
  }
}

// Pins the wire format byte-for-byte: key order (std::map), compact
// separators, hop encoding (gap hops omit "addr"), and flag spelling. The
// SoA hop storage (core::HopList) sits behind this format — any layout
// change that altered serialization would shift these bytes.
TEST_F(SerializeFixture, GoldenWireFormatIsByteStable) {
  core::ReverseTraceroute r;
  r.destination = lab_->topo.probe_hosts()[0];
  r.source = source_;
  r.status = core::RevtrStatus::kComplete;
  r.hops.push_back(core::ReverseHop{*net::Ipv4Addr::parse("203.0.113.7"),
                                    core::HopSource::kDestination});
  r.hops.push_back(core::ReverseHop{*net::Ipv4Addr::parse("198.51.100.9"),
                                    core::HopSource::kSpoofedRecordRoute});
  r.hops.push_back(
      core::ReverseHop{net::Ipv4Addr{}, core::HopSource::kSuspiciousGap});
  r.hops.push_back(core::ReverseHop{*net::Ipv4Addr::parse("192.0.2.1"),
                                    core::HopSource::kAssumedSymmetric});
  r.span.begin = 0;
  r.span.end = 1234;
  r.probes.ping = 1;
  r.probes.rr = 2;
  r.probes.spoofed_rr = 9;
  r.probes.ts = 3;
  r.probes.spoofed_ts = 4;
  r.probes.traceroute_packets = 5;
  r.spoofed_batches = 2;
  r.symmetry_assumptions = 1;
  r.has_suspicious_gap = true;

  const std::string dst = lab_->topo.host(r.destination).addr.to_string();
  const std::string src = lab_->topo.host(r.source).addr.to_string();
  const std::string expected =
      "{\"destination\":\"" + dst +
      "\",\"flags\":{\"dbr_suspect\":false,\"interdomain_symmetry\":false,"
      "\"private_hops\":false,\"stale_traceroute\":false,"
      "\"suspicious_gap\":true},"
      "\"hops\":[{\"addr\":\"203.0.113.7\",\"via\":\"destination\"},"
      "{\"addr\":\"198.51.100.9\",\"via\":\"spoofed-rr\"},"
      "{\"via\":\"*\"},"
      "{\"addr\":\"192.0.2.1\",\"via\":\"assumed-symmetric\"}],"
      "\"latency_us\":1234,"
      "\"probes\":{\"ping\":1,\"rr\":2,\"spoofed_rr\":9,\"spoofed_ts\":4,"
      "\"traceroute_packets\":5,\"ts\":3},"
      "\"source\":\"" + src +
      "\",\"spoofed_batches\":2,\"status\":\"complete\","
      "\"symmetry_assumptions\":1}";
  EXPECT_EQ(core::to_json(r, lab_->topo).dump(), expected);

  // And the golden bytes survive a decode/encode cycle unchanged.
  const auto reparsed = util::Json::parse(expected);
  ASSERT_TRUE(reparsed);
  const auto restored =
      core::reverse_traceroute_from_json(*reparsed, lab_->topo);
  ASSERT_TRUE(restored);
  EXPECT_EQ(core::to_json(*restored, lab_->topo).dump(), expected);
  EXPECT_TRUE(restored->hops == r.hops);
}

// Every measured result re-serializes to the same bytes after a decode:
// dump -> parse -> from_json -> to_json -> dump is the identity.
TEST_F(SerializeFixture, ReserializationIsByteIdentical) {
  for (const auto& result : results_) {
    const std::string bytes = core::to_json(result, lab_->topo).dump();
    const auto reparsed = util::Json::parse(bytes);
    ASSERT_TRUE(reparsed);
    const auto restored =
        core::reverse_traceroute_from_json(*reparsed, lab_->topo);
    ASSERT_TRUE(restored);
    EXPECT_EQ(core::to_json(*restored, lab_->topo).dump(), bytes);
  }
}

TEST_F(SerializeFixture, MalformedDocumentsRejected) {
  EXPECT_FALSE(core::reverse_traceroute_from_json(util::Json(), lab_->topo));
  util::Json missing_status = core::to_json(results_[0], lab_->topo);
  missing_status.as_object().erase("status");
  EXPECT_FALSE(
      core::reverse_traceroute_from_json(missing_status, lab_->topo));
  util::Json bad_addr = core::to_json(results_[0], lab_->topo);
  bad_addr["destination"] = "999.999.0.1";
  EXPECT_FALSE(core::reverse_traceroute_from_json(bad_addr, lab_->topo));
  util::Json unknown_host = core::to_json(results_[0], lab_->topo);
  unknown_host["destination"] = "203.0.113.1";  // Not a host in the topo.
  EXPECT_FALSE(core::reverse_traceroute_from_json(unknown_host, lab_->topo));
}

// --------------------------------------------------------------------------
// MeasurementArchive
// --------------------------------------------------------------------------

TEST_F(SerializeFixture, ArchiveRecordsAndQueries) {
  service::MeasurementArchive archive(lab_->topo);
  for (std::size_t i = 0; i < results_.size(); ++i) {
    archive.record(results_[i], static_cast<util::SimClock::Micros>(i) *
                                    util::SimClock::kHour);
  }
  EXPECT_EQ(archive.size(), results_.size());
  EXPECT_EQ(archive.by_source(source_).size(), results_.size());
  EXPECT_EQ(archive.by_destination(results_[2].destination).size(), 1u);
  EXPECT_EQ(archive.since(4 * util::SimClock::kHour).size(), 2u);

  const auto stats = archive.stats();
  EXPECT_EQ(stats.total, results_.size());
  EXPECT_EQ(stats.complete + stats.aborted + stats.unreachable,
            results_.size());
}

TEST_F(SerializeFixture, ArchiveNdjsonRoundTrip) {
  service::MeasurementArchive archive(lab_->topo);
  for (const auto& result : results_) archive.record(result, 42);
  const auto ndjson = archive.export_ndjson();
  EXPECT_EQ(std::count(ndjson.begin(), ndjson.end(), '\n'),
            static_cast<long>(results_.size()));

  service::MeasurementArchive restored(lab_->topo);
  EXPECT_EQ(restored.import_ndjson(ndjson), results_.size());
  EXPECT_EQ(restored.size(), archive.size());
  for (std::size_t i = 0; i < results_.size(); ++i) {
    EXPECT_EQ(restored.entries()[i].measurement.status, results_[i].status);
    EXPECT_EQ(restored.entries()[i].recorded_at, 42);
  }
}

// The online/offline probe split (Table 4 accounting) must survive the
// round trip; offline_probes is emitted only when nonzero.
TEST_F(SerializeFixture, OfflineProbesRoundTrip) {
  auto result = results_[0];
  result.offline_probes = probing::ProbeCounters{};
  result.offline_probes.rr = 17;
  result.offline_probes.traceroute_packets = 42;
  const auto json = core::to_json(result, lab_->topo);
  const auto restored = core::reverse_traceroute_from_json(json, lab_->topo);
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->offline_probes.rr, 17u);
  EXPECT_EQ(restored->offline_probes.traceroute_packets, 42u);

  auto none = results_[0];
  none.offline_probes = probing::ProbeCounters{};
  EXPECT_EQ(core::to_json(none, lab_->topo).find("offline_probes"), nullptr);
  const auto restored_none =
      core::reverse_traceroute_from_json(core::to_json(none, lab_->topo),
                                         lab_->topo);
  ASSERT_TRUE(restored_none);
  EXPECT_EQ(restored_none->offline_probes.total(), 0u);
}

TEST_F(SerializeFixture, ArchiveImportSkipsGarbageLines) {
  service::MeasurementArchive archive(lab_->topo);
  archive.record(results_[0], 1);
  std::string ndjson = archive.export_ndjson();
  ndjson = "not json\n" + ndjson + "\n{\"recorded_at_us\": 5}\n\n";
  service::MeasurementArchive restored(lab_->topo);
  EXPECT_EQ(restored.import_ndjson(ndjson), 1u);
}

}  // namespace
}  // namespace revtr
