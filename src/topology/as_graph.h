// AS-level graph generation.
//
// Produces the business-relationship structure the routing layer consumes:
// a tier-1 clique at the top, preferentially-attached transit providers,
// multihomed stubs, peering among transits, and the NREN/colo/edu category
// tags used by VP placement and by the Fig 8(b) analysis.
#pragma once

#include <vector>

#include "topology/config.h"
#include "topology/types.h"
#include "util/rng.h"

namespace revtr::topology {

// Generates ASes with relationships and categories filled in. ASN = dense
// index + 1. Routers/prefixes are attached later by TopologyBuilder.
std::vector<AsNode> generate_as_graph(const TopologyConfig& config,
                                      util::Rng& rng);

}  // namespace revtr::topology
