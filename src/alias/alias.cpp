#include "alias/alias.h"

#include "util/rng.h"

namespace revtr::alias {

void AliasStore::add_pair(net::Ipv4Addr a, net::Ipv4Addr b) {
  parent_.try_emplace(a, a);
  parent_.try_emplace(b, b);
  const net::Ipv4Addr ra = find(a);
  const net::Ipv4Addr rb = find(b);
  if (ra != rb) parent_[ra] = rb;
}

void AliasStore::add_set(const std::vector<net::Ipv4Addr>& addrs) {
  for (std::size_t i = 1; i < addrs.size(); ++i) {
    add_pair(addrs[0], addrs[i]);
  }
  if (addrs.size() == 1) parent_.try_emplace(addrs[0], addrs[0]);
}

net::Ipv4Addr AliasStore::find(net::Ipv4Addr addr) const {
  // Path-halving; parent_ is mutable because compression is an internal
  // optimization invisible to callers.
  auto it = parent_.find(addr);
  while (it->second != addr) {
    const auto grand = parent_.find(it->second);
    it->second = grand->second;
    addr = it->second;
    it = parent_.find(addr);
  }
  return addr;
}

bool AliasStore::knows(net::Ipv4Addr addr) const {
  return parent_.contains(addr);
}

bool AliasStore::same_router(net::Ipv4Addr a, net::Ipv4Addr b) const {
  if (a == b) return true;
  if (!knows(a) || !knows(b)) return false;
  return find(a) == find(b);
}

std::optional<net::Ipv4Addr> AliasStore::representative(
    net::Ipv4Addr addr) const {
  if (!knows(addr)) return std::nullopt;
  return find(addr);
}

AliasStore ground_truth_aliases(const topology::Topology& topo) {
  AliasStore store;
  for (const auto& router : topo.routers()) {
    store.add_set(topo.router_addresses(router.id));
  }
  return store;
}

AliasStore midar_like_aliases(const topology::Topology& topo, util::Rng& rng,
                              double router_coverage,
                              double interface_coverage) {
  AliasStore store;
  for (const auto& router : topo.routers()) {
    if (!rng.chance(router_coverage)) continue;
    std::vector<net::Ipv4Addr> kept;
    for (const auto addr : topo.router_addresses(router.id)) {
      // MIDAR relies on shared IP-ID counters, which private interfaces and
      // non-responsive routers never expose.
      if (addr.is_private()) continue;
      if (rng.chance(interface_coverage)) kept.push_back(addr);
    }
    if (kept.size() >= 2) store.add_set(kept);
  }
  return store;
}

SnmpResolver::SnmpResolver(const topology::Topology& topo) : topo_(topo) {}

std::optional<std::uint64_t> SnmpResolver::identifier(
    net::Ipv4Addr addr) const {
  const auto owner = topo_.interface_at(addr);
  if (!owner) return std::nullopt;
  const auto& router = topo_.router(owner->router);
  if (!router.snmp_responder) return std::nullopt;
  // Engine IDs are opaque but stable per device.
  return util::mix_hash(0x534e4d50, router.id);
}

std::vector<net::Ipv4Addr> SnmpResolver::responsive_addresses() const {
  std::vector<net::Ipv4Addr> addrs;
  for (const auto& router : topo_.routers()) {
    if (!router.snmp_responder) continue;
    for (const auto addr : topo_.router_addresses(router.id)) {
      if (!addr.is_private()) addrs.push_back(addr);
    }
  }
  return addrs;
}

bool same_p2p_subnet(net::Ipv4Addr a, net::Ipv4Addr b) {
  if (a == b) return false;
  return (a.value() >> 2) == (b.value() >> 2) ||  // Same /30.
         (a.value() >> 1) == (b.value() >> 1);    // Same /31.
}

net::Ipv4Addr p2p_partner(net::Ipv4Addr addr) {
  // Within a /30 the two usable addresses are .1 and .2 (offsets 01 and 10).
  const std::uint32_t base = addr.value() & ~3u;
  const std::uint32_t offset = addr.value() & 3u;
  return net::Ipv4Addr(base + (offset == 1 ? 2 : 1));
}

}  // namespace revtr::alias
