#include "atlas/atlas.h"

#include <algorithm>
#include <stdexcept>

namespace revtr::atlas {

namespace {
using net::Ipv4Addr;
using topology::HostId;
}  // namespace

AtlasMetrics::AtlasMetrics(obs::MetricsRegistry& registry) {
  builds = &registry.counter("revtr_atlas_builds_total");
  refreshes = &registry.counter("revtr_atlas_refreshes_total");
  rr_index_builds = &registry.counter("revtr_atlas_rr_index_builds_total");
  const auto kind = [&registry](const char* value) {
    return &registry.counter(
        std::string("revtr_atlas_intersections_total{kind=\"") + value +
        "\"}");
  };
  intersect_hop = kind("hop");
  intersect_rr_index = kind("rr-index");
  intersect_alias = kind("alias");
  intersect_miss = kind("miss");
  rr_index_entries = &registry.gauge("revtr_atlas_rr_index_entries");
}

TracerouteAtlas::TracerouteAtlas(probing::Prober& prober,
                                 const topology::Topology& topo)
    : prober_(prober), topo_(topo) {}

util::SimClock::Micros TracerouteAtlas::measure_into(
    SourceAtlas& atlas, HostId source, std::span<const HostId> probes,
    util::SimClock::Micros now) {
  const Ipv4Addr source_addr = topo_.host(source).addr;
  // Atlas construction is maintenance traffic, not part of any request's
  // online budget (Table 4 separates the two).
  const probing::Prober::OfflineScope offline(prober_);
  util::SimClock::Micros longest = 0;
  for (const HostId probe : probes) {
    const auto result = prober_.traceroute(probe, source_addr);
    AtlasTraceroute tr;
    tr.probe = probe;
    tr.hops = result.responsive_hops();
    tr.reached_source = result.reached;
    tr.measured_at = now;
    atlas.traceroutes.push_back(std::move(tr));
    // Probe hosts measure concurrently; the build takes as long as the
    // slowest traceroute (matching the ~15 min bootstrap of Appx A).
    longest = std::max(longest, result.duration_us);
  }
  return longest;
}

void TracerouteAtlas::index_hops(SourceAtlas& atlas) {
  atlas.hop_index.clear();
  for (std::size_t t = 0; t < atlas.traceroutes.size(); ++t) {
    // Traceroutes that never reached the source are kept (refresh may retry
    // their probes) but must not be intersected: adopting their suffix
    // yields a "complete" path that stops short of the source.
    if (!atlas.traceroutes[t].reached_source) continue;
    const auto& hops = atlas.traceroutes[t].hops;
    for (std::size_t h = 0; h < hops.size(); ++h) {
      // Keep the entry closest to the source so suffixes are shortest and
      // therefore most conservative.
      const auto it = atlas.hop_index.find(hops[h]);
      if (it == atlas.hop_index.end()) {
        atlas.hop_index[hops[h]] = Intersection{t, h};
      }
    }
  }
}

// sources_ entries are never erased and unordered_map node references are
// stable; the atlas contents behind the pointer are additionally guarded by
// the per-source stripe the callers take before reading.
// lint: stable-ref(never-erased node map; contents striped per source)
const TracerouteAtlas::SourceAtlas* TracerouteAtlas::find_atlas(
    HostId source) const {
  const util::SharedLock lock(sources_mu_);
  const auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : &it->second;
}

util::SimClock::Micros TracerouteAtlas::build(HostId source,
                                              std::size_t count,
                                              util::Rng& rng,
                                              util::SimClock::Micros now) {
  SourceAtlas* slot;
  {
    const util::ExclusiveLock map_lock(sources_mu_);
    slot = &sources_[source];
  }
  // unordered_map references are stable, so the contents can be rebuilt
  // under the source's stripe without blocking lookups for other sources.
  const util::ExclusiveLock lock(stripe_of(source));
  SourceAtlas& atlas = *slot;
  const AtlasMetrics* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics != nullptr) {
    metrics->builds->add();
    metrics->rr_index_entries->add(
        -static_cast<std::int64_t>(atlas.rr_index.size()));
  }
  atlas.traceroutes.clear();
  atlas.rr_index.clear();
  const auto probes_span = topo_.probe_hosts();
  const std::vector<HostId> pool(probes_span.begin(), probes_span.end());
  const auto chosen = rng.sample(pool, count);
  const auto duration = measure_into(atlas, source, chosen, now);
  index_hops(atlas);
  return duration;
}

util::SimClock::Micros TracerouteAtlas::refresh(HostId source, util::Rng& rng,
                                                util::SimClock::Micros now) {
  SourceAtlas* slot;
  {
    const util::SharedLock map_lock(sources_mu_);
    slot = &sources_.at(source);
  }
  const util::ExclusiveLock lock(stripe_of(source));
  SourceAtlas& atlas = *slot;
  const std::size_t target = atlas.traceroutes.size();

  // Keep useful probes, re-measuring them; replace the rest.
  std::vector<HostId> keep;
  std::unordered_set<HostId> keep_set;
  for (const auto& tr : atlas.traceroutes) {
    if (tr.useful) {
      keep.push_back(tr.probe);
      keep_set.insert(tr.probe);
    }
  }
  std::vector<HostId> fresh_pool;
  for (const HostId probe : topo_.probe_hosts()) {
    if (!keep_set.contains(probe)) fresh_pool.push_back(probe);
  }
  const auto fresh =
      rng.sample(fresh_pool, target > keep.size() ? target - keep.size() : 0);

  const AtlasMetrics* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics != nullptr) {
    metrics->refreshes->add();
    metrics->rr_index_entries->add(
        -static_cast<std::int64_t>(atlas.rr_index.size()));
  }
  atlas.traceroutes.clear();
  atlas.rr_index.clear();
  auto duration = measure_into(atlas, source, keep, now);
  duration = std::max(duration, measure_into(atlas, source, fresh, now));
  index_hops(atlas);
  return duration;
}

void TracerouteAtlas::build_rr_alias_index(HostId source) {
  SourceAtlas* slot;
  {
    const util::SharedLock map_lock(sources_mu_);
    slot = &sources_.at(source);
  }
  const util::ExclusiveLock lock(stripe_of(source));
  SourceAtlas& atlas = *slot;
  const AtlasMetrics* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics != nullptr) {
    metrics->rr_index_builds->add();
    metrics->rr_index_entries->add(
        -static_cast<std::int64_t>(atlas.rr_index.size()));
  }
  atlas.rr_index.clear();
  // RR-alias indexing is offline work like the atlas build itself (Q2 runs
  // during source bootstrap, not per request).
  const probing::Prober::OfflineScope offline(prober_);
  for (std::size_t t = 0; t < atlas.traceroutes.size(); ++t) {
    if (!atlas.traceroutes[t].reached_source) continue;
    const auto& hops = atlas.traceroutes[t].hops;
    for (std::size_t h = 0; h < hops.size(); ++h) {
      const auto result = prober_.rr_ping(source, hops[h]);
      if (!result.responded) continue;
      // Find the probed hop's own stamp; slots after it lie on the reverse
      // path toward the source and align with successive traceroute hops.
      const auto self = std::find(result.slots.begin(), result.slots.end(),
                                  hops[h]);
      if (self == result.slots.end()) continue;
      std::size_t offset = 1;
      for (auto it = self + 1; it != result.slots.end(); ++it, ++offset) {
        // Clamping slots that align past the traceroute tail onto the final
        // hop used to register the source's own aliases here; the adopted
        // suffix was empty, so the engine declared paths "complete" at an
        // RR alias that is not the source. Map only slots that align
        // strictly before the final (source) hop, so every adopted suffix
        // still terminates at the source.
        if (h + offset + 1 >= hops.size()) break;
        // First mapping wins: it is the one farthest from the source, which
        // yields the longest (and in our alignment, safest) suffix.
        atlas.rr_index.try_emplace(*it, Intersection{t, h + offset});
      }
    }
  }
  if (metrics != nullptr) {
    metrics->rr_index_entries->add(
        static_cast<std::int64_t>(atlas.rr_index.size()));
  }
}

std::optional<Intersection> TracerouteAtlas::intersect(
    HostId source, Ipv4Addr addr, bool use_rr_index) const {
  const SourceAtlas* atlas = find_atlas(source);
  if (atlas == nullptr) return std::nullopt;
  const AtlasMetrics* metrics = metrics_.load(std::memory_order_acquire);
  const util::SharedLock lock(stripe_of(source));
  if (const auto hit = atlas->hop_index.find(addr);
      hit != atlas->hop_index.end()) {
    if (metrics != nullptr) metrics->intersect_hop->add();
    return hit->second;
  }
  if (use_rr_index) {
    if (const auto hit = atlas->rr_index.find(addr);
        hit != atlas->rr_index.end()) {
      if (metrics != nullptr) metrics->intersect_rr_index->add();
      return hit->second;
    }
  }
  if (metrics != nullptr) metrics->intersect_miss->add();
  return std::nullopt;
}

std::optional<Intersection> TracerouteAtlas::intersect_with_aliases(
    HostId source, Ipv4Addr addr, const alias::AliasStore& aliases) const {
  const SourceAtlas* atlas = find_atlas(source);
  if (atlas == nullptr) return std::nullopt;
  const AtlasMetrics* metrics = metrics_.load(std::memory_order_acquire);
  // The exact hop_index probe is inlined (rather than calling intersect())
  // so the stripe's shared lock is taken once; shared_mutex does not
  // guarantee recursive shared acquisition.
  const util::SharedLock lock(stripe_of(source));
  if (const auto hit = atlas->hop_index.find(addr);
      hit != atlas->hop_index.end()) {
    if (metrics != nullptr) metrics->intersect_hop->add();
    return hit->second;
  }
  if (aliases.knows(addr)) {
    for (const auto& [hop_addr, where] : atlas->hop_index) {
      if (aliases.same_router(addr, hop_addr)) {
        if (metrics != nullptr) metrics->intersect_alias->add();
        return where;
      }
    }
  }
  if (metrics != nullptr) metrics->intersect_miss->add();
  return std::nullopt;
}

std::vector<Ipv4Addr> TracerouteAtlas::suffix_after(
    HostId source, const Intersection& at) const {
  const SourceAtlas* atlas = find_atlas(source);
  if (atlas == nullptr) {
    throw std::out_of_range("TracerouteAtlas::suffix_after: unknown source");
  }
  const util::SharedLock lock(stripe_of(source));
  const auto& hops = atlas->traceroutes.at(at.traceroute_index).hops;
  if (at.hop_index + 1 >= hops.size()) return {};
  return {hops.begin() + static_cast<long>(at.hop_index) + 1, hops.end()};
}

util::SimClock::Micros TracerouteAtlas::touch(HostId source,
                                              const Intersection& at,
                                              util::SimClock::Micros now) {
  SourceAtlas* slot;
  {
    const util::SharedLock map_lock(sources_mu_);
    slot = &sources_.at(source);
  }
  // The useful-flag write needs the stripe exclusively: concurrent workers
  // may touch the same traceroute, and readers walk the same vector.
  const util::ExclusiveLock lock(stripe_of(source));
  auto& tr = slot->traceroutes.at(at.traceroute_index);
  tr.useful = true;
  return now - tr.measured_at;
}

std::vector<AtlasTraceroute> TracerouteAtlas::traceroutes(
    HostId source) const {
  const SourceAtlas* atlas = find_atlas(source);
  if (atlas == nullptr) return {};
  const util::SharedLock lock(stripe_of(source));
  return atlas->traceroutes;
}

std::size_t TracerouteAtlas::traceroute_count(HostId source) const {
  const SourceAtlas* atlas = find_atlas(source);
  if (atlas == nullptr) return 0;
  const util::SharedLock lock(stripe_of(source));
  return atlas->traceroutes.size();
}

std::size_t TracerouteAtlas::rr_index_size(HostId source) const {
  const SourceAtlas* atlas = find_atlas(source);
  if (atlas == nullptr) return 0;
  const util::SharedLock lock(stripe_of(source));
  return atlas->rr_index.size();
}

std::unordered_map<Ipv4Addr, Intersection> TracerouteAtlas::rr_index_entries(
    HostId source) const {
  const SourceAtlas* atlas = find_atlas(source);
  if (atlas == nullptr) return {};
  const util::SharedLock lock(stripe_of(source));
  // Cold path: copy the flat table into the node-based snapshot type the
  // validation tooling consumes.
  std::unordered_map<Ipv4Addr, Intersection> snapshot;
  snapshot.reserve(atlas->rr_index.size());
  for (const auto& [addr, at] : atlas->rr_index) snapshot.emplace(addr, at);
  return snapshot;
}

std::vector<std::size_t> greedy_optimal_selection(
    std::span<const AtlasTraceroute> pool, std::size_t k) {
  return greedy_optimal_selection(pool, k, pool);
}

std::vector<std::size_t> greedy_optimal_selection(
    std::span<const AtlasTraceroute> pool, std::size_t k,
    std::span<const AtlasTraceroute> weight_pool) {
  // Address weight = summed hops-to-source across the weighting set.
  std::unordered_map<Ipv4Addr, double> weight;
  for (const auto& tr : weight_pool) {
    for (std::size_t h = 0; h < tr.hops.size(); ++h) {
      weight[tr.hops[h]] +=
          static_cast<double>(tr.hops.size() - 1 - h);
    }
  }

  std::vector<std::size_t> selected;
  std::unordered_set<Ipv4Addr> covered;
  std::vector<bool> taken(pool.size(), false);
  k = std::min(k, pool.size());
  selected.reserve(k);
  for (std::size_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    std::size_t best = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      double gain = 0;
      for (const auto hop : pool[i].hops) {
        if (!covered.contains(hop)) gain += weight[hop];
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == pool.size()) break;
    taken[best] = true;
    selected.push_back(best);
    for (const auto hop : pool[best].hops) covered.insert(hop);
  }
  return selected;
}

double intersected_fraction(std::span<const Ipv4Addr> path,
                            const std::unordered_set<Ipv4Addr>& covered) {
  if (path.empty()) return 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (covered.contains(path[i])) {
      return static_cast<double>(path.size() - i) /
             static_cast<double>(path.size());
    }
  }
  return 0.0;
}

}  // namespace revtr::atlas
