#include "routing/forwarding.h"

#include "util/rng.h"

namespace revtr::routing {

namespace {
using topology::AsIndex;
using topology::Asn;
using topology::HostId;
using topology::kInvalidId;
using topology::LinkId;
using topology::RouterId;
}  // namespace

ForwardingPlane::ForwardingPlane(const topology::Topology& topo,
                                 const BgpTable& bgp,
                                 const IntraRouting& intra)
    : topo_(topo), bgp_(bgp), intra_(intra) {}

RouterId ForwardingPlane::origin_router(HostId host) const {
  return topo_.host(host).attachment;
}

Asn ForwardingPlane::next_as(AsIndex dest_as, AsIndex as_index,
                             net::Ipv4Addr src, net::Ipv4Addr dst) const {
  const auto& column = bgp_.column(dest_as);
  const Asn best = column.next[as_index];
  const Asn alt = column.alt[as_index];
  const auto& node = topo_.as_at(as_index);
  if (node.source_sensitive && alt != 0) {
    // Consistent per (AS, src, dst): half the sources take the alternate.
    if (util::mix_hash(src.value(), dst.value(), node.asn) & 1) {
      return alt;
    }
  }
  return best;
}

LinkId ForwardingPlane::choose_link(const IntraRouting::NextHops& hops,
                                    const topology::Router& router,
                                    const PacketContext& ctx) const {
  if (!hops.has_ecmp()) return hops.primary;
  // Ordinary routers follow the unique IGP-optimal path: intradomain
  // forwarding is symmetric and destination-based (§4.4). Only load
  // balancers and source-sensitive routers spill onto the equal-hop
  // alternate.
  std::uint64_t selector;
  if (router.per_packet_lb && ctx.has_options) {
    // Option packets traverse the slow path and are balanced randomly.
    selector = util::mix_hash(ctx.packet_salt, router.id);
  } else if (router.per_packet_lb) {
    // Fast-path flow hashing; Paris traceroute keeps the flow key constant
    // so one trace still sees one branch.
    selector = util::mix_hash(ctx.flow_key, router.id);
  } else if (router.source_sensitive) {
    selector = util::mix_hash(ctx.src.value(), ctx.dst.value(), router.id);
  } else {
    return hops.primary;
  }
  return (selector & 1) ? hops.alternate : hops.primary;
}

Decision ForwardingPlane::step_toward_router(RouterId current, RouterId target,
                                             const PacketContext& ctx) const {
  const auto hops = intra_.next_hops(current, target);
  if (!hops.reachable()) return Decision{};
  const LinkId link = choose_link(hops, topo_.router(current), ctx);
  Decision decision;
  decision.kind = Decision::Kind::kForwardLink;
  decision.link = link;
  decision.next_router = topo_.far_end(current, link);
  return decision;
}

ResolvedDst ForwardingPlane::resolve(net::Ipv4Addr dst) const {
  ResolvedDst resolved;
  resolved.iface = topo_.interface_at(dst);
  resolved.prefix = topo_.prefix_of(dst);
  if (resolved.prefix) {
    resolved.dest_asn = topo_.prefix(*resolved.prefix).origin;
    resolved.dest_as = topo_.index_of(resolved.dest_asn);
    resolved.host = topo_.host_at(dst);
  }
  return resolved;
}

Decision ForwardingPlane::decide(RouterId current,
                                 const PacketContext& ctx) const {
  return decide(current, ctx, resolve(ctx.dst));
}

Decision ForwardingPlane::decide(RouterId current, const PacketContext& ctx,
                                 const ResolvedDst& dst) const {
  // A router always recognizes its own interface addresses, even when the
  // covering prefix is announced by a neighbor (interdomain /30s, Fig 4).
  if (dst.iface && dst.iface->router == current) {
    Decision decision;
    decision.kind = Decision::Kind::kDeliverRouter;
    return decision;
  }

  const auto& prefix_id = dst.prefix;
  if (!prefix_id) return Decision{};  // Unroutable (e.g. private space).
  const Asn dest_asn = dst.dest_asn;
  const auto& current_router = topo_.router(current);

  if (current_router.asn != dest_asn) {
    // --- Interdomain step. ---
    const AsIndex dest_as = dst.dest_as;
    const AsIndex current_as = current_router.as_index;
    const Asn next = next_as(dest_as, current_as, ctx.src, ctx.dst);
    if (next == 0) return Decision{};
    const auto borders = topo_.border_links(current_router.asn, next);
    if (borders.empty()) return Decision{};
    // Among parallel interconnects, most traffic crosses a per-AS-pair
    // primary link (shared by both directions, like geographically natural
    // crossings), but a minority of destination prefixes egress elsewhere
    // (hot-potato). The choice depends only on the destination, so
    // Reverse Traceroute's destination-based assumption holds, yet forward
    // and reverse flows of one pair can cross different routers — a real
    // source of router-level interdomain asymmetry (§6.2).
    LinkId border = borders[0];
    if (borders.size() > 1) {
      const Asn low = std::min<Asn>(current_router.asn, next);
      const Asn high = std::max<Asn>(current_router.asn, next);
      const std::uint64_t primary = util::mix_hash(low, high, 0xa5a5);
      if (util::mix_hash(current_router.asn, next, *prefix_id) % 100 < 35) {
        border = borders[util::mix_hash(next, *prefix_id, 0x0ff) %
                         borders.size()];
      } else {
        border = borders[primary % borders.size()];
      }
    }
    const auto& link = topo_.link(border);
    const RouterId our_side =
        topo_.router(link.router_a).asn == current_router.asn ? link.router_a
                                                              : link.router_b;
    if (our_side == current) {
      Decision decision;
      decision.kind = Decision::Kind::kForwardLink;
      decision.link = border;
      decision.next_router = topo_.far_end(current, border);
      return decision;
    }
    return step_toward_router(current, our_side, ctx);
  }

  // --- The packet is inside the destination prefix's origin AS. ---
  if (const auto& host_id = dst.host) {
    const auto& host = topo_.host(*host_id);
    if (host.attachment == current) {
      Decision decision;
      decision.kind = Decision::Kind::kDeliverHost;
      decision.host = *host_id;
      return decision;
    }
    return step_toward_router(current, host.attachment, ctx);
  }

  if (const auto& iface = dst.iface) {
    const auto& owner = topo_.router(iface->router);
    if (iface->router == current) {
      Decision decision;
      decision.kind = Decision::Kind::kDeliverRouter;
      return decision;
    }
    if (owner.asn == current_router.asn) {
      return step_toward_router(current, iface->router, ctx);
    }
    // The /30 came from this AS's space but the owning interface sits on
    // the neighbor's border router (Fig 4). Route to our end of that link,
    // then hand the packet across.
    if (iface->link != kInvalidId) {
      const RouterId our_side = topo_.far_end(iface->router, iface->link);
      if (topo_.router(our_side).asn == current_router.asn) {
        if (our_side == current) {
          Decision decision;
          decision.kind = Decision::Kind::kForwardLink;
          decision.link = iface->link;
          decision.next_router = iface->router;
          return decision;
        }
        return step_toward_router(current, our_side, ctx);
      }
    }
    return Decision{};
  }

  // Address inside an announced prefix but with no host/interface behind it.
  return Decision{};
}

std::vector<Asn> ForwardingPlane::as_level_route(AsIndex src_as,
                                                 AsIndex dst_as,
                                                 net::Ipv4Addr src,
                                                 net::Ipv4Addr dst) const {
  std::vector<Asn> path;
  AsIndex current = src_as;
  const Asn dest_asn = topo_.as_at(dst_as).asn;
  for (std::size_t steps = 0; steps <= topo_.num_ases(); ++steps) {
    const Asn current_asn = topo_.as_at(current).asn;
    path.push_back(current_asn);
    if (current_asn == dest_asn) return path;
    const Asn next = next_as(dst_as, current, src, dst);
    if (next == 0) return {};
    current = topo_.index_of(next);
  }
  return {};
}

}  // namespace revtr::routing
