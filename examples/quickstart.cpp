// Quickstart: measure one reverse traceroute.
//
// Builds a small synthetic Internet, registers a vantage-point host as a
// Reverse Traceroute source (atlas + Q2 RR index), measures the reverse
// path from an arbitrary destination, and prints every hop with its
// provenance — the minimal end-to-end use of the library.
//
//   ./quickstart [--ases=300] [--seed=7]
#include <cstdio>

#include "core/revtr.h"
#include "eval/harness.h"
#include "util/flags.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  topology::TopologyConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.num_ases = static_cast<std::size_t>(flags.get_int("ases", 300));

  // The Lab wires the whole stack: topology -> routing -> simulator ->
  // prober -> atlas -> ingress discovery -> engine.
  eval::Lab lab(config, core::EngineConfig::revtr2());
  std::printf("synthetic Internet: %zu ASes, %zu routers, %zu links, "
              "%zu hosts\n",
              lab.topo.num_ases(), lab.topo.num_routers(),
              lab.topo.num_links(), lab.topo.num_hosts());

  // Pick a source (an M-Lab-like vantage point) and bootstrap it: build
  // its traceroute atlas (Q1) and RR-alias index (Q2).
  const topology::HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, /*atlas_size=*/60);
  std::printf("source %s bootstrapped: atlas of %zu traceroutes, "
              "%zu RR-learned intersection addresses\n",
              lab.topo.host(source).addr.to_string().c_str(),
              lab.atlas.traceroutes(source).size(),
              lab.atlas.rr_index_size(source));

  // Pick a destination we do not control and measure the path *from* it.
  const topology::HostId destination = lab.topo.probe_hosts()[0];
  util::SimClock clock;
  const auto result = lab.engine.measure(destination, source, clock);

  std::printf("\nreverse traceroute %s -> %s: %s in %.1f s, %llu probes\n",
              lab.topo.host(destination).addr.to_string().c_str(),
              lab.topo.host(source).addr.to_string().c_str(),
              core::to_string(result.status).c_str(), result.span.seconds(),
              static_cast<unsigned long long>(result.probes.total()));
  int index = 0;
  for (const auto& hop : result.hops) {
    if (hop.source == core::HopSource::kSuspiciousGap) {
      std::printf("  %2d  *               (possible missing hop)\n", index++);
      continue;
    }
    const auto asn = lab.ip2as.lookup(hop.addr);
    std::printf("  %2d  %-15s AS%-6s via %s\n", index++,
                hop.addr.to_string().c_str(),
                asn ? std::to_string(*asn).c_str() : "?",
                core::to_string(hop.source).c_str());
  }

  // Compare with the direct traceroute we could only take because this is
  // a simulation — the real Internet does not hand you this ground truth.
  const auto direct =
      lab.prober.traceroute(destination, lab.topo.host(source).addr);
  std::printf("\ndirect traceroute (ground-truth check, %zu hops):\n",
              direct.hops.size());
  for (const auto& hop : direct.responsive_hops()) {
    const auto asn = lab.ip2as.lookup(hop);
    std::printf("      %-15s AS%s\n", hop.to_string().c_str(),
                asn ? std::to_string(*asn).c_str() : "?");
  }
  return 0;
}
