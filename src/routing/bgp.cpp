#include "routing/bgp.h"

#include <algorithm>
#include <limits>

#include "util/rng.h"

namespace revtr::routing {

namespace {

using topology::AsIndex;
using topology::Asn;

constexpr std::uint16_t kUnreachableLen =
    std::numeric_limits<std::uint16_t>::max();

struct CandidateSet {
  Asn best = 0;
  Asn alt = 0;
  std::uint64_t best_weight = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t alt_weight = std::numeric_limits<std::uint64_t>::max();

  void offer(Asn candidate, std::uint64_t w) {
    if (w < best_weight) {
      alt = best;
      alt_weight = best_weight;
      best = candidate;
      best_weight = w;
    } else if (w < alt_weight && candidate != best) {
      alt = candidate;
      alt_weight = w;
    }
  }
};

}  // namespace

BgpTable::BgpTable(const topology::Topology& topo)
    : topo_(topo), columns_(topo.num_ases()) {}

// Deterministic, direction-sensitive tiebreak weight: the AS `chooser`
// ranks equally-preferred candidates by this hash, so choices differ per
// destination and are not symmetric between directions. Under churn, a
// per-epoch salt re-rolls a small fraction of (chooser, dest) decisions.
std::uint64_t BgpTable::tiebreak(Asn chooser, Asn candidate,
                                 Asn dest) const {
  std::uint64_t salt = 0;
  if (flip_per_million_ > 0 &&
      util::mix_hash(chooser, dest, 0xc4a11) % 1000000 < flip_per_million_) {
    salt = util::mix_hash(epoch_, chooser, dest);
  }
  return util::mix_hash(chooser, candidate, dest ^ salt);
}

void BgpTable::set_no_export(AsIndex origin,
                             std::vector<Asn> suppressed_neighbors) {
  no_export_[origin] = std::move(suppressed_neighbors);
  columns_[origin].reset();
}

void BgpTable::clear_no_export(AsIndex origin) {
  no_export_.erase(origin);
  columns_[origin].reset();
}

void BgpTable::set_epoch(std::uint32_t epoch, double flip_fraction) {
  epoch_ = epoch;
  flip_per_million_ = static_cast<std::uint32_t>(
      std::clamp(flip_fraction, 0.0, 1.0) * 1000000.0);
  for (auto& column : columns_) column.reset();
  computed_ = 0;
}

const BgpTable::Column& BgpTable::column(AsIndex dest) const {
  auto& slot = columns_[dest];
  if (!slot) {
    slot = std::make_unique<Column>();
    compute_column(dest, *slot);
    ++computed_;
  }
  return *slot;
}

Asn BgpTable::next_hop(AsIndex dest, AsIndex from) const {
  return column(dest).next[from];
}

Asn BgpTable::alt_next_hop(AsIndex dest, AsIndex from) const {
  return column(dest).alt[from];
}

std::vector<Asn> BgpTable::as_path(AsIndex from, AsIndex dest) const {
  std::vector<Asn> path;
  const Column& col = column(dest);
  AsIndex current = from;
  const Asn dest_asn = topo_.as_at(dest).asn;
  // Bounded walk; policy routing is loop-free but stay defensive.
  for (std::size_t steps = 0; steps <= topo_.num_ases(); ++steps) {
    const Asn current_asn = topo_.as_at(current).asn;
    path.push_back(current_asn);
    if (current_asn == dest_asn) return path;
    const Asn next = col.next[current];
    if (next == 0) return {};  // Unreachable.
    current = topo_.index_of(next);
  }
  return {};
}

void BgpTable::compute_column(AsIndex dest, Column& column) const {
  const std::size_t n = topo_.num_ases();
  column.next.assign(n, 0);
  column.alt.assign(n, 0);
  column.path_len.assign(n, kUnreachableLen);
  column.route_class.assign(n, RouteClass::kNone);

  const Asn dest_asn = topo_.as_at(dest).asn;
  column.route_class[dest] = RouteClass::kOrigin;
  column.path_len[dest] = 0;
  column.next[dest] = dest_asn;

  // §6.1 announcement policy: the origin withholds its route from these
  // neighbors entirely.
  const auto no_export_it = no_export_.find(dest);
  auto suppressed = [&](AsIndex u, Asn neighbor) {
    if (u != dest || no_export_it == no_export_.end()) return false;
    const auto& list = no_export_it->second;
    return std::find(list.begin(), list.end(), neighbor) != list.end();
  };

  // --- Phase 1: customer routes propagate "up" provider links. ---
  // Level-synchronous BFS so all equally-short candidates are visible for
  // the tiebreak at finalization time.
  std::vector<AsIndex> frontier = {dest};
  std::uint16_t level = 0;
  std::vector<CandidateSet> candidates(n);
  while (!frontier.empty()) {
    ++level;
    std::vector<AsIndex> offered;
    for (AsIndex u : frontier) {
      const Asn via = topo_.as_at(u).asn;
      for (Asn provider_asn : topo_.as_at(u).providers) {
        if (suppressed(u, provider_asn)) continue;
        const AsIndex p = topo_.index_of(provider_asn);
        if (column.route_class[p] != RouteClass::kNone) continue;
        if (candidates[p].best == 0) offered.push_back(p);
        candidates[p].offer(via, tiebreak(provider_asn, via, dest_asn));
      }
    }
    std::vector<AsIndex> next_frontier;
    for (AsIndex p : offered) {
      if (column.route_class[p] != RouteClass::kNone) continue;
      column.route_class[p] = RouteClass::kCustomer;
      column.path_len[p] = level;
      column.next[p] = candidates[p].best;
      column.alt[p] = candidates[p].alt;
      candidates[p] = CandidateSet{};
      next_frontier.push_back(p);
    }
    frontier = std::move(next_frontier);
  }

  // --- Phase 2: customer routes advertised across peer links. ---
  std::vector<std::pair<std::uint16_t, AsIndex>> peer_candidates_order;
  for (AsIndex u = 0; u < n; ++u) {
    if (column.route_class[u] != RouteClass::kCustomer &&
        column.route_class[u] != RouteClass::kOrigin) {
      continue;
    }
    const Asn via = topo_.as_at(u).asn;
    const std::uint16_t len = column.path_len[u];
    for (Asn peer_asn : topo_.as_at(u).peers) {
      if (suppressed(u, peer_asn)) continue;
      const AsIndex q = topo_.index_of(peer_asn);
      if (column.route_class[q] == RouteClass::kCustomer ||
          column.route_class[q] == RouteClass::kOrigin) {
        continue;
      }
      // Track the minimum candidate length per peer, then tiebreak among
      // candidates at that length.
      if (column.path_len[q] > len + 1 ||
          column.route_class[q] == RouteClass::kNone) {
        if (column.route_class[q] != RouteClass::kPeer ||
            column.path_len[q] > len + 1) {
          column.route_class[q] = RouteClass::kPeer;
          column.path_len[q] = len + 1;
          candidates[q] = CandidateSet{};
          peer_candidates_order.emplace_back(len + 1, q);
        }
      }
      if (column.route_class[q] == RouteClass::kPeer &&
          column.path_len[q] == len + 1) {
        candidates[q].offer(via, tiebreak(peer_asn, via, dest_asn));
      }
    }
  }
  for (const auto& [len, q] : peer_candidates_order) {
    if (column.route_class[q] == RouteClass::kPeer &&
        column.path_len[q] == len && candidates[q].best != 0) {
      column.next[q] = candidates[q].best;
      column.alt[q] = candidates[q].alt;
    }
  }

  // --- Phase 3: routes advertised "down" to customers (provider routes),
  // propagating through customer chains in path-length order. ---
  const std::uint16_t max_len = static_cast<std::uint16_t>(n + 2);
  std::vector<std::vector<std::pair<AsIndex, Asn>>> buckets(max_len + 2);
  auto seed_customers = [&](AsIndex u) {
    const std::uint16_t len = column.path_len[u];
    if (len + 1 > max_len) return;
    const Asn via = topo_.as_at(u).asn;
    for (Asn customer_asn : topo_.as_at(u).customers) {
      if (suppressed(u, customer_asn)) continue;
      const AsIndex c = topo_.index_of(customer_asn);
      if (column.route_class[c] >= RouteClass::kPeer) continue;
      buckets[len + 1].emplace_back(c, via);
    }
  };
  for (AsIndex u = 0; u < n; ++u) {
    if (column.route_class[u] >= RouteClass::kPeer) seed_customers(u);
  }
  for (std::uint16_t len = 1; len <= max_len; ++len) {
    auto& bucket = buckets[len];
    // First pass: collect candidates for not-yet-finalized ASes.
    std::vector<AsIndex> touched;
    for (const auto& [c, via] : bucket) {
      if (column.route_class[c] != RouteClass::kNone) continue;
      if (candidates[c].best == 0) touched.push_back(c);
      candidates[c].offer(via,
                          tiebreak(topo_.as_at(c).asn, via, dest_asn));
    }
    // Second pass: finalize and cascade to their customers.
    for (AsIndex c : touched) {
      if (column.route_class[c] != RouteClass::kNone) continue;
      column.route_class[c] = RouteClass::kProvider;
      column.path_len[c] = len;
      column.next[c] = candidates[c].best;
      column.alt[c] = candidates[c].alt;
      candidates[c] = CandidateSet{};
      seed_customers(c);
    }
    bucket.clear();
  }
}

}  // namespace revtr::routing
