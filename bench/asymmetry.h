// Shared bidirectional measurement campaign for the §6.2 asymmetry study
// (Fig 8, Fig 12, Fig 13/14, Table 7).
//
// Pairs an M-Lab-like source with destinations across prefixes, measures
// the forward path with traceroute and the reverse path with revtr 2.0,
// and keeps only pairs where both completed — the same filtering as the
// paper's 30M-pair study.
#pragma once

#include <vector>

#include "ablation.h"
#include "bench_common.h"
#include "eval/metrics.h"

namespace revtr::bench {

struct BidirPair {
  topology::HostId source = topology::kInvalidId;
  topology::HostId destination = topology::kInvalidId;
  std::vector<net::Ipv4Addr> forward_hops;   // source -> destination.
  std::vector<net::Ipv4Addr> reverse_hops;   // destination -> source.
  std::vector<topology::Asn> forward_as;
  std::vector<topology::Asn> reverse_as;     // Reversed into forward order.
  double router_fraction = 0;  // Forward hops also on the reverse path.
  double as_fraction = 0;
  bool as_symmetric = false;
  std::size_t symmetry_assumptions = 0;
};

struct AsymmetryCampaign {
  std::vector<BidirPair> pairs;  // Complete in both directions.
  std::size_t attempted = 0;
};

inline AsymmetryCampaign run_asymmetry_campaign(eval::Lab& lab,
                                                const BenchSetup& setup) {
  AsymmetryCampaign campaign;
  const auto vps = lab.topo.vantage_points();
  const std::size_t sources = std::min(setup.sources, vps.size());
  for (std::size_t s = 0; s < sources; ++s) {
    lab.bootstrap_source(vps[s], setup.atlas_size);
  }
  lab.precompute_all_ingresses();
  lab.prober.reset_counters();

  util::Rng rng(setup.seed * 7 + 11);
  util::Rng alias_rng(setup.seed + 3);
  const auto midar = alias::midar_like_aliases(lab.topo, alias_rng);
  const alias::SnmpResolver snmp(lab.topo);
  const eval::HopMatcher matcher(&midar, &snmp);

  // One destination per customer prefix (hitlist style), paired with
  // sources round-robin, up to the requested campaign size.
  std::vector<topology::HostId> dests;
  for (const auto prefix : lab.customer_prefixes()) {
    for (const auto host : lab.topo.hosts_in_prefix(prefix)) {
      if (lab.topo.host(host).ping_responsive) {
        dests.push_back(host);
        break;
      }
    }
  }
  rng.shuffle(dests);
  if (dests.size() > setup.revtrs) dests.resize(setup.revtrs);

  util::SimClock clock;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const topology::HostId source = vps[i % sources];
    const topology::HostId dest = dests[i];
    ++campaign.attempted;

    const auto reverse = lab.engine.measure(dest, source, clock);
    if (!reverse.complete()) continue;
    const auto forward =
        lab.prober.traceroute(source, lab.topo.host(dest).addr);
    if (!forward.reached) continue;

    BidirPair pair;
    pair.source = source;
    pair.destination = dest;
    pair.forward_hops = forward.responsive_hops();
    pair.reverse_hops = reverse.ip_hops();
    pair.symmetry_assumptions = reverse.symmetry_assumptions;
    const auto symmetry = eval::path_symmetry(
        pair.forward_hops, pair.reverse_hops, matcher, lab.ip2as);
    pair.router_fraction = symmetry.router_fraction;
    pair.as_fraction = symmetry.as_fraction;
    pair.as_symmetric = symmetry.as_symmetric;
    pair.forward_as = lab.ip2as.as_path(pair.forward_hops);
    pair.reverse_as = lab.ip2as.as_path(pair.reverse_hops);
    std::reverse(pair.reverse_as.begin(), pair.reverse_as.end());
    campaign.pairs.push_back(std::move(pair));
  }
  return campaign;
}

}  // namespace revtr::bench
