// Intra-AS routing: hop-count shortest paths among an AS's routers.
//
// Real networks run an IGP; hop-count shortest paths over the generated
// internal topology are a faithful stand-in at our scale. Equal-cost paths
// are preserved (up to two next hops per pair): the second next hop is what
// per-packet load balancers and source-sensitive routers use, producing the
// load-balancing and destination-based-routing-violation phenomena of
// Appx E.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topology/topology.h"

namespace revtr::routing {

class IntraRouting {
 public:
  explicit IntraRouting(const topology::Topology& topo);

  struct NextHops {
    topology::LinkId primary = topology::kInvalidId;
    topology::LinkId alternate = topology::kInvalidId;

    bool reachable() const noexcept {
      return primary != topology::kInvalidId;
    }
    bool has_ecmp() const noexcept {
      return alternate != topology::kInvalidId;
    }
  };

  // Next hop(s) from `from` toward `to`; both must be routers of the same
  // AS. Returns unreachable NextHops when from == to or disconnected.
  NextHops next_hops(topology::RouterId from, topology::RouterId to) const;

  // Hop distance between two routers of the same AS (0 when identical,
  // UINT16_MAX when disconnected).
  std::uint16_t distance(topology::RouterId from, topology::RouterId to) const;

 private:
  struct AsMatrix {
    // local_index(from) * size + local_index(to) -> NextHops / distance.
    std::vector<NextHops> hops;
    std::vector<std::uint16_t> dist;
    std::size_t size = 0;
  };

  const AsMatrix& matrix(topology::AsIndex as) const;
  void compute(topology::AsIndex as, AsMatrix& m) const;
  std::uint32_t local_index(topology::RouterId router) const {
    return local_index_[router];
  }

  const topology::Topology& topo_;
  std::vector<std::uint32_t> local_index_;  // RouterId -> index within AS.
  mutable std::vector<std::unique_ptr<AsMatrix>> matrices_;
};

}  // namespace revtr::routing
