#include "topology/address_plan.h"

#include <stdexcept>

namespace revtr::topology {

net::Ipv4Prefix AddressPlan::allocate_customer_prefix() {
  const std::uint32_t block_size = 1u << (32 - kCustomerPrefixLen);
  const std::uint32_t base =
      kCustomerBase + next_customer_block_ * block_size;
  if (base >= kInfraBase) {
    throw std::length_error("customer address region exhausted");
  }
  ++next_customer_block_;
  return net::Ipv4Prefix(net::Ipv4Addr(base), kCustomerPrefixLen);
}

net::Ipv4Prefix AddressPlan::allocate_infra_prefix() {
  const std::uint32_t block_size = 1u << (32 - kInfraPrefixLen);
  const std::uint32_t base = kInfraBase + next_infra_block_ * block_size;
  if (base < kInfraBase || base >= 0xc0000000u) {  // Stop below 192.0.0.0.
    throw std::length_error("infrastructure address region exhausted");
  }
  ++next_infra_block_;
  return net::Ipv4Prefix(net::Ipv4Addr(base), kInfraPrefixLen);
}

std::optional<net::Ipv4Addr> AddressPlan::InfraCursor::take_loopback() {
  const auto capacity = static_cast<std::uint32_t>(prefix.size());
  const std::uint32_t used_by_p2p = p2p_blocks * 4;
  if (next_loopback + used_by_p2p >= capacity) return std::nullopt;
  return prefix.at(next_loopback++);
}

std::optional<net::Ipv4Addr> AddressPlan::InfraCursor::take_p2p_block() {
  const auto capacity = static_cast<std::uint32_t>(prefix.size());
  const std::uint32_t used_by_p2p = (p2p_blocks + 1) * 4;
  if (next_loopback + used_by_p2p >= capacity) return std::nullopt;
  ++p2p_blocks;
  return prefix.at(capacity - used_by_p2p);
}

}  // namespace revtr::topology
