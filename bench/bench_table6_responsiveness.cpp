// Table 6 + Fig 11 (Appx F): record route responsiveness and reachability.
//
// One host per customer prefix is probed with a plain ping and an RR ping
// from every vantage point, for two vantage point sets: the "2020"-era
// colo-hosted VPs and the smaller "2016"-era edu-hosted set. Fig 11 is the
// CDF of the RR distance to the closest VP among RR-responsive hosts.
//
// Paper: ~77% ping-responsive, ~57% RR-responsive, ~36% reachable within
// 8 RR slots; destinations are markedly closer to the 2020 colo VPs (39%
// within 4 hops vs 16% in 2016).
#include <cstdio>

#include "bench_common.h"
#include "core/revtr.h"
#include "eval/harness.h"
#include "vpselect/ingress.h"

using namespace revtr;

namespace {

struct EraStats {
  std::uint64_t probed = 0;
  std::uint64_t ping_responsive = 0;
  std::uint64_t rr_responsive = 0;
  std::uint64_t rr_reachable_8 = 0;
  util::Distribution closest_distance;  // Among RR-responsive hosts.
};

EraStats survey(eval::Lab& lab, std::span<const topology::HostId> vps) {
  EraStats stats;
  for (const auto prefix : lab.customer_prefixes()) {
    const auto hosts = lab.topo.hosts_in_prefix(prefix);
    if (hosts.empty()) continue;
    const auto& host = lab.topo.host(hosts.front());
    ++stats.probed;

    const auto ping = lab.prober.ping(vps.front(), host.addr);
    if (!ping.responded) continue;
    ++stats.ping_responsive;

    // RR probe from every VP; track the closest observation.
    int closest = -1;
    bool responded = false;
    for (const auto vp : vps) {
      const auto rr = lab.prober.rr_ping(vp, host.addr);
      if (!rr.responded) continue;
      responded = true;
      const auto analysis = vpselect::analyze_reach(
          rr.slots, lab.topo.prefix(prefix).prefix);
      if (analysis.reach_slot < 0) continue;
      const int distance = analysis.reach_slot + 1;
      if (closest < 0 || distance < closest) closest = distance;
    }
    if (!responded) continue;
    ++stats.rr_responsive;
    if (closest >= 1) {
      stats.closest_distance.add(closest);
      if (closest <= 8) ++stats.rr_reachable_8;
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Table 6 / Fig 11: RR responsiveness & reachability",
                      setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto era2020 = survey(lab, lab.topo.vantage_points());
  const auto era2016 = survey(lab, lab.topo.vantage_points_2016());
  // "2020 with 2016 VP count": the first |2016| colo VPs.
  const auto vps = lab.topo.vantage_points();
  const std::size_t restricted_count =
      std::min(lab.topo.vantage_points_2016().size(), vps.size());
  const auto era2020_restricted =
      survey(lab, vps.subspan(0, restricted_count));

  util::TextTable table({"", "2016-era (edu VPs)", "2020-era (colo VPs)"});
  auto pct = [](std::uint64_t part, std::uint64_t total) {
    return util::cell_percent(total == 0 ? 0.0
                                         : static_cast<double>(part) /
                                               static_cast<double>(total));
  };
  table.add_row({"All probed", util::cell_count(era2016.probed),
                 util::cell_count(era2020.probed)});
  table.add_row({"Ping responsive",
                 pct(era2016.ping_responsive, era2016.probed),
                 pct(era2020.ping_responsive, era2020.probed)});
  table.add_row({"RR responsive", pct(era2016.rr_responsive, era2016.probed),
                 pct(era2020.rr_responsive, era2020.probed)});
  table.add_row({"RR reachable in <= 8 hops",
                 pct(era2016.rr_reachable_8, era2016.probed),
                 pct(era2020.rr_reachable_8, era2020.probed)});
  std::printf("%s\n", table.render().c_str());

  auto cdf_series = [](const std::string& name,
                       const util::Distribution& dist) {
    util::Series series;
    series.name = name;
    for (int hops = 1; hops <= 9; ++hops) {
      series.xs.push_back(hops);
      series.ys.push_back(dist.empty() ? 0 : dist.cdf_at(hops));
    }
    return series;
  };
  std::printf(
      "%s\n",
      util::render_figure(
          "Fig 11: CDF of RR hops from the closest VP (RR-responsive hosts)",
          {cdf_series("2020, all VPs", era2020.closest_distance),
           cdf_series("2020 with 2016-sized VP set",
                      era2020_restricted.closest_distance),
           cdf_series("2016, all VPs", era2016.closest_distance)},
          3)
          .c_str());
  if (!era2020.closest_distance.empty() &&
      !era2016.closest_distance.empty()) {
    std::printf("within 4 hops: 2020 %.0f%% vs 2016 %.0f%%\n",
                era2020.closest_distance.cdf_at(4) * 100,
                era2016.closest_distance.cdf_at(4) * 100);
  }
  std::printf(
      "\npaper: ~77%% ping / ~57%% RR responsive, 36%% reachable within 8;\n"
      "colo (2020) VPs sit much closer: 39%% of destinations within 4 hops\n"
      "vs 16%% for the 2016 set (Insight 1.7).\n");
  return 0;
}
