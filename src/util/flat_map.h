// Open-addressing hash table for the engine's hot lookup paths.
//
// std::unordered_map allocates one node per element and chases a pointer per
// probe; on the tables the simulator and scheduler hit per packet (topology
// interface/host lookups, pending-probe tables, atlas hop indexes) that is
// the dominant cost after the routing math itself. FlatMap keeps key/value
// pairs inline in one power-of-two array with linear probing, so a lookup is
// a hash, a mask, and a short contiguous scan.
//
// Design choices:
//   * Power-of-two capacity; slot = splitmix64-mixed hash & (capacity - 1).
//     The mix makes clustered keys (sequential IPv4 addresses, small ids)
//     safe to use directly.
//   * Tombstone-free backward-shift erase: deleting an element shifts the
//     rest of its probe cluster back one slot instead of leaving a DELETED
//     marker, so heavy insert/erase churn (the scheduler's pending table)
//     cannot degrade probe lengths over time.
//   * Max load factor 7/8 before doubling; storage is a std::vector of
//     slots, so the table obeys the no-raw-new rule and moves cheaply.
//
// Iterator contract (narrower than std::unordered_map — see flat_map_test):
//   * Any insert may rehash and invalidates ALL iterators.
//   * erase(it) returns an iterator at the same slot index, revalidated:
//     backward shift may have moved the next cluster element into the
//     erased slot, so resuming there visits every remaining element. The
//     one exception is a probe cluster that wraps the end of the array —
//     a shifted element can move from the array head to its tail and be
//     visited a second time. Callers that erase while iterating must
//     tolerate revisits or collect keys first (all in-tree callers do the
//     latter).
//
// Key and Value must be default-constructible and movable; empty slots hold
// default-constructed pairs. Keys are compared with operator==.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace revtr::util {

// Default hasher: whatever std::hash produces, re-mixed through splitmix64
// so low-entropy hashes (identity hashes of small integers, IPv4 addresses)
// spread over the whole table.
template <typename Key>
struct FlatHash {
  std::size_t operator()(const Key& key) const noexcept {
    return static_cast<std::size_t>(
        splitmix64(static_cast<std::uint64_t>(std::hash<Key>{}(key))));
  }
};

template <typename Key, typename Value, typename Hash = FlatHash<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;

  FlatMap() = default;

  template <bool Const>
  class Iterator {
   public:
    using MapPtr = std::conditional_t<Const, const FlatMap*, FlatMap*>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iterator() = default;
    Iterator(MapPtr map, std::size_t index) : map_(map), index_(index) {
      skip_empty();
    }
    // const_iterator from iterator.
    template <bool WasConst = Const,
              typename = std::enable_if_t<WasConst && !std::is_same_v<
                  Iterator<true>, Iterator<false>>>>
    Iterator(const Iterator<false>& other)  // NOLINT(google-explicit-*)
        : map_(other.map_), index_(other.index_) {}

    Ref operator*() const { return map_->slots_[index_].kv; }
    Ptr operator->() const { return &map_->slots_[index_].kv; }
    Iterator& operator++() {
      ++index_;
      skip_empty();
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const Iterator& other) const {
      return index_ == other.index_;
    }

   private:
    friend class FlatMap;
    void skip_empty() {
      while (index_ < map_->slots_.size() && !map_->slots_[index_].used) {
        ++index_;
      }
    }
    MapPtr map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  // Pre-sizes the table so `count` elements fit without rehashing.
  void reserve(std::size_t count) {
    std::size_t want = 16;
    while (want * 7 / 8 < count) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

  iterator find(const Key& key) {
    const std::size_t index = find_index(key);
    return index == npos ? end() : iterator(this, index);
  }
  const_iterator find(const Key& key) const {
    const std::size_t index = find_index(key);
    return index == npos ? end() : const_iterator(this, index);
  }
  bool contains(const Key& key) const { return find_index(key) != npos; }
  std::size_t count(const Key& key) const {
    return find_index(key) == npos ? 0 : 1;
  }

  // Unlike std::unordered_map::at, a missing key is a programming error and
  // trips REVTR_CHECK rather than throwing.
  Value& at(const Key& key) {
    const std::size_t index = find_index(key);
    REVTR_CHECK(index != npos);
    return slots_[index].kv.second;
  }
  const Value& at(const Key& key) const {
    const std::size_t index = find_index(key);
    REVTR_CHECK(index != npos);
    return slots_[index].kv.second;
  }

  Value& operator[](const Key& key) {
    return try_emplace(key).first->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    grow_if_needed();
    std::size_t index = slot_of(key);
    while (slots_[index].used) {
      if (slots_[index].kv.first == key) {
        return {iterator(this, index), false};
      }
      index = next(index);
    }
    slots_[index].used = true;
    slots_[index].kv.first = key;
    slots_[index].kv.second = Value(std::forward<Args>(args)...);
    ++size_;
    return {iterator(this, index), true};
  }

  template <typename V>
  std::pair<iterator, bool> insert_or_assign(const Key& key, V&& value) {
    auto [it, inserted] = try_emplace(key);
    it->second = std::forward<V>(value);
    return {it, inserted};
  }

  std::pair<iterator, bool> insert(value_type kv) {
    auto [it, inserted] = try_emplace(kv.first);
    if (inserted) it->second = std::move(kv.second);
    return {it, inserted};
  }

  // Emplace matching the std map shape (key, value construction args).
  template <typename K, typename... Args>
  std::pair<iterator, bool> emplace(K&& key, Args&&... args) {
    return try_emplace(Key(std::forward<K>(key)),
                       std::forward<Args>(args)...);
  }

  std::size_t erase(const Key& key) {
    const std::size_t index = find_index(key);
    if (index == npos) return 0;
    erase_at(index);
    return 1;
  }

  iterator erase(const_iterator pos) {
    erase_at(pos.index_);
    return iterator(this, pos.index_);
  }

 private:
  struct Slot {
    value_type kv{};
    bool used = false;
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t mask() const noexcept { return slots_.size() - 1; }
  std::size_t slot_of(const Key& key) const noexcept {
    return Hash{}(key) & mask();
  }
  std::size_t next(std::size_t index) const noexcept {
    return (index + 1) & mask();
  }

  std::size_t find_index(const Key& key) const {
    if (slots_.empty()) return npos;
    std::size_t index = slot_of(key);
    while (slots_[index].used) {
      if (slots_[index].kv.first == key) return index;
      index = next(index);
    }
    return npos;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(16);
    } else if ((size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (Slot& slot : old) {
      if (!slot.used) continue;
      std::size_t index = slot_of(slot.kv.first);
      while (slots_[index].used) index = next(index);
      slots_[index].used = true;
      slots_[index].kv = std::move(slot.kv);
    }
  }

  // Backward-shift deletion: walk the cluster after `hole`; any element
  // whose home slot does not sit in (hole, current] (circularly) belongs
  // before the hole, so move it back and continue from its old position.
  void erase_at(std::size_t hole) {
    REVTR_CHECK(hole < slots_.size() && slots_[hole].used);
    std::size_t index = next(hole);
    while (slots_[index].used) {
      const std::size_t home = slot_of(slots_[index].kv.first);
      // Distance from home to a slot, walking forward circularly. The
      // element may move back to `hole` only if its home is at or before
      // the hole along its probe path.
      const std::size_t dist_hole = (hole - home) & mask();
      const std::size_t dist_index = (index - home) & mask();
      if (dist_hole < dist_index) {
        slots_[hole].kv = std::move(slots_[index].kv);
        hole = index;
      }
      index = next(index);
    }
    slots_[hole].kv = value_type{};
    slots_[hole].used = false;
    --size_;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

// Set counterpart: a FlatMap with no mapped value. Iteration yields keys.
template <typename Key, typename Hash = FlatHash<Key>>
class FlatSet {
  struct Empty {};

 public:
  bool insert(const Key& key) { return map_.try_emplace(key).second; }
  bool contains(const Key& key) const { return map_.contains(key); }
  std::size_t count(const Key& key) const { return map_.count(key); }
  std::size_t erase(const Key& key) { return map_.erase(key); }
  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t count) { map_.reserve(count); }

  class Iterator {
   public:
    Iterator() = default;
    explicit Iterator(
        typename FlatMap<Key, Empty, Hash>::const_iterator it)
        : it_(it) {}
    const Key& operator*() const { return it_->first; }
    Iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const Iterator& other) const { return it_ == other.it_; }

   private:
    typename FlatMap<Key, Empty, Hash>::const_iterator it_;
  };

  Iterator begin() const { return Iterator(map_.begin()); }
  Iterator end() const { return Iterator(map_.end()); }

 private:
  FlatMap<Key, Empty, Hash> map_;
};

}  // namespace revtr::util
