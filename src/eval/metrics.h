// Evaluation metrics (§5.2.2, §6.2, Appx B/G).
//
// Comparing a reverse traceroute against a direct traceroute (the paper's
// approximate ground truth) requires matching hops across measurement
// techniques: traceroute reveals ingress interfaces while RR reveals egress
// interfaces, so exact address equality under-counts. The HopMatcher
// replicates Appx B.1: exact match, alias datasets (MIDAR-like, SNMPv3),
// the /30 point-to-point heuristic, and an "optimistic" mode that counts
// unresolvable hops as matches (the shaded band of Fig 5a).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "alias/alias.h"
#include "asmap/asmap.h"
#include "net/ipv4.h"

namespace revtr::eval {

struct MatcherOptions {
  bool use_p2p_heuristic = true;
  bool optimistic = false;  // Unresolvable hops count as matches.
};

class HopMatcher {
 public:
  using Options = MatcherOptions;

  HopMatcher(const alias::AliasStore* aliases, const alias::SnmpResolver* snmp,
             Options options = Options());

  // Can this pair be resolved by any available alias knowledge?
  bool resolvable(net::Ipv4Addr a, net::Ipv4Addr b) const;
  bool same_router(net::Ipv4Addr a, net::Ipv4Addr b) const;

  // Whether `hop` matches anything in `path` under the matcher's rules.
  bool hop_in_path(net::Ipv4Addr hop,
                   std::span<const net::Ipv4Addr> path) const;

 private:
  const alias::AliasStore* aliases_;
  const alias::SnmpResolver* snmp_;
  Options options_;
};

// Fraction of `reference` hops also present in `candidate` (Fig 5a's
// x-axis; also the §6.2 symmetry metric with forward/reverse paths).
double fraction_hops_matched(std::span<const net::Ipv4Addr> reference,
                             std::span<const net::Ipv4Addr> candidate,
                             const HopMatcher& matcher);

// AS-level comparison of a measured reverse path against the direct path.
enum class AsMatch {
  kExact,        // Identical AS sequences.
  kMissingHops,  // Reverse path is a subsequence: hops missing, none wrong.
  kMismatch,     // The reverse path contains an AS not on the direct path.
};

AsMatch compare_as_paths(std::span<const topology::Asn> direct,
                         std::span<const topology::Asn> reverse);

// §6.2 asymmetry summary for one bidirectional pair.
struct SymmetryResult {
  double router_fraction = 0;  // Fraction of forward hops on reverse path.
  double as_fraction = 0;
  bool as_symmetric = false;  // Same AS sets traversed, same order.
};

SymmetryResult path_symmetry(std::span<const net::Ipv4Addr> forward,
                             std::span<const net::Ipv4Addr> reverse,
                             const HopMatcher& matcher,
                             const asmap::IpToAs& ip2as);

// Per-position probability helper for Fig 14: index -> matched flags.
std::vector<bool> positional_matches(std::span<const topology::Asn> forward,
                                     std::span<const topology::Asn> reverse);

// Appx G.3: de Vries et al. quantify asymmetry as the *edit distance*
// between the forward AS path and the reversed reverse AS path — a stricter
// notion than the hop-overlap fraction the paper (and path_symmetry above)
// uses, which is why they report 87% asymmetric where the paper finds 47%.
std::size_t as_path_edit_distance(std::span<const topology::Asn> forward,
                                  std::span<const topology::Asn> reverse);

}  // namespace revtr::eval
