// Property-style parameter sweeps: the system must stay correct (not just
// calibrated) across the behaviour-mix space — stamping policies,
// responsiveness rates, topology shapes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/revtr.h"
#include "eval/harness.h"

namespace revtr {
namespace {

using topology::HostId;

// (rr_nostamp_frac, rr_loopback_frac, host_rr_responsiveness).
using Mix = std::tuple<double, double, double>;

class BehaviourSweep : public ::testing::TestWithParam<Mix> {};

TEST_P(BehaviourSweep, EngineSurvivesBehaviourMix) {
  const auto [nostamp, loopback, rr_responsive] = GetParam();
  topology::TopologyConfig config;
  config.seed = 77;
  config.num_ases = 150;
  config.num_vps = 10;
  config.num_vps_2016 = 3;
  config.num_probe_hosts = 40;
  config.rr_nostamp_frac = nostamp;
  config.rr_loopback_frac = loopback;
  config.host_rr_responsive_given_ping = rr_responsive;

  eval::Lab lab(config, core::EngineConfig::revtr2(), config.seed);
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 30);
  util::SimClock clock;
  std::size_t decided = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto result =
        lab.engine.measure(lab.topo.probe_hosts()[i], source, clock);
    // Whatever the mix, the engine must terminate with a classified
    // outcome, a loop-free path, and consistent accounting.
    ++decided;
    std::set<std::uint32_t> seen;
    for (const auto& hop : result.hops) {
      if (hop.source == core::HopSource::kSuspiciousGap) continue;
      EXPECT_TRUE(seen.insert(hop.addr.value()).second);
    }
    EXPECT_LE(result.hops.size(), lab.engine.config().max_reverse_hops);
    EXPECT_FALSE(result.used_interdomain_symmetry);
  }
  EXPECT_EQ(decided, 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, BehaviourSweep,
    ::testing::Values(
        Mix{0.00, 0.00, 1.00},  // Everything stamps, everything answers.
        Mix{0.05, 0.10, 0.76},  // Default calibration.
        Mix{0.30, 0.10, 0.76},  // A third of routers never stamp.
        Mix{0.05, 0.40, 0.76},  // Loopback stampers everywhere.
        Mix{0.05, 0.10, 0.20},  // Options mostly filtered at hosts.
        Mix{0.50, 0.40, 0.10}   // Hostile: RR almost useless.
        ));

class ShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(ShapeSweep, TopologyAndRoutingInvariants) {
  const auto [ases, tier1] = GetParam();
  topology::TopologyConfig config;
  config.seed = 88;
  config.num_ases = ases;
  config.num_tier1 = tier1;
  config.num_vps = 6;
  config.num_vps_2016 = 2;
  config.num_probe_hosts = 15;
  eval::Lab lab(config);

  // Universal reachability.
  const auto dest_step =
      static_cast<topology::AsIndex>(std::max<std::size_t>(1, ases / 10));
  for (topology::AsIndex dest = 0; dest < lab.topo.num_ases();
       dest += dest_step) {
    const auto& column = lab.bgp.column(dest);
    for (topology::AsIndex from = 0; from < lab.topo.num_ases(); ++from) {
      if (from == dest) continue;
      ASSERT_NE(column.next[from], 0u)
          << ases << " ASes: " << from << " cannot reach " << dest;
    }
  }
  // A probe works end to end.
  const auto ping = lab.prober.ping(
      lab.topo.vantage_points()[0],
      lab.topo.host(lab.topo.probe_hosts()[0]).addr);
  EXPECT_TRUE(ping.responded);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(std::pair<std::size_t,
                                                     std::size_t>{20, 2},
                                           std::pair<std::size_t,
                                                     std::size_t>{60, 4},
                                           std::pair<std::size_t,
                                                     std::size_t>{150, 8},
                                           std::pair<std::size_t,
                                                     std::size_t>{400, 12}));

// Probe accounting invariant: the prober's counters equal the sum of all
// per-measurement deltas — online plus offline (on-demand ingress
// discovery runs inside the measurement but is charged as maintenance,
// Table 4) — nothing leaks or double counts.
TEST(Accounting, CountersPartitionExactly) {
  topology::TopologyConfig config;
  config.seed = 99;
  config.num_ases = 120;
  config.num_vps = 8;
  config.num_vps_2016 = 2;
  config.num_probe_hosts = 30;
  eval::Lab lab(config);
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 20);
  lab.prober.reset_counters();

  util::SimClock clock;
  probing::ProbeCounters accumulated;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto result =
        lab.engine.measure(lab.topo.probe_hosts()[i], source, clock);
    accumulated += result.probes;
    accumulated += result.offline_probes;
  }
  const auto& totals = lab.prober.counters();
  EXPECT_EQ(totals.ping, accumulated.ping);
  EXPECT_EQ(totals.rr, accumulated.rr);
  EXPECT_EQ(totals.spoofed_rr, accumulated.spoofed_rr);
  EXPECT_EQ(totals.ts, accumulated.ts);
  EXPECT_EQ(totals.traceroute_packets, accumulated.traceroute_packets);
  EXPECT_EQ(totals.total(), accumulated.total());
}

}  // namespace
}  // namespace revtr
