// Core data model of the synthetic Internet.
//
// The paper's system runs against the real IPv4 Internet; we substitute a
// generated topology (DESIGN.md §1) with the structures Reverse Traceroute's
// logic actually interacts with: an AS-level graph with Gao-Rexford business
// relationships, per-AS router topologies, interface addressing (/30 links,
// loopbacks, gateway addresses), end hosts with realistic responsiveness, and
// vantage points capable of spoofed probing.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace revtr::topology {

using Asn = std::uint32_t;          // 1-based AS number.
using AsIndex = std::uint32_t;      // Dense index into the AS table.
using RouterId = std::uint32_t;     // Dense index into the router table.
using LinkId = std::uint32_t;       // Dense index into the link table.
using PrefixId = std::uint32_t;     // Dense index into the BGP prefix table.
using HostId = std::uint32_t;       // Dense index into the host table.

inline constexpr std::uint32_t kInvalidId =
    std::numeric_limits<std::uint32_t>::max();

enum class AsTier : std::uint8_t { kTier1, kTransit, kStub };

// Flavor tags used by the asymmetry analysis (Fig 8b calls out NRENs) and by
// vantage-point placement (M-Lab sits in colocation facilities, Insight 1.7).
enum class AsCategory : std::uint8_t {
  kGeneric,
  kColo,      // Well-connected colocation/transit AS; hosts "2020" VPs.
  kEdu,       // Education stub; hosts "2016"-era VPs.
  kNren,      // Research network: peers widely, cold-potato flavored.
};

std::string to_string(AsTier tier);
std::string to_string(AsCategory category);

struct AsNode {
  Asn asn = 0;
  AsTier tier = AsTier::kStub;
  AsCategory category = AsCategory::kGeneric;

  std::vector<Asn> providers;
  std::vector<Asn> customers;
  std::vector<Asn> peers;

  std::vector<RouterId> routers;
  std::vector<PrefixId> customer_prefixes;  // Where hosts live.
  PrefixId infra_prefix = kInvalidId;       // Router interfaces/loopbacks.

  // Network-wide behaviours.
  bool allows_spoofed_egress = true;  // Source-address validation absent.
  bool filters_ip_options = false;    // Border drops RR/TS packets.
  // When set, this AS picks between equally-preferred BGP routes based on
  // the packet *source*, violating destination-based routing (Appx E). The
  // choice is consistent AS-wide per (src, dst), so forwarding stays
  // loop-free (alternate routes share preference class and path length).
  bool source_sensitive = false;

  std::size_t degree() const noexcept {
    return providers.size() + customers.size() + peers.size();
  }
};

// How a router fills the Record Route option when forwarding (§4.3: routers
// stamp "inbound, outbound, loopback, or even private IP addresses").
enum class RrStampPolicy : std::uint8_t {
  kEgress,    // RFC 791 default: outgoing interface address.
  kIngress,   // Incoming interface address.
  kLoopback,  // Router loopback (same addr both directions -> RR loops).
  kPrivate,   // RFC 1918 address, unmappable to an AS (§5.2.2).
  kNoStamp,   // Forwards the packet without stamping.
};

std::string to_string(RrStampPolicy policy);

struct Router {
  RouterId id = kInvalidId;
  Asn asn = 0;
  AsIndex as_index = kInvalidId;  // Dense index of `asn` (= index_of(asn)).
  net::Ipv4Addr loopback;
  net::Ipv4Addr private_alias;  // Stamped when policy == kPrivate.
  RrStampPolicy rr_policy = RrStampPolicy::kEgress;

  bool responds_ttl_exceeded = true;  // Appears in traceroutes.
  bool responds_ping = true;          // Answers direct probes to its addrs.
  bool responds_options = true;       // Answers probes carrying IP options.
  bool snmp_responder = false;        // Table 2 alias ground-truth channel.
  bool per_packet_lb = false;         // Randomizes ECMP for option packets.
  bool source_sensitive = false;      // Violates destination-based routing.

  std::vector<LinkId> links;
};

struct Link {
  LinkId id = kInvalidId;
  RouterId router_a = kInvalidId;
  RouterId router_b = kInvalidId;
  net::Ipv4Addr addr_a;  // Interface of router_a on this /30.
  net::Ipv4Addr addr_b;  // Interface of router_b.
  std::int64_t delay_us = 1000;
  bool interdomain = false;
};

struct BgpPrefix {
  PrefixId id = kInvalidId;
  net::Ipv4Prefix prefix;
  Asn origin = 0;
  bool infrastructure = false;
};

// How the destination itself treats the RR option in its echo reply
// (Appx C artifacts).
enum class HostStamp : std::uint8_t {
  kNormal,       // Stamps its own address once.
  kNoStamp,      // Replies but never stamps.
  kDoubleStamp,  // Stamps an alias address twice (alias of the destination).
  kAliasStamp,   // Stamps a different interface address once.
};

std::string to_string(HostStamp stamp);

struct Host {
  HostId id = kInvalidId;
  net::Ipv4Addr addr;
  Asn asn = 0;
  RouterId attachment = kInvalidId;  // Access router.

  bool ping_responsive = true;
  bool rr_responsive = true;  // Replies to packets carrying IP options.
  HostStamp stamp = HostStamp::kNormal;
  net::Ipv4Addr alias;  // Secondary interface for kDoubleStamp/kAliasStamp.

  bool is_vantage_point = false;  // Can send/receive and spoof probes.
  bool is_probe_host = false;     // RIPE-Atlas-like traceroute origin.
};

// Which interface an address belongs to: a router plus (optionally) the link
// whose /30 carries it. kInvalidId link means loopback/gateway/private alias.
struct InterfaceOwner {
  RouterId router = kInvalidId;
  LinkId link = kInvalidId;
};

}  // namespace revtr::topology
