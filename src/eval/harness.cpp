#include "eval/harness.h"

namespace revtr::eval {

Lab::Lab(const topology::TopologyConfig& topo_config,
         core::EngineConfig engine_config, std::uint64_t seed)
    : topo(topology::TopologyBuilder::build(topo_config)),
      bgp(topo),
      intra(topo),
      plane(topo, bgp, intra),
      network(topo, plane, seed),
      prober(network),
      ip2as(topo),
      relationships(topo),
      atlas(prober, topo),
      ingress(prober, topo),
      engine(prober, topo, atlas, ingress, ip2as, relationships,
             engine_config, seed),
      rng(seed) {}

void Lab::bootstrap_source(topology::HostId source, std::size_t atlas_size) {
  atlas.build(source, atlas_size, rng);
  atlas.build_rr_alias_index(source);
}

void Lab::precompute_ingresses(
    std::span<const topology::PrefixId> prefixes) {
  for (const auto prefix : prefixes) {
    ingress.discover(prefix, topo.vantage_points(), rng);
  }
}

void Lab::precompute_all_ingresses() {
  // Include infrastructure prefixes: most current hops during a reverse
  // traceroute are router interfaces, whose covering prefix is infra.
  std::vector<topology::PrefixId> prefixes;
  for (const auto& prefix : topo.prefixes()) prefixes.push_back(prefix.id);
  precompute_ingresses(prefixes);
}

std::vector<topology::HostId> Lab::responsive_destinations(
    bool require_rr) const {
  std::vector<topology::HostId> hosts;
  for (const auto& host : topo.hosts()) {
    if (host.is_vantage_point || host.is_probe_host) continue;
    if (!host.ping_responsive) continue;
    if (require_rr && !host.rr_responsive) continue;
    hosts.push_back(host.id);
  }
  return hosts;
}

std::vector<topology::PrefixId> Lab::customer_prefixes() const {
  std::vector<topology::PrefixId> prefixes;
  for (const auto& prefix : topo.prefixes()) {
    if (!prefix.infrastructure) prefixes.push_back(prefix.id);
  }
  return prefixes;
}

}  // namespace revtr::eval
