// Minimal JSON value, writer, and parser.
//
// The real system archives every reverse traceroute (to M-Lab's cloud
// storage) and serves results over REST/gRPC (Appx A). This self-contained
// JSON implementation backs the equivalent pieces here: the measurement
// archive, the CLI output, and round-trip serialization of results. It
// supports the full JSON grammar except exotic number formats; numbers are
// stored as double (plus an integer fast path for faithful round trips).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace revtr::util {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::int64_t value)
      : type_(Type::kNumber),
        number_(static_cast<double>(value)),
        integer_(value),
        is_integer_(true) {}
  Json(std::uint64_t value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  std::int64_t as_int() const {
    return is_integer_ ? integer_ : static_cast<std::int64_t>(number_);
  }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  // Object access; inserting via [] on a null value promotes it to object.
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;

  // Array append; appending to a null value promotes it to array.
  void push_back(Json value);

  // Compact single-line serialization (strings escaped per RFC 8259).
  std::string dump() const;

  // Strict parse of a complete JSON document; nullopt on any error.
  static std::optional<Json> parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::int64_t integer_ = 0;
  bool is_integer_ = false;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace revtr::util
