// revtr_agentd: the VP-agent half of the controller/agent split (ROADMAP
// item 5, DESIGN.md §15).
//
// The paper's deployment runs the controller and the vantage points as
// separate machines: VPs execute probes, the controller plans them. This
// module is the VP side over the simulated Internet — an AgentDaemon owns
// its own Prober (over a Network built from the same topology config and
// net seed as the controller's, so every spec resolves to the byte-identical
// reply; see the determinism contract in probing/transport.h) and speaks the
// agent frames of server/frame.h over the controller's AF_UNIX socket:
//
//   agent  -> controller   AGENT_REGISTER (ack: HELLO_OK with the agent id)
//   controller -> agent    AGENT_PROBE    (ticketed assignment)
//   agent  -> controller   AGENT_PROBE_RESULT
//   agent  -> controller   AGENT_HEARTBEAT (liveness, every interval)
//   either direction       AGENT_DRAIN    (finish up, then part ways)
//
// The agent is single-threaded: run() owns the socket and executes each
// assignment synchronously in arrival order, pacing per-VP with a local
// token bucket (pacing delays execution on the wall clock; it can never
// change a simulated outcome). Its mutex (lock rank 120, above the daemon's
// 110 — the two never nest in one process, but in-process tests run both)
// only guards the counters the test/CLI threads read.
//
// Shutdown: SIGTERM/SIGINT routes to request_drain() (one atomic store);
// the loop notices within one heartbeat interval, answers everything it has
// read, sends AGENT_DRAIN with its lifetime executed count, and exits
// cleanly. The controller requeues whatever was still in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/harness.h"
#include "server/frame.h"
#include "topology/builder.h"
#include "util/annotate.h"

namespace revtr::agent {

struct AgentOptions {
  std::string socket_path = "/tmp/revtr_serverd.sock";
  std::string name = "vp-agent";
  // Must match the controller's topology config and seed exactly — the
  // byte-equality of remote campaigns rests on both sides simulating the
  // same Internet (the controller cannot verify this; it trusts REGISTER).
  topology::TopologyConfig topo;
  std::uint64_t seed = 7;
  // In-flight assignment window requested at REGISTER.
  std::size_t window = 16;
  // Local per-VP rate limit: sustained probes per second per vantage point,
  // enforced on the wall clock before executing. 0 = unlimited. Burst is
  // the window size.
  double probes_per_sec = 0.0;
  std::int64_t heartbeat_interval_ms = 200;
  // Test hook: after executing this many probes, close the socket abruptly
  // — no drain, unanswered assignments left in flight — so tests can
  // exercise the controller's failure/reassignment path deterministically.
  // 0 = never.
  std::uint64_t die_after_probes = 0;
};

struct AgentCounters {
  std::uint64_t executed = 0;       // Assignments answered.
  std::uint64_t invalid_specs = 0;  // Assignments refused (bad vantage
                                    // point); answered unresponsive.
  std::uint64_t heartbeats = 0;
};

class AgentDaemon {
 public:
  explicit AgentDaemon(AgentOptions options);
  ~AgentDaemon();

  AgentDaemon(const AgentDaemon&) = delete;
  AgentDaemon& operator=(const AgentDaemon&) = delete;

  // Builds the measurement stack, connects, registers, and serves until a
  // drain (AGENT_DRAIN, SIGTERM, or controller EOF). Blocks the calling
  // thread. True on a clean exit (registered, then drained or controller
  // EOF); false on connect/register failure, protocol error, or the
  // die_after_probes crash hook.
  bool run();

  // Begins a graceful drain. Async-signal-safe (one atomic store); the
  // run() loop notices within one heartbeat interval.
  void request_drain() noexcept;

  AgentCounters counters() const REVTR_EXCLUDES(mu_);

  // Agent id the controller assigned at REGISTER (0 before registration).
  // Atomic so a test thread can spin-wait for registration while run()
  // owns the socket.
  std::uint64_t agent_id() const noexcept {
    return agent_id_.load(std::memory_order_acquire);
  }

  // Routes SIGTERM/SIGINT to agent->request_drain(). One agent per
  // process; passing nullptr uninstalls.
  static void install_signal_handlers(AgentDaemon* agent);

 private:
  // Wall-clock token bucket for one vantage point.
  struct Pacer {
    double tokens = 0.0;
    std::int64_t last_refill_us = 0;
  };

  bool connect_to_controller();
  bool send_frame(const server::Message& message);
  // Decodes one whole frame from in_, reading more bytes as needed;
  // `wait_ms` < 0 blocks. nullopt with *fatal=false is timeout/EOF, with
  // *fatal=true a protocol error.
  std::optional<server::Message> read_frame(int wait_ms, bool* fatal,
                                            bool* eof);
  // Executes one assignment (validation, pacing, probe, result frame).
  // False when the send failed or the crash hook fired.
  bool handle_assignment(const server::AgentProbe& probe);
  void pace(topology::HostId vp);

  const AgentOptions options_;

  // Measurement stack, built by run(). The Lab carries topology + routing;
  // the agent's own Network + Prober execute the probes (same net seed
  // derivation as the controller's worker stacks).
  std::unique_ptr<eval::Lab> lab_;  // lint: lock-free(run thread only)
  std::unique_ptr<sim::Network>
      network_;  // lint: lock-free(run thread only)
  std::unique_ptr<probing::Prober>
      prober_;  // lint: lock-free(run thread only)

  int fd_ = -1;  // lint: lock-free(run thread only)
  std::vector<std::uint8_t> in_;  // lint: lock-free(run thread only)
  std::unordered_map<topology::HostId, Pacer>
      pacers_;  // lint: lock-free(run thread only)
  std::atomic<std::uint64_t> agent_id_{0};  // Set once at register.

  // Set by request_drain() (possibly from a signal handler).
  std::atomic<bool> drain_requested_{false};

  // --- The agent mutex (lock rank 120; see tools/revtr_lint.cpp). Guards
  // only the counters — the run loop is otherwise single-threaded. ---
  mutable util::Mutex mu_;
  AgentCounters counters_ REVTR_GUARDED_BY(mu_);
};

}  // namespace revtr::agent
