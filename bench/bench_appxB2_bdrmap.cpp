// Appx B.2: would bdrmapit-style router-to-AS inference change revtr 2.0's
// symmetry decisions?
//
// Methodology mirroring the paper: run a revtr 2.0 campaign, collect every
// symmetry-assumption link (penultimate hop, current hop), classify it
// intra/interdomain under (a) the production prefix+interconnect mapping
// and (b) bdrmap-lite trained on the traceroute atlas. Report how many
// assumptions would flip in each direction, plus ground-truth accuracy of
// both classifiers.
//
// Paper: only 0.07% of assumptions flip intra->inter and 1.5% inter->intra;
// combined with the ~30-minute atlas outage bdrmapit would cost, revtr 2.0
// sticks with the simple mapping.
#include <cstdio>

#include "asmap/bdrmap.h"
#include "bench_common.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Appx B.2: simple IP2AS vs bdrmap-lite", setup);

  // Run revtr 1.0-style (always assume symmetry) so plenty of assumption
  // links are collected — the comparison is about classification, not
  // about which links the engine keeps.
  core::EngineConfig config = core::EngineConfig::revtr1();
  config.use_timestamp = false;
  eval::Lab lab(setup.topo, config, setup.seed);
  const auto vps = lab.topo.vantage_points();
  const std::size_t sources = std::min(setup.sources, vps.size());
  for (std::size_t s = 0; s < sources; ++s) {
    lab.bootstrap_source(vps[s], setup.atlas_size);
  }
  lab.precompute_all_ingresses();

  // Train bdrmap-lite on the traceroute atlas (what the real system would
  // feed bdrmapit).
  asmap::BdrmapLite bdrmap(lab.ip2as);
  for (std::size_t s = 0; s < sources; ++s) {
    for (const auto& tr : lab.atlas.traceroutes(vps[s])) {
      bdrmap.add_path(tr.hops);
    }
  }
  std::printf("bdrmap-lite corpus: %zu addresses, %zu re-mapped vs plain "
              "prefix mapping\n\n",
              bdrmap.observed_addresses(), bdrmap.remapped_addresses());

  util::Rng rng(setup.seed * 3 + 7);
  std::vector<topology::HostId> dests;
  for (const auto prefix : lab.customer_prefixes()) {
    for (const auto host : lab.topo.hosts_in_prefix(prefix)) {
      if (lab.topo.host(host).ping_responsive) {
        dests.push_back(host);
        break;
      }
    }
  }
  rng.shuffle(dests);
  if (dests.size() > setup.revtrs) dests.resize(setup.revtrs);

  std::size_t assumptions = 0;
  std::size_t intra_to_inter = 0, inter_to_intra = 0;
  util::Fraction simple_correct, bdrmap_correct;

  util::SimClock clock;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const auto source = vps[i % sources];
    const auto result = lab.engine.measure(dests[i], source, clock);
    // Collect (previous hop, assumed hop) pairs.
    for (std::size_t h = 1; h < result.hops.size(); ++h) {
      if (result.hops[h].source != core::HopSource::kAssumedSymmetric) {
        continue;
      }
      const auto current = result.hops[h - 1].addr;
      const auto assumed = result.hops[h].addr;
      if (current.is_unspecified() || assumed.is_unspecified()) continue;
      ++assumptions;

      const auto simple_a = lab.ip2as.lookup(current);
      const auto simple_b = lab.ip2as.lookup(assumed);
      const bool simple_intra = simple_a && simple_b && *simple_a == *simple_b;
      const bool bdrmap_intra = bdrmap.intradomain(current, assumed);
      if (simple_intra && !bdrmap_intra) ++intra_to_inter;
      if (!simple_intra && bdrmap_intra) ++inter_to_intra;

      // Ground truth from the generator.
      const auto owner_a = lab.topo.interface_at(current);
      const auto owner_b = lab.topo.interface_at(assumed);
      if (owner_a && owner_b) {
        const bool truth = lab.topo.router(owner_a->router).asn ==
                           lab.topo.router(owner_b->router).asn;
        simple_correct.tally(simple_intra == truth);
        bdrmap_correct.tally(bdrmap_intra == truth);
      }
    }
  }

  util::TextTable table({"Metric", "Value"});
  table.add_row({"symmetry assumptions examined",
                 util::cell_count(assumptions)});
  table.add_row(
      {"flipped intradomain -> interdomain",
       util::cell_percent(assumptions == 0
                              ? 0.0
                              : static_cast<double>(intra_to_inter) /
                                    static_cast<double>(assumptions),
                          2)});
  table.add_row(
      {"flipped interdomain -> intradomain",
       util::cell_percent(assumptions == 0
                              ? 0.0
                              : static_cast<double>(inter_to_intra) /
                                    static_cast<double>(assumptions),
                          2)});
  table.add_row({"simple mapping correct vs ground truth",
                 util::cell_percent(simple_correct.value())});
  table.add_row({"bdrmap-lite correct vs ground truth",
                 util::cell_percent(bdrmap_correct.value())});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: 0.07%% intra->inter, 1.5%% inter->intra — too little benefit\n"
      "to justify a 30-minute atlas outage, so revtr 2.0 keeps the simple\n"
      "mapping.\n");
  return 0;
}
