#include <gtest/gtest.h>

#include "analysis/validator.h"
#include "eval/harness.h"
#include "service/service.h"

namespace revtr::service {
namespace {

using topology::HostId;

topology::TopologyConfig small_config() {
  topology::TopologyConfig config;
  config.seed = 91;
  config.num_ases = 150;
  config.num_vps = 10;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 40;
  return config;
}

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lab_ = std::make_unique<eval::Lab>(small_config());
    service_ = std::make_unique<RevtrService>(lab_->engine, lab_->atlas,
                                              lab_->prober, lab_->topo);
  }

  // Resets the engine to a fixed state (empty caches, fixed RNG) so a
  // request replays the exact probe sequence of a scouted run. Requires
  // ingress plans to be pre-discovered: an on-demand survey mid-measurement
  // consumes engine RNG and would desynchronize the replay.
  void reset_engine_state() {
    lab_->engine.clear_caches();
    lab_->engine.reseed(0xfeedULL);
  }

  // Finds a destination whose reverse traceroute toward `source` completes
  // deterministically under reset_engine_state(). Quota tests need one:
  // failed measurements are refunded, so only a completing destination
  // reliably consumes quota.
  HostId completing_destination(HostId source) {
    lab_->precompute_all_ingresses();
    const UserId scout = service_->add_user("scout");
    for (const HostId dest : lab_->responsive_destinations(true)) {
      if (lab_->atlas.intersect(source, lab_->topo.host(dest).addr, true)) {
        continue;  // Would complete probe-free even under total loss.
      }
      reset_engine_state();
      const auto result = service_->request(scout, dest, source);
      if (result && result->complete()) return dest;
    }
    return topology::kInvalidId;
  }

  std::unique_ptr<eval::Lab> lab_;
  std::unique_ptr<RevtrService> service_;
};

TEST_F(ServiceFixture, AddSourceBootstrapsAtlas) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  EXPECT_TRUE(service_->is_source(source));
  const auto* record = service_->source_record(source);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->receives_rr);
  EXPECT_EQ(record->atlas_size, 20u);
  // Bootstrap takes on the order of 15 minutes (Appx A).
  EXPECT_GT(record->bootstrap_duration, 10 * util::SimClock::kMinute);
  EXPECT_GT(lab_->atlas.rr_index_size(source), 0u);
}

TEST_F(ServiceFixture, OptionFilteredHostCannotBecomeSource) {
  for (const auto& host : lab_->topo.hosts()) {
    if (lab_->topo.as_node(host.asn).filters_ip_options &&
        host.ping_responsive) {
      EXPECT_FALSE(service_->add_source(host.id, 10, lab_->rng));
      EXPECT_FALSE(service_->is_source(host.id));
      return;
    }
  }
  GTEST_SKIP() << "no option-filtering AS generated";
}

TEST_F(ServiceFixture, RequestRequiresUserAndSource) {
  const HostId source = lab_->topo.vantage_points()[0];
  const HostId dest = lab_->topo.probe_hosts()[0];
  // Unknown user.
  EXPECT_FALSE(service_->request(42, dest, source));
  const UserId user = service_->add_user("researcher");
  // Source not registered yet.
  EXPECT_FALSE(service_->request(user, dest, source));
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const auto result = service_->request(user, dest, source);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->source, source);
}

TEST_F(ServiceFixture, DailyQuotaEnforced) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const HostId dest = completing_destination(source);
  ASSERT_NE(dest, topology::kInvalidId);
  UserLimits limits;
  limits.daily_limit = 2;
  const UserId user = service_->add_user("limited", limits);
  reset_engine_state();
  EXPECT_TRUE(service_->request(user, dest, source));
  reset_engine_state();
  EXPECT_TRUE(service_->request(user, dest, source));
  EXPECT_FALSE(service_->request(user, dest, source)) << "quota ignored";
  // A refresh resets the quota.
  service_->daily_refresh(lab_->rng);
  EXPECT_TRUE(service_->request(user, dest, source));
}

TEST_F(ServiceFixture, FailedRequestRefundsQuota) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const HostId dest = completing_destination(source);
  ASSERT_NE(dest, topology::kInvalidId);
  UserLimits limits;
  limits.daily_limit = 1;
  const UserId user = service_->add_user("limited", limits);

  // Under total loss every probe goes unanswered, so the measurement cannot
  // complete. Each attempt must hand its quota unit back: the user paid for
  // a reverse traceroute and got nothing.
  lab_->engine.clear_caches();
  lab_->network.set_loss_rate(1.0);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto failed = service_->request(user, dest, source);
    ASSERT_TRUE(failed) << "quota burned by failed attempt " << attempt;
    EXPECT_FALSE(failed->complete());
  }

  // The single quota unit survived the failures and is consumed by the
  // first measurement that completes.
  lab_->network.set_loss_rate(0.0);
  reset_engine_state();
  const auto served = service_->request(user, dest, source);
  ASSERT_TRUE(served);
  EXPECT_TRUE(served->complete());
  EXPECT_FALSE(service_->request(user, dest, source)) << "success not charged";
}

TEST_F(ServiceFixture, FailedRequestWithOptionsRefundsQuota) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const HostId dest = completing_destination(source);
  ASSERT_NE(dest, topology::kInvalidId);
  UserLimits limits;
  limits.daily_limit = 1;
  const UserId user = service_->add_user("limited", limits);
  RequestOptions options;

  lab_->engine.clear_caches();
  lab_->network.set_loss_rate(1.0);
  const auto failed = service_->request_with_options(user, dest, source,
                                                     options, lab_->rng);
  ASSERT_TRUE(failed);
  EXPECT_FALSE(failed->reverse.complete());

  lab_->network.set_loss_rate(0.0);
  reset_engine_state();
  const auto served = service_->request_with_options(user, dest, source,
                                                     options, lab_->rng);
  ASSERT_TRUE(served) << "failed attempt was not refunded";
  EXPECT_TRUE(served->reverse.complete());
  EXPECT_FALSE(service_->request_with_options(user, dest, source, options,
                                              lab_->rng));
}

TEST(ProbeCharge, RefundsCoalescedDuplicates) {
  // Regression: the probe-budget charge must cover uniquely-issued probes
  // only. A staged-mode result whose demands mostly coalesced onto other
  // requests' in-flight probes (core/revtr.h coalesced_probes) refunds
  // those duplicates — charging the gross demand would burn a user's
  // budget on packets that were never sent.
  core::ReverseTraceroute result;
  result.probes.ping = 2;
  result.probes.rr = 3;
  result.probes.spoofed_rr = 4;
  result.probes.ts = 1;
  ASSERT_EQ(result.probes.total(), 10u);
  result.coalesced_probes = 40;

  const ProbeCharge cost = probe_cost_of(result);
  EXPECT_EQ(cost.demanded, 50u);
  EXPECT_EQ(cost.refunded, 40u);
  EXPECT_EQ(cost.net(), 10u);

  // Blocking-path results never coalesce: gross charge, no refund.
  result.coalesced_probes = 0;
  const ProbeCharge blocking = probe_cost_of(result);
  EXPECT_EQ(blocking.demanded, 10u);
  EXPECT_EQ(blocking.refunded, 0u);
  EXPECT_EQ(blocking.net(), 10u);
}

TEST_F(ServiceFixture, ProbeBudgetChargesIssuedProbesAndRejectsWhenSpent) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const HostId dest = completing_destination(source);
  ASSERT_NE(dest, topology::kInvalidId);

  obs::MetricsRegistry registry;
  ServiceMetrics metrics(registry);
  service_->set_metrics(&metrics);

  const UserId user = service_->add_user("metered");
  reset_engine_state();
  const auto result = service_->request(user, dest, source);
  ASSERT_TRUE(result);
  // Blocking path: nothing coalesces, so the net charge is exactly the
  // probes this measurement issued.
  EXPECT_EQ(result->coalesced_probes, 0u);
  EXPECT_GT(result->probes.total(), 0u);
  EXPECT_EQ(service_->probes_charged_today(user), result->probes.total());
  EXPECT_EQ(metrics.probe_quota_charged->total(), result->probes.total());
  EXPECT_EQ(metrics.probe_quota_refunded->total(), 0u);

  // A user whose probe budget is spent is rejected before measuring, even
  // with request-count quota to spare. The budget check is up-front; a
  // request admitted under budget may overdraw (its cost is unknowable
  // until measured), locking the user out until the refresh.
  UserLimits tight;
  tight.daily_probe_budget = 1;
  const UserId spent = service_->add_user("spent", tight);
  reset_engine_state();
  ASSERT_TRUE(service_->request(spent, dest, source));
  EXPECT_GE(service_->probes_charged_today(spent), 1u);
  EXPECT_FALSE(service_->request(spent, dest, source));
  EXPECT_EQ(metrics.probe_quota_rejections->total(), 1u);
  RequestOptions options;
  EXPECT_FALSE(
      service_->request_with_options(spent, dest, source, options, lab_->rng));
  EXPECT_EQ(metrics.probe_quota_rejections->total(), 2u);

  // The daily refresh restores the probe budget.
  service_->daily_refresh(lab_->rng);
  EXPECT_EQ(service_->probes_charged_today(user), 0u);
  EXPECT_TRUE(service_->request(spent, dest, source));
  service_->set_metrics(nullptr);
}

TEST_F(ServiceFixture, CampaignStatsAddUp) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 30, lab_->rng));
  std::vector<std::pair<HostId, HostId>> pairs;
  const auto dests = lab_->responsive_destinations(true);
  for (std::size_t i = 0; i < 12 && i < dests.size(); ++i) {
    pairs.emplace_back(dests[i], source);
  }
  const auto stats = service_->run_campaign(pairs, 4);
  EXPECT_EQ(stats.requested, pairs.size());
  EXPECT_EQ(stats.completed + stats.aborted + stats.unreachable,
            pairs.size());
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.probes.total(), 0u);
  EXPECT_EQ(stats.latency_seconds.count(), pairs.size());
  EXPECT_NEAR(stats.duration_seconds, stats.busy_seconds / 4.0, 1e-9);
  EXPECT_GT(stats.processed_per_second(), 0.0);
  EXPECT_GT(stats.completed_per_second(), 0.0);
  // Completed-only throughput can never exceed the all-outcomes rate.
  EXPECT_LE(stats.completed_per_second(), stats.processed_per_second());
  EXPECT_GT(stats.coverage(), 0.0);
}

TEST_F(ServiceFixture, RequestOptionsForwardTraceroute) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const UserId user = service_->add_user("researcher");
  RequestOptions options;
  options.with_forward_traceroute = true;
  const auto served = service_->request_with_options(
      user, lab_->topo.probe_hosts()[0], source, options, lab_->rng);
  ASSERT_TRUE(served);
  ASSERT_TRUE(served->forward.has_value());
  EXPECT_TRUE(served->forward->reached);
  EXPECT_FALSE(served->atlas_refreshed);
}

TEST_F(ServiceFixture, RequestOptionsStalenessTriggersRefresh) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const UserId user = service_->add_user("researcher");
  // Age the atlas by a day, then demand hour-fresh data.
  service_->clock().advance(util::SimClock::kDay);
  RequestOptions options;
  options.max_atlas_age = util::SimClock::kHour;
  const auto served = service_->request_with_options(
      user, lab_->topo.probe_hosts()[1], source, options, lab_->rng);
  ASSERT_TRUE(served);
  EXPECT_TRUE(served->atlas_refreshed);
  // A second fresh request must not refresh again.
  const auto again = service_->request_with_options(
      user, lab_->topo.probe_hosts()[2], source, options, lab_->rng);
  ASSERT_TRUE(again);
  EXPECT_FALSE(again->atlas_refreshed);
}

TEST_F(ServiceFixture, RequestOptionsHonorsQuota) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const HostId dest = completing_destination(source);
  ASSERT_NE(dest, topology::kInvalidId);
  UserLimits limits;
  limits.daily_limit = 1;
  const UserId user = service_->add_user("limited", limits);
  RequestOptions options;
  reset_engine_state();
  EXPECT_TRUE(service_->request_with_options(user, dest, source, options,
                                             lab_->rng));
  EXPECT_FALSE(service_->request_with_options(user, dest, source, options,
                                              lab_->rng));
}

TEST_F(ServiceFixture, NdtMeasurementsBudgeted) {
  const HostId server = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(server, 20, lab_->rng));
  service_->set_ndt_daily_budget(3);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto served = service_->on_ndt_measurement(
        lab_->topo.probe_hosts()[i], server);
    if (served) {
      ++accepted;
      EXPECT_TRUE(served->forward.has_value());  // M-Lab forward traceroute.
    }
  }
  EXPECT_EQ(accepted, 3u);
  EXPECT_EQ(service_->ndt_stats().accepted, 3u);
  EXPECT_EQ(service_->ndt_stats().rejected_load, 3u);
  // The budget resets at the daily refresh.
  service_->daily_refresh(lab_->rng);
  EXPECT_TRUE(service_->on_ndt_measurement(lab_->topo.probe_hosts()[0],
                                           server));
}

TEST_F(ServiceFixture, NdtToUnregisteredServerRejected) {
  EXPECT_FALSE(service_->on_ndt_measurement(
      lab_->topo.probe_hosts()[0], lab_->topo.vantage_points()[1]));
}

// Paranoid mode: every served measurement flows through the inspector hook
// before archival, where analysis::ResultValidator re-checks the invariant
// catalog (budget excluded — the service interleaves maintenance probes).
TEST_F(ServiceFixture, InspectorValidatesEveryServedMeasurement) {
  analysis::ProbeLog log;
  lab_->prober.set_observer(&log);
  analysis::ResultValidator validator(lab_->topo, lab_->ip2as,
                                      lab_->engine.config(), log);
  service_->set_inspector(validator.inspector());

  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const UserId user = service_->add_user("auditor");
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(service_->request(user, lab_->topo.probe_hosts()[i], source));
  }
  EXPECT_EQ(validator.checked(), 3u);
  for (const auto& violation : validator.violations()) {
    ADD_FAILURE() << analysis::to_string(violation.id) << ": "
                  << violation.detail;
  }
  EXPECT_TRUE(validator.clean());
}

TEST_F(ServiceFixture, DailyRefreshAdvancesClockAndKeepsAtlas) {
  const HostId source = lab_->topo.vantage_points()[0];
  ASSERT_TRUE(service_->add_source(source, 20, lab_->rng));
  const auto before = service_->clock().now();
  service_->daily_refresh(lab_->rng);
  EXPECT_GE(service_->clock().now(), before + util::SimClock::kDay);
  EXPECT_EQ(lab_->atlas.traceroutes(source).size(), 20u);
  for (const auto& tr : lab_->atlas.traceroutes(source)) {
    EXPECT_GE(tr.measured_at, before);
  }
}

}  // namespace
}  // namespace revtr::service
