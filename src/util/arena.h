// Bump-pointer arena for per-request scratch memory.
//
// A staged RequestTask allocates the same short-lived vectors every loop
// iteration (RR attempt lists, revealed-hop sets, timestamp candidates);
// with the global allocator each iteration pays malloc/free per container.
// An Arena hands out memory by bumping a pointer through chunked blocks and
// frees nothing until reset(): allocation is a bounds check and an add, and
// reset() recycles the blocks in place, so the steady state allocates zero
// bytes from the system.
//
// Lifetime rules (see DESIGN.md §13):
//   * Everything allocated from an Arena dies at reset(). Containers using
//     an ArenaAllocator MUST be destroyed (or re-created) before the arena
//     they point into is reset — the allocator's deallocate() is a no-op,
//     but a live container would be left dangling over recycled memory.
//   * Arena is single-threaded by design: one arena per RequestTask, and a
//     task only ever runs on one worker at a time (the scheduler's
//     in-flight accounting enforces that).
//
// Storage is std::vector<std::byte> blocks (no raw new/delete); blocks
// double in size up to a cap so a task that once needed a big scratch block
// keeps it across resets instead of re-growing every iteration.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace revtr::util {

class Arena {
 public:
  static constexpr std::size_t kFirstBlockBytes = 4096;
  static constexpr std::size_t kMaxBlockBytes = 1 << 20;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` bytes aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    REVTR_CHECK(align > 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    while (true) {
      if (block_ < blocks_.size()) {
        std::vector<std::byte>& block = blocks_[block_];
        const auto base = reinterpret_cast<std::uintptr_t>(block.data());
        std::size_t off = offset_;
        const std::uintptr_t misalign = (base + off) & (align - 1);
        if (misalign != 0) off += align - misalign;
        if (off + bytes <= block.size()) {
          offset_ = off + bytes;
          return block.data() + off;
        }
        ++block_;
        offset_ = 0;
        continue;
      }
      add_block(bytes + align);
    }
  }

  // Recycles all blocks. O(1); keeps the memory for the next iteration.
  void reset() noexcept {
    block_ = 0;
    offset_ = 0;
  }

  // Total bytes owned (capacity, not live allocations) — for tests.
  std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& block : blocks_) total += block.size();
    return total;
  }

 private:
  void add_block(std::size_t at_least) {
    std::size_t want =
        blocks_.empty() ? kFirstBlockBytes
                        : std::min(blocks_.back().size() * 2, kMaxBlockBytes);
    while (want < at_least) want *= 2;
    blocks_.emplace_back(want);
  }

  std::vector<std::vector<std::byte>> blocks_;
  std::size_t block_ = 0;   // Index of the block currently being bumped.
  std::size_t offset_ = 0;  // Bump offset within blocks_[block_].
};

// std-compatible allocator over an Arena. deallocate() is a no-op; memory
// comes back only at Arena::reset(). Two allocators compare equal iff they
// share an arena, so container moves between same-arena containers are O(1).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace revtr::util
