// Controller/agent split end-to-end (DESIGN.md §15): a daemon in
// --remote-probing mode with in-process AgentDaemon threads over a real
// AF_UNIX socket. Pins the distributed-mode correctness bar from ROADMAP
// item 5: remote campaigns are byte-identical to the monolith, agent death
// mid-campaign reassigns work without losing or double-delivering requests,
// and invariant I7 holds over the dispatcher's audit trail.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "agent/agent.h"
#include "analysis/invariants.h"
#include "sched/scheduler.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/frame.h"

namespace revtr {
namespace {

server::ServerOptions controller_options(const std::string& test_name) {
  server::ServerOptions options;
  options.socket_path = "/tmp/revtr_agent_test_" + test_name + ".sock";
  options.topo.seed = 11;
  options.topo.num_ases = 100;
  options.topo.num_vps = 6;
  options.topo.num_probe_hosts = 24;
  options.seed = 11;
  options.workers = 2;
  options.atlas_size = 20;
  return options;
}

// An agent configured to execute probes for `controller`: same simulated
// Internet (topology config + seed), which is what makes its probe outcomes
// byte-identical to the controller's own prober.
agent::AgentOptions agent_options(const server::ServerOptions& controller,
                                  const std::string& name,
                                  std::size_t window) {
  agent::AgentOptions options;
  options.socket_path = controller.socket_path;
  options.name = name;
  options.topo = controller.topo;
  options.seed = controller.seed;
  options.window = window;
  options.heartbeat_interval_ms = 50;
  return options;
}

// The per-request facts the monolith and the distributed deployment must
// agree on exactly. Simulated latency is excluded on purpose: round timing
// differs between a pump and a dispatch round, and the paper's bar is
// "same measurements", not "same clock".
struct Signature {
  std::uint64_t request_id = 0;
  core::RevtrStatus status = core::RevtrStatus::kUnreachable;
  bool shed = false;
  std::uint64_t probes = 0;
  std::vector<server::ResultHop> hops;

  bool operator==(const Signature&) const = default;
};

// Submits `count` requests one at a time (submit, wait, next) and returns
// their signatures. Sequential submission keeps the scheduler's coalescing
// deterministic so the monolith/remote comparison is exact.
std::vector<Signature> run_campaign(const std::string& socket_path,
                                    std::size_t count) {
  std::vector<Signature> signatures;
  server::DaemonClient client;
  if (!client.connect(socket_path)) return signatures;
  if (!client.hello("demo-key").has_value()) return signatures;
  for (std::size_t i = 0; i < count; ++i) {
    server::Submit request;
    request.request_id = 100 + i;
    request.dest_index = static_cast<std::uint32_t>(i);
    if (!client.submit(request)) return signatures;
    std::optional<server::Result> result;
    if (client.next_result_for(result, /*timeout_ms=*/30'000) !=
        server::DaemonClient::WaitStatus::kOk) {
      return signatures;
    }
    signatures.push_back(Signature{result->request_id, result->status,
                                   result->shed, result->probes,
                                   std::move(result->hops)});
  }
  return signatures;
}

TEST(AgentSplit, RemoteCampaignByteIdenticalToMonolithAndI7Holds) {
  constexpr std::size_t kRequests = 4;

  // Monolith reference: workers execute probes on their own probers.
  std::vector<Signature> monolith;
  {
    server::ServerDaemon daemon(controller_options("monolith"));
    ASSERT_TRUE(daemon.start());
    monolith = run_campaign(controller_options("monolith").socket_path,
                            kRequests);
    daemon.stop();
  }
  ASSERT_EQ(monolith.size(), kRequests);

  // Distributed deployment: same requests through a controller plus two VP
  // agents. A small agent window forces the dispatcher to spread wire
  // probes across both agents instead of parking on the first.
  sched::SchedulerAudit audit;
  auto options = controller_options("remote");
  options.remote_probing = true;
  options.sched_audit = &audit;
  std::vector<Signature> remote;
  agent::AgentDaemon agent_a(agent_options(options, "vp-a", 2));
  agent::AgentDaemon agent_b(agent_options(options, "vp-b", 2));
  bool a_clean = false;
  bool b_clean = false;
  {
    server::ServerDaemon daemon(options);
    ASSERT_TRUE(daemon.start());
    std::thread thread_a([&] { a_clean = agent_a.run(); });
    std::thread thread_b([&] { b_clean = agent_b.run(); });
    remote = run_campaign(options.socket_path, kRequests);
    // Drain: the controller finishes accepted work, then sends AGENT_DRAIN
    // to both agents, which exit their run loops cleanly.
    daemon.request_drain();
    daemon.wait_until_drained();
    thread_a.join();
    thread_b.join();
    daemon.stop();
  }
  ASSERT_EQ(remote.size(), kRequests);

  // The distributed campaign IS the monolith campaign, bit for bit.
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(remote[i], monolith[i]) << "request " << i;
  }

  EXPECT_TRUE(a_clean) << "agent a did not drain cleanly";
  EXPECT_TRUE(b_clean) << "agent b did not drain cleanly";
  // Every wire probe crossed the wire: the agents did all the probing, and
  // the small window made both of them do some of it.
  EXPECT_GT(agent_a.counters().executed, 0u);
  EXPECT_GT(agent_b.counters().executed, 0u);

  // I7 over the dispatcher's audit: every coalesced delivery matches an
  // issued wire probe's digest and the per-VP window held — across process
  // boundaries.
  EXPECT_FALSE(audit.issues.empty());
  const auto violations = analysis::check_scheduler(audit, options.sched);
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations, e.g. "
                                  << violations.front().detail;
}

TEST(AgentSplit, AgentDeathMidCampaignReassignsWithoutDoubleDelivery) {
  constexpr std::size_t kRequests = 4;

  sched::SchedulerAudit audit;
  auto options = controller_options("kill");
  options.remote_probing = true;
  options.sched_audit = &audit;
  // Exactly enough quota for the campaign: a double-charged request would
  // turn one of the submits below into kQuotaExhausted.
  server::TenantConfig tenant;
  tenant.limits.daily_limit = kRequests;
  options.tenants.push_back(tenant);

  // Agent a takes a big window of assignments, executes ONE probe, then
  // vanishes without a goodbye (abrupt socket close, answers lost). The
  // controller must detach it, requeue its in-flight assignments, and let
  // agent b finish the campaign.
  auto doomed = agent_options(options, "vp-doomed", 8);
  doomed.die_after_probes = 1;
  agent::AgentDaemon agent_a(doomed);
  agent::AgentDaemon agent_b(agent_options(options, "vp-survivor", 8));

  bool a_clean = true;
  bool b_clean = false;
  server::ServerCounters counters;
  sched::SchedulerStats stats;
  {
    server::ServerDaemon daemon(options);
    ASSERT_TRUE(daemon.start());
    std::thread thread_a([&] { a_clean = agent_a.run(); });
    // Let the doomed agent register first so it wins the initial dispatch.
    while (agent_a.agent_id() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::thread thread_b([&] { b_clean = agent_b.run(); });

    server::DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    ASSERT_TRUE(client.hello("demo-key").has_value());
    // All requests up front: the doomed agent's window fills with
    // assignments it will never answer.
    for (std::size_t i = 0; i < kRequests; ++i) {
      server::Submit request;
      request.request_id = 200 + i;
      request.dest_index = static_cast<std::uint32_t>(i);
      ASSERT_TRUE(client.submit(request)) << "request " << i;
    }
    // Every request resolves exactly once despite the mid-campaign death.
    std::vector<bool> seen(kRequests, false);
    for (std::size_t i = 0; i < kRequests; ++i) {
      std::optional<server::Result> result;
      ASSERT_EQ(client.next_result_for(result, /*timeout_ms=*/30'000),
                server::DaemonClient::WaitStatus::kOk)
          << "campaign stalled after agent death";
      ASSERT_GE(result->request_id, 200u);
      const std::size_t index = result->request_id - 200;
      ASSERT_LT(index, kRequests);
      EXPECT_FALSE(seen[index]) << "request delivered twice";
      seen[index] = true;
      EXPECT_FALSE(result->shed);
      EXPECT_GT(result->probes, 0u);
    }

    thread_a.join();
    daemon.request_drain();
    daemon.wait_until_drained();
    thread_b.join();
    counters = daemon.counters();
    stats = daemon.sched_stats();
    daemon.stop();
  }

  EXPECT_FALSE(a_clean) << "die_after_probes must look like a crash";
  EXPECT_TRUE(b_clean);
  EXPECT_EQ(agent_a.counters().executed, 1u);
  EXPECT_GT(agent_b.counters().executed, 0u);

  // The controller noticed the death: the dead agent's in-flight
  // assignments were requeued and reissued, not lost.
  EXPECT_GT(stats.reassigned, 0u);
  // Exactly one completion per accepted request — no double delivery, no
  // double quota charge (the daily limit above would have tripped).
  EXPECT_EQ(counters.accepted, kRequests);
  EXPECT_EQ(counters.completed, kRequests);
  EXPECT_EQ(counters.shed_queued, 0u);

  // I7 still holds over the detach/requeue/reassign history.
  const auto violations = analysis::check_scheduler(audit, options.sched);
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations, e.g. "
                                  << violations.front().detail;
}

}  // namespace
}  // namespace revtr
