#include "topology/topology.h"

#include <algorithm>

namespace revtr::topology {

std::string to_string(AsTier tier) {
  switch (tier) {
    case AsTier::kTier1:
      return "tier1";
    case AsTier::kTransit:
      return "transit";
    case AsTier::kStub:
      return "stub";
  }
  return "?";
}

std::string to_string(AsCategory category) {
  switch (category) {
    case AsCategory::kGeneric:
      return "generic";
    case AsCategory::kColo:
      return "colo";
    case AsCategory::kEdu:
      return "edu";
    case AsCategory::kNren:
      return "nren";
  }
  return "?";
}

std::string to_string(RrStampPolicy policy) {
  switch (policy) {
    case RrStampPolicy::kEgress:
      return "egress";
    case RrStampPolicy::kIngress:
      return "ingress";
    case RrStampPolicy::kLoopback:
      return "loopback";
    case RrStampPolicy::kPrivate:
      return "private";
    case RrStampPolicy::kNoStamp:
      return "nostamp";
  }
  return "?";
}

std::string to_string(HostStamp stamp) {
  switch (stamp) {
    case HostStamp::kNormal:
      return "normal";
    case HostStamp::kNoStamp:
      return "nostamp";
    case HostStamp::kDoubleStamp:
      return "doublestamp";
    case HostStamp::kAliasStamp:
      return "aliasstamp";
  }
  return "?";
}

std::optional<InterfaceOwner> Topology::interface_at(
    net::Ipv4Addr addr) const {
  const auto it = interface_map_.find(addr);
  if (it == interface_map_.end()) return std::nullopt;
  return it->second;
}

std::optional<HostId> Topology::host_at(net::Ipv4Addr addr) const {
  const auto it = host_map_.find(addr);
  if (it == host_map_.end()) return std::nullopt;
  return it->second;
}

std::optional<PrefixId> Topology::prefix_of(net::Ipv4Addr addr) const {
  return prefix_trie_.lookup(addr);
}

std::optional<Asn> Topology::as_of(net::Ipv4Addr addr) const {
  const auto id = prefix_of(addr);
  if (!id) return std::nullopt;
  return prefixes_[*id].origin;
}

net::Ipv4Addr Topology::egress_addr(RouterId router, LinkId link_id) const {
  const Link& l = links_[link_id];
  return l.router_a == router ? l.addr_a : l.addr_b;
}

RouterId Topology::far_end(RouterId router, LinkId link_id) const {
  const Link& l = links_[link_id];
  return l.router_a == router ? l.router_b : l.router_a;
}

std::optional<LinkId> Topology::border_link(Asn from, Asn to) const {
  const auto links = border_links(from, to);
  if (links.empty()) return std::nullopt;
  return links.front();
}

std::span<const LinkId> Topology::border_links(Asn from, Asn to) const {
  const auto it = border_links_.find((std::uint64_t{from} << 32) | to);
  if (it == border_links_.end()) return {};
  return it->second;
}

std::optional<net::Ipv4Addr> Topology::gateway_addr(RouterId router,
                                                    PrefixId prefix) const {
  const auto it =
      gateway_map_.find((std::uint64_t{router} << 32) | prefix);
  if (it == gateway_map_.end()) return std::nullopt;
  return it->second;
}

std::span<const HostId> Topology::hosts_in_prefix(PrefixId prefix) const {
  if (prefix >= prefix_hosts_.size()) return {};
  return prefix_hosts_[prefix];
}

std::vector<net::Ipv4Addr> Topology::addresses_in_prefix(
    PrefixId prefix_id, std::size_t limit) const {
  std::vector<net::Ipv4Addr> addrs;
  const BgpPrefix& bgp = prefixes_[prefix_id];
  for (const HostId host_id : hosts_in_prefix(prefix_id)) {
    if (addrs.size() >= limit) return addrs;
    addrs.push_back(hosts_[host_id].addr);
  }
  const auto as_it = asn_to_index_.find(bgp.origin);
  if (as_it == asn_to_index_.end()) return addrs;
  for (const RouterId router_id : ases_[as_it->second].routers) {
    const Router& router = routers_[router_id];
    if (addrs.size() >= limit) return addrs;
    if (bgp.prefix.contains(router.loopback)) {
      addrs.push_back(router.loopback);
    }
    for (const LinkId link : router.links) {
      if (addrs.size() >= limit) return addrs;
      const net::Ipv4Addr addr = egress_addr(router_id, link);
      if (bgp.prefix.contains(addr)) addrs.push_back(addr);
    }
  }
  return addrs;
}

std::vector<net::Ipv4Addr> Topology::router_addresses(RouterId id) const {
  const Router& r = routers_[id];
  std::vector<net::Ipv4Addr> addrs;
  addrs.push_back(r.loopback);
  if (!r.private_alias.is_unspecified()) addrs.push_back(r.private_alias);
  for (LinkId link : r.links) {
    addrs.push_back(egress_addr(id, link));
  }
  if (id < router_gateways_.size()) {
    for (net::Ipv4Addr gateway : router_gateways_[id]) {
      addrs.push_back(gateway);
    }
  }
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
  return addrs;
}

bool Topology::same_router(net::Ipv4Addr a, net::Ipv4Addr b) const {
  const auto ia = interface_at(a);
  const auto ib = interface_at(b);
  return ia && ib && ia->router == ib->router;
}

}  // namespace revtr::topology
