#include "probing/prober.h"

#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace revtr::probing {

namespace {
using net::Ipv4Addr;
using net::Packet;

// Counter merges happen at the parallel-campaign barrier after billions of
// simulated packets; a silent wrap there would corrupt every Table 4 row
// downstream, so the merge is overflow-checked rather than trusted.
std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  REVTR_CHECK(a <= std::numeric_limits<std::uint64_t>::max() - b);
  return a + b;
}

// Window deltas (`after - before`) must never go negative: `before` is a
// snapshot of the same monotonically increasing counters.
std::uint64_t checked_sub(std::uint64_t a, std::uint64_t b) {
  REVTR_CHECK(a >= b);
  return a - b;
}
}  // namespace

std::string to_string(ProbeType type) {
  switch (type) {
    case ProbeType::kPing:
      return "ping";
    case ProbeType::kRecordRoute:
      return "rr";
    case ProbeType::kSpoofedRecordRoute:
      return "spoof-rr";
    case ProbeType::kTimestamp:
      return "ts";
    case ProbeType::kSpoofedTimestamp:
      return "spoof-ts";
    case ProbeType::kTraceroute:
      return "traceroute";
  }
  return "?";
}

ProbeMetrics::ProbeMetrics(obs::MetricsRegistry& registry) {
  for (std::size_t t = 0; t < probes.size(); ++t) {
    const auto type_name = to_string(static_cast<ProbeType>(t));
    probes[t][0] = &registry.counter("revtr_probes_total{scope=\"online\",type=\"" +
                                     type_name + "\"}");
    probes[t][1] = &registry.counter(
        "revtr_probes_total{scope=\"offline\",type=\"" + type_name + "\"}");
  }
  traceroutes[0] =
      &registry.counter("revtr_traceroutes_total{scope=\"online\"}");
  traceroutes[1] =
      &registry.counter("revtr_traceroutes_total{scope=\"offline\"}");
}

ProbeCounters& ProbeCounters::operator+=(const ProbeCounters& other) {
  ping = checked_add(ping, other.ping);
  rr = checked_add(rr, other.rr);
  spoofed_rr = checked_add(spoofed_rr, other.spoofed_rr);
  ts = checked_add(ts, other.ts);
  spoofed_ts = checked_add(spoofed_ts, other.spoofed_ts);
  traceroute_packets = checked_add(traceroute_packets,
                                   other.traceroute_packets);
  traceroutes = checked_add(traceroutes, other.traceroutes);
  return *this;
}

ProbeCounters ProbeCounters::operator-(const ProbeCounters& other) const {
  ProbeCounters delta;
  delta.ping = checked_sub(ping, other.ping);
  delta.rr = checked_sub(rr, other.rr);
  delta.spoofed_rr = checked_sub(spoofed_rr, other.spoofed_rr);
  delta.ts = checked_sub(ts, other.ts);
  delta.spoofed_ts = checked_sub(spoofed_ts, other.spoofed_ts);
  delta.traceroute_packets =
      checked_sub(traceroute_packets, other.traceroute_packets);
  delta.traceroutes = checked_sub(traceroutes, other.traceroutes);
  return delta;
}

std::vector<Ipv4Addr> TracerouteResult::responsive_hops() const {
  std::vector<Ipv4Addr> addrs;
  for (const auto& hop : hops) {
    if (hop.addr) addrs.push_back(*hop.addr);
  }
  return addrs;
}

Prober::Prober(sim::Network& network) : network_(network) {}

void Prober::charge(ProbeType type) {
  const auto bump = [type](ProbeCounters& c) {
    switch (type) {
      case ProbeType::kPing:
        ++c.ping;
        break;
      case ProbeType::kRecordRoute:
        ++c.rr;
        break;
      case ProbeType::kSpoofedRecordRoute:
        ++c.spoofed_rr;
        break;
      case ProbeType::kTimestamp:
        ++c.ts;
        break;
      case ProbeType::kSpoofedTimestamp:
        ++c.spoofed_ts;
        break;
      case ProbeType::kTraceroute:
        ++c.traceroute_packets;
        break;
    }
  };
  bump(counters_);
  if (offline()) bump(offline_counters_);
  if (metrics_ != nullptr) {
    metrics_->probes[static_cast<std::size_t>(type)][offline() ? 1 : 0]->add();
  }
}

void Prober::charge_traceroute_head() {
  ++counters_.traceroutes;
  if (offline()) ++offline_counters_.traceroutes;
  if (metrics_ != nullptr) {
    metrics_->traceroutes[offline() ? 1 : 0]->add();
  }
}

bool Prober::vetoed(ProbeEvent& event) {
  if (!fault_policy_) return false;
  if (!fault_policy_(event)) return false;
  event.suppressed = true;
  return true;
}

PingResult Prober::ping(topology::HostId from, Ipv4Addr target) {
  charge(ProbeType::kPing);
  ProbeEvent event;
  event.type = ProbeType::kPing;
  event.from = from;
  event.target = target;
  event.offline = offline();
  PingResult out;
  if (vetoed(event)) {
    out.duration_us = kProbeTimeoutUs;
    notify(event);
    return out;
  }
  const auto& sender = topo().host(from);
  Packet probe = net::make_echo_request(sender.addr, target, next_id(), 1);
  const auto result = network_.send(probe, from);
  out.responded = result.answered();
  out.duration_us = out.responded ? result.rtt_us : kProbeTimeoutUs;
  event.responded = out.responded;
  notify(event);
  return out;
}

RrProbeResult Prober::rr_ping(topology::HostId from, Ipv4Addr target,
                              std::optional<Ipv4Addr> spoof_as) {
  charge(spoof_as ? ProbeType::kSpoofedRecordRoute : ProbeType::kRecordRoute);
  ProbeEvent event;
  event.type =
      spoof_as ? ProbeType::kSpoofedRecordRoute : ProbeType::kRecordRoute;
  event.from = from;
  event.target = target;
  event.spoof_as = spoof_as;
  event.offline = offline();
  RrProbeResult out;
  if (vetoed(event)) {
    out.duration_us = kProbeTimeoutUs;
    notify(event);
    return out;
  }
  const auto& sender = topo().host(from);
  const Ipv4Addr src = spoof_as.value_or(sender.addr);
  Packet probe = net::make_echo_request(src, target, next_id(), 1);
  probe.rr = net::RecordRouteOption{};
  const auto result = network_.send(probe, from);
  out.responded = result.answered() && result.reply->rr.has_value();
  if (out.responded) {
    out.slots = result.reply->rr->to_vector();
    out.duration_us = result.rtt_us;
  } else {
    out.duration_us = kProbeTimeoutUs;
  }
  event.responded = out.responded;
  event.slots = out.slots;
  notify(event);
  return out;
}

void Prober::rr_ping_batch(std::span<const RrBatchItem> items,
                           std::vector<RrProbeResult>& out) {
  out.resize(items.size());
  batch_probes_.clear();
  batch_slots_.clear();
  batch_events_.resize(items.size());

  // Phase 1, in item order: charge, consult the fault policy, and build the
  // wire packets. next_id() draws here, so packet ids match what sequential
  // rr_ping() calls would have used.
  for (std::size_t i = 0; i < items.size(); ++i) {
    const RrBatchItem& item = items[i];
    charge(item.spoof_as ? ProbeType::kSpoofedRecordRoute
                         : ProbeType::kRecordRoute);
    ProbeEvent& event = batch_events_[i];
    event = ProbeEvent{};
    event.type = item.spoof_as ? ProbeType::kSpoofedRecordRoute
                               : ProbeType::kRecordRoute;
    event.from = item.from;
    event.target = item.target;
    event.spoof_as = item.spoof_as;
    event.offline = offline();
    RrProbeResult& result = out[i];
    result.responded = false;
    result.slots.clear();
    result.duration_us = kProbeTimeoutUs;
    if (vetoed(event)) continue;
    const auto& sender = topo().host(item.from);
    const Ipv4Addr src = item.spoof_as.value_or(sender.addr);
    sim::BatchProbe probe;
    probe.packet = net::make_echo_request(src, item.target, next_id(), 1);
    probe.packet.rr = net::RecordRouteOption{};
    probe.sender = item.from;
    batch_probes_.push_back(std::move(probe));
    batch_slots_.push_back(i);
  }

  // Phase 2: one simulator pass over the whole batch (loss draws happen
  // inside, in batch order).
  network_.send_batch(batch_probes_, batch_replies_);

  // Phase 3, in item order: outcomes and observer notifications.
  for (std::size_t p = 0; p < batch_replies_.size(); ++p) {
    const sim::SendResult& reply = batch_replies_[p];
    RrProbeResult& result = out[batch_slots_[p]];
    result.responded = reply.answered() && reply.reply->rr.has_value();
    if (result.responded) {
      result.slots = reply.reply->rr->to_vector();
      result.duration_us = reply.rtt_us;
    }
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    ProbeEvent& event = batch_events_[i];
    event.responded = out[i].responded;
    event.slots = out[i].slots;
    notify(event);
  }
}

TsProbeResult Prober::ts_ping(topology::HostId from, Ipv4Addr target,
                              std::span<const Ipv4Addr> prespec,
                              std::optional<Ipv4Addr> spoof_as) {
  charge(spoof_as ? ProbeType::kSpoofedTimestamp : ProbeType::kTimestamp);
  ProbeEvent event;
  event.type = spoof_as ? ProbeType::kSpoofedTimestamp : ProbeType::kTimestamp;
  event.from = from;
  event.target = target;
  event.spoof_as = spoof_as;
  event.offline = offline();
  event.prespec.assign(prespec.begin(), prespec.end());
  TsProbeResult out;
  if (vetoed(event)) {
    out.duration_us = kProbeTimeoutUs;
    notify(event);
    return out;
  }
  const auto& sender = topo().host(from);
  const Ipv4Addr src = spoof_as.value_or(sender.addr);
  Packet probe = net::make_echo_request(src, target, next_id(), 1);
  probe.ts = net::TimestampOption::prespecified(prespec);
  const auto result = network_.send(probe, from);
  out.responded = result.answered() && result.reply->ts.has_value();
  if (out.responded) {
    const auto entries = result.reply->ts->entries();
    // The reply's option is decoded from attacker-reachable wire bytes: a
    // TS option can never carry more than kMaxEntries slots, so anything
    // larger is a codec bug, not a size to allocate.
    REVTR_CHECK(entries.size() <= net::TimestampOption::kMaxEntries);
    out.stamped.reserve(entries.size());
    for (const auto& entry : entries) out.stamped.push_back(entry.stamped);
    out.duration_us = result.rtt_us;
  } else {
    out.duration_us = kProbeTimeoutUs;
  }
  event.responded = out.responded;
  event.stamped = out.stamped;
  notify(event);
  return out;
}

TracerouteResult Prober::traceroute(topology::HostId from, Ipv4Addr target) {
  charge_traceroute_head();
  const auto& sender = topo().host(from);
  TracerouteResult out;
  // Paris flow id: constant across TTLs so per-flow load balancers keep the
  // probes on one path, and a pure function of the endpoints so re-tracing a
  // flow takes the *same* path regardless of how many probes any prober sent
  // before — probe outcomes must be content-addressed for the shared caches
  // of a parallel campaign to be transparent (DESIGN.md §8).
  const auto flow_id = util::truncate_cast<std::uint16_t>(
      util::mix_hash(sender.addr.value(), target.value(), 0x7aceULL));
  std::uint64_t packets = 0;
  for (int ttl = 1; ttl <= kMaxTracerouteTtl; ++ttl) {
    charge(ProbeType::kTraceroute);
    ++packets;
    Packet probe = net::make_echo_request(sender.addr, target, flow_id, 7,
                                          static_cast<std::uint8_t>(ttl));
    const auto result = network_.send(probe, from);
    TracerouteHop hop;
    if (result.answered()) {
      hop.addr = result.reply->src;
      hop.rtt_us = result.rtt_us;
      out.duration_us += result.rtt_us;
    } else {
      out.duration_us += kProbeTimeoutUs;
    }
    out.hops.push_back(hop);
    if (result.answered() &&
        result.reply->type == net::IcmpType::kEchoReply) {
      out.reached = true;
      break;
    }
    // Three consecutive silent hops usually mean the trace is going
    // nowhere; real tools stop too rather than burn 30 more probes.
    if (out.hops.size() >= 3) {
      const auto n = out.hops.size();
      if (!out.hops[n - 1].addr && !out.hops[n - 2].addr &&
          !out.hops[n - 3].addr) {
        break;
      }
    }
  }
  if (observer_ != nullptr) {
    ProbeEvent event;
    event.type = ProbeType::kTraceroute;
    event.from = from;
    event.target = target;
    event.offline = offline();
    event.responded = !out.responsive_hops().empty();
    event.packets = packets;
    event.tr_hops = out.responsive_hops();
    event.tr_reached = out.reached;
    notify(event);
  }
  return out;
}

}  // namespace revtr::probing
