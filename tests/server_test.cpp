// revtr_serverd subsystem tests: admission policy in isolation, quota
// charge/refund semantics on RevtrService, and the daemon end-to-end over a
// real AF_UNIX socket — auth, submit/result, pull mode, deadline edge
// cases, graceful DRAIN with staged tasks in flight, and SIGTERM shutdown.
//
// Suite names matter: scripts/check.sh re-runs ServerDaemon* under TSan.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "eval/harness.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/frame.h"
#include "service/service.h"
#include "util/json.h"

namespace revtr::server {
namespace {

// --- AdmissionController in isolation (externally synchronized). ----------

TEST(Admission, TokenBucketRefillsAtRate) {
  TokenBucketOptions options;
  options.rate_per_sec = 10;
  options.burst = 2;
  TokenBucket bucket(options);
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0)) << "burst exhausted";
  // 100 ms at 10/s refills exactly one token.
  EXPECT_TRUE(bucket.try_take(100'000));
  EXPECT_FALSE(bucket.try_take(100'000));
}

TEST(Admission, TokenBucketCapsAtBurst) {
  TokenBucketOptions options;
  options.rate_per_sec = 1000;
  options.burst = 3;
  TokenBucket bucket(options);
  // A long idle period must not bank more than `burst` tokens.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.try_take(10'000'000));
  EXPECT_FALSE(bucket.try_take(10'000'000));
}

class AdmissionDecide : public ::testing::Test {
 protected:
  AdmissionDecide() : controller_(AdmissionConfig{}) {
    TokenBucketOptions generous;
    generous.rate_per_sec = 1e9;
    generous.burst = 1e9;
    controller_.add_tenant(1, generous);
  }
  AdmissionController controller_;
  AdmissionLoad load_;
};

TEST_F(AdmissionDecide, AdmitsByDefault) {
  EXPECT_EQ(controller_.decide(1, 0, 1000, load_), std::nullopt);
}

TEST_F(AdmissionDecide, DrainingRefusesEverything) {
  load_.draining = true;
  EXPECT_EQ(controller_.decide(1, 0, 1000, load_), RejectReason::kDraining);
}

TEST_F(AdmissionDecide, ExpiredDeadlineRejectedUpFront) {
  EXPECT_EQ(controller_.decide(1, /*deadline_us=*/500, /*now_us=*/1000, load_),
            RejectReason::kDeadlineExpired);
  // Zero means "no deadline", never "expired".
  EXPECT_EQ(controller_.decide(1, 0, 1000, load_), std::nullopt);
}

TEST_F(AdmissionDecide, TokenBucketRateLimits) {
  TokenBucketOptions stingy;
  stingy.rate_per_sec = 0;
  stingy.burst = 1;
  controller_.add_tenant(2, stingy);
  EXPECT_EQ(controller_.decide(2, 0, 0, load_), std::nullopt);
  EXPECT_EQ(controller_.decide(2, 0, 0, load_), RejectReason::kRateLimited);
}

TEST_F(AdmissionDecide, FullQueueSheds) {
  load_.queued = AdmissionConfig{}.queue_capacity;
  EXPECT_EQ(controller_.decide(1, 0, 1000, load_), RejectReason::kQueueFull);
}

TEST_F(AdmissionDecide, SchedulerBacklogBackpressures) {
  load_.sched_backlog = AdmissionConfig{}.sched_backlog_limit + 1;
  EXPECT_EQ(controller_.decide(1, 0, 1000, load_),
            RejectReason::kBackpressure);
}

TEST_F(AdmissionDecide, UnmeetableDeadlineShedsEarly) {
  // Teach the controller that a request takes ~1 s, then offer a deadline
  // only 100 ms away with a deep queue in front of it.
  for (int i = 0; i < 8; ++i) controller_.observe_latency(1'000'000);
  load_.queued = 10;
  load_.inflight = 4;
  EXPECT_GT(controller_.estimated_wait_us(load_), 0);
  EXPECT_EQ(controller_.decide(1, /*deadline_us=*/100'000, /*now_us=*/0,
                               load_),
            RejectReason::kDeadlineUnmeetable);
  // The same load with a far deadline is fine.
  EXPECT_EQ(controller_.decide(1, /*deadline_us=*/3'600'000'000LL,
                               /*now_us=*/0, load_),
            std::nullopt);
}

TEST_F(AdmissionDecide, LatencyEwmaTracksSamples) {
  controller_.observe_latency(1000);
  EXPECT_DOUBLE_EQ(controller_.smoothed_latency_us(), 1000);
  controller_.observe_latency(2000);
  // alpha = 0.2: 1000 + 0.2 * (2000 - 1000).
  EXPECT_DOUBLE_EQ(controller_.smoothed_latency_us(), 1200);
}

// --- Weighted fair queuing across tenants (FairQueue in isolation). -------

TEST(FairQueuing, FloodingTenantCannotStarvePeer) {
  // Tenant 1 floods 100 requests before tenant 2 submits 10, all at the
  // same priority and equal weight. FIFO would make tenant 2 wait out the
  // whole flood; start-time fair queuing interleaves instead.
  FairQueue<std::uint32_t> queue;
  for (std::uint32_t i = 0; i < 100; ++i) queue.push(1, /*flow=*/1, i);
  for (std::uint32_t i = 0; i < 10; ++i) queue.push(1, /*flow=*/2, 100 + i);
  // Within the first 30 pops, every one of tenant 2's 10 items must have
  // been served (round-robin at equal weight drains the short flow fast).
  std::size_t tenant2_served = 0;
  for (int i = 0; i < 30; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    if (*item >= 100) ++tenant2_served;
  }
  EXPECT_EQ(tenant2_served, 10u) << "late tenant starved behind the flood";
  // The remaining items all belong to tenant 1 and drain in FIFO order.
  std::uint32_t expect_next = 20;
  while (!queue.empty()) EXPECT_EQ(*queue.pop(), expect_next++);
}

TEST(FairQueuing, WeightsSkewServiceProportionally) {
  // Tenant 1 at weight 2, tenant 2 at weight 1, both backlogged: tenant 1
  // should receive ~2/3 of the service while both queues are non-empty.
  FairQueue<std::uint32_t> queue;
  queue.set_weight(1, 2.0);
  queue.set_weight(2, 1.0);
  for (std::uint32_t i = 0; i < 60; ++i) {
    queue.push(0, 1, /*tenant 1 marker=*/0);
    queue.push(0, 2, /*tenant 2 marker=*/1);
  }
  std::size_t tenant1 = 0;
  for (int i = 0; i < 60; ++i) {
    if (*queue.pop() == 0) ++tenant1;
  }
  EXPECT_GE(tenant1, 38u) << "weight-2 tenant under-served";
  EXPECT_LE(tenant1, 42u) << "weight-2 tenant over-served";
}

TEST(FairQueuing, StrictPriorityBeatsFairnessAcrossLevels) {
  // Fairness applies within a level; across levels, a lower level number
  // always wins no matter how backlogged the flows below it are.
  FairQueue<int> queue;
  for (int i = 0; i < 50; ++i) queue.push(2, 1, 1000 + i);
  queue.push(1, 2, 7);
  queue.push(0, 3, 3);
  EXPECT_EQ(queue.size(), 52u);
  EXPECT_EQ(*queue.pop(), 3);
  EXPECT_EQ(*queue.pop(), 7);
  EXPECT_EQ(*queue.pop(), 1000);
}

TEST(FairQueuing, IdleFlowDoesNotBankCredit) {
  // A flow that went idle restarts at the level's virtual time: it cannot
  // burst ahead of an always-busy flow by "saving up" unused service.
  FairQueue<int> queue;
  for (int i = 0; i < 4; ++i) queue.push(0, 1, 10 + i);
  // Flow 2 was idle while flow 1 consumed service...
  EXPECT_EQ(*queue.pop(), 10);
  EXPECT_EQ(*queue.pop(), 11);
  // ...then shows up. It gets its fair share from now on, not a burst of
  // four back-to-back pops to "catch up".
  for (int i = 0; i < 4; ++i) queue.push(0, 2, 20 + i);
  EXPECT_EQ(*queue.pop(), 12);
  EXPECT_EQ(*queue.pop(), 20);
  EXPECT_EQ(*queue.pop(), 13);
  EXPECT_EQ(*queue.pop(), 21);
}

// --- Quota charge/refund semantics on RevtrService directly. --------------

TEST(ServiceQuota, ChargeRefundRoundTrip) {
  topology::TopologyConfig topo;
  topo.seed = 11;
  topo.num_ases = 60;
  topo.num_vps = 5;
  topo.num_probe_hosts = 20;
  eval::Lab lab(topo);
  service::RevtrService service(lab.engine, lab.atlas, lab.prober, lab.topo);
  service::UserLimits limits;
  limits.daily_limit = 2;
  const auto user = service.add_user("capped", limits);

  using Decision = service::RevtrService::QuotaDecision;
  EXPECT_EQ(service.try_charge_request(999), Decision::kUnknownUser);
  EXPECT_EQ(service.try_charge_request(user), Decision::kCharged);
  EXPECT_EQ(service.try_charge_request(user), Decision::kCharged);
  EXPECT_EQ(service.requests_charged_today(user), 2u);
  EXPECT_EQ(service.try_charge_request(user), Decision::kQuotaExhausted);
  // A refund (request shed / incomplete) reopens the window.
  service.refund_request(user);
  EXPECT_EQ(service.requests_charged_today(user), 1u);
  EXPECT_EQ(service.try_charge_request(user), Decision::kCharged);
  EXPECT_EQ(service.try_charge_request(user), Decision::kQuotaExhausted);
}

// --- Daemon end-to-end over a real socket. --------------------------------

ServerOptions small_daemon_options(const std::string& test_name) {
  ServerOptions options;
  options.socket_path = "/tmp/revtr_server_test_" + test_name + ".sock";
  options.topo.seed = 11;
  options.topo.num_ases = 100;
  options.topo.num_vps = 6;
  options.topo.num_probe_hosts = 24;
  options.seed = 11;
  options.workers = 2;
  options.atlas_size = 20;
  return options;
}

TEST(ServerDaemon, HelloAuthRejectsBadKeyAndVersion) {
  const auto options = small_daemon_options("auth");
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    EXPECT_FALSE(client.hello("wrong-key").has_value());
    ASSERT_TRUE(client.reject_reason().has_value());
    EXPECT_EQ(*client.reject_reason(), RejectReason::kBadApiKey);
    // Same connection can retry with the right key.
    const auto welcome = client.hello("demo-key");
    ASSERT_TRUE(welcome.has_value());
    EXPECT_EQ(welcome->tenant_name, "demo");
    EXPECT_GT(welcome->server_now_us, 0);
  }
  daemon.stop();
}

TEST(ServerDaemon, SubmitWithoutHelloRejected) {
  ServerDaemon daemon(small_daemon_options("unauth"));
  ASSERT_TRUE(daemon.start());
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(small_daemon_options("unauth").socket_path));
    Submit request;
    request.request_id = 1;
    EXPECT_FALSE(client.submit(request));
    ASSERT_TRUE(client.reject_reason().has_value());
    EXPECT_EQ(*client.reject_reason(), RejectReason::kNotAuthenticated);
  }
  daemon.stop();
}

TEST(ServerDaemon, SubmitMeasuresAndPushesResults) {
  const auto options = small_daemon_options("measure");
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    ASSERT_TRUE(client.hello("demo-key").has_value());
    for (std::uint64_t i = 0; i < 3; ++i) {
      Submit request;
      request.request_id = 100 + i;
      request.dest_index = static_cast<std::uint32_t>(i);
      ASSERT_TRUE(client.submit(request)) << "request " << i;
    }
    for (int i = 0; i < 3; ++i) {
      const auto result = client.next_result();
      ASSERT_TRUE(result.has_value());
      EXPECT_GE(result->request_id, 100u);
      EXPECT_FALSE(result->shed);
      EXPECT_GT(result->probes, 0u);
      if (result->status == core::RevtrStatus::kComplete) {
        EXPECT_FALSE(result->hops.empty());
      }
    }
    // Out-of-range destination index is a bad request, not a crash.
    Submit bad;
    bad.request_id = 999;
    bad.dest_index = 1 << 20;
    EXPECT_FALSE(client.submit(bad));
    EXPECT_EQ(*client.reject_reason(), RejectReason::kBadRequest);
  }
  const auto counters = daemon.counters();
  EXPECT_EQ(counters.accepted, 3u);
  EXPECT_EQ(counters.completed, 3u);
  EXPECT_EQ(counters.rejected, 1u);
  EXPECT_EQ(daemon.registry()
                .snapshot()
                .find_counter("revtr_server_requests_total")
                ->value,
            3u);
  daemon.stop();
}

TEST(ServerDaemon, PullModeReturnsResultsOnPoll) {
  const auto options = small_daemon_options("pull");
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    ASSERT_TRUE(client.hello("demo-key", /*push_results=*/false).has_value());
    for (std::uint64_t i = 0; i < 2; ++i) {
      Submit request;
      request.request_id = i;
      request.dest_index = static_cast<std::uint32_t>(i);
      ASSERT_TRUE(client.submit(request));
    }
    std::size_t received = 0;
    while (received < 2) {
      const auto pending = client.poll_results();
      ASSERT_TRUE(pending.has_value());
      while (client.stashed_results() > 0) {
        ASSERT_TRUE(client.next_result().has_value());
        ++received;
      }
    }
    EXPECT_EQ(received, 2u);
  }
  daemon.stop();
}

TEST(ServerDaemon, StatsReplyIsParseableJson) {
  const auto options = small_daemon_options("stats");
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    ASSERT_TRUE(client.hello("demo-key").has_value());
    const auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    const auto parsed = util::Json::parse(*stats);
    ASSERT_TRUE(parsed.has_value()) << *stats;
    EXPECT_NE(parsed->find("accepted"), nullptr);
    EXPECT_NE(parsed->find("queued"), nullptr);
  }
  daemon.stop();
}

TEST(ServerDaemon, DeadlineExpiredAtSubmitIsRejectedWithoutCharge) {
  const auto options = small_daemon_options("deadline");
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    ASSERT_TRUE(client.hello("demo-key").has_value());
    Submit request;
    request.request_id = 1;
    request.deadline_us = 1;  // Hours before "now" on the daemon clock.
    EXPECT_FALSE(client.submit(request));
    ASSERT_TRUE(client.reject_reason().has_value());
    EXPECT_EQ(*client.reject_reason(), RejectReason::kDeadlineExpired);
    // The rejection consumed no quota: a normal submit still works.
    request.request_id = 2;
    request.deadline_us = 0;
    EXPECT_TRUE(client.submit(request));
    EXPECT_TRUE(client.next_result().has_value());
  }
  const auto counters = daemon.counters();
  EXPECT_EQ(counters.rejected, 1u);
  EXPECT_EQ(counters.accepted, 1u);
  daemon.stop();
}

TEST(ServerDaemon, QuotaExhaustedMidFlightThenRefundedBySheds) {
  auto options = small_daemon_options("quota");
  TenantConfig tenant;  // Default name/key, tight request quota.
  tenant.limits.daily_limit = 3;
  options.tenants.push_back(tenant);
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  // Park the workers so accepted requests sit in the queue while their
  // deadlines expire — the deterministic version of "shed under overload".
  daemon.set_worker_hold(true);
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    const auto welcome = client.hello("demo-key");
    ASSERT_TRUE(welcome.has_value());
    Submit request;
    for (std::uint64_t i = 0; i < 3; ++i) {
      request.request_id = i;
      request.deadline_us = welcome->server_now_us + 50'000;  // +50 ms.
      ASSERT_TRUE(client.submit(request)) << "request " << i;
    }
    // The 4th hits the daily cap while the first three are still queued.
    request.request_id = 99;
    request.deadline_us = 0;
    EXPECT_FALSE(client.submit(request));
    ASSERT_TRUE(client.reject_reason().has_value());
    EXPECT_EQ(*client.reject_reason(), RejectReason::kQuotaExhausted);

    // Let the deadlines lapse, then release the workers: all three must
    // come back shed, and each shed refunds its quota charge.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    daemon.set_worker_hold(false);
    for (int i = 0; i < 3; ++i) {
      const auto result = client.next_result();
      ASSERT_TRUE(result.has_value());
      EXPECT_TRUE(result->shed);
      EXPECT_TRUE(result->hops.empty());
    }
    // Refunds reopened the window: the retry is admitted and measured.
    request.request_id = 100;
    EXPECT_TRUE(client.submit(request));
    const auto result = client.next_result();
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->shed);
  }
  const auto counters = daemon.counters();
  EXPECT_EQ(counters.shed_queued, 3u);
  EXPECT_EQ(counters.completed, 1u);
  daemon.stop();
}

TEST(ServerDaemon, DrainCompletesInFlightThenRefusesNewWork) {
  const auto options = small_daemon_options("drain");
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    ASSERT_TRUE(client.hello("demo-key").has_value());
    daemon.set_worker_hold(true);
    Submit request;
    for (std::uint64_t i = 0; i < 3; ++i) {
      request.request_id = i;
      request.dest_index = static_cast<std::uint32_t>(i);
      ASSERT_TRUE(client.submit(request));
    }
    EXPECT_EQ(daemon.counters().completed, 0u) << "workers are parked";
    // Release the workers and drain: every queued request must be measured
    // (not dropped) before DRAIN_DONE.
    daemon.set_worker_hold(false);
    const auto done = client.drain();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->completed, 3u);
    EXPECT_EQ(done->shed, 0u);
    EXPECT_TRUE(daemon.draining());
    // The three results were pushed before DRAIN_DONE; they are stashed.
    EXPECT_EQ(client.stashed_results(), 3u);
    // New work is refused while draining.
    request.request_id = 50;
    EXPECT_FALSE(client.submit(request));
    ASSERT_TRUE(client.reject_reason().has_value());
    EXPECT_EQ(*client.reject_reason(), RejectReason::kDraining);
  }
  daemon.wait_until_drained();
  daemon.stop();
}

TEST(ServerDaemon, SigtermDrainsThenExits) {
  const auto options = small_daemon_options("sigterm");
  ServerDaemon daemon(options);
  ASSERT_TRUE(daemon.start());
  ServerDaemon::install_signal_handlers(&daemon);
  {
    DaemonClient client;
    ASSERT_TRUE(client.connect(options.socket_path));
    ASSERT_TRUE(client.hello("demo-key").has_value());
    Submit request;
    request.request_id = 7;
    ASSERT_TRUE(client.submit(request));
    // SIGTERM arrives with the request in flight; the handler only flags a
    // drain, so the measurement still completes and is delivered.
    std::raise(SIGTERM);
    const auto result = client.next_result();
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->shed);
  }
  daemon.wait_until_drained();
  const auto counters = daemon.counters();
  EXPECT_EQ(counters.completed, 1u);
  daemon.stop();
  ServerDaemon::install_signal_handlers(nullptr);
}

}  // namespace
}  // namespace revtr::server
