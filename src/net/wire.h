// Byte-level codec: Packet <-> IPv4 header + ICMP message.
//
// The simulator works on the structured Packet, but this codec proves the
// model is faithful to the wire: a Packet round-trips through the exact
// on-the-wire representation (IPv4 header with options padded to a 4-byte
// boundary, ICMP echo / time-exceeded with checksums). It also backs the
// encode/decode microbenchmarks.
//
// decode_packet is a trust boundary: the buffer may come from an arbitrary
// (adversarial) sender, so every length field is validated against the
// buffer before use and malformed input is rejected with a DecodeError
// describing the first violated invariant.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "net/packet.h"

namespace revtr::net {

// First invariant violated by a rejected buffer, in validation order.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTruncated,        // Shorter than a 20-byte IPv4 header.
  kBadVersion,       // Version nibble != 4.
  kBadHeaderLength,  // IHL < 5 or the declared header overruns the buffer.
  kBadTotalLength,   // Total length < header + 8 or overruns the buffer.
  kHeaderChecksum,   // IPv4 header checksum mismatch.
  kNotIcmp,          // Protocol field is not ICMP.
  kBadOptionLength,  // Option length < 2 or overruns the IHL-declared header.
  kBadRecordRoute,   // Record Route option malformed (length/pointer).
  kBadTimestamp,     // Timestamp option malformed (length/pointer/flags).
  kIcmpChecksum,     // ICMP checksum mismatch.
  kBadIcmpType,      // ICMP type not modelled by Packet.
  kTruncatedQuote,   // ICMP error without a full quoted header + 8 bytes.
};

std::string_view to_string(DecodeError error);

// Serializes the packet to IPv4 wire format. Checksums are computed.
std::vector<std::uint8_t> encode_packet(const Packet& packet);

// Parses a wire buffer back into a Packet. Returns nullopt on malformed
// input; when `error` is non-null it receives the reason (kNone on success).
// Trailing bytes beyond the declared total length are ignored, mirroring a
// capture that includes link-layer padding.
std::optional<Packet> decode_packet(std::span<const std::uint8_t> bytes,
                                    DecodeError* error = nullptr);

}  // namespace revtr::net
