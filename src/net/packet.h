// ICMP probe/response packet model.
//
// This is the unit the simulator forwards and the probing layer consumes.
// It mirrors what a raw-socket implementation would put on the wire: an IPv4
// header (source, destination, TTL, options) and an ICMP message. A byte
// codec in net/wire.h serializes it to the real formats.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/ip_options.h"
#include "net/ipv4.h"

namespace revtr::net {

enum class IcmpType : std::uint8_t {
  kEchoRequest,
  kEchoReply,
  kTimeExceeded,
  kDestUnreachable,
};

std::string to_string(IcmpType type);

struct Packet {
  Ipv4Addr src;  // May be spoofed: the simulator delivers replies here.
  Ipv4Addr dst;
  std::uint8_t ttl = 64;
  IcmpType type = IcmpType::kEchoRequest;

  // ICMP echo identifier/sequence. Paris traceroute (§Appx E) keeps the
  // flow-relevant fields constant so per-flow load balancers see one flow.
  std::uint16_t icmp_id = 0;
  std::uint16_t icmp_seq = 0;

  std::optional<RecordRouteOption> rr;
  std::optional<TimestampOption> ts;

  // For ICMP errors: the destination of the packet that triggered the error
  // (from the quoted header), so the prober can match responses to probes.
  Ipv4Addr quoted_dst;

  bool has_options() const noexcept { return rr.has_value() || ts.has_value(); }

  // Field-wise equality; the wire fuzzer uses it to assert that
  // decode(encode(p)) is the identity on decodable packets.
  bool operator==(const Packet&) const = default;

  // Flow key as a per-flow load balancer would compute it (src, dst,
  // protocol fields). Direction-sensitive by construction.
  std::uint64_t flow_key() const noexcept {
    return (std::uint64_t{src.value()} << 32) ^ dst.value() ^
           (std::uint64_t{icmp_id} << 16) ^ icmp_seq;
  }
};

// Builds an echo request ready to send; callers adjust options/ttl.
Packet make_echo_request(Ipv4Addr src, Ipv4Addr dst, std::uint16_t icmp_id,
                         std::uint16_t icmp_seq, std::uint8_t ttl = 64);

// The reply a destination host generates for an echo request. Per RFC 792 /
// RFC 791 the reply copies the request's IP options (with the RR slots
// continuing to accumulate on the return path).
Packet make_echo_reply(const Packet& request, Ipv4Addr replier);

// The ICMP time-exceeded error a router at `router_addr` generates when the
// TTL of `request` expires.
Packet make_time_exceeded(const Packet& request, Ipv4Addr router_addr);

}  // namespace revtr::net
