#include "core/request_task.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace revtr::core {

namespace {
using net::Ipv4Addr;
using topology::HostId;

std::uint64_t cache_key(Ipv4Addr addr, HostId source) {
  return util::mix_hash(addr.value(), source, 0xcace);
}
}  // namespace

RequestTask::RequestTask(RevtrEngine& engine, HostId destination,
                         HostId source, util::SimClock& clock, util::Rng& rng,
                         obs::Trace* trace)
    : engine_(engine),
      clock_(clock),
      rng_(rng),
      trace_(trace),
      source_(source) {
  result_.destination = destination;
  result_.source = source;
  result_.span.begin = clock_.now();
  if (trace_ != nullptr) {
    trace_->destination = destination;
    trace_->source = source;
    root_span_ = trace_->start_span("request", clock_.now());
  }
  src_addr_ = engine_.topo_.host(source).addr;
  current_ = engine_.topo_.host(destination).addr;
  result_.hops.push_back(ReverseHop{current_, HopSource::kDestination});
  scratch_.emplace(arena_);
}

const EngineConfig& RequestTask::config() const noexcept {
  return engine_.config_;
}

const EngineMetrics* RequestTask::metrics() const noexcept {
  return engine_.metrics_;
}

ReverseTraceroute RequestTask::take_result() {
  REVTR_CHECK(done());
  return std::move(result_);
}

void RequestTask::open_stage(const char* name) {
  stage_probes_ = 0;
  if (trace_ != nullptr) stage_span_ = trace_->start_span(name, clock_.now());
}

void RequestTask::annotate_stage(const char* key, std::string value) {
  if (trace_ != nullptr) trace_->annotate(stage_span_, key, std::move(value));
}

void RequestTask::close_stage() {
  if (trace_ != nullptr) {
    trace_->end_span(stage_span_, clock_.now(), stage_probes_);
  }
  stage_probes_ = 0;
}

void RequestTask::charge(const sched::ProbeDemand& demand,
                         const sched::ProbeOutcome& outcome) {
  if (demand.offline()) {
    // Background survey packets: Table 4 accounts these separately from the
    // online budget.
    result_.offline_probes += outcome.offline_probes;
    return;
  }
  if (outcome.coalesced) {
    // Answered by another request's in-flight duplicate: no wire probe was
    // issued for this demand, so it costs the request (and its spans)
    // nothing — only the coalesced tally moves.
    ++result_.coalesced_probes;
    return;
  }
  stage_probes_ += outcome.packets;
  switch (demand.type) {
    case probing::ProbeType::kPing:
      ++result_.probes.ping;
      break;
    case probing::ProbeType::kRecordRoute:
      ++result_.probes.rr;
      break;
    case probing::ProbeType::kSpoofedRecordRoute:
      ++result_.probes.spoofed_rr;
      break;
    case probing::ProbeType::kTimestamp:
      ++result_.probes.ts;
      break;
    case probing::ProbeType::kSpoofedTimestamp:
      ++result_.probes.spoofed_ts;
      break;
    case probing::ProbeType::kTraceroute:
      result_.probes.traceroute_packets += outcome.packets;
      ++result_.probes.traceroutes;
      break;
  }
}

std::span<const sched::ProbeDemand> RequestTask::advance() {
  // A supply() handler may already have emitted the next demand set (e.g.
  // rr-direct miss flowing straight into the spoofed technique); in that
  // case the pending set is returned as-is.
  while (stage_ != Stage::kDone && demands_.empty()) {
    switch (stage_) {
      case Stage::kLoopHead:
        step_loop_head();
        break;
      case Stage::kSpoofEmit:
        step_spoof_emit();
        break;
      case Stage::kDbrEmit:
        step_dbr_emit();
        break;
      case Stage::kAfterRr:
        step_after_rr();
        break;
      case Stage::kTsNext:
        step_ts_next();
        break;
      case Stage::kTsSpoofEmit:
        step_ts_spoof_emit();
        break;
      case Stage::kSymmetryEmit:
        step_symmetry_emit();
        break;
      case Stage::kRrDirectWait:
      case Stage::kDiscoveryWait:
      case Stage::kSpoofBatchWait:
      case Stage::kDbrVerifyWait:
      case Stage::kTsDirectWait:
      case Stage::kTsSpoofWait:
      case Stage::kSymmetryWait:
      case Stage::kDone:
        REVTR_CHECK(false);  // advance() while awaiting outcomes.
    }
  }
  return demands_;
}

void RequestTask::supply(std::span<const sched::ProbeOutcome> outcomes) {
  REVTR_CHECK(outcomes.size() == demands_.size());
  // Handlers may emit the next demand set into demands_, so the consumed
  // one moves aside first (charge() still needs it for cost attribution).
  consumed_ = std::move(demands_);
  demands_.clear();
  switch (stage_) {
    case Stage::kRrDirectWait:
      on_rr_direct(outcomes);
      break;
    case Stage::kDiscoveryWait:
      on_discovery(outcomes);
      break;
    case Stage::kSpoofBatchWait:
      on_spoof_batch(outcomes);
      break;
    case Stage::kDbrVerifyWait:
      on_dbr_verify(outcomes);
      break;
    case Stage::kTsDirectWait:
      on_ts_direct(outcomes);
      break;
    case Stage::kTsSpoofWait:
      on_ts_spoofed(outcomes);
      break;
    case Stage::kSymmetryWait:
      on_symmetry(outcomes);
      break;
    case Stage::kLoopHead:
    case Stage::kSpoofEmit:
    case Stage::kDbrEmit:
    case Stage::kAfterRr:
    case Stage::kTsNext:
    case Stage::kTsSpoofEmit:
    case Stage::kSymmetryEmit:
    case Stage::kDone:
      REVTR_CHECK(false);  // supply() without an outstanding demand set.
  }
}

// --- Main loop head: termination, atlas, RR entry ---------------------------

void RequestTask::step_loop_head() {
  // All scratch from the previous technique round is dead here: destroy the
  // containers, recycle their memory in O(1), start the round empty.
  scratch_.reset();
  arena_.reset();
  scratch_.emplace(arena_);
  if (result_.hops.size() >= config().max_reverse_hops) {
    finish();  // Undecided loop exit: status stays kUnreachable.
    return;
  }
  if (current_ == src_addr_) {
    result_.status = RevtrStatus::kComplete;
    finish();
    return;
  }
  if (try_atlas()) {
    result_.status = RevtrStatus::kComplete;
    finish();
    return;
  }
  begin_record_route();
}

bool RequestTask::try_atlas() {
  auto hit =
      engine_.atlas_.intersect(source_, current_, config().use_rr_atlas);
  if (!hit && engine_.aliases_ != nullptr) {
    hit = engine_.atlas_.intersect_with_aliases(source_, current_,
                                                *engine_.aliases_);
  }
  if (!hit) {
    if (metrics() != nullptr) metrics()->atlas_miss->add();
    return false;
  }
  if (metrics() != nullptr) metrics()->atlas_hit->add();
  open_stage("atlas-intersection");
  const auto age = engine_.atlas_.touch(source_, *hit, clock_.now());
  result_.intersected_age_us = age;
  result_.used_stale_traceroute = age > config().cache_ttl;
  annotate_stage("age_us", std::to_string(age));
  if (result_.used_stale_traceroute) annotate_stage("stale", "1");
  const auto suffix = engine_.atlas_.suffix_after(source_, *hit);
  for (const Ipv4Addr addr : suffix) {
    if (already_in_path(addr)) continue;
    result_.hops.push_back(ReverseHop{addr, HopSource::kAtlasIntersection});
    if (addr.is_private()) result_.has_private_hops = true;
  }
  close_stage();
  return true;
}

// --- Record Route -----------------------------------------------------------

void RequestTask::begin_record_route() {
  rr_key_ = cache_key(current_, source_);
  if (config().use_cache) {
    if (const auto entry = engine_.caches_->rr.lookup(rr_key_);
        entry && entry->expires_at > clock_.now()) {
      if (metrics() != nullptr) metrics()->rr_cache_replay->add();
      open_stage("rr-cache-replay");
      annotate_stage("hops", std::to_string(entry->reverse_hops.size()));
      const bool progressed =
          append_reverse_hops(entry->reverse_hops, entry->source);
      close_stage();
      stage_ = progressed ? Stage::kLoopHead : Stage::kAfterRr;
      return;
    }
  }

  // Direct RR ping from the source (Fig 1b).
  open_stage("rr-direct");
  sched::ProbeDemand demand;
  demand.type = probing::ProbeType::kRecordRoute;
  demand.from = source_;
  demand.target = current_;
  demands_.push_back(std::move(demand));
  stage_ = Stage::kRrDirectWait;
}

void RequestTask::remember_rr(std::span<const Ipv4Addr> revealed,
                              HopSource how) {
  if (config().use_cache) {
    engine_.caches_->rr.insert_or_assign(
        rr_key_,
        RrCacheEntry{std::vector<Ipv4Addr>(revealed.begin(), revealed.end()),
                     how, clock_.now() + config().cache_ttl});
  }
}

void RequestTask::on_rr_direct(std::span<const sched::ProbeOutcome> outcomes) {
  const auto& probe = outcomes[0];
  charge(consumed_[0], probe);
  clock_.advance(probe.duration_us);
  if (probe.responded) {
    const auto revealed =
        RevtrEngine::extract_reverse_hops(probe.slots, current_);
    if (!revealed.empty() &&
        append_reverse_hops(revealed, HopSource::kRecordRoute)) {
      remember_rr(revealed, HopSource::kRecordRoute);
      annotate_stage("hit", "1");
      if (metrics() != nullptr) metrics()->rr_direct_hit->add();
      close_stage();
      stage_ = Stage::kLoopHead;
      return;
    }
  }
  close_stage();
  begin_spoofed();
}

void RequestTask::begin_spoofed() {
  const auto prefix = engine_.topo_.prefix_of(current_);
  if (!prefix) {
    if (metrics() != nullptr) metrics()->rr_miss->add();
    stage_ = Stage::kAfterRr;
    return;
  }
  prefix_ = *prefix;
  if (const auto plan = engine_.ingress_.plan_for(*prefix); plan != nullptr) {
    setup_attempts(*plan);
    return;
  }
  // Offline background measurement run on demand: neither its time nor its
  // packets are charged to this request's online budget (Table 4 counts
  // surveys separately); the outcome reports them in offline_probes.
  if (metrics() != nullptr) metrics()->rr_ingress_discovery->add();
  open_stage("ingress-discovery");
  sched::ProbeDemand demand;
  demand.offline_work = [this] {
    const auto before = engine_.prober_.offline_counters();
    const probing::Prober::OfflineScope offline(engine_.prober_);
    engine_.ingress_.discover(*prefix_, engine_.topo_.vantage_points(), rng_);
    return engine_.prober_.offline_counters() - before;
  };
  demands_.push_back(std::move(demand));
  stage_ = Stage::kDiscoveryWait;
}

void RequestTask::on_discovery(std::span<const sched::ProbeOutcome> outcomes) {
  charge(consumed_[0], outcomes[0]);
  annotate_stage("offline_probes",
                 std::to_string(outcomes[0].offline_probes.total()));
  close_stage();
  const auto plan = engine_.ingress_.plan_for(*prefix_);
  REVTR_CHECK(plan != nullptr);
  setup_attempts(*plan);
}

void RequestTask::setup_attempts(const vpselect::PrefixPlan& plan) {
  auto& attempts = scratch_->attempts;
  attempts.clear();
  if (config().use_ingress_selection) {
    const auto planned =
        vpselect::attempt_plan(plan, config().max_per_ingress);
    attempts.assign(planned.begin(), planned.end());
  } else {
    // revtr 1.0: try every vantage point in per-prefix set-cover order.
    const auto order = vpselect::revtr1_vp_order(plan);
    attempts.reserve(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      attempts.push_back(vpselect::Attempt{order[i], Ipv4Addr{}, i});
    }
  }
  rank_failures_.clear();
  next_attempt_ = 0;
  stage_ = Stage::kSpoofEmit;
}

void RequestTask::step_spoof_emit() {
  const auto& attempts = scratch_->attempts;
  auto& batch_attempts = scratch_->batch_attempts;
  if (next_attempt_ >= attempts.size()) {
    if (metrics() != nullptr) metrics()->rr_miss->add();
    stage_ = Stage::kAfterRr;
    return;
  }
  open_stage("rr-spoof-batch");
  batch_attempts.clear();
  while (next_attempt_ < attempts.size() &&
         batch_attempts.size() < config().batch_size) {
    const auto& attempt = attempts[next_attempt_++];
    if (rank_failures_[attempt.ingress_rank] >= 5) continue;  // §4.3.
    batch_attempts.push_back(attempt);
    sched::ProbeDemand demand;
    demand.type = probing::ProbeType::kSpoofedRecordRoute;
    demand.from = attempt.vp;
    demand.target = current_;
    demand.spoof_as = src_addr_;
    demand.batch_ingress = attempt.expected_ingress;
    demands_.push_back(std::move(demand));
  }
  if (batch_attempts.empty()) {
    // Every remaining attempt was over its failure budget: a zero-sent
    // batch, after which the attempt list is exhausted.
    close_stage();
    return;  // Back into kSpoofEmit, which now reports rr-miss.
  }
  stage_ = Stage::kSpoofBatchWait;
}

void RequestTask::on_spoof_batch(
    std::span<const sched::ProbeOutcome> outcomes) {
  auto& revealed = scratch_->revealed;
  revealed.clear();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& attempt = scratch_->batch_attempts[i];
    const auto& probe = outcomes[i];
    charge(consumed_[i], probe);
    if (!probe.responded) {
      ++rank_failures_[attempt.ingress_rank];
      continue;
    }
    if (!attempt.expected_ingress.is_unspecified() &&
        std::find(probe.slots.begin(), probe.slots.end(),
                  attempt.expected_ingress) == probe.slots.end()) {
      // Route did not transit the expected ingress; the next-closest VP for
      // this ingress will be tried in a later batch.
      ++rank_failures_[attempt.ingress_rank];
    }
    const auto hops = RevtrEngine::extract_reverse_hops(probe.slots, current_);
    if (hops.size() > revealed.size()) {
      revealed.assign(hops.begin(), hops.end());
    }
  }
  // Spoofed replies land at the source; the controller always waits out the
  // batch timeout for stragglers (§5.2.4).
  clock_.advance(config().spoof_batch_timeout);
  ++result_.spoofed_batches;
  annotate_stage("sent", std::to_string(scratch_->batch_attempts.size()));
  close_stage();
  if (revealed.empty()) {
    stage_ = Stage::kSpoofEmit;
    return;
  }
  if (config().verify_destination_based_routing && revealed.size() >= 2 &&
      !revealed[0].is_private()) {
    stage_ = Stage::kDbrEmit;
    return;
  }
  finish_spoof_round();
}

void RequestTask::step_dbr_emit() {
  // Appx E redundancy: confirm the first revealed hop's next hop from an
  // independent vantage point.
  open_stage("rr-dbr-verify");
  const auto vps = engine_.topo_.vantage_points();
  sched::ProbeDemand demand;
  demand.type = probing::ProbeType::kSpoofedRecordRoute;
  demand.from = vps[rng_.below(vps.size())];
  demand.target = scratch_->revealed[0];
  demand.spoof_as = src_addr_;
  demands_.push_back(std::move(demand));
  stage_ = Stage::kDbrVerifyWait;
}

void RequestTask::on_dbr_verify(std::span<const sched::ProbeOutcome> outcomes) {
  const auto& check = outcomes[0];
  charge(consumed_[0], check);
  clock_.advance(check.duration_us);
  if (check.responded) {
    const auto recheck =
        RevtrEngine::extract_reverse_hops(check.slots, scratch_->revealed[0]);
    if (!recheck.empty() && recheck.front() != scratch_->revealed[1]) {
      result_.dbr_suspect = true;
      annotate_stage("suspect", "1");
    }
  }
  close_stage();
  finish_spoof_round();
}

void RequestTask::finish_spoof_round() {
  const auto& revealed = scratch_->revealed;
  if (append_reverse_hops(revealed, HopSource::kSpoofedRecordRoute)) {
    remember_rr(revealed, HopSource::kSpoofedRecordRoute);
    if (metrics() != nullptr) metrics()->rr_spoofed_hit->add();
    stage_ = Stage::kLoopHead;
    return;
  }
  stage_ = Stage::kSpoofEmit;
}

// --- Timestamp technique ----------------------------------------------------

void RequestTask::step_after_rr() {
  if (config().use_timestamp) {
    if (!engine_.adjacencies_) {
      // No adjacency source: the technique silently yields (no span, no
      // metric — same as the blocking engine's early return).
      stage_ = Stage::kSymmetryEmit;
      return;
    }
    open_stage("timestamp");
    const auto adjacent = engine_.adjacencies_(current_);
    scratch_->ts_candidates.assign(adjacent.begin(), adjacent.end());
    ts_index_ = 0;
    ts_tried_ = 0;
    stage_ = Stage::kTsNext;
    return;
  }
  // RR made no progress and the TS technique is compiled out of the preset
  // (Insight 1.9): record the decision, it costs nothing.
  if (metrics() != nullptr) metrics()->ts_skipped->add();
  if (trace_ != nullptr) trace_->event("ts-skipped", clock_.now());
  stage_ = Stage::kSymmetryEmit;
}

void RequestTask::step_ts_next() {
  const auto& ts_candidates = scratch_->ts_candidates;
  while (ts_index_ < ts_candidates.size()) {
    const Ipv4Addr adjacent = ts_candidates[ts_index_++];
    if (ts_tried_++ >= config().max_ts_adjacencies) break;
    if (adjacent.is_private() || already_in_path(adjacent)) continue;
    ts_adjacent_ = adjacent;
    sched::ProbeDemand demand;
    demand.type = probing::ProbeType::kTimestamp;
    demand.from = source_;
    demand.target = current_;
    demand.prespec = {current_, adjacent};
    demands_.push_back(std::move(demand));
    stage_ = Stage::kTsDirectWait;
    return;
  }
  if (metrics() != nullptr) metrics()->ts_miss->add();
  close_stage();
  stage_ = Stage::kSymmetryEmit;
}

void RequestTask::on_ts_direct(std::span<const sched::ProbeOutcome> outcomes) {
  const auto& probe = outcomes[0];
  charge(consumed_[0], probe);
  clock_.advance(probe.duration_us);
  if (!probe.responded && !engine_.topo_.vantage_points().empty()) {
    // Direct TS filtered: retry once spoofed from a vantage point, as the
    // 2010 system did (Table 4's "Spoof TS" column).
    stage_ = Stage::kTsSpoofEmit;
    return;
  }
  evaluate_ts(probe);
}

void RequestTask::step_ts_spoof_emit() {
  const auto vps = engine_.topo_.vantage_points();
  sched::ProbeDemand demand;
  demand.type = probing::ProbeType::kSpoofedTimestamp;
  demand.from = vps[rng_.below(vps.size())];
  demand.target = current_;
  demand.prespec = {current_, ts_adjacent_};
  demand.spoof_as = src_addr_;
  demands_.push_back(std::move(demand));
  stage_ = Stage::kTsSpoofWait;
}

void RequestTask::on_ts_spoofed(std::span<const sched::ProbeOutcome> outcomes) {
  charge(consumed_[0], outcomes[0]);
  clock_.advance(config().spoof_batch_timeout / 2);
  evaluate_ts(outcomes[0]);
}

void RequestTask::evaluate_ts(const sched::ProbeOutcome& probe) {
  if (probe.responded && probe.stamped.size() == 2 && probe.stamped[0] &&
      probe.stamped[1]) {
    result_.hops.push_back(ReverseHop{ts_adjacent_, HopSource::kTimestamp});
    current_ = ts_adjacent_;
    annotate_stage("hit", "1");
    if (metrics() != nullptr) metrics()->ts_hit->add();
    close_stage();
    stage_ = Stage::kLoopHead;
    return;
  }
  stage_ = Stage::kTsNext;
}

// --- Symmetry assumption ----------------------------------------------------

void RequestTask::step_symmetry_emit() {
  open_stage("symmetry");
  const std::uint64_t key = cache_key(current_, source_);
  const auto cached =
      config().use_cache ? engine_.caches_->tr.lookup(key) : std::nullopt;
  if (cached && cached->expires_at > clock_.now()) {
    annotate_stage("cached", "1");
    if (metrics() != nullptr) metrics()->symmetry_cached->add();
    apply_symmetry(cached->penultimate, cached->reached);
    return;
  }
  sched::ProbeDemand demand;
  demand.type = probing::ProbeType::kTraceroute;
  demand.from = source_;
  demand.target = current_;
  demands_.push_back(std::move(demand));
  stage_ = Stage::kSymmetryWait;
}

void RequestTask::on_symmetry(std::span<const sched::ProbeOutcome> outcomes) {
  const auto& probe = outcomes[0];
  charge(consumed_[0], probe);
  const auto& tr = probe.traceroute;
  clock_.advance(tr.duration_us);
  bool reached = tr.reached;
  std::optional<Ipv4Addr> penultimate;
  if (!tr.reached && config().assume_from_unreachable_traceroute) {
    // 2010 behaviour: treat the last responsive hop as the next reverse hop
    // even though the traceroute fell short of the current hop.
    for (std::size_t i = tr.hops.size(); i-- > 0;) {
      if (tr.hops[i].addr) {
        penultimate = tr.hops[i].addr;
        reached = true;
        break;
      }
    }
  }
  if (tr.reached && tr.hops.size() >= 2) {
    // Last responsive hop before the destination.
    for (std::size_t i = tr.hops.size() - 1; i-- > 0;) {
      if (tr.hops[i].addr) {
        penultimate = tr.hops[i].addr;
        break;
      }
    }
  } else if (tr.reached && tr.hops.size() == 1) {
    // The current hop is directly adjacent to the source: the reverse path
    // is done once we step onto the source itself.
    penultimate = src_addr_;
  }
  if (config().use_cache) {
    engine_.caches_->tr.insert_or_assign(
        cache_key(current_, source_),
        TrCacheEntry{penultimate, reached, clock_.now() + config().cache_ttl});
  }
  apply_symmetry(penultimate, reached);
}

void RequestTask::apply_symmetry(std::optional<Ipv4Addr> penultimate,
                                 bool reached) {
  const auto report = [this](const char* outcome, obs::Counter* counter) {
    annotate_stage("outcome", outcome);
    if (metrics() != nullptr) counter->add();
  };
  if (!reached || !penultimate || already_in_path(*penultimate)) {
    report("stuck",
           metrics() != nullptr ? metrics()->symmetry_stuck : nullptr);
    close_stage();
    result_.status = RevtrStatus::kUnreachable;
    finish();
    return;
  }
  const auto as_p = engine_.ip2as_.lookup(*penultimate);
  const auto as_c = engine_.ip2as_.lookup(current_);
  const bool intradomain = as_p && as_c && *as_p == *as_c;
  if (!intradomain && !config().allow_interdomain_symmetry) {
    // Q5: interdomain symmetry is right only ~57% of the time — abort
    // rather than return an untrustworthy path (Insight 1.10).
    report("aborted",
           metrics() != nullptr ? metrics()->symmetry_aborted : nullptr);
    close_stage();
    result_.status = RevtrStatus::kAbortedInterdomainSymmetry;
    finish();
    return;
  }
  if (!intradomain) result_.used_interdomain_symmetry = true;
  ++result_.symmetry_assumptions;
  result_.hops.push_back(
      ReverseHop{*penultimate, HopSource::kAssumedSymmetric});
  current_ = *penultimate;
  annotate_stage("intradomain", intradomain ? "1" : "0");
  report("extended",
         metrics() != nullptr ? metrics()->symmetry_extended : nullptr);
  close_stage();
  stage_ = Stage::kLoopHead;
}

// --- Shared helpers ---------------------------------------------------------

bool RequestTask::already_in_path(Ipv4Addr addr) const {
  // Scan the SoA address column directly: a contiguous run of 4-byte
  // addresses, so the common miss case stays in one cache line per 16 hops.
  const auto addrs = result_.hops.addrs();
  const auto sources = result_.hops.sources();
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (addrs[i] == addr && sources[i] != HopSource::kSuspiciousGap) {
      return true;
    }
  }
  return false;
}

bool RequestTask::append_reverse_hops(std::span<const Ipv4Addr> revealed,
                                      HopSource source) {
  bool progressed = false;
  for (const Ipv4Addr addr : revealed) {
    if (addr.is_unspecified() || already_in_path(addr)) continue;
    result_.hops.push_back(ReverseHop{addr, source});
    if (addr.is_private()) {
      result_.has_private_hops = true;
      continue;  // Cannot continue the measurement from private space.
    }
    current_ = addr;
    progressed = true;
    if (addr == src_addr_) break;  // Reached the source.
  }
  return progressed;
}

void RequestTask::finalize_flags() {
  if (!config().flag_suspicious_links || !result_.complete()) return;
  const auto addrs = result_.ip_hops();
  const auto as_path = engine_.ip2as_.as_path(addrs);
  const auto suspicious =
      engine_.relationships_.suspicious_links_in(as_path);
  if (suspicious.empty()) return;
  result_.has_suspicious_gap = true;
  // Insert a "*" at the IP-level boundary of each suspicious AS pair.
  for (const std::size_t link : suspicious) {
    const topology::Asn from_as = as_path[link];
    const topology::Asn to_as = as_path[link + 1];
    for (std::size_t h = 0; h + 1 < result_.hops.size(); ++h) {
      if (result_.hops[h].source == HopSource::kSuspiciousGap ||
          result_.hops[h + 1].source == HopSource::kSuspiciousGap) {
        continue;
      }
      const auto a = engine_.ip2as_.lookup(result_.hops[h].addr);
      const auto b = engine_.ip2as_.lookup(result_.hops[h + 1].addr);
      if (a && b && *a == from_as && *b == to_as) {
        result_.hops.insert(h + 1,
                            ReverseHop{Ipv4Addr{}, HopSource::kSuspiciousGap});
        break;
      }
    }
  }
}

void RequestTask::finish() {
  result_.span.end = clock_.now();
  finalize_flags();
  if (trace_ != nullptr) {
    trace_->annotate(root_span_, "status", to_string(result_.status));
    // The root carries no cost of its own; stage spans own every probe
    // (I6: sum over spans == result.probes.total()).
    trace_->end_span(root_span_, clock_.now(), 0);
  }
  if (metrics() != nullptr) {
    switch (result_.status) {
      case RevtrStatus::kComplete:
        metrics()->requests_complete->add();
        break;
      case RevtrStatus::kAbortedInterdomainSymmetry:
        metrics()->requests_aborted->add();
        break;
      case RevtrStatus::kUnreachable:
        metrics()->requests_unreachable->add();
        break;
    }
    if (result_.dbr_suspect) metrics()->dbr_suspects->add();
    metrics()->latency_us->record(
        static_cast<std::uint64_t>(result_.span.duration()));
    metrics()->request_probes->record(result_.probes.total());
    metrics()->request_hops->record(result_.hops.size());
    metrics()->spoofed_batches->record(result_.spoofed_batches);
  }
  stage_ = Stage::kDone;
}

std::unique_ptr<RequestTask> RevtrEngine::start_request(HostId destination,
                                                        HostId source,
                                                        util::SimClock& clock,
                                                        util::Rng& rng,
                                                        obs::Trace* trace) {
  return std::make_unique<RequestTask>(*this, destination, source, clock, rng,
                                       trace);
}

}  // namespace revtr::core
