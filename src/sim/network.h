// Packet-level network simulator.
//
// Executes one probe at a time against the generated topology: the packet
// starts at the sending host's access router, follows ForwardingPlane
// decisions hop by hop, accumulates link delays, honours TTL, and exercises
// the full RFC 791 option semantics — Record Route stamping according to
// each router's policy, Timestamp-prespec ordering, destination stamping
// behaviours, option filtering, and source-address spoofing (replies go to
// whatever the IP source says, which is the heart of Insight 1.3).
//
// The simulator is synchronous: send() returns the reply (if any) plus the
// simulated round-trip time. The probing layer turns this into the
// measurement primitives, and the SimClock accounting for timeouts/batching
// lives in the core engine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"
#include "routing/forwarding.h"
#include "topology/topology.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace revtr::sim {

struct SendResult {
  std::optional<net::Packet> reply;
  util::SimClock::Micros rtt_us = 0;  // Meaningful when reply is set.

  // Router-level ground truth of the two directions; used by tests and by
  // evaluation code that needs truth the real paper could not observe.
  std::vector<topology::RouterId> request_path;
  std::vector<topology::RouterId> reply_path;

  bool answered() const noexcept { return reply.has_value(); }
};

// One probe of a batch handed to Network::send_batch.
struct BatchProbe {
  net::Packet packet;
  topology::HostId sender = topology::kInvalidId;
};

class Network {
 public:
  static constexpr util::SimClock::Micros kAccessDelayUs = 200;
  static constexpr int kHopLimit = 80;

  Network(const topology::Topology& topo,
          const routing::ForwardingPlane& plane, std::uint64_t seed = 1);

  // Injects `packet` from `sender`. The IP source may be spoofed; the reply
  // (if any) is routed to the IP source, so the caller must decide which
  // host would observe it. Returns the reply only when packet.src resolves
  // to a host (otherwise the reply vanishes into the simulated Internet).
  SendResult send(const net::Packet& packet, topology::HostId sender);

  // Steps a whole probe batch (the engine's 3-probe spoofed-RR batches)
  // through the topology in one call. Semantically identical to calling
  // send() per probe in order — the loss-rng draws happen in batch order,
  // so outcomes are byte-identical either way — but all passes share the
  // simulator's path/option scratch and `results` reuses its element
  // capacity across batches, so the steady state forwards packets without
  // allocating. `results` is resized to probes.size().
  void send_batch(std::span<const BatchProbe> probes,
                  std::vector<SendResult>& results);

  // True when `sender`'s network permits it to emit packets whose source
  // address it does not own.
  bool can_spoof(topology::HostId sender) const;

  // Router-level path a packet sourced at `from` would take toward `to`,
  // without side effects (no counters, no loss, no option processing).
  // `salt` seeds per-packet load balancing so callers can enumerate the
  // ECMP-feasible path set; `has_options` matches the forwarding plane's
  // slow-path treatment of optioned packets. `from`/`to` may be host or
  // router-interface addresses; returns empty when `from` resolves to
  // neither. This is the oracle's ground truth — the truth the real paper
  // could not observe (§2).
  std::vector<topology::RouterId> ground_truth_path(
      net::Ipv4Addr from, net::Ipv4Addr to, std::uint64_t salt = 0,
      bool has_options = false) const;

  // Random per-probe loss: with probability `rate` the probe (or its
  // reply) vanishes. Measurement systems must tolerate this; the
  // loss-robustness bench sweeps it.
  void set_loss_rate(double rate) noexcept { loss_rate_ = rate; }
  double loss_rate() const noexcept { return loss_rate_; }

  // Restarts the loss stream and the per-packet balancing salt from `seed`.
  // Two Networks over the same topology with the same seed then route every
  // packet identically — the parallel campaign driver builds one per worker
  // this way so worker count cannot change measurement outcomes.
  void reseed(std::uint64_t seed) noexcept {
    rng_.reseed(seed);
    salt_seed_ = seed;
  }

  std::uint64_t packets_forwarded() const noexcept {
    return packets_forwarded_;
  }
  std::uint64_t probes_injected() const noexcept { return probes_injected_; }

  const topology::Topology& topo() const noexcept { return topo_; }

 private:
  // One forwarding pass: from `origin` router until delivery/drop. Returns
  // the packet as delivered (options updated) or nullopt when dropped.
  struct PassResult {
    std::optional<net::Packet> delivered;
    // Set when the pass ended at a host / router that should now respond.
    topology::HostId host = topology::kInvalidId;
    topology::RouterId router = topology::kInvalidId;
    // Set when TTL expired and the expiring router answers.
    std::optional<net::Packet> icmp_error;
    topology::RouterId error_router = topology::kInvalidId;
    util::SimClock::Micros elapsed_us = 0;
    std::vector<topology::RouterId> path;

    // Back to the freshly-constructed state, keeping path's capacity so a
    // reused PassResult walks the topology without allocating.
    void reset() noexcept {
      delivered.reset();
      host = topology::kInvalidId;
      router = topology::kInvalidId;
      icmp_error.reset();
      error_router = topology::kInvalidId;
      elapsed_us = 0;
      path.clear();
    }
  };

  // send() with the caller owning the result storage: `out`'s vectors are
  // cleared, not reallocated, so repeated sends into the same SendResult
  // reuse their capacity (the per-probe win send_batch builds on).
  void send_into(const net::Packet& packet, topology::HostId sender,
                 SendResult& out);

  // `origin_emits` marks a pass whose first router is the packet's own
  // originator (a router answering a probe): it forwards without stamping,
  // since RFC 791 stamping happens when *forwarding* a received packet.
  // Writes into `result` (reset first), reusing its path capacity.
  void forward_pass(net::Packet packet, topology::RouterId origin,
                    net::Ipv4Addr arrival_addr, bool origin_emits,
                    PassResult& result);

  void stamp_rr(net::Packet& packet, const topology::Router& router,
                net::Ipv4Addr arrival_addr, net::Ipv4Addr egress_addr) const;
  void stamp_ts(net::Packet& packet, const topology::Router& router,
                util::SimClock::Micros elapsed) const;

  // Builds the response a destination host generates, or nullopt when the
  // host does not answer this kind of probe.
  std::optional<net::Packet> host_response(const net::Packet& request,
                                           const topology::Host& host) const;
  std::optional<net::Packet> router_response(
      const net::Packet& request, const topology::Router& router) const;

  const topology::Topology& topo_;
  const routing::ForwardingPlane& plane_;
  util::Rng rng_;
  std::uint64_t salt_seed_;
  double loss_rate_ = 0.0;
  std::uint64_t packets_forwarded_ = 0;
  std::uint64_t probes_injected_ = 0;
  // Shared forwarding scratch: request and reply passes of every send()
  // run through here, keeping the hop-path vector's capacity warm. The
  // Network is per-worker (see reseed()), so no synchronization is needed.
  PassResult pass_scratch_;
};

}  // namespace revtr::sim
