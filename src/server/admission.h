// Admission control for the measurement daemon: per-tenant token buckets,
// bounded queues, scheduler backpressure, and deadline-aware load shedding.
//
// The controller generalizes the engine's NDT shed path (give up on a
// request whose deadline cannot be met) from one measurement to the whole
// submission pipeline: a request that would sit in queue past its deadline
// is refused at the door (kDeadlineUnmeetable) instead of wasting probe
// budget on an answer nobody will read — the rationing argument of Donnet
// et al. applied at the service boundary.
//
// The controller holds no lock of its own; ServerDaemon owns one instance
// and calls it under the daemon mutex. Quota checks (daily request/probe
// budgets) stay in RevtrService — admission decides whether the *system*
// can take the request, the service decides whether the *tenant* may.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "server/frame.h"

namespace revtr::server {

struct TokenBucketOptions {
  double rate_per_sec = 2000.0;  // Sustained submits per second.
  double burst = 256.0;          // Bucket depth.
};

// Standard token bucket on a microsecond clock. Not thread-safe; callers
// synchronize externally (the daemon serializes all admission decisions).
class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketOptions options)
      : options_(options), tokens_(options.burst) {}

  // Consumes one token if available, refilling for elapsed time first.
  bool try_take(std::int64_t now_us);

  double tokens() const { return tokens_; }

 private:
  TokenBucketOptions options_;
  double tokens_;
  std::int64_t last_refill_us_ = 0;
};

struct AdmissionConfig {
  // Bounded submission queue (all priorities combined). Beyond this the
  // daemon refuses rather than buffering unboundedly.
  std::size_t queue_capacity = 1024;
  // Refuse new work while the ProbeScheduler holds more unfinished demand
  // sets than this — the queue bound alone cannot see demand the workers
  // have already handed to the scheduler.
  std::size_t sched_backlog_limit = 4096;
  // EWMA smoothing for the observed per-request wall latency that feeds the
  // deadline-unmeetable estimate.
  double latency_ewma_alpha = 0.2;
  std::size_t workers = 2;
};

// Instantaneous load the daemon samples before each decision.
struct AdmissionLoad {
  std::size_t queued = 0;         // Requests waiting in the daemon queue.
  std::size_t inflight = 0;       // Requests being measured right now.
  std::size_t sched_backlog = 0;  // ProbeScheduler::backlog().
  bool draining = false;
};

// Weighted fair queue over (priority level, tenant): strict priority across
// levels, start-time fair queuing across the tenants within one level. Each
// pushed item gets a finish tag `max(level virtual time, flow's last tag) +
// 1/weight`; pop takes the minimum head tag in the highest non-empty level
// (ties break toward the smaller flow id, keeping pops deterministic). A
// flooding tenant therefore interleaves ~weight-proportionally with everyone
// else at its level instead of starving them (tests/server_test.cpp pins
// this). Not thread-safe; the daemon holds its mutex around every call.
template <typename T>
class FairQueue {
 public:
  // Weight for a flow (tenant) id; clamped to a small positive floor so a
  // zero/negative weight cannot park a flow forever. Flows never registered
  // get weight 1.
  void set_weight(std::uint32_t flow, double weight) {
    if (weights_.size() <= flow) weights_.resize(flow + 1, 1.0);
    weights_[flow] = weight > 1e-6 ? weight : 1e-6;
  }

  void push(std::size_t level, std::uint32_t flow, T item) {
    Level& lvl = levels_[level];
    Flow& f = lvl.flows[flow];
    const double tag =
        (f.last_tag > lvl.vtime ? f.last_tag : lvl.vtime) + 1.0 / weight(flow);
    f.last_tag = tag;
    f.items.emplace_back(tag, std::move(item));
    ++lvl.size;
    ++size_;
  }

  // Pops the next item, or nullopt when empty.
  std::optional<T> pop() {
    for (Level& lvl : levels_) {
      if (lvl.size == 0) continue;
      auto best = lvl.flows.end();
      for (auto it = lvl.flows.begin(); it != lvl.flows.end(); ++it) {
        if (it->second.items.empty()) continue;
        if (best == lvl.flows.end() ||
            it->second.items.front().first < best->second.items.front().first) {
          best = it;
        }
      }
      auto [tag, item] = std::move(best->second.items.front());
      best->second.items.pop_front();
      if (tag > lvl.vtime) lvl.vtime = tag;
      // Idle flows are dropped so tag state cannot grow unboundedly; their
      // next push restarts at the level's virtual time.
      if (best->second.items.empty()) lvl.flows.erase(best);
      --lvl.size;
      --size_;
      return std::move(item);
    }
    return std::nullopt;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Flow {
    std::deque<std::pair<double, T>> items;  // (finish tag, item), FIFO.
    double last_tag = 0.0;
  };
  struct Level {
    std::map<std::uint32_t, Flow> flows;
    double vtime = 0.0;
    std::size_t size = 0;
  };

  double weight(std::uint32_t flow) const {
    return flow < weights_.size() ? weights_[flow] : 1.0;
  }

  std::array<Level, kPriorityLevels> levels_;
  std::vector<double> weights_;
  std::size_t size_ = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  // Registers a tenant's token bucket; tenant ids are dense and small
  // (RevtrService user ids start at 1).
  void add_tenant(std::uint32_t tenant, TokenBucketOptions bucket);

  // Returns the reason to refuse, or nullopt to admit. Checks in order:
  // draining, deadline already expired, tenant rate limit, queue capacity,
  // scheduler backpressure, deadline unmeetable under estimated wait.
  std::optional<RejectReason> decide(std::uint32_t tenant,
                                     std::int64_t deadline_us,
                                     std::int64_t now_us,
                                     const AdmissionLoad& load);

  // Feeds one finished request's wall latency into the wait estimator.
  void observe_latency(std::int64_t wall_us);

  // Estimated queue wait for a newly admitted request, in micros: smoothed
  // per-request latency times queue depth ahead of it, divided across the
  // worker pool. Zero until the first completion is observed.
  std::int64_t estimated_wait_us(const AdmissionLoad& load) const;

  double smoothed_latency_us() const { return ewma_latency_us_; }

 private:
  AdmissionConfig config_;
  std::vector<TokenBucket> buckets_;  // Indexed by tenant id.
  double ewma_latency_us_ = 0.0;
};

}  // namespace revtr::server
