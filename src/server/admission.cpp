#include "server/admission.h"

#include <algorithm>

#include "util/check.h"

namespace revtr::server {

bool TokenBucket::try_take(std::int64_t now_us) {
  if (now_us > last_refill_us_) {
    const double elapsed_sec =
        static_cast<double>(now_us - last_refill_us_) / 1e6;
    tokens_ = std::min(options_.burst,
                       tokens_ + elapsed_sec * options_.rate_per_sec);
    last_refill_us_ = now_us;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void AdmissionController::add_tenant(std::uint32_t tenant,
                                     TokenBucketOptions bucket) {
  if (buckets_.size() <= tenant)
    buckets_.resize(tenant + 1, TokenBucket(TokenBucketOptions{}));
  buckets_[tenant] = TokenBucket(bucket);
}

std::optional<RejectReason> AdmissionController::decide(
    std::uint32_t tenant, std::int64_t deadline_us, std::int64_t now_us,
    const AdmissionLoad& load) {
  if (load.draining) return RejectReason::kDraining;
  if (deadline_us != 0 && deadline_us <= now_us)
    return RejectReason::kDeadlineExpired;
  REVTR_CHECK(tenant < buckets_.size());
  if (!buckets_[tenant].try_take(now_us)) return RejectReason::kRateLimited;
  if (load.queued >= config_.queue_capacity) return RejectReason::kQueueFull;
  if (load.sched_backlog > config_.sched_backlog_limit)
    return RejectReason::kBackpressure;
  if (deadline_us != 0 && now_us + estimated_wait_us(load) > deadline_us)
    return RejectReason::kDeadlineUnmeetable;
  return std::nullopt;
}

void AdmissionController::observe_latency(std::int64_t wall_us) {
  const double sample = static_cast<double>(std::max<std::int64_t>(wall_us, 0));
  if (ewma_latency_us_ == 0.0) {
    ewma_latency_us_ = sample;
    return;
  }
  ewma_latency_us_ += config_.latency_ewma_alpha * (sample - ewma_latency_us_);
}

std::int64_t AdmissionController::estimated_wait_us(
    const AdmissionLoad& load) const {
  if (ewma_latency_us_ == 0.0) return 0;
  const double ahead = static_cast<double>(load.queued + load.inflight);
  const double workers =
      static_cast<double>(std::max<std::size_t>(config_.workers, 1));
  return static_cast<std::int64_t>(ewma_latency_us_ * ahead / workers);
}

}  // namespace revtr::server
