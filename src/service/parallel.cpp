#include "service/parallel.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>

#include "probing/prober.h"
#include "sim/network.h"
#include "util/thread_pool.h"

namespace revtr::service {

namespace {

// One worker's private measurement stack. Members reference earlier members
// (prober holds the network, engine holds the prober), so stacks live behind
// unique_ptr and never move.
struct WorkerStack {
  sim::Network network;
  probing::Prober prober;
  core::RevtrEngine engine;
  util::SimClock clock;
  CampaignStats local;  // This worker's accumulator; merged at the barrier.

  WorkerStack(const CampaignDeps& deps, const core::EngineConfig& config,
              std::uint64_t net_seed,
              std::shared_ptr<core::EngineCaches> caches)
      : network(deps.topo, deps.plane, net_seed),
        prober(network),
        engine(prober, deps.topo, deps.atlas, deps.ingress, deps.ip2as,
               deps.relationships, config, net_seed) {
    engine.set_shared_caches(std::move(caches));
  }
};

}  // namespace

ParallelCampaignDriver::ParallelCampaignDriver(const CampaignDeps& deps,
                                              ParallelCampaignOptions options)
    : deps_(deps), options_(options) {}

void ParallelCampaignDriver::precompute_ingress_plans() {
  util::Rng rng(util::mix_hash(options_.seed, 0x1a9e55ULL));
  for (const auto& prefix : deps_.topo.prefixes()) {
    if (deps_.ingress.plan_for(prefix.id) == nullptr) {
      deps_.ingress.discover(prefix.id, deps_.topo.vantage_points(), rng);
    }
  }
}

ParallelCampaignReport ParallelCampaignDriver::run(
    std::span<const std::pair<topology::HostId, topology::HostId>> pairs) {
  const auto wall_begin = std::chrono::steady_clock::now();

  // Every prefix gets its ingress plan now, on this thread, through the
  // ingress module's own prober. Workers then only ever *read* plans, and a
  // plan pointer held across a spoofed batch cannot be invalidated by a
  // concurrent on-demand survey.
  precompute_ingress_plans();

  const std::size_t workers = std::max<std::size_t>(options_.workers, 1);
  // All workers share one cache and one network seed: identical seeds plus
  // content-addressed probe outcomes mean a request's result is independent
  // of which worker runs it.
  auto caches = std::make_shared<core::EngineCaches>();
  const std::uint64_t net_seed = util::mix_hash(options_.seed, 0x6e7ULL);
  std::vector<std::unique_ptr<WorkerStack>> stacks;
  stacks.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    stacks.push_back(std::make_unique<WorkerStack>(deps_, options_.engine,
                                                   net_seed, caches));
  }

  // Metric handles are registered once, up front, and shared by every
  // worker: the counters shard internally per worker thread, so attaching
  // the same handle set to all stacks is both correct and the cheap path.
  std::optional<probing::ProbeMetrics> probe_metrics;
  std::optional<core::EngineMetrics> engine_metrics;
  if (options_.metrics != nullptr) {
    probe_metrics.emplace(*options_.metrics);
    engine_metrics.emplace(*options_.metrics);
    for (const auto& stack : stacks) {
      stack->prober.set_metrics(&*probe_metrics);
      stack->engine.set_metrics(&*engine_metrics);
    }
  }

  ParallelCampaignReport report;
  report.results.resize(pairs.size());

  {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const topology::HostId destination = pairs[i].first;
      const topology::HostId source = pairs[i].second;
      futures.push_back(pool.submit([this, &stacks, &report, i, destination,
                                     source] {
        const std::size_t w = util::ThreadPool::current_worker();
        REVTR_CHECK(w != util::ThreadPool::kNotAWorker);
        WorkerStack& stack = *stacks[w];
        // Per-request reseed from (campaign seed, request index): any
        // residual RNG use in the engine draws the same stream no matter
        // which worker runs the request or what ran before it.
        stack.engine.reseed(util::mix_hash(options_.seed, i, 0xca3aULL));
        // Sampling by input index keeps the sampled *set* independent of
        // which worker picks the task up; the Trace itself is thread-private
        // until published.
        const bool sampled = options_.trace_sink != nullptr &&
                             options_.trace_sample_every > 0 &&
                             i % options_.trace_sample_every == 0;
        std::optional<obs::Trace> trace;
        if (sampled) {
          trace.emplace();
          trace->request_index = i;
          stack.engine.set_trace(&*trace);
        }
        auto result = stack.engine.measure(destination, source, stack.clock);
        if (sampled) {
          stack.engine.set_trace(nullptr);
          options_.trace_sink->publish(*std::move(trace));
        }
        const double latency = result.span.seconds();
        stack.local.latency_seconds.add(latency);
        stack.local.busy_seconds += latency;
        switch (result.status) {
          case core::RevtrStatus::kComplete:
            ++stack.local.completed;
            break;
          case core::RevtrStatus::kAbortedInterdomainSymmetry:
            ++stack.local.aborted;
            break;
          case core::RevtrStatus::kUnreachable:
            ++stack.local.unreachable;
            break;
        }
        report.results[i] = std::move(result);
        // Latency pacing: hold this worker slot for real time proportional
        // to the simulated request latency, modelling the deployment's
        // latency-bound slots (most of a request is spent waiting out 10 s
        // spoofed-batch timeouts, §5.2.4).
        if (options_.pacing_scale > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              latency * options_.pacing_scale));
        }
      }));
    }
    // The barrier: get() rethrows anything a worker task threw.
    for (auto& future : futures) future.get();
  }

  // Merge per-worker accumulators. Workers are joined; no locks needed.
  CampaignStats& stats = report.stats;
  stats.requested = pairs.size();
  double slowest_worker = 0;
  for (const auto& stack : stacks) {
    const CampaignStats& local = stack->local;
    stats.completed += local.completed;
    stats.aborted += local.aborted;
    stats.unreachable += local.unreachable;
    stats.latency_seconds.add_all(local.latency_seconds.samples());
    stats.busy_seconds += local.busy_seconds;
    stats.probes += stack->prober.counters();  // Overflow-checked merge.
    report.worker_busy_seconds.push_back(local.busy_seconds);
    slowest_worker = std::max(slowest_worker, local.busy_seconds);
  }
  // The campaign is as long (in simulated time) as its busiest worker.
  stats.duration_seconds = slowest_worker;

  // Merge-at-barrier snapshot: workers are joined, so the sharded counters
  // hold every request's contribution and the snapshot is deterministic for
  // a given measurement set.
  if (options_.metrics != nullptr) {
    report.metrics = options_.metrics->snapshot();
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  return report;
}

}  // namespace revtr::service
