// Async probe scheduling with cross-request coalescing (DESIGN.md §10).
//
// The staged engine (core::RequestTask) never touches the Prober. Each stage
// yields a *demand set* — the probes it needs before it can resume — and
// suspends. This layer turns demand sets from many in-flight requests into
// wire probes:
//
//   * Coalescing: two pending demands with identical content (same probe
//     type, vantage point, target, spoof source, prespec list) share one
//     wire probe; the outcome fans out to every waiter. The paper's RR-atlas
//     exists to avoid re-measuring what another request already learned —
//     coalescing applies the same idea at in-flight granularity.
//   * Per-VP windows: at most `vp_window` probes issue from one vantage
//     point per pump round, plus a token bucket refilled every round, so no
//     VP is hammered no matter how many requests want it (§5.2.4's rate
//     concerns). Deferred demands stay queued; refill guarantees progress.
//   * Spoofed-RR batching: spoofed demands that expect the same ingress are
//     issued in the paper's 3-probe batches *across* requests (§4.3), not
//     just within one; batching changes issue order and the batch metric
//     only — each request still charges its own spoof-batch timeout.
//
// Determinism: simulated probe outcomes are content-addressed (stateless
// ECMP salt, endpoint-derived flow ids — DESIGN.md §8), so a demand answered
// by someone else's in-flight duplicate resolves to exactly the outcome the
// waiter would have measured itself. That is what makes staged results
// byte-identical to the blocking path (pinned by tests/concurrency_test.cpp)
// and is re-checked adversarially by invariant I7 over the SchedulerAudit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "obs/metrics.h"
#include "probing/prober.h"
#include "probing/transport.h"
#include "topology/topology.h"
#include "util/annotate.h"
#include "util/flat_map.h"
#include "util/sim_clock.h"

namespace revtr::sched {

// One probe a request stage needs before it can resume. Content-complete:
// everything the wire probe depends on is in here, which is what makes the
// coalescing key sound.
struct ProbeDemand {
  probing::ProbeType type = probing::ProbeType::kRecordRoute;
  topology::HostId from = topology::kInvalidId;
  net::Ipv4Addr target;
  std::optional<net::Ipv4Addr> spoof_as;
  std::vector<net::Ipv4Addr> prespec;  // TS prespecified addresses.
  // Spoofed-RR only: the ingress this attempt expects, used to group
  // same-ingress demands from different requests into one wire batch.
  net::Ipv4Addr batch_ingress;
  // Offline background work (on-demand ingress discovery) runs as a closure
  // so the scheduler stays ignorant of vpselect; never coalesced, windowed,
  // or counted as a wire probe. Returns the offline ProbeCounters delta.
  std::function<probing::ProbeCounters()> offline_work;

  bool offline() const noexcept { return static_cast<bool>(offline_work); }
  // Content hash: demands with equal keys are satisfied by one wire probe.
  std::uint64_t coalesce_key() const;
};

// The resolved outcome of one demand, in the shape the stages consume.
struct ProbeOutcome {
  bool responded = false;
  std::vector<net::Ipv4Addr> slots;    // RR reply slots.
  std::vector<bool> stamped;           // TS stamps observed.
  probing::TracerouteResult traceroute;
  util::SimClock::Micros duration_us = 0;
  // Wire packets this outcome cost (traceroute: one per TTL). Coalesced
  // copies report the issuing probe's packets but are not charged again.
  std::uint64_t packets = 0;
  // True when this demand was answered by another request's in-flight
  // duplicate: no wire probe was issued for it.
  bool coalesced = false;
  probing::ProbeCounters offline_probes;  // Offline demands only.

  // Content digest for the I7 audit: every fan-out copy of one issued probe
  // must digest identically.
  std::uint64_t digest() const;
};

// The wire-complete subset of a demand, in the shape that crosses the
// transport seam (scheduling-only fields — batch_ingress, offline closures —
// stay on the controller).
probing::ProbeSpec spec_of(const ProbeDemand& demand);

// Lifts a transport reply into the outcome shape the stages consume
// (coalesced=false, no offline counters — scheduler-side bookkeeping).
ProbeOutcome outcome_of(const probing::ProbeReply& reply);

// Executes one demand synchronously. The only place outside the simulator
// where probes are issued on behalf of the engine — src/core/ stage code is
// lint-forbidden from calling the Prober directly (revtr_lint
// core-probe-issue), so the blocking executor inside RevtrEngine::measure()
// funnels through here too. The transport overload is the seam; the Prober
// overload wraps it in a LocalProbeTransport (bit-for-bit the old behavior).
ProbeOutcome execute_demand(probing::ProbeTransport& transport,
                            const ProbeDemand& demand);
ProbeOutcome execute_demand(probing::Prober& prober, const ProbeDemand& demand);

struct SchedOptions {
  // Max wire probes issued from one vantage point per pump round.
  std::size_t vp_window = 64;
  // Token bucket per VP: refilled by `vp_tokens_per_round` each round up to
  // `vp_token_burst` whole tokens. Rates below 1 are legal — the scheduler
  // accumulates them in fixed point, so e.g. 0.25 issues one probe every
  // fourth round with no float drift. Non-positive rates clamp to 1 and the
  // burst clamps to >= the refill so every queued demand eventually issues
  // (liveness).
  double vp_tokens_per_round = 256;
  std::uint32_t vp_token_burst = 1024;
  bool coalesce = true;
  std::size_t spoof_batch_size = 3;  // Paper's spoofed-RR batch (§4.3).
};

// Registry handles for the scheduler; resolved once, shared by all pumps.
struct SchedMetrics {
  explicit SchedMetrics(obs::MetricsRegistry& registry);

  obs::Counter* demanded;      // revtr_sched_probes_demanded_total
  obs::Counter* issued;        // revtr_sched_probes_issued_total
  obs::Counter* coalesced;     // revtr_probes_coalesced_total
  obs::Counter* throttled;     // revtr_sched_vp_throttled_total
  obs::Counter* spoof_batches; // revtr_sched_spoof_batches_total
  obs::Gauge* queue_depth;     // revtr_sched_queue_depth
};

// Plain snapshot of the scheduler's lifetime counters, for reports/benches.
struct SchedulerStats {
  std::uint64_t demanded = 0;
  std::uint64_t issued = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t throttled = 0;
  std::uint64_t wire_batches = 0;  // Spoofed-RR batches put on the wire.
  std::uint64_t offline_jobs = 0;
  std::uint64_t rounds = 0;
  std::uint64_t max_queue_depth = 0;
  // Remote dispatch (distributed controller mode, DESIGN.md §15).
  std::uint64_t reassigned = 0;      // Assignments requeued off dead agents.
  std::uint64_t stale_results = 0;   // Results for already-requeued tickets.
  std::uint64_t agents_expired = 0;  // Agents detached for missed heartbeats.
};

// Raw facts for invariant I7 (analysis::check_scheduler): every issued wire
// probe and every coalesced delivery, plus enough identity to match them up
// and to re-check the per-VP window offline.
struct SchedulerAudit {
  struct Issue {
    std::uint64_t issue_id = 0;  // Unique per wire probe.
    std::uint64_t key = 0;       // ProbeDemand::coalesce_key().
    std::uint64_t round = 0;
    topology::HostId vp = topology::kInvalidId;
    bool offline = false;
    std::uint64_t digest = 0;    // ProbeOutcome::digest() as issued.
  };
  struct Delivery {
    std::uint64_t issue_id = 0;  // The wire probe that satisfied the waiter.
    std::uint64_t key = 0;
    std::uint64_t digest = 0;    // Digest of the outcome the waiter received.
  };
  std::vector<Issue> issues;
  std::vector<Delivery> deliveries;
};

// Collects demand sets from resumable requests, issues deduplicated wire
// probes under the per-VP limits, and hands each task its completed outcome
// set in demand order. Thread-safe: campaign workers submit and pump
// concurrently; one mutex guards all state (probing is simulated — the
// critical section is the work, not a bottleneck around it).
class ProbeScheduler {
 public:
  using TaskId = std::uint64_t;

  struct Ready {
    TaskId task = 0;
    std::vector<ProbeOutcome> outcomes;  // Demand order of the submit() set.
  };

  struct PumpResult {
    std::size_t issued = 0;  // Wire probes put on the network this round.
    // Longest single-probe duration issued this round: the simulated time
    // the round takes with all probes conceptually concurrent (the same
    // batches-are-parallel rule the Prober documents).
    util::SimClock::Micros round_duration_us = 0;
  };

  explicit ProbeScheduler(SchedOptions options = {});

  // Handles must outlive the scheduler's use of them; nullptr detaches.
  void set_metrics(const SchedMetrics* metrics) REVTR_EXCLUDES(mu_);
  void set_audit(SchedulerAudit* audit) REVTR_EXCLUDES(mu_);

  // Registers a task's next demand set. `owner` tags which pump loop will
  // resume the task; collect_ready(owner) only returns that owner's tasks.
  // One set per task at a time: submit again only after its Ready arrived.
  void submit(TaskId task, std::size_t owner, std::vector<ProbeDemand> demands);

  // Issues eligible queued demands on `prober` (any worker's — outcomes are
  // content-addressed, so who issues is irrelevant) and fans results out.
  // The transport overload is the seam remote mode shares; the Prober
  // overload wraps a LocalProbeTransport and is bit-for-bit the old path.
  PumpResult pump(probing::Prober& prober);
  PumpResult pump(probing::ProbeTransport& transport);

  // ---- Distributed dispatch (DESIGN.md §15) ----------------------------
  //
  // In remote mode the scheduler is a dispatcher: wire probes leave as
  // ticketed assignments to registered VP agents instead of executing on
  // the pumping worker's prober. A pending demand keeps its place in the
  // coalescing tables while assigned, so cross-request coalescing — and
  // invariant I7 over the audit — hold across process boundaries. Offline
  // jobs never cross the wire; any controller worker steals them via
  // run_offline_jobs().

  using AgentId = std::uint64_t;

  struct Assignment {
    std::uint64_t ticket = 0;  // Unique per dispatch; stale after requeue.
    probing::ProbeSpec spec;
  };

  // Registers an agent with a per-agent in-flight window (clamped >= 1).
  // `now_us` seeds the heartbeat clock so a fresh agent is not instantly
  // expirable. Ids are never reused.
  AgentId attach_agent(std::size_t window, std::int64_t now_us = 0)
      REVTR_EXCLUDES(mu_);

  // Detaches an agent (disconnect or heartbeat timeout): every assignment
  // still in flight on it is requeued at the head of the probe queue for
  // reassignment. Returns the number requeued. Idempotent.
  std::size_t detach_agent(AgentId agent) REVTR_EXCLUDES(mu_);

  void agent_heartbeat(AgentId agent, std::int64_t now_us)
      REVTR_EXCLUDES(mu_);

  // Detaches every agent whose last heartbeat is older than `timeout_us`
  // (their assignments requeue) and returns the detached ids.
  std::vector<AgentId> expire_agents(std::int64_t now_us,
                                     std::int64_t timeout_us)
      REVTR_EXCLUDES(mu_);

  // One dispatch round for `agent`: moves eligible queued wire demands into
  // its in-flight set, honoring the per-VP window/token pacing (each call is
  // a scheduler round, exactly like a pump) and the agent's own window.
  // Offline jobs are skipped. Unknown agents get nothing.
  std::vector<Assignment> next_assignments(AgentId agent)
      REVTR_EXCLUDES(mu_);

  // Delivers an agent's reply for `ticket`. Returns false — and drops the
  // reply — when the ticket is stale (requeued off a detached agent, or
  // already delivered), so a slow agent's late duplicate can never fan out
  // twice or double-charge a request. The audit Issue records the round the
  // assignment was dispatched in, keeping I7's per-round window check exact.
  bool deliver_assignment(AgentId agent, std::uint64_t ticket,
                          const probing::ProbeReply& reply)
      REVTR_EXCLUDES(mu_);

  // Runs up to `max_jobs` queued offline closures on the calling thread
  // (work stealing: atlas-refresh jobs run on whichever controller worker
  // gets here first). Returns the number run.
  std::size_t run_offline_jobs(std::size_t max_jobs = SIZE_MAX)
      REVTR_EXCLUDES(mu_);

  // Assignments currently in flight across all agents.
  std::size_t assigned_in_flight() const REVTR_EXCLUDES(mu_);

  // Tasks of `owner` whose whole demand set resolved since the last call.
  std::vector<Ready> collect_ready(std::size_t owner);

  bool idle() const;  // No queued probes and no undelivered sets.
  // Unfinished demand sets currently inside the scheduler (submitted, not
  // yet collected). The admission controller's backpressure signal: demand
  // the workers have already handed over that the bounded submission queue
  // cannot see.
  std::size_t backlog() const;
  SchedulerStats stats() const;
  const SchedOptions& options() const noexcept { return options_; }

 private:
  struct Waiter {
    std::uint64_t set = 0;     // Index into sets_.
    std::size_t slot = 0;      // Index into the set's outcome vector.
  };
  struct Pending {
    ProbeDemand demand;
    std::uint64_t key = 0;
    std::vector<Waiter> waiters;  // First waiter is the original demander.
  };
  struct DemandSet {
    TaskId task = 0;
    std::size_t owner = 0;
    std::vector<ProbeOutcome> outcomes;
    std::size_t remaining = 0;
  };
  struct VpState {
    std::uint64_t tokens = 0;  // Fixed point, kTokenScale per whole token.
    std::size_t issued_this_round = 0;
    std::uint64_t last_refill_round = 0;
  };

  struct AgentState {
    std::size_t window = 1;       // Max assignments in flight at once.
    std::size_t inflight = 0;     // Currently assigned, result not back.
    std::int64_t last_heartbeat_us = 0;
  };
  struct Assigned {
    std::uint64_t pending_id = 0;
    AgentId agent = 0;
    std::uint64_t round = 0;  // Dispatch round, recorded in the audit Issue.
  };

  // All private helpers run with mu_ held (declared by REVTR_REQUIRES).
  bool issuable_locked(const Pending& pending) REVTR_REQUIRES(mu_);
  void issue_locked(probing::ProbeTransport& transport,
                    std::uint64_t pending_id, PumpResult& result)
      REVTR_REQUIRES(mu_);
  // Issues a whole same-ingress spoofed-RR batch through the transport's
  // batch path. Equivalent to issue_locked per id in order (same issue ids,
  // same outcomes, same deliveries) — the batch only shares simulator
  // scratch.
  void issue_spoof_batch_locked(probing::ProbeTransport& transport,
                                std::span<const std::uint64_t> batch,
                                PumpResult& result) REVTR_REQUIRES(mu_);
  // Detaches the pending entry from the tables (erase + in-flight cleanup).
  Pending detach_pending_locked(std::uint64_t pending_id) REVTR_REQUIRES(mu_);
  // Accounting, audit, and waiter fan-out for one issued wire probe.
  // `issue_round` is the round the probe was issued/assigned in (remote
  // delivery happens rounds later; the audit must record the dispatch round
  // for I7's per-round window check).
  void account_and_deliver_locked(Pending pending, ProbeOutcome outcome,
                                  PumpResult& result, std::uint64_t issue_round)
      REVTR_REQUIRES(mu_);
  void deliver_locked(std::uint64_t set_id, std::size_t slot,
                      ProbeOutcome outcome) REVTR_REQUIRES(mu_);
  // Requeues every assignment in flight on `agent` (detach/expiry path).
  std::size_t requeue_agent_locked(AgentId agent) REVTR_REQUIRES(mu_);

  // Liveness clamps applied once, so options_ can be const (a zero window
  // or zero refill would park queued demands forever).
  static SchedOptions clamp_options(SchedOptions options);

  const SchedOptions options_;
  // Token-bucket arithmetic in fixed point: fractional refill rates
  // accumulate exactly across rounds (one rounding when the options are
  // converted, none per round), so sub-1 pacing neither drifts nor starves.
  static constexpr std::uint64_t kTokenScale = 1u << 20;
  const std::uint64_t refill_scaled_;  // vp_tokens_per_round * kTokenScale.
  const std::uint64_t burst_scaled_;   // vp_token_burst * kTokenScale.

  mutable util::Mutex mu_;
  const SchedMetrics* metrics_ REVTR_GUARDED_BY(mu_) = nullptr;
  SchedulerAudit* audit_ REVTR_GUARDED_BY(mu_) = nullptr;
  std::uint64_t next_pending_ REVTR_GUARDED_BY(mu_) = 0;
  std::uint64_t next_set_ REVTR_GUARDED_BY(mu_) = 0;
  std::uint64_t next_issue_ REVTR_GUARDED_BY(mu_) = 0;
  std::uint64_t round_ REVTR_GUARDED_BY(mu_) = 0;
  // Hot per-probe tables: open addressing (util::FlatMap) — the scheduler
  // inserts and erases one pending entry per wire probe, which is exactly
  // the churn pattern backward-shift erase keeps cheap.
  util::FlatMap<std::uint64_t, Pending> pending_ REVTR_GUARDED_BY(mu_);
  // FIFO of un-issued pending ids.
  std::deque<std::uint64_t> queue_ REVTR_GUARDED_BY(mu_);
  // Coalesce key -> pending id.
  util::FlatMap<std::uint64_t, std::uint64_t> in_flight_
      REVTR_GUARDED_BY(mu_);
  util::FlatMap<std::uint64_t, DemandSet> sets_ REVTR_GUARDED_BY(mu_);
  util::FlatMap<topology::HostId, VpState> vp_state_
      REVTR_GUARDED_BY(mu_);
  // Completed set ids awaiting collection.
  std::deque<std::uint64_t> ready_ REVTR_GUARDED_BY(mu_);
  // Remote dispatch state: registered agents and ticketed assignments.
  util::FlatMap<AgentId, AgentState> agents_ REVTR_GUARDED_BY(mu_);
  util::FlatMap<std::uint64_t, Assigned> assigned_ REVTR_GUARDED_BY(mu_);
  std::uint64_t next_agent_ REVTR_GUARDED_BY(mu_) = 1;
  std::uint64_t next_ticket_ REVTR_GUARDED_BY(mu_) = 1;
  SchedulerStats stats_ REVTR_GUARDED_BY(mu_);
  // issue_spoof_batch_locked scratch, reused across batches.
  std::vector<Pending> batch_pendings_ REVTR_GUARDED_BY(mu_);
  std::vector<probing::RrBatchItem> batch_items_ REVTR_GUARDED_BY(mu_);
  std::vector<probing::RrProbeResult> batch_results_ REVTR_GUARDED_BY(mu_);
};

}  // namespace revtr::sched
