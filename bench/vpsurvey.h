// Shared survey for the §5.3 record-route VP-selection evaluation
// (Table 5 and Fig 6).
//
// For every customer prefix with at least three ping-responsive hosts, two
// hosts feed ingress discovery and the third is held out for evaluation.
// Every vantage point sends one spoofed RR ping to the held-out destination
// (spoofed as a per-prefix source), yielding simultaneously its RR distance
// and the reverse hops it would uncover — the raw material for all of the
// §5.3 comparisons.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/revtr.h"
#include "eval/harness.h"
#include "vpselect/ingress.h"

namespace revtr::bench {

struct VpProbe {
  topology::HostId vp = topology::kInvalidId;
  bool responded = false;
  int distance = -1;          // RR slots to reach the destination; -1 = out.
  std::size_t reverse_hops = 0;  // Hops uncovered beyond the destination.
  std::vector<net::Ipv4Addr> slots;

  bool in_range() const noexcept { return distance >= 1 && distance <= 8; }
};

struct PrefixEval {
  topology::PrefixId prefix = topology::kInvalidId;
  net::Ipv4Addr eval_dest;
  vpselect::PrefixPlan plan;          // Full heuristics (revtr 2.0).
  vpselect::PrefixPlan plan_plain;    // No double-stamp, no loop.
  vpselect::PrefixPlan plan_dstamp;   // Double-stamp only.
  std::unordered_map<topology::HostId, VpProbe> probes;

  const VpProbe* probe_for(topology::HostId vp) const {
    const auto it = probes.find(vp);
    return it == probes.end() ? nullptr : &it->second;
  }
};

struct VpSurvey {
  std::vector<PrefixEval> prefixes;
};

inline VpSurvey run_vp_survey(eval::Lab& lab, const BenchSetup& setup,
                              std::size_t max_prefixes) {
  VpSurvey survey;
  util::Rng rng(setup.seed * 31 + 9);
  const auto vps = lab.topo.vantage_points();
  const std::vector<topology::HostId> vp_pool(vps.begin(), vps.end());

  vpselect::IngressDiscovery::Options plain_options;
  plain_options.enable_double_stamp = false;
  plain_options.enable_loop = false;
  vpselect::IngressDiscovery plain(lab.prober, lab.topo, plain_options);
  vpselect::IngressDiscovery::Options dstamp_options;
  dstamp_options.enable_loop = false;
  vpselect::IngressDiscovery dstamp(lab.prober, lab.topo, dstamp_options);

  for (const auto prefix : lab.customer_prefixes()) {
    if (survey.prefixes.size() >= max_prefixes) break;
    // Require >= 3 ping-responsive hosts: two for inference, one held out.
    std::vector<topology::HostId> responsive;
    for (const auto host : lab.topo.hosts_in_prefix(prefix)) {
      if (lab.topo.host(host).ping_responsive) responsive.push_back(host);
    }
    if (responsive.size() < 3) continue;
    const topology::HostId eval_host = responsive[2];

    PrefixEval entry;
    entry.prefix = prefix;
    entry.eval_dest = lab.topo.host(eval_host).addr;
    const topology::HostId exclude[] = {eval_host};
    entry.plan = *lab.ingress.discover(prefix, vps, rng, exclude);
    entry.plan_plain = *plain.discover(prefix, vps, rng, exclude);
    entry.plan_dstamp = *dstamp.discover(prefix, vps, rng, exclude);

    // One spoofed RR probe per VP toward the held-out destination.
    const topology::HostId source = rng.pick(vp_pool);
    const net::Ipv4Addr source_addr = lab.topo.host(source).addr;
    for (const auto vp : vps) {
      VpProbe probe;
      probe.vp = vp;
      const auto result =
          lab.prober.rr_ping(vp, entry.eval_dest, source_addr);
      probe.responded = result.responded;
      if (result.responded) {
        probe.slots = result.slots;
        const auto analysis = vpselect::analyze_reach(
            result.slots, lab.topo.prefix(prefix).prefix);
        probe.distance =
            analysis.reach_slot < 0 ? -1 : analysis.reach_slot + 1;
        probe.reverse_hops = core::RevtrEngine::extract_reverse_hops(
                                 result.slots, entry.eval_dest)
                                 .size();
      }
      entry.probes[vp] = std::move(probe);
    }
    survey.prefixes.push_back(std::move(entry));
  }
  return survey;
}

// Reverse hops uncovered by the first batch of `batch_size` attempts.
inline std::size_t first_batch_hops(const PrefixEval& entry,
                                    const std::vector<vpselect::Attempt>& plan,
                                    std::size_t batch_size) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < plan.size() && i < batch_size; ++i) {
    if (const auto* probe = entry.probe_for(plan[i].vp)) {
      best = std::max(best, probe->reverse_hops);
    }
  }
  return best;
}

// Number of VPs tried (in batches of `batch_size`) before some batch
// uncovers a reverse hop; all attempts if none ever does.
inline std::size_t spoofers_tried(const PrefixEval& entry,
                                  const std::vector<vpselect::Attempt>& plan,
                                  std::size_t batch_size) {
  std::size_t tried = 0;
  std::size_t batch_best = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    ++tried;
    if (const auto* probe = entry.probe_for(plan[i].vp)) {
      batch_best = std::max(batch_best, probe->reverse_hops);
    }
    if ((i + 1) % batch_size == 0 || i + 1 == plan.size()) {
      if (batch_best > 0) return tried;
      batch_best = 0;
    }
  }
  return tried;
}

// Converts a plain VP order into the Attempt shape used above.
inline std::vector<vpselect::Attempt> order_to_attempts(
    const std::vector<topology::HostId>& order) {
  std::vector<vpselect::Attempt> attempts;
  attempts.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    attempts.push_back(vpselect::Attempt{order[i], net::Ipv4Addr{}, i});
  }
  return attempts;
}

}  // namespace revtr::bench
