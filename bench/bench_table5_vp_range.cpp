// Table 5: fraction of BGP prefixes where each technique finds a vantage
// point within 8 RR hops of the held-out destination (§5.3).
//
// Rows: plain ingress inference, + the double-stamp heuristic, + the loop
// heuristic (= revtr 2.0), revtr 1.0's try-everything order, and the
// optimal oracle. Paper: 0.65 / 0.70 / 0.71 / 0.72 / 0.72.
#include <cstdio>

#include "bench_common.h"
#include "vpsurvey.h"

using namespace revtr;

namespace {

// Does any VP the technique would try sit within 8 RR hops?
bool technique_finds(const bench::PrefixEval& entry,
                     const std::vector<vpselect::Attempt>& attempts) {
  for (const auto& attempt : attempts) {
    if (const auto* probe = entry.probe_for(attempt.vp)) {
      if (probe->in_range()) return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  const auto max_prefixes =
      static_cast<std::size_t>(flags.get_int("prefixes", 400));
  bench::warn_unknown_flags(flags);
  bench::print_header("Table 5: VPs found within 8 RR hops, per technique",
                      setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto survey = bench::run_vp_survey(lab, setup, max_prefixes);
  std::printf("prefixes with >= 3 responsive destinations: %zu\n\n",
              survey.prefixes.size());

  std::vector<const vpselect::PrefixPlan*> plans;
  for (const auto& entry : survey.prefixes) plans.push_back(&entry.plan);
  // One global order across all surveyed prefixes.
  const auto global_order = vpselect::global_vp_order(plans);

  util::Fraction ingress, ingress_dstamp, ingress_loop, revtr1, optimal;
  for (const auto& entry : survey.prefixes) {
    ingress.tally(technique_finds(
        entry, vpselect::attempt_plan(entry.plan_plain)));
    ingress_dstamp.tally(technique_finds(
        entry, vpselect::attempt_plan(entry.plan_dstamp)));
    ingress_loop.tally(
        technique_finds(entry, vpselect::attempt_plan(entry.plan)));
    revtr1.tally(technique_finds(
        entry,
        bench::order_to_attempts(vpselect::revtr1_vp_order(entry.plan))));
    // Optimal: any VP at all within range (ground truth over the probes).
    bool any = false;
    for (const auto& [vp, probe] : entry.probes) {
      if (probe.in_range()) any = true;
    }
    optimal.tally(any);
  }

  util::TextTable table({"Technique", "Fraction of BGP prefixes"});
  table.add_row({"Ingress", util::cell(ingress.value())});
  table.add_row({"Ingress + double stamp", util::cell(ingress_dstamp.value())});
  table.add_row(
      {"Ingress + double stamp + loop (revtr 2.0)",
       util::cell(ingress_loop.value())});
  table.add_row({"revtr 1.0", util::cell(revtr1.value())});
  table.add_row({"Optimal", util::cell(optimal.value())});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper: 0.65 / 0.70 / 0.71 / 0.72 / 0.72 — the heuristics close most\n"
      "of the gap to revtr 1.0's exhaustive search at a fraction of the\n"
      "probing cost (Fig 6c).\n");
  return 0;
}
