// Fig 5c: CDF of per-reverse-traceroute run time for each configuration.
//
// Paper result: revtr 1.0's median is 78 s; revtr 2.0's is 6 s. The gap is
// driven by the 10-second spoofed-batch timeout times the number of batches
// each VP-selection strategy needs.
#include <cstdio>

#include "ablation.h"
#include "bench_common.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Fig 5c: reverse traceroute latency CDF", setup);

  const auto chain = bench::table4_chain();
  std::vector<util::Series> series;
  util::TextTable table(
      {"Configuration", "p10 (s)", "median (s)", "p90 (s)", "mean (s)"});
  for (const auto& config : chain) {
    const auto result = bench::run_ablation(setup, config);
    table.add_row({result.label,
                   util::cell(result.latency_seconds.quantile(0.10)),
                   util::cell(result.latency_seconds.median()),
                   util::cell(result.latency_seconds.quantile(0.90)),
                   util::cell(result.latency_seconds.mean())});
    util::Series s;
    s.name = result.label;
    for (const double q :
         {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
      s.xs.push_back(result.latency_seconds.quantile(q));  // Time (s).
      s.ys.push_back(q);                                   // CDF.
    }
    series.push_back(std::move(s));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n",
              util::render_figure("Fig 5c: CDF of run time (x=s, y=CDF)",
                                  series, 3)
                  .c_str());
  std::printf(
      "paper: median drops from 78 s (revtr 1.0) to 6 s (revtr 2.0), mostly\n"
      "from needing fewer 10-second spoofed batches.\n");
  return 0;
}
