#include <gtest/gtest.h>
#include <memory>

#include <algorithm>

#include "net/ip_options.h"
#include "probing/prober.h"
#include "routing/forwarding.h"
#include "sim/network.h"
#include "topology/builder.h"

namespace revtr::probing {
namespace {

using topology::HostId;
using topology::Topology;
using topology::TopologyBuilder;
using topology::TopologyConfig;

TopologyConfig small_config() {
  TopologyConfig config;
  config.seed = 33;
  config.num_ases = 150;
  config.num_vps = 10;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 40;
  return config;
}

class ProbingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = std::make_unique<Topology>(TopologyBuilder::build(small_config()));
    bgp_ = std::make_unique<routing::BgpTable>(*topo_);
    intra_ = std::make_unique<routing::IntraRouting>(*topo_);
    plane_ = std::make_unique<routing::ForwardingPlane>(*topo_, *bgp_, *intra_);
    network_ = std::make_unique<sim::Network>(*topo_, *plane_, 5);
  }
  static void TearDownTestSuite() {
    network_.reset();
    plane_.reset();
    intra_.reset();
    bgp_.reset();
    topo_.reset();
  }

  static HostId responsive_host() {
    for (const auto& host : topo_->hosts()) {
      if (!host.is_vantage_point && !host.is_probe_host &&
          host.rr_responsive && host.stamp == topology::HostStamp::kNormal) {
        return host.id;
      }
    }
    throw std::logic_error("no responsive host");
  }

  static std::unique_ptr<Topology> topo_;
  static std::unique_ptr<routing::BgpTable> bgp_;
  static std::unique_ptr<routing::IntraRouting> intra_;
  static std::unique_ptr<routing::ForwardingPlane> plane_;
  static std::unique_ptr<sim::Network> network_;
};

std::unique_ptr<Topology> ProbingFixture::topo_;
std::unique_ptr<routing::BgpTable> ProbingFixture::bgp_;
std::unique_ptr<routing::IntraRouting> ProbingFixture::intra_;
std::unique_ptr<routing::ForwardingPlane> ProbingFixture::plane_;
std::unique_ptr<sim::Network> ProbingFixture::network_;

TEST_F(ProbingFixture, PingCountsAndTimes) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  const auto result = prober.ping(vp, topo_->host(responsive_host()).addr);
  EXPECT_TRUE(result.responded);
  EXPECT_GT(result.duration_us, 0);
  EXPECT_LT(result.duration_us, Prober::kProbeTimeoutUs);
  EXPECT_EQ(prober.counters().ping, 1u);
  EXPECT_EQ(prober.counters().total(), 1u);
}

TEST_F(ProbingFixture, UnansweredProbeChargedTimeout) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  for (const auto& host : topo_->hosts()) {
    if (!host.ping_responsive) {
      const auto result = prober.ping(vp, host.addr);
      EXPECT_FALSE(result.responded);
      EXPECT_EQ(result.duration_us, Prober::kProbeTimeoutUs);
      return;
    }
  }
  GTEST_SKIP();
}

TEST_F(ProbingFixture, RrPingReturnsSlots) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  const auto result = prober.rr_ping(vp, topo_->host(responsive_host()).addr);
  EXPECT_TRUE(result.responded);
  EXPECT_FALSE(result.slots.empty());
  EXPECT_LE(result.slots.size(), 9u);
  EXPECT_EQ(prober.counters().rr, 1u);
  EXPECT_EQ(prober.counters().spoofed_rr, 0u);
}

TEST_F(ProbingFixture, SpoofedRrCountsSeparately) {
  Prober prober(*network_);
  HostId spoofer = topology::kInvalidId;
  for (HostId vp : topo_->vantage_points()) {
    if (network_->can_spoof(vp)) spoofer = vp;
  }
  ASSERT_NE(spoofer, topology::kInvalidId);
  const HostId source = topo_->vantage_points()[0] == spoofer
                            ? topo_->vantage_points()[1]
                            : topo_->vantage_points()[0];
  const auto result = prober.rr_ping(spoofer,
                                     topo_->host(responsive_host()).addr,
                                     topo_->host(source).addr);
  EXPECT_EQ(prober.counters().spoofed_rr, 1u);
  EXPECT_EQ(prober.counters().rr, 0u);
  // Spoofed replies are observed at the source; the call still reports what
  // the source saw.
  if (result.responded) {
    EXPECT_FALSE(result.slots.empty());
  }
}

TEST_F(ProbingFixture, TracerouteReachesAndIsOrdered) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  const auto dst = responsive_host();
  const auto result = prober.traceroute(vp, topo_->host(dst).addr);
  ASSERT_TRUE(result.reached);
  ASSERT_GE(result.hops.size(), 2u);
  // Final hop is the destination itself.
  ASSERT_TRUE(result.hops.back().addr);
  EXPECT_EQ(*result.hops.back().addr, topo_->host(dst).addr);
  // Earlier hops are router interfaces (or silent).
  for (std::size_t i = 0; i + 1 < result.hops.size(); ++i) {
    if (result.hops[i].addr) {
      EXPECT_TRUE(topo_->interface_at(*result.hops[i].addr))
          << "hop " << i << " is not a router interface";
    }
  }
  EXPECT_EQ(prober.counters().traceroutes, 1u);
  EXPECT_EQ(prober.counters().traceroute_packets, result.hops.size());
}

TEST_F(ProbingFixture, TracerouteParisConsistency) {
  // Two traceroutes from the same host to the same destination follow the
  // same path (per-flow load balancing, fixed flow id per trace... but the
  // flow id differs between traces; destinations are the anchor here). We
  // verify the hop *count* and reached flag are stable, and that a repeated
  // run with the same prober state is deterministic.
  const auto vp = topo_->vantage_points()[1];
  const auto dst = responsive_host();
  Prober p1(*network_);
  const auto r1 = p1.traceroute(vp, topo_->host(dst).addr);
  const auto r2 = p1.traceroute(vp, topo_->host(dst).addr);
  EXPECT_EQ(r1.reached, r2.reached);
  EXPECT_EQ(r1.hops.size(), r2.hops.size());
}

TEST_F(ProbingFixture, TracerouteToUnresponsiveDestinationStops) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  for (const auto& host : topo_->hosts()) {
    if (!host.ping_responsive) {
      const auto result = prober.traceroute(vp, host.addr);
      EXPECT_FALSE(result.reached);
      EXPECT_LE(result.hops.size(),
                static_cast<std::size_t>(Prober::kMaxTracerouteTtl));
      return;
    }
  }
  GTEST_SKIP();
}

TEST_F(ProbingFixture, TsPingStampsOnPathRouter) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  const auto dst = responsive_host();
  const auto rr = prober.rr_ping(vp, topo_->host(dst).addr);
  ASSERT_TRUE(rr.responded);
  net::Ipv4Addr on_path;
  for (const auto addr : rr.slots) {
    if (topo_->interface_at(addr)) {
      on_path = addr;
      break;
    }
  }
  if (on_path.is_unspecified()) GTEST_SKIP() << "no mappable hop";
  const net::Ipv4Addr prespec[] = {on_path};
  const auto ts = prober.ts_ping(vp, topo_->host(dst).addr, prespec);
  if (!ts.responded) GTEST_SKIP() << "TS filtered";
  ASSERT_EQ(ts.stamped.size(), 1u);
  EXPECT_TRUE(ts.stamped[0]);
  EXPECT_EQ(prober.counters().ts, 1u);
}

TEST_F(ProbingFixture, TsPingOffPathAdjacencyNotStamped) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  const auto dst = responsive_host();
  // Prespecify <destination, bogus-far-away-loopback>: second must stay
  // unstamped because that router is not after the destination on the path.
  const auto far_router =
      topo_->as_at(static_cast<topology::AsIndex>(topo_->num_ases() - 1))
          .routers[0];
  const net::Ipv4Addr prespec[] = {topo_->host(dst).addr,
                                   topo_->router(far_router).loopback};
  const auto ts = prober.ts_ping(vp, topo_->host(dst).addr, prespec);
  if (!ts.responded) GTEST_SKIP() << "TS filtered";
  ASSERT_EQ(ts.stamped.size(), 2u);
  if (ts.stamped[0]) {
    EXPECT_FALSE(ts.stamped[1]) << "off-path adjacency stamped";
  }
}

// Regression companion to Timestamp.DecodeRejectsOversizedEntryCount: the
// stamped vector ts_ping sizes from the reply can never exceed the option's
// wire capacity, and for a responded probe it mirrors the prespec list.
TEST_F(ProbingFixture, TsPingStampedBoundedByOptionCapacity) {
  Prober prober(*network_);
  const auto vp = topo_->vantage_points()[0];
  const auto dst = responsive_host();
  std::vector<net::Ipv4Addr> prespec(net::TimestampOption::kMaxEntries,
                                     topo_->host(dst).addr);
  const auto ts = prober.ts_ping(vp, topo_->host(dst).addr, prespec);
  EXPECT_LE(ts.stamped.size(), net::TimestampOption::kMaxEntries);
  if (ts.responded) {
    EXPECT_EQ(ts.stamped.size(), prespec.size());
  }
}

TEST_F(ProbingFixture, CounterArithmetic) {
  ProbeCounters a;
  a.rr = 10;
  a.spoofed_rr = 5;
  ProbeCounters b;
  b.rr = 3;
  b.traceroute_packets = 7;
  ProbeCounters sum = a;
  sum += b;
  EXPECT_EQ(sum.rr, 13u);
  EXPECT_EQ(sum.traceroute_packets, 7u);
  const auto delta = sum - a;
  EXPECT_EQ(delta.rr, 3u);
  EXPECT_EQ(delta.spoofed_rr, 0u);
  EXPECT_EQ(sum.total(), 13u + 5u + 7u);
}

TEST_F(ProbingFixture, ResetCounters) {
  Prober prober(*network_);
  prober.ping(topo_->vantage_points()[0],
              topo_->host(responsive_host()).addr);
  EXPECT_GT(prober.counters().total(), 0u);
  prober.reset_counters();
  EXPECT_EQ(prober.counters().total(), 0u);
}

}  // namespace
}  // namespace revtr::probing
