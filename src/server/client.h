// Blocking client for the revtr_serverd framed protocol (server/frame.h).
//
// One DaemonClient owns one AF_UNIX stream connection. All calls run on the
// caller's thread with blocking I/O — the replayer gives each connection
// thread its own client; nothing here is shared or locked. RESULT frames
// interleave with other replies in push mode, so every wait_* helper
// stashes Results it passes by; next_result() consumes the stash before
// touching the socket.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "server/frame.h"

namespace revtr::server {

class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  // Connects to the daemon's socket, retrying (20 ms apart) while the
  // daemon is still binding. False after all retries fail.
  bool connect(const std::string& socket_path, int retries = 50);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  // HELLO handshake. Empty result on transport error or HELLO_ERR
  // (reject_reason() says why).
  std::optional<HelloOk> hello(const std::string& api_key,
                               bool push_results = true);

  // Submits one request and waits for the SUBMIT_OK / SUBMIT_ERR ack.
  // True = accepted; false with reject_reason() set = rejected; false with
  // reject_reason() empty = transport error.
  bool submit(const Submit& request);

  // Next RESULT: from the stash, else blocking-read until one arrives.
  std::optional<Result> next_result();

  // Outcome of a bounded wait. Distinguishes "the daemon is slow" from
  // "the daemon is gone" so callers never hang forever or conflate the two
  // (revtr_cli client maps these to distinct exit codes).
  enum class WaitStatus : std::uint8_t {
    kOk = 0,        // A RESULT arrived; `out` is set.
    kTimeout,       // timeout elapsed; connection still usable.
    kDisconnected,  // EOF or undecodable bytes; connection closed.
  };

  // next_result() with a bounded wait: polls the socket so a vanished
  // daemon surfaces as kDisconnected instead of a hang. timeout_ms <= 0
  // waits forever (kTimeout is never returned).
  WaitStatus next_result_for(std::optional<Result>& out, int timeout_ms);

  // Pull mode: one POLL round trip. Appends up to `max_results` stashed
  // results and returns the server's remaining-pending count (empty on
  // transport error).
  std::optional<std::uint32_t> poll_results(std::uint32_t max_results = 16);

  // STATS round trip: the daemon's JSON snapshot text.
  std::optional<std::string> stats();

  // DRAIN: waits until the daemon finished every accepted request.
  std::optional<DrainDone> drain();

  // Reason from the most recent HELLO_ERR / SUBMIT_ERR.
  std::optional<RejectReason> reject_reason() const noexcept {
    return reject_reason_;
  }
  std::size_t stashed_results() const noexcept { return results_.size(); }

 private:
  bool send_frame(const Message& message);
  // One whole frame off the socket (blocking). Empty on EOF, error, or an
  // undecodable frame.
  std::optional<Message> read_frame();
  // Reads frames until one satisfies `want` (by FrameType), stashing
  // RESULTs encountered on the way.
  std::optional<Message> wait_for(FrameType a, FrameType b);

  int fd_ = -1;
  std::vector<std::uint8_t> in_;
  std::deque<Result> results_;
  std::optional<RejectReason> reject_reason_;
};

}  // namespace revtr::server
