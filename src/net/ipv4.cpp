#include "net/ipv4.h"

#include <charconv>

#include "util/check.h"

namespace revtr::net {

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end && octets < 4) {
    unsigned byte = 0;
    const auto [next, ec] = std::from_chars(p, end, byte);
    if (ec != std::errc{} || byte > 255 || next == p) return std::nullopt;
    value = (value << 8) | byte;
    ++octets;
    p = next;
    if (octets < 4) {
      if (p >= end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (octets != 4 || p != end) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Ipv4Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  const auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || length > 32 ||
      next != len_text.data() + len_text.size()) {
    return std::nullopt;
  }
  return Ipv4Prefix(*addr, util::checked_cast<std::uint8_t>(length));
}

}  // namespace revtr::net
