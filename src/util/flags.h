// Minimal command-line flag parsing for bench binaries and examples.
//
// Benches accept flags like --ases=2000 --seed=7 --revtrs=5000 so campaign
// sizes can be scaled without recompiling. Unknown flags are reported, and
// google-benchmark style flags (--benchmark_*) are passed through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace revtr::util {

class Flags {
 public:
  // Parses argv. Flags take the form --name=value or --name (boolean true).
  // Arguments beginning with --benchmark_ are ignored (left for gbench).
  Flags(int argc, char** argv);

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  bool has(const std::string& name) const;

  // Flags seen that were never queried; useful for catching typos.
  std::vector<std::string> unknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace revtr::util
