#!/bin/sh
# Correctness gate: builds and tests the tree under each hardening config.
#
#   1. default  -Werror with extended warnings (-Wconversion -Wshadow
#               -Wold-style-cast -Wnon-virtual-dtor), full ctest suite —
#               includes revtr_lint (with the layering analyzer), the
#               wire-codec fuzzer, and the revtr_mc model-checker sweep.
#   2. asan     AddressSanitizer build, full ctest suite (the revtr_mc
#               state sweep under ASan is the deepest memory check we run).
#   3. ubsan    UndefinedBehaviorSanitizer with -fno-sanitize-recover=all
#               (any UB aborts the test), full ctest suite.
#   4. tsan     ThreadSanitizer over the concurrency suite (thread pool,
#               synchronized Distribution, striped caches, sharded metrics,
#               parallel campaign driver) plus the ServerDaemon e2e suite —
#               the racy paths the parallel batch driver and the measurement
#               daemon actually exercise. REVTR_CHECK_TSAN=0 skips the
#               stage; REVTR_CHECK_TSAN=full runs the whole ctest suite
#               under TSan.
#
# Both gates also run an observability smoke: a small instrumented campaign
# through revtr_cli, whose Prometheus snapshot must parse and contain the
# core metric families (requests, probes, request latency, engine stages) —
# plus a scheduler smoke: a staged campaign with overlapping destinations
# whose revtr_probes_coalesced_total sample must come out positive. The full
# gate adds a serverd smoke: an in-process 1k-request replay through
# revtr_replay (BENCH_serverd.json schema + zero deadline misses +
# revtr_server_requests_total > 0), then an external revtr_serverd serving
# one revtr_cli client over its AF_UNIX socket and draining cleanly on
# SIGTERM — and an agent smoke: the same client requests through a
# controller (--remote-probing) plus two revtr_agentd processes must print
# byte-identical output to the monolith, with both sides draining cleanly
# on SIGTERM (DESIGN.md §15).
#
# --quick: inner-loop mode — default preset only, and only the fast
# correctness tiers: revtr_lint (lint + layering + self-test) and the unit
# tests, skipping the fuzzer and the model-checker sweep. Use before a
# commit when the full multi-preset gate is too slow; CI runs the full one.
#
# The full gate also runs two clang-only stages, each skipped with a notice
# when the binary is missing (the default container ships gcc only):
#   * tsa         clang -Wthread-safety -Wthread-safety-beta -Werror over the
#                 REVTR_* capability annotations (src/util/annotate.h); any
#                 lock-discipline violation is a hard build error. Without
#                 clang, the revtr_lint lock-discipline pass (mutex-capability,
#                 guarded-member, raii-guard, lock-order) is the enforcement.
#   * clang-tidy  config in .clang-tidy (includes the concurrency-* checks).
#
# Plus a bench-artifact smoke: scaled-down runs of bench_parallel_campaign,
# bench_throughput, and bench_micro_net must each emit their BENCH_*.json
# with the documented schema (numeric headline fields, peak RSS) for
# scripts/run_all.sh consumers.
set -eu
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
    esac
done

# Observability smoke: run a small instrumented campaign, then validate the
# exported Prometheus text — every non-comment line must be a well-formed
# `name{labels} integer` sample, and the families the dashboards are built
# on must be present.
obs_smoke() {
    echo "==> [default] obs smoke (instrumented campaign + snapshot check)"
    out="build/obs_smoke_metrics.prom"
    # campaign exits 4 when some revtrs were incomplete — fine for the smoke,
    # which only needs the metrics snapshot.
    ./build/tools/revtr_cli campaign --ases=150 --vps=10 --probes=60 \
        --revtrs=40 --parallel=2 --trace-sample=8 \
        --metrics-out="$out" >/dev/null || [ $? -eq 4 ]
    awk '
        /^# (HELP|TYPE) / { next }
        /^[A-Za-z_][A-Za-z0-9_]*(\{[^}]*\})? -?[0-9]+$/ { ++samples; next }
        { printf "obs smoke: malformed line %d: %s\n", NR, $0; bad = 1 }
        END {
            if (samples == 0) { print "obs smoke: no samples"; bad = 1 }
            exit bad
        }' "$out"
    for family in revtr_requests_total revtr_probes_total \
                  revtr_request_latency_us_count revtr_engine_stage_total; do
        if ! grep -q "^$family" "$out"; then
            echo "obs smoke: metric family $family missing from $out" >&2
            exit 1
        fi
    done
    echo "obs smoke: snapshot ok ($(grep -c '^revtr_' "$out") samples)"
}

# Bench-artifact smoke: scaled-down runs of every artifact-emitting bench
# must produce BENCH_<name>.json files with the schema the run_all.sh
# consumers rely on (numeric headline fields; see each bench's writer).
require_bench_fields() {
    artifact="$1"; shift
    if [ ! -f "$artifact" ]; then
        echo "bench smoke: $artifact was not written" >&2
        exit 1
    fi
    for field in "$@"; do
        if ! grep -q "\"$field\": *[0-9]" "$artifact"; then
            echo "bench smoke: field $field missing or non-numeric" \
                 "in $artifact" >&2
            exit 1
        fi
    done
}

bench_smoke() {
    echo "==> [default] bench artifact smoke (BENCH_*.json schemas)"
    rm -f build/BENCH_parallel_campaign.json build/BENCH_throughput.json \
          build/BENCH_micro_net.json
    REVTR_BENCH_DIR=build ./build/bench/bench_parallel_campaign \
        --ases=150 --vps=8 --probes=60 --revtrs=24 --pacing=0 \
        --dup-revtrs=48 --overhead-reps=1 --overhead-revtrs=200 >/dev/null
    require_bench_fields build/BENCH_parallel_campaign.json \
        requests_per_second probes_per_second latency_p50_us \
        latency_p99_us peak_rss_bytes \
        single_worker_requests_per_second single_worker_probes_per_second
    REVTR_BENCH_DIR=build ./build/bench/bench_throughput \
        --ases=150 --vps=8 --probes=60 --revtrs=20 >/dev/null
    require_bench_fields build/BENCH_throughput.json \
        effective_per_second revtrs_per_day speedup peak_rss_bytes
    REVTR_BENCH_DIR=build ./build/bench/bench_micro_net \
        --benchmark_filter='BM_PacketEncode|BM_PrefixTrieLookup' \
        --benchmark_min_time=0.01 >/dev/null
    require_bench_fields build/BENCH_micro_net.json \
        benchmark_count real_time cpu_time iterations peak_rss_bytes
    # run_all.sh regression: benches resolve a relative REVTR_BENCH_DIR
    # against their *own* cwd, so run_all.sh must absolutize the dir before
    # fanning out. Pin the contract: from a different cwd, an absolute dir
    # still receives the artifact.
    rm -rf build/bench_smoke_cwd
    mkdir -p build/bench_smoke_cwd/out
    abs_out="$(cd build/bench_smoke_cwd/out && pwd)"
    (cd build/bench_smoke_cwd && REVTR_BENCH_DIR="$abs_out" \
        "$OLDPWD/build/bench/bench_micro_net" \
        --benchmark_filter='BM_PacketEncode' \
        --benchmark_min_time=0.01 >/dev/null)
    require_bench_fields "$abs_out/BENCH_micro_net.json" \
        benchmark_count peak_rss_bytes
    echo "bench smoke: all artifact schemas ok (incl. cwd-independent dir)"
    # Bench-delta gate: the smoke-scale artifacts written above must not
    # regress past tolerance against the committed smoke baselines (>10%
    # drop in requests/probes per second, >15% rise in latency_p99_us).
    # Full-scale baselines are compared advisorily by run_all.sh instead —
    # see README "Bench-delta gate" for the refresh procedure.
    echo "==> [default] bench delta vs bench/baselines/smoke"
    scripts/bench_delta.py --baselines bench/baselines/smoke --fresh build
}

# revtr_lint ships its own fixture corpus (--self-test); the committed
# baseline is the check count at the last PR that touched the linter. A
# lower count means fixtures were deleted without replacement — fail rather
# than silently shrink the corpus.
LINT_SELFTEST_BASELINE=73
lint_selftest_guard() {
    out="$(./build/tools/revtr_lint --self-test)"
    echo "$out"
    checks="$(printf '%s\n' "$out" |
        sed -n 's/.*ok (\([0-9][0-9]*\) checks).*/\1/p')"
    if [ -z "$checks" ] || [ "$checks" -lt "$LINT_SELFTEST_BASELINE" ]; then
        echo "lint self-test: ${checks:-0} checks, below committed baseline" \
             "$LINT_SELFTEST_BASELINE" >&2
        exit 1
    fi
}

# Scheduler smoke: a staged campaign whose destinations heavily overlap must
# actually coalesce — the exported snapshot's revtr_probes_coalesced_total
# sample has to be positive, or cross-request dedup silently died.
sched_smoke() {
    echo "==> [default] sched smoke (staged campaign, coalescing metric > 0)"
    out="build/sched_smoke_metrics.prom"
    ./build/tools/revtr_cli campaign --ases=120 --vps=8 --probes=20 \
        --revtrs=60 --parallel=2 --staged \
        --metrics-out="$out" >/dev/null || [ $? -eq 4 ]
    coalesced="$(awk '/^revtr_probes_coalesced_total /{print $2}' "$out")"
    if [ -z "$coalesced" ] || [ "$coalesced" -le 0 ]; then
        echo "sched smoke: revtr_probes_coalesced_total=${coalesced:-missing}" \
             "on an overlapping-destination campaign" >&2
        exit 1
    fi
    echo "sched smoke: ok ($coalesced probes coalesced)"
}

# serverd smoke: the daemon + replayer end-to-end at smoke scale. First an
# in-process 1k-request closed-loop replay (hot caches, generous deadlines:
# nothing may miss), whose artifact and metrics snapshot must check out;
# then an external revtr_serverd process serving a revtr_cli client over the
# socket, which must drain and exit 0 on SIGTERM.
serverd_smoke() {
    echo "==> [default] serverd smoke (replay 1k + external daemon drain)"
    rm -f build/BENCH_serverd.json build/serverd_smoke_metrics.prom
    REVTR_BENCH_DIR=build ./build/tools/revtr_replay \
        --requests=1000 --conns=2 --mode=closed --inflight=8 \
        --ases=150 --vps=10 --probes=60 --workers=2 --deadline-ms=30000 \
        --daemon-socket=build/serverd_smoke_replay.sock \
        --metrics-out=build/serverd_smoke_metrics.prom >/dev/null
    require_bench_fields build/BENCH_serverd.json \
        requests accepted completed replay_requests_per_second \
        wall_p50_us wall_p99_us wall_p999_us peak_rss_bytes
    if ! grep -q '"deadline_missed": *0[,}]' build/BENCH_serverd.json; then
        echo "serverd smoke: deadline misses in a hot-cache closed-loop" \
             "replay with 30s budgets" >&2
        exit 1
    fi
    total="$(awk '/^revtr_server_requests_total /{print $2}' \
        build/serverd_smoke_metrics.prom)"
    if [ -z "$total" ] || [ "$total" -le 0 ]; then
        echo "serverd smoke: revtr_server_requests_total=${total:-missing}" >&2
        exit 1
    fi
    sock="build/serverd_smoke.sock"
    rm -f "$sock"
    ./build/tools/revtr_serverd --socket="$sock" --ases=100 --vps=6 \
        --probes=24 --workers=2 --sources=2 --atlas=20 \
        >build/serverd_smoke_daemon.log 2>&1 &
    daemon_pid=$!
    i=0
    while [ ! -S "$sock" ] && [ "$i" -lt 300 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    ./build/tools/revtr_cli client --socket="$sock" --dest=3 \
        --deadline-ms=30000 >/dev/null
    kill -TERM "$daemon_pid"
    if ! wait "$daemon_pid"; then
        echo "serverd smoke: daemon did not drain and exit 0 on SIGTERM" \
             "(see build/serverd_smoke_daemon.log)" >&2
        exit 1
    fi
    echo "serverd smoke: ok ($total daemon requests; SIGTERM drain clean)"
}

# Agent smoke: the distributed controller/agent deployment (DESIGN.md §15)
# against the monolith, end-to-end over real processes and sockets. The
# same three client requests must print byte-identical output both ways —
# probe outcomes are content-addressed, so where they execute must not be
# observable — and SIGTERM must drain cleanly on both sides (agents first,
# then the controller). --window=2 keeps the per-agent in-flight window
# small enough that both agents actually execute probes.
agent_smoke() {
    echo "==> [default] agent smoke (controller + 2 agents vs monolith)"
    topo="--ases=100 --vps=6 --probes=24 --seed=7"
    sock="build/agent_smoke_mono.sock"
    rm -f "$sock"
    ./build/tools/revtr_serverd --socket="$sock" $topo --workers=2 \
        --sources=2 --atlas=20 >build/agent_smoke_mono.log 2>&1 &
    daemon_pid=$!
    i=0
    while [ ! -S "$sock" ] && [ "$i" -lt 300 ]; do sleep 0.1; i=$((i+1)); done
    : >build/agent_smoke_mono.out
    for dest in 3 4 7; do
        ./build/tools/revtr_cli client --socket="$sock" --dest="$dest" \
            --deadline-ms=30000 >>build/agent_smoke_mono.out || [ $? -eq 4 ]
    done
    kill -TERM "$daemon_pid"
    if ! wait "$daemon_pid"; then
        echo "agent smoke: monolith daemon did not drain on SIGTERM" >&2
        exit 1
    fi

    sock="build/agent_smoke_remote.sock"
    rm -f "$sock"
    ./build/tools/revtr_serverd --socket="$sock" $topo --workers=2 \
        --sources=2 --atlas=20 --remote-probing \
        >build/agent_smoke_remote.log 2>&1 &
    daemon_pid=$!
    i=0
    while [ ! -S "$sock" ] && [ "$i" -lt 300 ]; do sleep 0.1; i=$((i+1)); done
    ./build/tools/revtr_agentd --socket="$sock" $topo --name=vp-a \
        --window=2 >build/agent_smoke_a.log 2>&1 &
    agent_a=$!
    ./build/tools/revtr_agentd --socket="$sock" $topo --name=vp-b \
        --window=2 >build/agent_smoke_b.log 2>&1 &
    agent_b=$!
    : >build/agent_smoke_remote.out
    for dest in 3 4 7; do
        ./build/tools/revtr_cli client --socket="$sock" --dest="$dest" \
            --deadline-ms=30000 >>build/agent_smoke_remote.out || [ $? -eq 4 ]
    done
    kill -TERM "$agent_a" "$agent_b"
    if ! wait "$agent_a"; then
        echo "agent smoke: agent a did not drain on SIGTERM" \
             "(see build/agent_smoke_a.log)" >&2
        exit 1
    fi
    if ! wait "$agent_b"; then
        echo "agent smoke: agent b did not drain on SIGTERM" \
             "(see build/agent_smoke_b.log)" >&2
        exit 1
    fi
    kill -TERM "$daemon_pid"
    if ! wait "$daemon_pid"; then
        echo "agent smoke: remote daemon did not drain on SIGTERM" >&2
        exit 1
    fi
    if ! cmp -s build/agent_smoke_mono.out build/agent_smoke_remote.out; then
        echo "agent smoke: remote client output differs from monolith" >&2
        diff build/agent_smoke_mono.out build/agent_smoke_remote.out >&2 ||
            true
        exit 1
    fi
    if ! grep -q 'drained' build/agent_smoke_a.log ||
       ! grep -q 'drained' build/agent_smoke_b.log; then
        echo "agent smoke: an agent exited without reporting a drain" >&2
        exit 1
    fi
    echo "agent smoke: ok (remote == monolith; clean SIGTERM drains)"
}

run_config() {
    name="$1"
    echo "==> [$name] configure"
    cmake --preset "$name" >/dev/null
    echo "==> [$name] build"
    cmake --build --preset "$name" -j "$JOBS"
    echo "==> [$name] test"
    ctest --preset "$name"
}

if [ "$QUICK" = "1" ]; then
    echo "==> [default] configure"
    cmake --preset default >/dev/null
    echo "==> [default] build"
    cmake --build --preset default -j "$JOBS"
    echo "==> [default] lint + layering"
    lint_selftest_guard
    ./build/tools/revtr_lint .
    echo "==> [default] unit tests (no fuzzer, no model-checker sweep)"
    ctest --preset default -E 'wire_fuzz|revtr_mc'
    obs_smoke
    sched_smoke
    echo "check.sh: quick gate passed (full gate: scripts/check.sh)"
    exit 0
fi

run_config default
echo "==> [default] lint self-test fixture floor"
lint_selftest_guard
obs_smoke
sched_smoke
serverd_smoke
agent_smoke
bench_smoke
run_config asan
run_config ubsan
case "${REVTR_CHECK_TSAN:-1}" in
    0)
        echo "==> [tsan] skipped (REVTR_CHECK_TSAN=0)"
        ;;
    full)
        run_config tsan
        ;;
    *)
        echo "==> [tsan] configure"
        cmake --preset tsan >/dev/null
        echo "==> [tsan] build"
        cmake --build --preset tsan -j "$JOBS"
        echo "==> [tsan] concurrency suite"
        ctest --preset tsan -R 'ThreadPool|Distribution|StripedMap|ShardedMetrics|ParallelCampaign|Atlas|Ingress|ServerDaemon|AgentSplit'
        ;;
esac

if command -v clang++ >/dev/null 2>&1; then
    echo "==> [tsa] configure (clang -Wthread-safety)"
    cmake --preset tsa >/dev/null
    echo "==> [tsa] build (thread-safety violations are hard errors)"
    cmake --build --preset tsa -j "$JOBS"
else
    echo "==> [tsa] skipped (clang++ not installed; lock discipline is" \
         "enforced lexically by revtr_lint instead)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy"
    find src -name '*.cpp' -print0 |
        xargs -0 clang-tidy -p build --quiet
else
    echo "==> clang-tidy skipped (binary not installed; see .clang-tidy)"
fi

echo "check.sh: all configurations passed"
