// Fig 8(a) + Fig 12: Internet path asymmetry at scale (§6.2, Appx G.1).
//
// CCDF of the fraction of forward-traceroute hops also present on the
// reverse traceroute, at AS and router granularity; Fig 12 repeats the
// analysis restricted to reverse paths with no symmetry assumptions.
//
// Paper: only 53% of paths symmetric at AS granularity; at router
// granularity half the reverse paths contain <28% of the forward routers.
#include <cstdio>

#include "asymmetry.h"
#include "bench_common.h"

using namespace revtr;

namespace {

util::Series ccdf_series(const std::string& name,
                         const util::Distribution& dist) {
  util::Series series;
  series.name = name;
  for (const double x : util::linspace(0.0, 1.0, 21)) {
    series.xs.push_back(x);
    series.ys.push_back(dist.ccdf_at(x));
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Fig 8a / Fig 12: path asymmetry at scale", setup);

  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto campaign = bench::run_asymmetry_campaign(lab, setup);
  std::printf("complete bidirectional pairs: %zu of %zu attempted\n\n",
              campaign.pairs.size(), campaign.attempted);

  util::Distribution as_all, router_all, as_pure, router_pure;
  util::Fraction as_symmetric, as_symmetric_pure, edit_symmetric;
  for (const auto& pair : campaign.pairs) {
    as_all.add(pair.as_fraction);
    router_all.add(pair.router_fraction);
    as_symmetric.tally(pair.as_fraction >= 1.0);
    // Appx G.3: the stricter de Vries definition (edit distance == 0).
    edit_symmetric.tally(
        eval::as_path_edit_distance(pair.forward_as, pair.reverse_as) == 0);
    if (pair.symmetry_assumptions == 0) {
      as_pure.add(pair.as_fraction);
      router_pure.add(pair.router_fraction);
      as_symmetric_pure.tally(pair.as_fraction >= 1.0);
    }
  }

  util::TextTable table({"Metric", "all pairs", "no-assumption pairs"});
  table.add_row({"pairs", util::cell_count(as_all.count()),
                 util::cell_count(as_pure.count())});
  table.add_row({"AS-symmetric fraction", util::cell(as_symmetric.value()),
                 util::cell(as_symmetric_pure.value())});
  table.add_row(
      {"median router-level overlap",
       util::cell(router_all.empty() ? 0 : router_all.median()),
       util::cell(router_pure.empty() ? 0 : router_pure.median())});
  table.add_row({"AS-symmetric, edit-distance defn (Appx G.3)",
                 util::cell(edit_symmetric.value()), "-"});
  std::printf("%s\n", table.render().c_str());

  std::printf("%s\n",
              util::render_figure(
                  "Fig 8a: CCDF of fraction of forward hops on reverse path",
                  {ccdf_series("AS", as_all),
                   ccdf_series("router", router_all)},
                  3)
                  .c_str());
  std::printf(
      "%s\n",
      util::render_figure(
          "Fig 12: same, restricted to paths without symmetry assumptions",
          {ccdf_series("AS", as_pure), ccdf_series("router", router_pure)},
          3)
          .c_str());
  std::printf(
      "paper: 53%% of paths symmetric at AS granularity, far fewer at\n"
      "router granularity; Fig 12 (no assumptions) is within ~3%% of Fig 8.\n");
  return 0;
}
