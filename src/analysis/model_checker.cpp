#include "analysis/model_checker.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/oracle.h"
#include "analysis/probe_log.h"
#include "asmap/asmap.h"
#include "atlas/atlas.h"
#include "core/adjacency.h"
#include "core/request_task.h"
#include "probing/prober.h"
#include "routing/forwarding.h"
#include "sched/scheduler.h"
#include "sim/network.h"
#include "topology/builder.h"
#include "util/rng.h"
#include "util/sim_clock.h"
#include "vpselect/ingress.h"

namespace revtr::analysis {

namespace {
using probing::ProbeEvent;
using probing::ProbeType;
using topology::HostId;

// Base for every shape: a handful of single-router ASes, everything
// responsive and deterministic. Shapes below perturb one dimension each.
// Source sensitivity and per-packet load balancing stay off so the oracle's
// salt union is a sound over-approximation of the feasible path set.
topology::TopologyConfig tiny_config() {
  topology::TopologyConfig c;
  c.num_ases = 4;
  c.num_tier1 = 1;
  c.transit_fraction = 0.5;
  c.nren_fraction = 0.0;
  c.tier1_routers_min = 1;
  c.tier1_routers_max = 2;
  c.transit_routers_min = 1;
  c.transit_routers_max = 2;
  c.stub_routers_min = 1;
  c.stub_routers_max = 1;
  c.intra_extra_edge_prob = 0.1;
  c.rr_ingress_frac = 0.0;
  c.rr_loopback_frac = 0.0;
  c.rr_private_frac = 0.0;
  c.rr_nostamp_frac = 0.0;
  c.router_ttl_responsive = 1.0;
  c.router_ping_responsive = 1.0;
  c.router_per_packet_lb = 0.0;
  c.router_source_sensitive = 0.0;
  c.hosts_per_prefix = 2;
  c.host_ping_responsive = 1.0;
  c.host_rr_responsive_given_ping = 1.0;
  c.host_nostamp_frac = 0.0;
  c.host_doublestamp_frac = 0.0;
  c.host_aliasstamp_frac = 0.0;
  c.num_vps = 3;
  c.num_vps_2016 = 2;
  c.vp_as_allows_spoofing = 1.0;
  c.num_probe_hosts = 3;
  c.as_filters_options = 0.0;
  c.as_source_sensitive = 0.0;
  return c;
}

std::vector<ShapeSpec> make_shapes() {
  std::vector<ShapeSpec> shapes;
  {
    ShapeSpec s{"line3", tiny_config()};
    s.config.num_ases = 3;
    s.config.tier1_routers_max = 1;
    s.config.transit_routers_max = 1;
    shapes.push_back(s);
  }
  {
    ShapeSpec s{"mesh4", tiny_config()};
    s.config.transit_peer_prob = 0.9;
    s.config.intra_extra_edge_prob = 0.5;
    shapes.push_back(s);
  }
  {
    ShapeSpec s{"stampmix5", tiny_config()};
    s.config.num_ases = 5;
    s.config.tier1_routers_max = 1;
    s.config.transit_routers_max = 1;
    s.config.rr_ingress_frac = 0.3;
    s.config.rr_loopback_frac = 0.2;
    s.config.rr_private_frac = 0.1;
    s.config.host_doublestamp_frac = 0.2;
    s.config.host_aliasstamp_frac = 0.2;
    shapes.push_back(s);
  }
  {
    ShapeSpec s{"nostamp4", tiny_config()};
    s.config.rr_nostamp_frac = 0.4;
    s.config.host_nostamp_frac = 0.4;
    shapes.push_back(s);
  }
  {
    ShapeSpec s{"filtered5", tiny_config()};
    s.config.num_ases = 5;
    s.config.tier1_routers_max = 1;
    s.config.transit_routers_max = 1;
    s.config.as_filters_options = 0.3;
    shapes.push_back(s);
  }
  {
    ShapeSpec s{"sparse6", tiny_config()};
    s.config.num_ases = 6;
    s.config.tier1_routers_max = 1;
    s.config.transit_routers_max = 1;
    s.config.router_ttl_responsive = 0.8;
    s.config.router_ping_responsive = 0.8;
    s.config.host_ping_responsive = 0.7;
    s.config.host_rr_responsive_given_ping = 0.6;
    shapes.push_back(s);
  }
  {
    ShapeSpec s{"ecmp4", tiny_config()};
    s.config.intra_extra_edge_prob = 0.9;
    s.config.tier1_routers_min = 2;
    s.config.tier1_routers_max = 2;
    s.config.transit_routers_min = 2;
    s.config.transit_routers_max = 2;
    shapes.push_back(s);
  }
  return shapes;
}

std::vector<PresetSpec> make_presets() {
  std::vector<PresetSpec> presets;
  presets.push_back({"revtr2", core::EngineConfig::revtr2()});
  presets.push_back({"revtr1", core::EngineConfig::revtr1()});
  {
    PresetSpec p{"revtr2-nocache", core::EngineConfig::revtr2()};
    p.config.use_cache = false;
    presets.push_back(p);
  }
  {
    PresetSpec p{"revtr2+ts", core::EngineConfig::revtr2()};
    p.config.use_timestamp = true;
    presets.push_back(p);
  }
  {
    PresetSpec p{"revtr2-norratlas", core::EngineConfig::revtr2()};
    p.config.use_rr_atlas = false;
    presets.push_back(p);
  }
  {
    PresetSpec p{"revtr2+interdomain", core::EngineConfig::revtr2()};
    p.config.allow_interdomain_symmetry = true;
    presets.push_back(p);
  }
  {
    PresetSpec p{"revtr1+ingress", core::EngineConfig::revtr1()};
    p.config.use_ingress_selection = true;
    presets.push_back(p);
  }
  {
    PresetSpec p{"revtr2+dbrverify", core::EngineConfig::revtr2()};
    p.config.verify_destination_based_routing = true;
    presets.push_back(p);
  }
  return presets;
}

std::vector<FaultSchedule> make_schedules() {
  return {
      FaultSchedule{"none", 0.0, false, 0, false, 0},
      FaultSchedule{"loss2", 0.02, false, 0, false, 0},
      FaultSchedule{"loss10", 0.10, false, 0, false, 0},
      FaultSchedule{"spoof-dead", 0.0, true, 0, false, 0},
      FaultSchedule{"rr-limit1", 0.0, false, 1, false, 0},
      FaultSchedule{"rr-limit3", 0.0, false, 3, false, 0},
      FaultSchedule{"stale-atlas", 0.0, false, 0, true, 0},
      FaultSchedule{"vp-filter2", 0.0, false, 0, false, 2},
      FaultSchedule{"vp-filter3", 0.0, false, 0, false, 3},
      FaultSchedule{"spoof-dead+stale", 0.0, true, 0, true, 0},
      FaultSchedule{"loss5+rr-limit2", 0.05, false, 2, false, 0},
      FaultSchedule{"stale+vp-filter2", 0.0, false, 0, true, 2},
  };
}

probing::FaultPolicy make_policy(const FaultSchedule& schedule,
                                 const topology::Topology& topo) {
  if (!schedule.drop_spoofed && schedule.rr_rate_limit == 0 &&
      schedule.filtered_vp_stride == 0) {
    return {};
  }
  std::unordered_set<HostId> filtered;
  if (schedule.filtered_vp_stride > 0) {
    const auto vps = topo.vantage_points();
    // Never filter vps[0]: it doubles as the measurement source, and the
    // schedule models losing *other* vantage points.
    for (std::size_t i = schedule.filtered_vp_stride - 1; i < vps.size();
         i += schedule.filtered_vp_stride) {
      filtered.insert(vps[i]);
    }
  }
  return [schedule, filtered = std::move(filtered),
          option_probes = std::unordered_map<std::uint32_t, std::uint32_t>{}](
             const ProbeEvent& event) mutable {
    if (schedule.drop_spoofed && event.spoof_as.has_value()) return true;
    if (!filtered.empty() && filtered.contains(event.from)) return true;
    if (schedule.rr_rate_limit > 0 && event.type != ProbeType::kPing) {
      auto& count = option_probes[event.target.value()];
      if (++count > schedule.rr_rate_limit) return true;
    }
    return false;
  };
}

// The per-topology tower, shared across every (preset, schedule) state that
// runs on it. Declaration order matters (members reference earlier ones),
// mirroring eval::Lab without depending on the eval layer.
struct Tower {
  explicit Tower(const topology::TopologyConfig& config)
      : topo(topology::TopologyBuilder::build(config)),
        bgp(topo),
        intra(topo),
        plane(topo, bgp, intra),
        ip2as(topo),
        relationships(topo) {}

  topology::Topology topo;
  routing::BgpTable bgp;
  routing::IntraRouting intra;
  routing::ForwardingPlane plane;
  asmap::IpToAs ip2as;
  asmap::AsRelationships relationships;
};

struct Endpoints {
  HostId source = topology::kInvalidId;
  HostId destination = topology::kInvalidId;
  bool valid() const noexcept {
    return source != topology::kInvalidId &&
           destination != topology::kInvalidId && source != destination;
  }
};

Endpoints pick_endpoints(const topology::Topology& topo) {
  Endpoints e;
  const auto vps = topo.vantage_points();
  if (!vps.empty()) e.source = vps[0];
  for (const auto& host : topo.hosts()) {
    if (host.id == e.source || host.is_vantage_point || host.is_probe_host) {
      continue;
    }
    if (!host.ping_responsive) continue;
    e.destination = host.id;
    break;
  }
  if (e.destination == topology::kInvalidId) {
    for (const auto& host : topo.hosts()) {
      if (host.id != e.source) {
        e.destination = host.id;
        break;
      }
    }
  }
  return e;
}

// Everything a result asserts about the measured path: status plus the hop
// sequence with provenance. Two results with equal signatures told the user
// the same thing, whatever their probe accounting looked like.
std::string signature_of(const core::ReverseTraceroute& result) {
  std::string sig = core::to_string(result.status);
  for (const auto& hop : result.hops) {
    sig += '|';
    sig += hop.addr.to_string();
    sig += '#';
    sig += core::to_string(hop.source);
  }
  return sig;
}

void record_violations(std::vector<Violation>&& violations,
                       const std::string& state_label,
                       const CheckerOptions& options, CheckerSummary& out) {
  for (auto& violation : violations) {
    ++out.total_violations;
    ++out.by_invariant[static_cast<std::size_t>(violation.id)];
    if (out.samples.size() < options.max_reported) {
      out.samples.push_back(state_label + ": " + to_string(violation.id) +
                            ": " + violation.detail);
    }
  }
}

void run_state(const Tower& tower, const Endpoints& endpoints,
               const PresetSpec& preset, const FaultSchedule& schedule,
               std::uint64_t state_seed, const std::string& state_label,
               const CheckerOptions& options, CheckerSummary& out) {
  sim::Network network(tower.topo, tower.plane, state_seed);
  network.set_loss_rate(schedule.loss_rate);
  probing::Prober prober(network);
  ProbeLog log;
  prober.set_observer(&log);
  if (auto policy = make_policy(schedule, tower.topo)) {
    prober.set_fault_policy(std::move(policy));
  }

  util::SimClock clock;
  util::Rng rng(util::mix_hash(state_seed, 0xa77a5));
  atlas::TracerouteAtlas atlas(prober, tower.topo);
  vpselect::IngressDiscovery ingress(prober, tower.topo);
  core::RevtrEngine engine(prober, tower.topo, atlas, ingress, tower.ip2as,
                           tower.relationships, preset.config, state_seed);

  atlas.build(endpoints.source, 3, rng, clock.now());
  atlas.build_rr_alias_index(endpoints.source);
  core::AdjacencyMap adjacencies;
  if (preset.config.use_timestamp) {
    for (const auto& tr : atlas.traceroutes(endpoints.source)) {
      adjacencies.add_path(tr.hops);
    }
    engine.set_adjacency_provider(adjacencies.provider());
  }
  if (schedule.stale_atlas) {
    clock.advance(preset.config.cache_ttl + util::SimClock::kSecond);
  }

  // Two measurements of the same pair per state: the first populates the RR
  // cache, the second replays it (when the preset caches), so cache-replay
  // provenance is inside the explored state space.
  const char* const round_names[] = {"", " (cached)"};
  const std::size_t rounds = preset.config.use_cache ? 2 : 1;
  std::optional<core::ReverseTraceroute> blocking_result;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto mark = log.mark();
    // Every explored state is traced, so I6 (span probe attribution) runs
    // across the full (shape × preset × schedule) grid.
    obs::Trace trace;
    trace.request_index = round;
    engine.set_trace(&trace);
    const auto result =
        engine.measure(endpoints.destination, endpoints.source, clock);
    engine.set_trace(nullptr);
    if (round == 0) {
      blocking_result = result;
      switch (result.status) {
        case core::RevtrStatus::kComplete:
          ++out.completed;
          break;
        case core::RevtrStatus::kAbortedInterdomainSymmetry:
          ++out.aborted;
          break;
        case core::RevtrStatus::kUnreachable:
          ++out.unreachable;
          break;
      }
    }

    CheckContext ctx;
    ctx.topo = &tower.topo;
    ctx.ip2as = &tower.ip2as;
    ctx.config = &engine.config();
    ctx.window = log.since(mark);
    ctx.lifetime = log.lifetime();
    ctx.trace = &trace;
    auto violations = check_result(result, ctx);

    auto oracle = check_against_truth(result, network, options.oracle_salts);
    out.oracle_pairs += oracle.pairs_checked;
    out.oracle_permitted += oracle.permitted_divergences;
    for (auto& violation : oracle.violations) {
      violations.push_back(std::move(violation));
    }
    record_violations(std::move(violations), state_label + round_names[round],
                      options, out);
  }

  // --- Staged twin (I7). ---------------------------------------------------
  // Replay the request as two identical resumable RequestTasks multiplexed
  // over one ProbeScheduler, on a fresh but identically-seeded world. The
  // deliberately tiny window/token settings force throttling and multi-round
  // scheduling; the twins' identical demand streams make every wire probe a
  // coalescing opportunity. I7 re-checks the audit adversarially. For
  // order-insensitive fault schedules the signatures must also match the
  // blocking run exactly — loss draws and RR rate-limit counters depend on
  // wire order, which staging legitimately changes, so those schedules only
  // get the audit checks.
  {
    sim::Network network2(tower.topo, tower.plane, state_seed);
    network2.set_loss_rate(schedule.loss_rate);
    probing::Prober prober2(network2);
    if (auto policy = make_policy(schedule, tower.topo)) {
      prober2.set_fault_policy(std::move(policy));
    }
    util::SimClock build_clock;
    util::Rng rng2(util::mix_hash(state_seed, 0xa77a5));
    atlas::TracerouteAtlas atlas2(prober2, tower.topo);
    vpselect::IngressDiscovery ingress2(prober2, tower.topo);
    core::RevtrEngine engine2(prober2, tower.topo, atlas2, ingress2,
                              tower.ip2as, tower.relationships, preset.config,
                              state_seed);
    atlas2.build(endpoints.source, 3, rng2, build_clock.now());
    atlas2.build_rr_alias_index(endpoints.source);
    core::AdjacencyMap adjacencies2;
    if (preset.config.use_timestamp) {
      for (const auto& tr : atlas2.traceroutes(endpoints.source)) {
        adjacencies2.add_path(tr.hops);
      }
      engine2.set_adjacency_provider(adjacencies2.provider());
    }

    sched::SchedOptions sched_options;
    sched_options.vp_window = 2;
    sched_options.vp_tokens_per_round = 2;
    sched_options.vp_token_burst = 4;
    sched::ProbeScheduler scheduler(sched_options);
    sched::SchedulerAudit audit;
    scheduler.set_audit(&audit);

    // Each twin owns its clock and RNG; both streams start where the
    // blocking engine's did (rng_(state_seed) in the ctor), so a twin's
    // demand sequence replays the blocking measurement exactly.
    struct Twin {
      util::SimClock clock;
      util::Rng rng;
      std::unique_ptr<core::RequestTask> task;
      std::optional<core::ReverseTraceroute> result;
      explicit Twin(std::uint64_t seed) : rng(seed) {}
    };
    std::vector<Twin> twins;
    twins.reserve(2);
    twins.emplace_back(state_seed);
    twins.emplace_back(state_seed);

    std::size_t outstanding = 0;
    for (std::size_t t = 0; t < twins.size(); ++t) {
      Twin& twin = twins[t];
      if (schedule.stale_atlas) {
        twin.clock.advance(preset.config.cache_ttl + util::SimClock::kSecond);
      }
      twin.task =
          engine2.start_request(endpoints.destination, endpoints.source,
                                twin.clock, twin.rng, nullptr);
      const auto demands = twin.task->advance();
      if (twin.task->done()) {  // Atlas hit: no probes needed.
        twin.result = twin.task->take_result();
        continue;
      }
      scheduler.submit(t, 0, {demands.begin(), demands.end()});
      ++outstanding;
    }
    while (outstanding > 0) {
      scheduler.pump(prober2);
      for (auto& ready : scheduler.collect_ready(0)) {
        Twin& twin = twins[ready.task];
        twin.task->supply(ready.outcomes);
        const auto demands = twin.task->advance();
        if (twin.task->done()) {
          twin.result = twin.task->take_result();
          --outstanding;
          continue;
        }
        scheduler.submit(ready.task, 0, {demands.begin(), demands.end()});
      }
    }

    ++out.staged_twins;
    out.staged_coalesced += scheduler.stats().coalesced;

    auto violations = check_scheduler(audit, sched_options);
    const bool order_insensitive =
        schedule.loss_rate == 0.0 && schedule.rr_rate_limit == 0;
    if (order_insensitive) {
      const std::string sig_a = signature_of(*twins[0].result);
      const std::string sig_b = signature_of(*twins[1].result);
      if (sig_a != sig_b) {
        violations.push_back(
            Violation{InvariantId::kSchedulerConsistency,
                      "staged twins diverged: " + sig_a + " vs " + sig_b});
      }
      if (const std::string blocking_sig = signature_of(*blocking_result);
          sig_a != blocking_sig) {
        violations.push_back(Violation{
            InvariantId::kSchedulerConsistency,
            "staged result " + sig_a + " diverges from blocking " +
                blocking_sig});
      }
    }
    record_violations(std::move(violations), state_label + " (staged)",
                      options, out);
  }
}

}  // namespace

std::span<const FaultSchedule> default_fault_schedules() {
  static const std::vector<FaultSchedule> schedules = make_schedules();
  return schedules;
}

std::span<const PresetSpec> default_presets() {
  static const std::vector<PresetSpec> presets = make_presets();
  return presets;
}

std::span<const ShapeSpec> default_shapes() {
  static const std::vector<ShapeSpec> shapes = make_shapes();
  return shapes;
}

CheckerSummary run_model_checker(const CheckerOptions& options) {
  CheckerSummary out;
  const auto shapes = default_shapes();
  const auto presets = default_presets();
  const auto schedules = default_fault_schedules();

  for (std::size_t shape_idx = 0; shape_idx < shapes.size(); ++shape_idx) {
    for (std::size_t seed_idx = 0; seed_idx < options.seeds_per_shape;
         ++seed_idx) {
      topology::TopologyConfig config = shapes[shape_idx].config;
      config.seed = util::mix_hash(0x5eed, shape_idx, seed_idx);
      const Tower tower(config);
      const Endpoints endpoints = pick_endpoints(tower.topo);
      if (!endpoints.valid()) continue;

      for (std::size_t preset_idx = 0; preset_idx < presets.size();
           ++preset_idx) {
        for (std::size_t sched_idx = 0; sched_idx < schedules.size();
             ++sched_idx) {
          if (options.max_states > 0 && out.states >= options.max_states) {
            return out;
          }
          ++out.states;
          const auto state_seed = util::mix_hash(
              util::mix_hash(shape_idx, seed_idx), preset_idx, sched_idx);
          const std::string label =
              std::string(shapes[shape_idx].name) + "/s" +
              std::to_string(seed_idx) + "/" + presets[preset_idx].name + "/" +
              schedules[sched_idx].name;
          run_state(tower, endpoints, presets[preset_idx],
                    schedules[sched_idx], state_seed, label, options, out);
        }
      }
    }
  }
  return out;
}

}  // namespace revtr::analysis
