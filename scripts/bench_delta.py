#!/usr/bin/env python3
"""Bench-delta regression gate: fresh BENCH_*.json vs committed baselines.

Compares every artifact in --fresh against the file of the same name in
--baselines and prints a per-metric delta table. Three headline metrics are
gated; the rest of the shared top-level numeric fields are informational:

  requests_per_second   higher is better   fails on a >10% drop
  probes_per_second     higher is better   fails on a >10% drop
  latency_p99_us        lower is better    fails on a >15% rise

Exit status is non-zero iff any gated metric regressed past its tolerance,
so `scripts/check.sh` can use the script directly as a gate while
`scripts/run_all.sh` appends `|| true` to keep full-scale runs advisory
(full-scale numbers are only comparable when the machine is quiet; see
README "Bench-delta gate").

Baselines live in `bench/baselines/` (full-scale) and
`bench/baselines/smoke/` (the scaled-down flags bench_smoke in check.sh
uses). Refresh procedure is documented in the README; in short: run the
matching bench flags on an otherwise idle machine and copy the artifact over
the committed one in the same commit as the change that moved the numbers.

Stdlib only — no third-party imports.
"""

import argparse
import json
import math
import os
import sys

# metric -> (direction, tolerance). direction "higher": regress when the
# fresh value drops below baseline*(1-tol); "lower": regress when it rises
# above baseline*(1+tol).
GATED = {
    "requests_per_second": ("higher", 0.10),
    "probes_per_second": ("higher", 0.10),
    "latency_p99_us": ("lower", 0.15),
}

# Informational fields worth a table row when both sides have them, in
# display order. Anything else numeric and shared is appended alphabetically.
PREFERRED_INFO = [
    "single_worker_requests_per_second",
    "single_worker_probes_per_second",
    "latency_p50_us",
    "speedup_at_4_workers",
    "effective_per_second",
    "revtrs_per_day",
    "speedup",
    "benchmark_count",
    "peak_rss_bytes",
]


def numeric_fields(doc):
    """Top-level scalar numeric fields (bools excluded)."""
    out = {}
    for key, value in doc.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(value):
            out[key] = float(value)
    return out


def pct_delta(base, fresh):
    if base == 0.0:
        return None
    return (fresh - base) / base * 100.0


def fmt_value(value):
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.2f}"


def compare_artifact(name, base_doc, fresh_doc, table):
    """Append rows for one artifact; return list of regression strings."""
    base = numeric_fields(base_doc)
    fresh = numeric_fields(fresh_doc)
    shared = set(base) & set(fresh)
    ordered = [m for m in GATED if m in shared]
    ordered += [m for m in PREFERRED_INFO if m in shared]
    ordered += sorted(shared - set(ordered))

    regressions = []
    for metric in ordered:
        delta = pct_delta(base[metric], fresh[metric])
        status = "info"
        if metric in GATED:
            direction, tol = GATED[metric]
            status = "ok"
            if delta is None:
                status = "n/a (zero baseline)"
            elif direction == "higher":
                if fresh[metric] < base[metric] * (1.0 - tol):
                    status = "REGRESSION"
                elif fresh[metric] > base[metric] * (1.0 + tol):
                    status = "improved"
            else:
                if fresh[metric] > base[metric] * (1.0 + tol):
                    status = "REGRESSION"
                elif fresh[metric] < base[metric] * (1.0 - tol):
                    status = "improved"
            if status == "REGRESSION":
                regressions.append(
                    f"{name}: {metric} {fmt_value(base[metric])} -> "
                    f"{fmt_value(fresh[metric])} ({delta:+.1f}%, tolerance "
                    f"{'-' if direction == 'higher' else '+'}{tol:.0%})"
                )
        table.append(
            (
                name,
                metric,
                fmt_value(base[metric]),
                fmt_value(fresh[metric]),
                "n/a" if delta is None else f"{delta:+.1f}%",
                status,
            )
        )
    return regressions


def trajectory_line(name, base_doc, fresh_doc):
    base = numeric_fields(base_doc)
    fresh = numeric_fields(fresh_doc)
    for metric in list(GATED) + PREFERRED_INFO:
        if metric in base and metric in fresh:
            delta = pct_delta(base[metric], fresh[metric])
            arrow = f"{fmt_value(base[metric])} -> {fmt_value(fresh[metric])}"
            pct = "n/a" if delta is None else f"{delta:+.1f}%"
            return f"trajectory: {name} {metric} {arrow} ({pct})"
    return f"trajectory: {name} (no shared headline metric)"


def print_table(table):
    headers = ("artifact", "metric", "baseline", "fresh", "delta", "status")
    widths = [len(h) for h in headers]
    for row in table:
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*headers))
    print(fmt.format(*("-" * w for w in widths)))
    for row in table:
        print(fmt.format(*row))


def main():
    parser = argparse.ArgumentParser(
        description="Compare fresh BENCH_*.json against committed baselines."
    )
    parser.add_argument(
        "--baselines", required=True, help="directory of committed baselines"
    )
    parser.add_argument(
        "--fresh", required=True, help="directory of freshly written artifacts"
    )
    parser.add_argument(
        "--trajectory",
        action="store_true",
        help="print one headline-metric trajectory line per artifact",
    )
    args = parser.parse_args()

    if not os.path.isdir(args.baselines):
        print(f"bench-delta: baseline dir missing: {args.baselines}",
              file=sys.stderr)
        return 2
    baseline_names = sorted(
        f
        for f in os.listdir(args.baselines)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not baseline_names:
        print(f"bench-delta: no BENCH_*.json baselines in {args.baselines}",
              file=sys.stderr)
        return 2

    table = []
    regressions = []
    trajectories = []
    compared = 0
    for name in baseline_names:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.isfile(fresh_path):
            print(f"bench-delta: {name}: skipped (no fresh artifact)")
            continue
        with open(os.path.join(args.baselines, name)) as fh:
            base_doc = json.load(fh)
        with open(fresh_path) as fh:
            fresh_doc = json.load(fh)
        regressions += compare_artifact(name, base_doc, fresh_doc, table)
        trajectories.append(trajectory_line(name, base_doc, fresh_doc))
        compared += 1

    if table:
        print_table(table)
    if args.trajectory:
        for line in trajectories:
            print(line)
    if compared == 0:
        print("bench-delta: nothing compared (no fresh artifacts)",
              file=sys.stderr)
        return 2
    if regressions:
        print(f"bench-delta: {len(regressions)} gated regression(s):",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench-delta: ok ({compared} artifact(s), no gated regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
