// Experiment harness: assembles the full stack in one object.
//
// Every bench/example needs the same tower — topology, routing, simulator,
// prober, AS datasets, atlas, ingress discovery, engine. Lab wires it
// together in declaration order (members reference earlier members) and
// offers the common setup steps: bootstrapping sources and precomputing the
// offline ingress survey.
#pragma once

#include <vector>

#include "asmap/asmap.h"
#include "atlas/atlas.h"
#include "core/revtr.h"
#include "probing/prober.h"
#include "routing/forwarding.h"
#include "sim/network.h"
#include "topology/builder.h"
#include "util/rng.h"

namespace revtr::eval {

class Lab {
 public:
  explicit Lab(const topology::TopologyConfig& topo_config,
               core::EngineConfig engine_config = core::EngineConfig::revtr2(),
               std::uint64_t seed = 7);

  // Builds the atlas (Q1) and RR alias index (Q2) for a source.
  void bootstrap_source(topology::HostId source, std::size_t atlas_size);

  // Runs the offline ingress survey (Q3) for the given prefixes, leaving
  // probe counters untouched so online accounting stays clean.
  void precompute_ingresses(std::span<const topology::PrefixId> prefixes);
  void precompute_all_ingresses();

  // Hosts suitable as measurement destinations (hitlist-style).
  std::vector<topology::HostId> responsive_destinations(
      bool require_rr = false) const;

  // Customer prefixes (where destinations live).
  std::vector<topology::PrefixId> customer_prefixes() const;

  topology::Topology topo;
  routing::BgpTable bgp;
  routing::IntraRouting intra;
  routing::ForwardingPlane plane;
  sim::Network network;
  probing::Prober prober;
  asmap::IpToAs ip2as;
  asmap::AsRelationships relationships;
  atlas::TracerouteAtlas atlas;
  vpselect::IngressDiscovery ingress;
  core::RevtrEngine engine;
  util::Rng rng;
};

}  // namespace revtr::eval
