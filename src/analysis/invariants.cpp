#include "analysis/invariants.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/probe_log.h"
#include "util/rng.h"

namespace revtr::analysis {

namespace {
using net::Ipv4Addr;
using probing::ProbeEvent;
using probing::ProbeType;

bool concrete(const core::ReverseHop& hop) {
  return hop.source != core::HopSource::kSuspiciousGap &&
         !hop.addr.is_unspecified();
}

// A hop the engine could have continued the measurement from (private
// addresses are recorded but never become `current`).
bool walkable(const core::ReverseHop& hop) {
  return concrete(hop) && !hop.addr.is_private();
}

bool any_event(std::span<const ProbeEvent> events,
               bool (*predicate)(const ProbeEvent&, Ipv4Addr,
                                 topology::HostId, Ipv4Addr),
               Ipv4Addr addr, topology::HostId source, Ipv4Addr src_addr) {
  return std::any_of(events.begin(), events.end(), [&](const ProbeEvent& e) {
    return predicate(e, addr, source, src_addr);
  });
}

bool justifies_rr(const ProbeEvent& e, Ipv4Addr addr, topology::HostId source,
                  Ipv4Addr /*src_addr*/) {
  return e.type == ProbeType::kRecordRoute && e.from == source &&
         e.responded &&
         std::find(e.slots.begin(), e.slots.end(), addr) != e.slots.end();
}

bool justifies_spoofed_rr(const ProbeEvent& e, Ipv4Addr addr,
                          topology::HostId /*source*/, Ipv4Addr src_addr) {
  return e.type == ProbeType::kSpoofedRecordRoute && e.spoof_as == src_addr &&
         e.responded &&
         std::find(e.slots.begin(), e.slots.end(), addr) != e.slots.end();
}

bool justifies_timestamp(const ProbeEvent& e, Ipv4Addr addr,
                         topology::HostId /*source*/, Ipv4Addr /*src_addr*/) {
  return (e.type == ProbeType::kTimestamp ||
          e.type == ProbeType::kSpoofedTimestamp) &&
         e.responded && e.prespec.size() >= 2 && e.prespec[1] == addr &&
         e.stamped.size() >= 2 && e.stamped[0] && e.stamped[1];
}

bool justifies_atlas(const ProbeEvent& e, Ipv4Addr addr,
                     topology::HostId /*source*/, Ipv4Addr src_addr) {
  return e.type == ProbeType::kTraceroute && e.target == src_addr &&
         e.tr_reached &&
         std::find(e.tr_hops.begin(), e.tr_hops.end(), addr) !=
             e.tr_hops.end();
}

bool justifies_symmetry(const ProbeEvent& e, Ipv4Addr addr,
                        topology::HostId source, Ipv4Addr /*src_addr*/) {
  return e.type == ProbeType::kTraceroute && e.from == source &&
         std::find(e.tr_hops.begin(), e.tr_hops.end(), addr) !=
             e.tr_hops.end();
}

void compare_counters(const char* label, const probing::ProbeCounters& charged,
                      const probing::ProbeCounters& emitted,
                      std::vector<Violation>& out) {
  const auto field = [&](const char* name, std::uint64_t got,
                         std::uint64_t want) {
    if (got == want) return;
    out.push_back(Violation{
        InvariantId::kBudget,
        std::string(label) + "." + name + ": charged " + std::to_string(got) +
            ", prober emitted " + std::to_string(want)});
  };
  field("ping", charged.ping, emitted.ping);
  field("rr", charged.rr, emitted.rr);
  field("spoofed_rr", charged.spoofed_rr, emitted.spoofed_rr);
  field("ts", charged.ts, emitted.ts);
  field("spoofed_ts", charged.spoofed_ts, emitted.spoofed_ts);
  field("traceroute_packets", charged.traceroute_packets,
        emitted.traceroute_packets);
  field("traceroutes", charged.traceroutes, emitted.traceroutes);
}

}  // namespace

std::string to_string(InvariantId id) {
  switch (id) {
    case InvariantId::kLoopFree:
      return "loop-free";
    case InvariantId::kTerminates:
      return "terminates";
    case InvariantId::kProvenance:
      return "provenance";
    case InvariantId::kBudget:
      return "budget";
    case InvariantId::kInterdomainSymmetry:
      return "interdomain-symmetry";
    case InvariantId::kOracle:
      return "oracle";
    case InvariantId::kTraceAttribution:
      return "trace-attribution";
    case InvariantId::kSchedulerConsistency:
      return "scheduler-consistency";
  }
  return "?";
}

std::vector<Violation> check_result(const core::ReverseTraceroute& result,
                                    const CheckContext& ctx) {
  std::vector<Violation> out;
  const auto& topo = *ctx.topo;
  const auto& config = *ctx.config;
  const Ipv4Addr src_addr = topo.host(result.source).addr;
  const Ipv4Addr dst_addr = topo.host(result.destination).addr;

  // --- I1a: loop freedom. ------------------------------------------------
  std::unordered_set<Ipv4Addr> seen;
  for (const auto& hop : result.hops) {
    if (!concrete(hop)) continue;
    if (!seen.insert(hop.addr).second) {
      out.push_back(Violation{InvariantId::kLoopFree,
                              "hop " + hop.addr.to_string() + " repeats"});
    }
  }

  // --- I1b: endpoints. ----------------------------------------------------
  if (result.hops.empty() ||
      result.hops.front().source != core::HopSource::kDestination ||
      result.hops.front().addr != dst_addr) {
    out.push_back(
        Violation{InvariantId::kTerminates, "path does not start at D"});
  }
  if (result.complete()) {
    // Complete paths end at the source: its address, its host, or an
    // interface of its access router (the last stamping point).
    std::optional<core::ReverseHop> last;
    for (const auto& hop : result.hops) {
      if (concrete(hop)) last = hop;
    }
    bool at_source = false;
    if (last.has_value()) {
      at_source = last->addr == src_addr;
      if (!at_source) {
        const auto host = topo.host_at(last->addr);
        at_source = host.has_value() && *host == result.source;
      }
      if (!at_source) {
        const auto iface = topo.interface_at(last->addr);
        at_source = iface.has_value() &&
                    iface->router == topo.host(result.source).attachment;
      }
    }
    if (!at_source) {
      out.push_back(Violation{
          InvariantId::kTerminates,
          "complete path ends at " +
              (last.has_value() ? last->addr.to_string() : std::string("?")) +
              ", not at source " + src_addr.to_string()});
    }
  }

  // --- I2: provenance. ----------------------------------------------------
  std::size_t symmetric_hops = 0;
  bool gap_hops = false, private_hops = false;
  for (std::size_t i = 0; i < result.hops.size(); ++i) {
    const auto& hop = result.hops[i];
    const auto unjustified = [&](const char* why) {
      out.push_back(Violation{
          InvariantId::kProvenance,
          "hop " + std::to_string(i) + " (" + hop.addr.to_string() + ", " +
              core::to_string(hop.source) + "): " + why});
    };
    switch (hop.source) {
      case core::HopSource::kDestination:
        if (i != 0) unjustified("kDestination past hop 0");
        break;
      case core::HopSource::kRecordRoute:
        if (!any_event(ctx.lifetime, justifies_rr, hop.addr, result.source,
                       src_addr)) {
          unjustified("no direct RR reply from S contains this address");
        }
        break;
      case core::HopSource::kSpoofedRecordRoute:
        if (!any_event(ctx.lifetime, justifies_spoofed_rr, hop.addr,
                       result.source, src_addr)) {
          unjustified("no spoofed-as-S RR reply contains this address");
        }
        break;
      case core::HopSource::kTimestamp:
        if (!any_event(ctx.lifetime, justifies_timestamp, hop.addr,
                       result.source, src_addr)) {
          unjustified("no double-stamped tsprespec probe confirms it");
        }
        break;
      case core::HopSource::kAtlasIntersection:
        if (!any_event(ctx.lifetime, justifies_atlas, hop.addr, result.source,
                       src_addr)) {
          unjustified("no source-reaching atlas traceroute contains it");
        }
        break;
      case core::HopSource::kAssumedSymmetric:
        ++symmetric_hops;
        if (hop.addr != src_addr &&
            !any_event(ctx.lifetime, justifies_symmetry, hop.addr,
                       result.source, src_addr)) {
          unjustified("no forward traceroute from S traversed it");
        }
        break;
      case core::HopSource::kSuspiciousGap:
        gap_hops = true;
        if (!hop.addr.is_unspecified()) unjustified("gap carries an address");
        break;
    }
    if (concrete(hop) && hop.addr.is_private()) private_hops = true;
  }
  if (symmetric_hops != result.symmetry_assumptions) {
    out.push_back(Violation{InvariantId::kProvenance,
                            "symmetry_assumptions=" +
                                std::to_string(result.symmetry_assumptions) +
                                " but path has " +
                                std::to_string(symmetric_hops)});
  }
  if (gap_hops != result.has_suspicious_gap) {
    out.push_back(
        Violation{InvariantId::kProvenance, "has_suspicious_gap flag wrong"});
  }
  if (private_hops != result.has_private_hops) {
    out.push_back(
        Violation{InvariantId::kProvenance, "has_private_hops flag wrong"});
  }

  // --- I3: budget. --------------------------------------------------------
  if (ctx.check_budget) {
    compare_counters("online", result.probes,
                     ProbeLog::tally(ctx.window, false), out);
    compare_counters("offline", result.offline_probes,
                     ProbeLog::tally(ctx.window, true), out);
    if (result.spoofed_batches > result.probes.spoofed_rr) {
      out.push_back(Violation{
          InvariantId::kBudget,
          std::to_string(result.spoofed_batches) +
              " spoofed batches but only " +
              std::to_string(result.probes.spoofed_rr) +
              " spoofed RR probes"});
    }
    const auto min_latency =
        static_cast<util::SimClock::Micros>(result.spoofed_batches) *
        config.spoof_batch_timeout;
    if (result.span.duration() < min_latency) {
      out.push_back(Violation{
          InvariantId::kBudget,
          "latency " + std::to_string(result.span.duration()) +
              "us below the batch-timeout floor " +
              std::to_string(min_latency) +
              "us (double-charging or missing charge, cf. §5.2.4)"});
    }
  }

  // --- I4: Q5 interdomain symmetry. ---------------------------------------
  bool crossed_interdomain = false;
  std::optional<core::ReverseHop> previous;
  for (const auto& hop : result.hops) {
    if (hop.source == core::HopSource::kAssumedSymmetric &&
        previous.has_value()) {
      const auto as_prev = ctx.ip2as->lookup(previous->addr);
      const auto as_hop = ctx.ip2as->lookup(hop.addr);
      const bool intradomain = as_prev && as_hop && *as_prev == *as_hop;
      if (!intradomain) {
        crossed_interdomain = true;
        if (!config.allow_interdomain_symmetry) {
          out.push_back(Violation{
              InvariantId::kInterdomainSymmetry,
              "assumed symmetry " + previous->addr.to_string() + " -> " +
                  hop.addr.to_string() +
                  " crosses an interdomain link; Q5 requires abort"});
        }
      }
    }
    if (walkable(hop)) previous = hop;
  }
  if (crossed_interdomain != result.used_interdomain_symmetry) {
    out.push_back(Violation{InvariantId::kInterdomainSymmetry,
                            "used_interdomain_symmetry flag wrong"});
  }
  if (config.allow_interdomain_symmetry &&
      result.status == core::RevtrStatus::kAbortedInterdomainSymmetry) {
    out.push_back(Violation{InvariantId::kInterdomainSymmetry,
                            "aborted although interdomain symmetry allowed"});
  }

  // --- I6: trace probe attribution. ---------------------------------------
  // Overflowed traces dropped spans, so their sum is legitimately short.
  if (ctx.trace != nullptr && !ctx.trace->overflowed()) {
    const std::uint64_t attributed = ctx.trace->attributed_probes();
    const std::uint64_t online = result.probes.total();
    if (attributed != online) {
      out.push_back(Violation{
          InvariantId::kTraceAttribution,
          "trace spans attribute " + std::to_string(attributed) +
              " online probes but the request's counters show " +
              std::to_string(online)});
    }
  }

  return out;
}

std::vector<Violation> check_scheduler(const sched::SchedulerAudit& audit,
                                       const sched::SchedOptions& options) {
  std::vector<Violation> out;

  // Index issues by id; ids must be unique (one per wire probe).
  std::unordered_map<std::uint64_t, const sched::SchedulerAudit::Issue*>
      issues;
  issues.reserve(audit.issues.size());
  for (const auto& issue : audit.issues) {
    if (!issues.emplace(issue.issue_id, &issue).second) {
      out.push_back(Violation{
          InvariantId::kSchedulerConsistency,
          "issue id " + std::to_string(issue.issue_id) + " recorded twice"});
    }
  }

  // Every coalesced delivery must ride a probe that was actually issued,
  // asked for the same content (coalesce key), and fanned out the very
  // outcome the wire probe measured (digest). A mismatch means a waiter got
  // an answer it could not have measured itself — the property that makes
  // coalescing invisible to results would be broken.
  for (const auto& delivery : audit.deliveries) {
    const auto it = issues.find(delivery.issue_id);
    if (it == issues.end()) {
      out.push_back(Violation{
          InvariantId::kSchedulerConsistency,
          "delivery references issue " + std::to_string(delivery.issue_id) +
              " which was never put on the wire"});
      continue;
    }
    const sched::SchedulerAudit::Issue& issue = *it->second;
    if (issue.key != delivery.key) {
      out.push_back(Violation{
          InvariantId::kSchedulerConsistency,
          "issue " + std::to_string(issue.issue_id) +
              ": delivery coalesce key " + std::to_string(delivery.key) +
              " != issued key " + std::to_string(issue.key)});
    }
    if (issue.digest != delivery.digest) {
      out.push_back(Violation{
          InvariantId::kSchedulerConsistency,
          "issue " + std::to_string(issue.issue_id) +
              ": delivered outcome digest differs from the issued probe's"});
    }
    if (issue.offline) {
      out.push_back(Violation{
          InvariantId::kSchedulerConsistency,
          "issue " + std::to_string(issue.issue_id) +
              " is offline work but was delivered to a coalesced waiter"});
    }
  }

  // Per-VP window: no vantage point issues more than vp_window wire probes
  // in one pump round. Offline jobs are not wire probes and are exempt.
  std::unordered_map<std::uint64_t, std::size_t> per_round_vp;
  for (const auto& issue : audit.issues) {
    if (issue.offline) continue;
    const std::uint64_t slot = util::mix_hash(issue.round, issue.vp);
    const std::size_t count = ++per_round_vp[slot];
    if (count == options.vp_window + 1) {  // Report each breach once.
      out.push_back(Violation{
          InvariantId::kSchedulerConsistency,
          "vp " + std::to_string(issue.vp) + " issued more than " +
              std::to_string(options.vp_window) + " probes in round " +
              std::to_string(issue.round)});
    }
  }

  return out;
}

}  // namespace revtr::analysis
