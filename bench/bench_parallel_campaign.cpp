// Parallel campaign scaling: wall-clock speedup from running one batch
// campaign on 1/2/4/8 real worker threads (service/parallel.h).
//
// The deployment's campaign throughput is latency-bound, not CPU-bound:
// a request spends most of its life waiting out 10 s spoofed-batch
// timeouts (§5.2.4), so additional workers overlap those waits even on a
// single core. --pacing holds each worker slot for that wait (real seconds
// per simulated second of request latency); --pacing=0 degenerates to a
// pure CPU benchmark where extra workers cannot help on one core.
//
// Besides timing, the bench asserts the driver's core promise: every worker
// count measures the *same* set of reverse traceroutes (per-request
// signature over endpoints, status, and hop sequence). The final line is a
// machine-readable JSON object.
#include <algorithm>
#include <ctime>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/parallel.h"
#include "util/json.h"

using namespace revtr;

namespace {

std::uint64_t campaign_signature(
    const std::vector<core::ReverseTraceroute>& results) {
  // Order-sensitive hash over each request's identity: results are indexed
  // by input position, so equal hashes mean equal measurement sets.
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (const auto& r : results) {
    std::string s = std::to_string(r.destination) + ">" +
                    std::to_string(r.source) + ":" + core::to_string(r.status);
    for (const auto& hop : r.hops) {
      s += "|" + hop.addr.to_string() + "/" + core::to_string(hop.source);
    }
    acc = util::mix_hash(acc, std::hash<std::string>{}(s));
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  auto setup = bench::parse_setup(flags);
  setup.revtrs = static_cast<std::size_t>(flags.get_int("revtrs", 500));
  const double pacing = flags.get_double("pacing", 2e-3);
  const auto dup_revtrs =
      static_cast<std::size_t>(flags.get_int("dup-revtrs", 96));
  const std::size_t sample_every = static_cast<std::size_t>(
      flags.get_int("trace-sample", 8));
  const int overhead_reps =
      std::max(1, static_cast<int>(flags.get_int("overhead-reps", 5)));
  const auto overhead_revtrs =
      static_cast<std::size_t>(flags.get_int("overhead-revtrs", 4000));
  bench::warn_unknown_flags(flags);
  bench::print_header("Parallel campaign scaling (real threads)", setup);

  eval::Lab lab(setup.topo);
  const auto source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, setup.atlas_size);
  std::vector<std::pair<topology::HostId, topology::HostId>> pairs;
  const auto dests = lab.responsive_destinations(true);
  for (std::size_t i = 0; i < setup.revtrs; ++i) {
    pairs.emplace_back(dests[i % dests.size()], source);
  }

  const service::CampaignDeps deps{lab.topo,  lab.plane, lab.atlas,
                                   lab.ingress, lab.ip2as, lab.relationships};
  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};

  util::TextTable table({"workers", "wall (s)", "speedup", "revtr/s (wall)",
                         "completed", "probes"});
  util::Json runs = util::Json::array();
  double baseline_wall = 0;
  std::uint64_t baseline_signature = 0;
  bool identical_sets = true;
  double speedup_at_4 = 0;

  for (const std::size_t workers : worker_counts) {
    service::ParallelCampaignOptions options;
    options.workers = workers;
    options.seed = setup.seed;
    options.pacing_scale = pacing;
    service::ParallelCampaignDriver driver(deps, options);
    const auto report = driver.run(pairs);

    const std::uint64_t sig = campaign_signature(report.results);
    if (baseline_wall == 0) {
      baseline_wall = report.wall_seconds;
      baseline_signature = sig;
    }
    identical_sets = identical_sets && (sig == baseline_signature);
    const double speedup = baseline_wall / report.wall_seconds;
    if (workers == 4) speedup_at_4 = speedup;
    const double rate =
        static_cast<double>(pairs.size()) / report.wall_seconds;

    table.add_row({std::to_string(workers), util::cell(report.wall_seconds, 2),
                   util::cell(speedup, 2), util::cell(rate, 1),
                   std::to_string(report.stats.completed),
                   util::cell_count(report.stats.probes.total())});

    util::Json run = util::Json::object();
    run["workers"] = static_cast<double>(workers);
    run["wall_seconds"] = report.wall_seconds;
    run["speedup"] = speedup;
    run["revtrs_per_second"] = rate;
    run["completed"] = static_cast<double>(report.stats.completed);
    run["aborted"] = static_cast<double>(report.stats.aborted);
    run["unreachable"] = static_cast<double>(report.stats.unreachable);
    run["probes"] = static_cast<double>(report.stats.probes.total());
    run["signature"] = std::to_string(sig);
    runs.push_back(std::move(run));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("identical measurement sets across worker counts: %s\n",
              identical_sets ? "yes" : "NO — DETERMINISM BROKEN");

  // --- Duplicate-heavy workload: blocking vs staged coalescing. -----------
  // Many requests over few destinations is the cross-request coalescing
  // sweet spot (think a campaign re-measuring a small target set from one
  // source). Engine caches are off on BOTH sides so every probe a request
  // wants is genuinely demanded — the shared RR cache would otherwise hide
  // the comparison — and the staged scheduler's in-flight dedup is the only
  // thing collapsing duplicates.
  const std::size_t dup_dests = std::min<std::size_t>(4, dests.size());
  std::vector<std::pair<topology::HostId, topology::HostId>> dup_pairs;
  for (std::size_t i = 0; i < dup_revtrs; ++i) {
    dup_pairs.emplace_back(dests[i % dup_dests], source);
  }
  const auto dup_run = [&](service::EngineMode mode) {
    service::ParallelCampaignOptions options;
    options.workers = 4;
    options.seed = setup.seed;
    options.pacing_scale = pacing;
    options.engine.use_cache = false;
    options.mode = mode;
    service::ParallelCampaignDriver driver(deps, options);
    return driver.run(dup_pairs);
  };
  const auto dup_blocking = dup_run(service::EngineMode::kBlocking);
  const auto dup_staged = dup_run(service::EngineMode::kStaged);
  const bool dup_identical = campaign_signature(dup_blocking.results) ==
                             campaign_signature(dup_staged.results);
  const std::uint64_t blocking_issued = dup_blocking.stats.probes.total();
  const std::uint64_t staged_issued = dup_staged.stats.probes.total();
  const double issued_reduction =
      staged_issued == 0 ? 0.0
                         : static_cast<double>(blocking_issued) /
                               static_cast<double>(staged_issued);
  const auto& dup_sched = *dup_staged.sched;
  std::printf("\nduplicate-heavy (%zu requests over %zu destinations, "
              "caches off, 4 workers):\n",
              dup_pairs.size(), dup_dests);
  std::printf("  blocking: %llu probes issued, %.2f s wall\n",
              static_cast<unsigned long long>(blocking_issued),
              dup_blocking.wall_seconds);
  std::printf("  staged:   %llu probes issued (%llu demands, %llu "
              "coalesced), %.2f s wall\n",
              static_cast<unsigned long long>(staged_issued),
              static_cast<unsigned long long>(dup_sched.demanded),
              static_cast<unsigned long long>(dup_sched.coalesced),
              dup_staged.wall_seconds);
  std::printf("  probes-issued reduction: %.2fx; identical measurement "
              "sets: %s\n",
              issued_reduction,
              dup_identical ? "yes" : "NO — DETERMINISM BROKEN");

  // --- Instrumentation overhead: metrics-off vs metrics-on. ---------------
  // Pacing is disabled here: with pacing, wall time is sleep-dominated and
  // any overhead vanishes into it. Pacing off is the worst case for the
  // sharded counters — a pure CPU race through the probe path. The ratio is
  // taken over process CPU time, not wall: on a loaded shared box, wall
  // time folds in whatever else the scheduler ran, while CPU time charges
  // exactly the cycles this campaign burned — which is what the
  // instrumentation adds to and what its wall-time cost is on a quiet host.
  // A sub-5% effect needs runs well clear of scheduler jitter: give the
  // overhead section its own workload of at least --overhead-revtrs
  // requests (default 4000), whatever the scaling section used.
  std::vector<std::pair<topology::HostId, topology::HostId>> overhead_pairs =
      pairs;
  while (overhead_pairs.size() < overhead_revtrs) {
    overhead_pairs.emplace_back(
        dests[overhead_pairs.size() % dests.size()], source);
  }
  obs::MetricsRegistry registry;
  obs::TraceSink sink;
  struct OverheadRun {
    double wall = 0;
    double cpu = 0;
    std::uint64_t probes = 0;
  };
  const auto timed_run = [&](std::size_t workers, bool with_metrics) {
    service::ParallelCampaignOptions options;
    options.workers = workers;
    options.seed = setup.seed;
    options.pacing_scale = 0.0;
    if (with_metrics) {
      options.metrics = &registry;
      options.trace_sink = &sink;
      options.trace_sample_every = sample_every;
    }
    service::ParallelCampaignDriver driver(deps, options);
    timespec begin{}, end{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &begin);
    OverheadRun run;
    const auto report = driver.run(overhead_pairs);
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &end);
    run.wall = report.wall_seconds;
    run.probes = report.stats.probes.total();
    run.cpu = static_cast<double>(end.tv_sec - begin.tv_sec) +
              static_cast<double>(end.tv_nsec - begin.tv_nsec) * 1e-9;
    return run;
  };
  // Interleaved pairs: each rep times off then on back to back, so slow
  // drift (CPU frequency, background load) hits both sides of the same
  // pair equally. The median of the per-pair CPU ratios is then robust to
  // the occasional rep landing on a busy scheduler slot.
  OverheadRun best_off, best_on;
  std::vector<double> ratios;
  for (int rep = 0; rep < overhead_reps; ++rep) {
    const OverheadRun off = timed_run(4, false);
    const OverheadRun on = timed_run(4, true);
    if (rep == 0 || off.cpu < best_off.cpu) best_off = off;
    if (rep == 0 || on.cpu < best_on.cpu) best_on = on;
    if (off.cpu > 0) ratios.push_back(on.cpu / off.cpu);
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct =
      ratios.empty() ? 0.0 : (ratios[ratios.size() / 2] - 1.0) * 100.0;
  std::printf("instrumentation: %.3f s CPU off, %.3f s CPU on (metrics + "
              "1/%zu trace sampling) -> %+.1f%% overhead\n",
              best_off.cpu, best_on.cpu, sample_every, overhead_pct);

  // --- Single-worker pure-CPU throughput. ---------------------------------
  // The per-core counterpart of the scaling section: one worker, pacing off,
  // metrics on. This is the single-thread hot-path number ROADMAP item 3
  // tracks across PRs — scripts/bench_delta.py gates regressions on it.
  OverheadRun best_single;
  for (int rep = 0; rep < overhead_reps; ++rep) {
    const OverheadRun single = timed_run(1, true);
    if (rep == 0 || single.cpu < best_single.cpu) best_single = single;
  }
  const double single_worker_rps =
      best_single.wall > 0
          ? static_cast<double>(overhead_pairs.size()) / best_single.wall
          : 0.0;
  const double single_worker_pps =
      best_single.wall > 0
          ? static_cast<double>(best_single.probes) / best_single.wall
          : 0.0;
  std::printf("single worker (pacing off, metrics on): %.1f requests/s, "
              "%.0f probes/s\n",
              single_worker_rps, single_worker_pps);

  // Headline throughput and latency: the best metrics-on overhead rep (4
  // workers, pacing off) is the pure-CPU service rate; request latency
  // quantiles come from the revtr_request_latency_us histogram the same
  // runs populated in `registry`.
  const double requests_per_second =
      best_on.wall > 0
          ? static_cast<double>(overhead_pairs.size()) / best_on.wall
          : 0.0;
  const double probes_per_second =
      best_on.wall > 0 ? static_cast<double>(best_on.probes) / best_on.wall
                       : 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  for (const auto& h : registry.snapshot().histograms) {
    if (h.name.rfind("revtr_request_latency_us", 0) == 0) {
      latency_p50_us = obs::histogram_quantile(h, 0.50);
      latency_p99_us = obs::histogram_quantile(h, 0.99);
      break;
    }
  }
  std::printf("throughput: %.1f requests/s, %.0f probes/s | simulated "
              "request latency p50 %.0f us, p99 %.0f us | peak RSS %.1f MiB\n",
              requests_per_second, probes_per_second, latency_p50_us,
              latency_p99_us,
              static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0));

  util::Json out = util::Json::object();
  out["revtrs"] = static_cast<double>(pairs.size());
  out["pacing_scale"] = pacing;
  out["identical_sets"] = identical_sets;
  out["speedup_at_4_workers"] = speedup_at_4;
  out["requests_per_second"] = requests_per_second;
  out["probes_per_second"] = probes_per_second;
  out["single_worker_requests_per_second"] = single_worker_rps;
  out["single_worker_probes_per_second"] = single_worker_pps;
  out["latency_p50_us"] = latency_p50_us;
  out["latency_p99_us"] = latency_p99_us;
  out["peak_rss_bytes"] = static_cast<double>(bench::peak_rss_bytes());
  out["runs"] = std::move(runs);
  util::Json instrumentation = util::Json::object();
  instrumentation["metrics_off_seconds"] = best_off.wall;
  instrumentation["metrics_on_seconds"] = best_on.wall;
  instrumentation["metrics_off_cpu_seconds"] = best_off.cpu;
  instrumentation["metrics_on_cpu_seconds"] = best_on.cpu;
  instrumentation["overhead_pct"] = overhead_pct;
  instrumentation["trace_sample_every"] = static_cast<double>(sample_every);
  out["instrumentation"] = std::move(instrumentation);
  util::Json duplicate_heavy = util::Json::object();
  duplicate_heavy["requests"] = static_cast<double>(dup_pairs.size());
  duplicate_heavy["destinations"] = static_cast<double>(dup_dests);
  duplicate_heavy["blocking_probes_issued"] =
      static_cast<double>(blocking_issued);
  duplicate_heavy["staged_probes_issued"] = static_cast<double>(staged_issued);
  duplicate_heavy["staged_probes_demanded"] =
      static_cast<double>(dup_sched.demanded);
  duplicate_heavy["staged_probes_coalesced"] =
      static_cast<double>(dup_sched.coalesced);
  duplicate_heavy["blocking_wall_seconds"] = dup_blocking.wall_seconds;
  duplicate_heavy["staged_wall_seconds"] = dup_staged.wall_seconds;
  duplicate_heavy["issued_reduction"] = issued_reduction;
  duplicate_heavy["identical_sets"] = dup_identical;
  out["duplicate_heavy"] = std::move(duplicate_heavy);
  std::printf("%s\n", out.dump().c_str());
  bench::write_bench_artifact("parallel_campaign", out);
  // A duplicate-heavy campaign that fails to at least halve issued probes
  // means coalescing regressed; fail loudly, like a determinism break.
  const bool ok = identical_sets && dup_identical && issued_reduction >= 2.0;
  return ok ? 0 : 1;
}
