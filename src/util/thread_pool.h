// Fixed-size worker pool with a bounded task queue.
//
// The parallel campaign driver (service/parallel.h) runs batch measurement
// campaigns on real threads; this pool is its execution substrate. Design
// points that matter for that use:
//
//   * Bounded queue: submit() blocks when `queue_capacity` tasks are already
//     waiting, so a fast producer cannot buffer an unbounded campaign in
//     memory — backpressure propagates to the enqueue loop.
//   * Exception-propagating futures: a task that throws stores the exception
//     in its future; the pool itself never dies. The campaign barrier calls
//     get() on every future, so worker failures surface at the join point
//     instead of vanishing on a detached thread.
//   * Worker identity: current_worker() returns the dense index [0, workers)
//     of the calling pool thread (kNotAWorker elsewhere). The driver uses it
//     to route each task to that worker's private measurement stack without
//     any locking.
//   * Graceful shutdown: the destructor drains every already-queued task
//     before joining. Work submitted before shutdown is never dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/annotate.h"
#include "util/check.h"

namespace revtr::util {

class ThreadPool {
 public:
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  // `workers` must be >= 1. `queue_capacity` bounds the number of tasks
  // waiting to run (tasks being executed do not count against it).
  explicit ThreadPool(std::size_t workers, std::size_t queue_capacity = 1024);

  // Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` and returns a future for its result. Blocks while the
  // queue is full. Throws std::runtime_error once shutdown has begun —
  // including for a submitter that was parked on a full queue when the
  // destructor started (it is woken by the shutdown broadcast and must
  // unwind, not deadlock and not abort).
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn fn) {
    using Result = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  // Dense index of the calling pool worker, or kNotAWorker when the caller
  // is not one of this process's pool threads.
  static std::size_t current_worker() noexcept;

  std::size_t workers() const noexcept { return threads_.size(); }
  std::size_t queue_capacity() const noexcept { return queue_capacity_; }

 private:
  void enqueue(std::function<void()> task) REVTR_EXCLUDES(mu_);
  void worker_loop(std::size_t index) REVTR_EXCLUDES(mu_);

  const std::size_t queue_capacity_;
  Mutex mu_;
  // condition_variable_any parks on the annotated MutexLock guard directly
  // (std::condition_variable would demand a std::unique_lock<std::mutex>,
  // which the analysis cannot see through).
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<std::function<void()>> queue_ REVTR_GUARDED_BY(mu_);
  bool shutting_down_ REVTR_GUARDED_BY(mu_) = false;
  // Written single-threaded in the constructor, joined in the destructor;
  // workers() only reads the size set before any worker existed.
  std::vector<std::thread> threads_;  // lint: lock-free(ctor/dtor only)
};

}  // namespace revtr::util
