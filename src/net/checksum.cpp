#include "net/checksum.h"

#include "util/check.h"

namespace revtr::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += (std::uint32_t{bytes[i]} << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) {
    sum += std::uint32_t{bytes[i]} << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  // The fold above leaves a 16-bit value, so the narrowing cannot lose bits.
  return util::checked_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace revtr::net
