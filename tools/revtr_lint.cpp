// revtr-lint: repo-specific invariants that -Wall/-Wextra cannot express.
//
// Runs as a normal build target and as a ctest entry (`revtr_lint <repo
// root>`), so `ctest` alone enforces the rules. The checks are lexical: each
// file is stripped of comments and string/char literals first, so rule text
// inside documentation or log messages never trips a rule. A line can opt
// out of one rule with a trailing comment `lint:allow(<rule>)` — the marker
// is searched on the *raw* line, keeping suppressions greppable.
//
// Rules (see README.md "Correctness tooling" for how to add one):
//   raw-new-delete   Raw `new`/`delete` anywhere; owners use RAII
//                    (std::unique_ptr, containers). `= delete` is fine.
//   narrowing-cast   `static_cast` to a narrow integer type inside src/net/,
//                    the wire trust boundary; use util::checked_cast (abort
//                    on loss) or util::truncate_cast (intentional wrap).
//   header-hygiene   Every header under src/ carries `#pragma once` and
//                    lives in the `revtr` namespace.
//   std-endl         `std::endl` in src/ or bench/ (hot paths): it forces a
//                    flush per line; use '\n'.
//   layering         src/ include edges must follow the module DAG below:
//                    a module may include only strictly lower-ranked
//                    modules (or itself). Cycles are therefore impossible;
//                    a generic cycle detector still runs as a backstop.
//   enum-switch-default
//                    A switch in src/ whose cases name qualified
//                    enumerators (`case Foo::kBar:`) must not carry a
//                    `default:` label: it would swallow new enumerators
//                    that -Wswitch would otherwise force every switch to
//                    handle (pins HopSource/RevtrStatus exhaustiveness).
//   const-cast       `const_cast` anywhere in src/. Casting away const to
//                    mutate from a const accessor hid a data race in
//                    Distribution::quantile (lazy sort under readers) until
//                    TSan caught it; mutable members + a mutex make the
//                    sharing explicit. Genuinely const-adding casts are
//                    rare enough to justify a lint:allow(const-cast).
//   bare-output      `std::cout` or a bare `printf(` in src/: library code
//                    must not write to stdout — route data through the obs
//                    exporters (src/obs/) or return it to the caller.
//                    fprintf/snprintf stay legal (stderr diagnostics,
//                    formatting into buffers); tools/, tests/, bench/ and
//                    examples/ own their stdout and are exempt.
//   core-probe-issue Direct probe-issuing Prober calls (ping/rr_ping/
//                    ts_ping/traceroute) inside src/core/: the staged engine
//                    yields sched::ProbeDemand sets and all wire probes
//                    funnel through sched::execute_demand, so scheduler
//                    coalescing and pacing cannot be bypassed. Non-issuing
//                    Prober methods (offline_counters, OfflineScope) stay
//                    legal.
//   mutex-capability Raw std synchronization types (std::mutex,
//                    std::shared_mutex, std::lock_guard, std::unique_lock,
//                    std::shared_lock, std::scoped_lock, plain
//                    std::condition_variable) in src/: shared state uses
//                    the annotated util::Mutex / util::SharedMutex wrappers
//                    and their RAII guards (src/util/annotate.h) so clang
//                    -Wthread-safety can track every acquisition.
//                    std::condition_variable_any stays legal (it parks on
//                    the annotated MutexLock). annotate.h itself, which
//                    wraps the std types, is exempt.
//   guarded-member   Every non-atomic, non-const data member of a class
//                    that owns a util::Mutex/util::SharedMutex must carry
//                    REVTR_GUARDED_BY / REVTR_PT_GUARDED_BY, or waive with
//                    a `// lint: lock-free(<reason>)` comment on its
//                    declaration line. Mutex members, references, statics,
//                    std::atomic members and condition variables are exempt
//                    by construction.
//   raii-guard       Manual .lock()/.unlock()/.try_lock() calls in src/:
//                    critical sections are scoped by the RAII guards of
//                    annotate.h, so no early return or exception can leak a
//                    held mutex.
//   lock-order       Every RAII-guard acquisition in src/ must name a mutex
//                    with a declared rank (lock_order_table() below), and
//                    nested acquisitions must take strictly increasing
//                    ranks — util < obs < sched < vpselect/atlas — making
//                    the process-wide acquisition order deadlock-free by
//                    construction (DESIGN.md §11).
//
// Module DAG (rank order; an include edge must point strictly downward):
//   util(0) → net(1), obs(1) → topology(2) → routing(3) → sim(4)
//   → probing(5) → alias(6), asmap(6), sched(6) → atlas(7), vpselect(7)
//   → core(8) → analysis(9) → eval(10), service(10)
// tools/, tests/, bench/ and examples/ sit on top and may include anything.
//
// `revtr_lint --self-test` exercises both accept and reject paths of the
// layering and enum-switch rules on synthetic inputs; it is registered in
// ctest so the analyzer itself cannot silently rot.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;  // 0 = whole-file finding.
  std::string rule;
  std::string message;
};

bool has_extension(const fs::path& path, std::string_view ext) {
  return path.extension() == ext;
}

bool is_source(const fs::path& path) {
  return has_extension(path, ".cpp") || has_extension(path, ".h");
}

// Removes comments and the contents of string/char literals while keeping
// line structure, so later regex passes see only code. This is a lexer-level
// approximation (no raw strings in this codebase), which is exactly the
// fidelity a lexical linter wants: cheap and predictable.
std::string strip_comments_and_literals(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);  // Unterminated; keep line numbers aligned.
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

bool allows(const std::string& raw_line, std::string_view rule) {
  const std::string marker = "lint:allow(" + std::string(rule) + ")";
  return raw_line.find(marker) != std::string::npos;
}

// --- Layering. -------------------------------------------------------------

// The module DAG, as ranks. An include edge src/<A>/… → "<B>/…" is legal
// iff A == B or rank[B] < rank[A]. Adding a module under src/ requires
// adding it here, which forces a layering decision in review.
const std::map<std::string, int, std::less<>>& module_ranks() {
  static const std::map<std::string, int, std::less<>> kRanks = {
      {"util", 0},  {"net", 1},      {"obs", 1},      {"topology", 2},
      {"routing", 3}, {"sim", 4},    {"probing", 5},  {"alias", 6},
      {"asmap", 6}, {"sched", 6},    {"atlas", 7},    {"vpselect", 7},
      {"core", 8},  {"analysis", 9}, {"eval", 10},    {"service", 10},
  };
  return kRanks;
}

// Module of a repo-relative path, or "" when the file is not under a
// src/<module>/ directory (tools, tests, bench sit above the DAG).
std::string module_of(const std::string& rel) {
  constexpr std::string_view kPrefix = "src/";
  if (rel.rfind(kPrefix, 0) != 0) return "";
  const std::size_t slash = rel.find('/', kPrefix.size());
  if (slash == std::string::npos) return "";
  return rel.substr(kPrefix.size(), slash - kPrefix.size());
}

// Generic cycle finder over the collected module graph. With strictly
// decreasing ranks a cycle cannot pass the rank check, so this only fires
// if the rank table itself is edited into an inconsistency — or in the
// self-test, which feeds it synthetic graphs.
std::optional<std::vector<std::string>> find_cycle(
    const std::set<std::pair<std::string, std::string>>& edges) {
  std::map<std::string, std::vector<std::string>> adjacent;
  for (const auto& [from, to] : edges) adjacent[from].push_back(to);

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::optional<std::vector<std::string>> cycle;

  const std::function<bool(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = Color::kGray;
        stack.push_back(node);
        for (const auto& next : adjacent[node]) {
          const Color c = color.count(next) ? color[next] : Color::kWhite;
          if (c == Color::kGray) {
            // Slice the stack from the first occurrence of `next`.
            std::vector<std::string> path;
            bool in_cycle = false;
            for (const auto& n : stack) {
              if (n == next) in_cycle = true;
              if (in_cycle) path.push_back(n);
            }
            path.push_back(next);
            cycle = std::move(path);
            return true;
          }
          if (c == Color::kWhite && visit(next)) return true;
        }
        stack.pop_back();
        color[node] = Color::kBlack;
        return false;
      };

  for (const auto& [from, to] : edges) {
    if (!color.count(from) && visit(from)) break;
  }
  return cycle;
}

// --- Switch scanning. ------------------------------------------------------

struct SwitchSpan {
  std::size_t keyword = 0;  // Position of the `switch` token.
  std::size_t open = 0;     // Its block's '{'.
  std::size_t close = 0;    // The matching '}'.
};

std::vector<SwitchSpan> find_switches(const std::string& code) {
  std::vector<SwitchSpan> out;
  static const std::regex kSwitch(R"(\bswitch\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kSwitch);
       it != std::sregex_iterator(); ++it) {
    SwitchSpan span;
    span.keyword = static_cast<std::size_t>(it->position());
    span.open = code.find('{', span.keyword);
    if (span.open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = span.open; i < code.size(); ++i) {
      if (code[i] == '{') ++depth;
      if (code[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) continue;
    span.close = close;
    out.push_back(span);
  }
  return out;
}

// The switch body with nested switch statements excised, so an inner
// switch's `default:` cannot be attributed to the outer one.
std::string own_body(const std::string& code, const SwitchSpan& span,
                     const std::vector<SwitchSpan>& all) {
  std::string own;
  std::size_t i = span.open + 1;
  while (i < span.close) {
    bool skipped = false;
    for (const auto& nested : all) {
      if (nested.keyword == i && nested.open > span.open &&
          nested.close < span.close) {
        i = nested.close + 1;
        skipped = true;
        break;
      }
    }
    if (!skipped) own.push_back(code[i++]);
  }
  return own;
}

// --- Lock discipline. ------------------------------------------------------

// Process-wide lock-acquisition order (DESIGN.md §11). Keyed by
// (module, mutex name); ranks follow the module DAG (module rank x 10), so
// the declared order is exactly the layering order: a thread holding a
// higher-ranked lock never acquires a lower-ranked one. Adding a mutex to
// src/ requires adding it here, which forces an ordering decision in review.
const std::map<std::pair<std::string, std::string>, int>& lock_order_table() {
  static const std::map<std::pair<std::string, std::string>, int> kOrder = {
      {{"util", "mu"}, 0},             // StripedMap stripe mutexes.
      {{"util", "mu_"}, 0},            // Distribution, ThreadPool.
      {{"obs", "mu_"}, 10},            // MetricsRegistry, TraceSink.
      {{"sched", "mu_"}, 60},          // ProbeScheduler.
      {{"vpselect", "mu_"}, 70},       // IngressDiscovery.
      {{"atlas", "sources_mu_"}, 70},  // TracerouteAtlas source map.
      {{"atlas", "stripe_of"}, 71},    // A stripe nests inside sources_mu_;
                                       // never two stripes at once.
  };
  return kOrder;
}

// A mutex expression as it appears in a guard construction, normalized to
// its lock_order_table() key: `other.mu_` -> "mu_", `s.mu` -> "mu",
// `stripe_of(source)` -> "stripe_of".
std::string normalize_mutex_expr(const std::string& arg) {
  if (arg.find("stripe_of") != std::string::npos) return "stripe_of";
  std::string name;
  static const std::regex kIdent(R"((\w+))");
  for (auto it = std::sregex_iterator(arg.begin(), arg.end(), kIdent);
       it != std::sregex_iterator(); ++it) {
    name = it->str();
  }
  return name;
}

struct ClassSpan {
  std::size_t keyword = 0;  // Position of the `class`/`struct` token.
  std::size_t open = 0;     // The body's '{'.
  std::size_t close = 0;    // The matching '}'.
  std::string name;
};

// Every class/struct *definition* in the stripped code, nested ones
// included (each nested type is judged as its own class). Forward
// declarations, template parameters and elaborated-type uses are skipped.
std::vector<ClassSpan> find_classes(const std::string& code) {
  std::vector<ClassSpan> out;
  static const std::regex kClass(R"(\b(class|struct)\b)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kClass);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position());
    {  // `enum class` / `enum struct` are enums, not classes.
      std::size_t p = pos;
      while (p > 0 && std::isspace(static_cast<unsigned char>(code[p - 1]))) {
        --p;
      }
      if (p >= 4 && code.compare(p - 4, 4, "enum") == 0) continue;
    }
    // Scan ahead for the body's '{'. A ';' first means a forward
    // declaration; ',' '>' '=' ')' mean a template parameter or an
    // elaborated-type mention. Balanced parens (attribute macros like
    // REVTR_CAPABILITY("...")) are skipped.
    std::size_t open = std::string::npos;
    for (std::size_t i = pos + static_cast<std::size_t>(it->length());
         i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') {
        int depth = 1;
        while (++i < code.size() && depth > 0) {
          if (code[i] == '(') ++depth;
          if (code[i] == ')') --depth;
        }
        --i;
        continue;
      }
      if (c == '{') {
        open = i;
        break;
      }
      if (c == ';' || c == ',' || c == '>' || c == '=' || c == ')') break;
    }
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == '{') ++depth;
      if (code[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) continue;
    ClassSpan span;
    span.keyword = pos;
    span.open = open;
    span.close = close;
    const std::string head = code.substr(pos, open - pos);
    static const std::regex kName(
        R"(^(class|struct)\s+(?:REVTR_\w+\s*(?:\([^)]*\))?\s*)*(\w+))");
    std::smatch name;
    span.name = std::regex_search(head, name, kName) ? name[2].str()
                                                     : std::string("(anon)");
    out.push_back(span);
  }
  return out;
}

struct MemberStmt {
  std::string text;            // Stripped statement, whitespace-collapsed.
  std::string top;             // `text` outside template angle brackets.
  std::size_t line_begin = 0;  // 1-based, inclusive.
  std::size_t line_end = 0;
};

// The class body split into top-level statements with nested brace groups
// (function bodies, nested types, brace initializers) excised. A statement
// ends at ';', or at a brace group not followed by ';' (a function body).
std::vector<MemberStmt> class_statements(const std::string& code,
                                         const ClassSpan& span) {
  std::vector<MemberStmt> out;
  std::string text;
  std::size_t stmt_start = span.open + 1;
  const auto line_of = [&code](std::size_t pos) {
    return 1 + static_cast<std::size_t>(
                   std::count(code.begin(),
                              code.begin() + static_cast<long>(pos), '\n'));
  };
  const auto flush = [&](std::size_t end_pos) {
    std::string collapsed;
    bool in_space = true;
    for (const char c : text) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) collapsed.push_back(' ');
        in_space = true;
      } else {
        collapsed.push_back(c);
        in_space = false;
      }
    }
    while (!collapsed.empty() && collapsed.back() == ' ') collapsed.pop_back();
    // Access specifiers prefix the statement they precede; drop them.
    static const std::regex kAccess(R"(^\s*(public|private|protected)\s*:\s*)");
    collapsed = std::regex_replace(collapsed, kAccess, "");
    text.clear();
    if (collapsed.empty()) return;
    MemberStmt stmt;
    stmt.text = collapsed;
    int angle = 0;
    for (const char c : collapsed) {
      if (c == '<') {
        ++angle;
        continue;
      }
      if (c == '>') {
        if (angle > 0) --angle;
        continue;
      }
      if (angle == 0) stmt.top.push_back(c);
    }
    stmt.line_begin = line_of(stmt_start);
    stmt.line_end = line_of(end_pos < code.size() ? end_pos : code.size() - 1);
    out.push_back(std::move(stmt));
  };

  std::size_t i = span.open + 1;
  int parens = 0;  // A '{' inside parens is a default argument, not a body.
  while (i < span.close) {
    const char c = code[i];
    if (c == '(') ++parens;
    if (c == ')' && parens > 0) --parens;
    if (c == '{') {
      int depth = 1;
      ++i;
      while (i < span.close && depth > 0) {
        if (code[i] == '{') ++depth;
        if (code[i] == '}') --depth;
        ++i;
      }
      text += "{}";
      if (parens > 0) continue;  // `f(std::span<T> xs = {})` and the like.
      std::size_t peek = i;
      while (peek < span.close &&
             std::isspace(static_cast<unsigned char>(code[peek]))) {
        ++peek;
      }
      if (peek < span.close && code[peek] == ';') continue;  // Brace init.
      flush(i);  // Function body: the statement ends here.
      stmt_start = i;
      continue;
    }
    if (c == ';' && parens == 0) {
      flush(i);
      ++i;
      stmt_start = i;
      continue;
    }
    text += c;
    ++i;
  }
  flush(span.close);
  return out;
}

// True when the statement declares data, not a function, type alias, nested
// type, or static. Operates on the angle-stripped `top` so parentheses in
// template arguments (std::function<void()>) do not read as functions.
bool is_data_member(const MemberStmt& stmt) {
  if (stmt.top.empty()) return false;
  if (stmt.top.find('(') != std::string::npos ||
      stmt.top.find(')') != std::string::npos) {
    return false;
  }
  static const std::regex kOperator(R"(\boperator\b)");
  if (std::regex_search(stmt.text, kOperator)) return false;
  static const std::regex kNonData(
      R"(^\s*(static|constexpr|using|typedef|friend|template|enum|class|struct|union)\b)");
  return !std::regex_search(stmt.top, kNonData);
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report(relative_path(path), 0, "io", "cannot open file");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    lint_source(relative_path(path), buffer.str());
  }

  // The actual pass, separated from file IO so --self-test can feed
  // synthetic sources.
  void lint_source(const std::string& rel, const std::string& raw) {
    const std::string code = strip_comments_and_literals(raw);
    const auto raw_lines = split_lines(raw);
    const auto code_lines = split_lines(code);

    const bool in_net = rel.rfind("src/net/", 0) == 0;
    const bool in_src = rel.rfind("src/", 0) == 0;
    const bool in_hot = in_src || rel.rfind("bench/", 0) == 0;
    // annotate.h wraps the raw std types and owns the only legal manual
    // lock/unlock calls; every other src/ file obeys the lock rules.
    const bool lock_rules = in_src && rel != "src/util/annotate.h";
    const std::string module = module_of(rel);

    if (in_src && has_extension(fs::path(rel), ".h")) check_header(rel, code);

    // clang-format off
    static const std::regex kRawNew(
        R"((^|[^\w.>])new\s+[\w:<(])");
    static const std::regex kRawDelete(
        R"((^|[^\w])delete(\s*\[\s*\])?\s+[\w:*(])");
    static const std::regex kNarrowingCast(
        R"(static_cast<\s*(std::)?(u?int(8|16|32)_t|(un)?signed\s+char|char|short|(un)?signed\s+short)\s*>)");
    static const std::regex kStdEndl(R"(std\s*::\s*endl)");
    static const std::regex kConstCast(R"(\bconst_cast\s*<)");
    static const std::regex kStdCout(R"(\bstd\s*::\s*cout\b)");
    // Bare printf only: the [^\w] guard keeps fprintf/snprintf/vsnprintf
    // legal, the optional std:: prefix catches <cstdio>'s qualified form.
    static const std::regex kBarePrintf(
        R"((^|[^\w])(std\s*::\s*)?printf\s*\()");
    // Probe-issuing Prober methods called on any identifier naming a prober
    // (prober_, engine_.prober_, a local `probing::Prober& prober`, ...).
    // Non-issuing members (offline_counters, counters) do not match.
    static const std::regex kProbeIssue(
        R"re((\b\w*[Pp]rober\w*\s*(\.|->)|\bProber\s*::\s*)(ping|rr_ping|ts_ping|traceroute)\s*\()re");
    // The stripper blanks string contents, so the include *path* must come
    // from the raw line; the stripped line still proves the directive is
    // not inside a comment.
    static const std::regex kIncludeStripped(R"(^\s*#\s*include\s*"")");
    static const std::regex kIncludeRaw(R"re(^\s*#\s*include\s*"([^"]+)")re");
    // Raw std synchronization vocabulary. condition_variable_any is legal
    // (the \b after condition_variable does not match before '_').
    static const std::regex kStdSync(
        R"(\bstd\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b)");
    // Manual lock-management calls on any object.
    static const std::regex kManualLock(
        R"((\.|->)\s*(unlock_shared|lock_shared|try_lock_shared|try_lock|unlock|lock)\s*\()");
    // clang-format on

    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& line = code_lines[i];
      const std::string& raw_line = i < raw_lines.size() ? raw_lines[i] : line;
      const std::size_t lineno = i + 1;

      if (std::regex_search(line, kRawNew) && !allows(raw_line, "raw-new-delete")) {
        report(rel, lineno, "raw-new-delete",
               "raw new; use std::make_unique or a container");
      }
      if (std::regex_search(line, kRawDelete) &&
          !allows(raw_line, "raw-new-delete")) {
        report(rel, lineno, "raw-new-delete",
               "raw delete; owners must use RAII");
      }
      if (in_net && std::regex_search(line, kNarrowingCast) &&
          !allows(raw_line, "narrowing-cast")) {
        report(rel, lineno, "narrowing-cast",
               "unchecked narrowing static_cast in src/net/; use "
               "util::checked_cast or util::truncate_cast");
      }
      if (in_hot && std::regex_search(line, kStdEndl) &&
          !allows(raw_line, "std-endl")) {
        report(rel, lineno, "std-endl",
               "std::endl flushes per line; use '\\n'");
      }
      if (in_src && std::regex_search(line, kConstCast) &&
          !allows(raw_line, "const-cast")) {
        report(rel, lineno, "const-cast",
               "const_cast in src/; mutation behind a const interface hides "
               "data races (see Distribution) — use mutable members with "
               "explicit synchronization");
      }
      if (in_src &&
          (std::regex_search(line, kStdCout) ||
           std::regex_search(line, kBarePrintf)) &&
          !allows(raw_line, "bare-output")) {
        report(rel, lineno, "bare-output",
               "bare stdout write in src/; library code returns data or "
               "exports it via src/obs/ — printing belongs to tools/");
      }
      if (module == "core" && std::regex_search(line, kProbeIssue) &&
          !allows(raw_line, "core-probe-issue")) {
        report(rel, lineno, "core-probe-issue",
               "direct probe-issuing Prober call in src/core/; the staged "
               "engine must yield a sched::ProbeDemand so the scheduler can "
               "coalesce and pace it (all wire probes funnel through "
               "sched::execute_demand)");
      }
      if (!module.empty() && std::regex_search(line, kIncludeStripped)) {
        std::smatch match;
        if (std::regex_search(raw_line, match, kIncludeRaw)) {
          check_include(rel, lineno, module, match[1].str(), raw_line);
        }
      }
      if (lock_rules && std::regex_search(line, kStdSync) &&
          !allows(raw_line, "mutex-capability")) {
        report(rel, lineno, "mutex-capability",
               "raw std synchronization type in src/; use the annotated "
               "util::Mutex / util::SharedMutex and the RAII guards of "
               "util/annotate.h so -Wthread-safety can track the capability");
      }
      if (lock_rules && std::regex_search(line, kManualLock) &&
          !allows(raw_line, "raii-guard")) {
        report(rel, lineno, "raii-guard",
               "manual lock()/unlock() call in src/; scope the critical "
               "section with MutexLock/SharedLock/ExclusiveLock so no "
               "early return or exception can leak a held mutex");
      }
    }

    if (in_src) check_switches(rel, code, raw_lines);
    if (lock_rules) {
      check_guarded_members(rel, code, raw_lines);
      check_lock_order(rel, code, raw_lines, module);
    }
  }

  int finish() {
    // Backstop: a cycle among modules can only appear if the rank table is
    // edited into inconsistency, but it is cheap to prove there is none.
    if (const auto cycle = find_cycle(module_edges_)) {
      std::string path;
      for (const auto& node : *cycle) {
        if (!path.empty()) path += " -> ";
        path += node;
      }
      report("src", 0, "layering", "module include cycle: " + path);
    }
    if (violations_.empty()) {
      std::printf("revtr-lint: ok (%zu files)\n", files_checked_);
      return 0;
    }
    for (const auto& v : violations_) {
      if (v.line == 0) {
        std::fprintf(stderr, "%s: [%s] %s\n", v.file.c_str(), v.rule.c_str(),
                     v.message.c_str());
      } else {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                     v.rule.c_str(), v.message.c_str());
      }
    }
    std::fprintf(stderr, "revtr-lint: %zu violation(s) in %zu files\n",
                 violations_.size(), files_checked_);
    return 1;
  }

  void note_file() { ++files_checked_; }
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  void check_header(const std::string& rel, const std::string& code) {
    if (code.find("#pragma once") == std::string::npos) {
      report(rel, 0, "header-hygiene", "missing #pragma once");
    }
    static const std::regex kRevtrNamespace(R"(namespace\s+revtr\b)");
    if (!std::regex_search(code, kRevtrNamespace)) {
      report(rel, 0, "header-hygiene",
             "public header must declare the revtr namespace");
    }
  }

  void check_include(const std::string& rel, std::size_t lineno,
                     const std::string& module, const std::string& target,
                     const std::string& raw_line) {
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) return;  // Not a module-qualified path.
    const std::string to_module = target.substr(0, slash);
    if (to_module == module) return;
    module_edges_.insert({module, to_module});
    if (allows(raw_line, "layering")) return;

    const auto& ranks = module_ranks();
    const auto from_rank = ranks.find(module);
    const auto to_rank = ranks.find(to_module);
    if (from_rank == ranks.end()) {
      report(rel, lineno, "layering",
             "module '" + module +
                 "' is not in the module DAG; add it to module_ranks() in "
                 "tools/revtr_lint.cpp");
      return;
    }
    if (to_rank == ranks.end()) {
      report(rel, lineno, "layering",
             "included module '" + to_module + "' is not in the module DAG");
      return;
    }
    if (to_rank->second >= from_rank->second) {
      report(rel, lineno, "layering",
             "upward include: " + module + " (rank " +
                 std::to_string(from_rank->second) + ") must not include " +
                 to_module + " (rank " + std::to_string(to_rank->second) +
                 "); the module DAG is util -> net -> topology -> routing -> "
                 "sim -> probing -> alias/asmap/sched -> atlas/vpselect -> "
                 "core -> analysis -> eval/service");
    }
  }

  void check_switches(const std::string& rel, const std::string& code,
                      const std::vector<std::string>& raw_lines) {
    static const std::regex kEnumCase(R"(\bcase\s+\w+\s*::)");
    static const std::regex kDefaultLabel(R"(\bdefault\s*:)");
    const auto switches = find_switches(code);
    for (const auto& span : switches) {
      const std::string body = own_body(code, span, switches);
      if (!std::regex_search(body, kEnumCase) ||
          !std::regex_search(body, kDefaultLabel)) {
        continue;
      }
      const std::size_t lineno =
          1 + static_cast<std::size_t>(
                  std::count(code.begin(),
                             code.begin() + static_cast<long>(span.keyword),
                             '\n'));
      const std::string& raw_line =
          lineno - 1 < raw_lines.size() ? raw_lines[lineno - 1] : std::string();
      if (allows(raw_line, "enum-switch-default")) continue;
      report(rel, lineno, "enum-switch-default",
             "switch over an enum class has a default: label, which would "
             "swallow new enumerators; enumerate every case so -Wswitch "
             "stays exhaustive");
    }
  }

  // guarded-member: within every class that owns a util::Mutex /
  // util::SharedMutex, each mutable data member must be attributed to its
  // mutex with REVTR_GUARDED_BY or carry an explicit lock-free waiver.
  void check_guarded_members(const std::string& rel, const std::string& code,
                             const std::vector<std::string>& raw_lines) {
    static const std::regex kMutexType(
        R"(\b(util\s*::\s*)?(Mutex|SharedMutex)\b)");
    static const std::regex kAtomicTop(R"(\batomic\b)");
    static const std::regex kConstTop(R"(\bconst\b)");
    static const std::regex kMutable(R"(^\s*mutable\b)");
    static const std::regex kGuardedAnno(R"(\bREVTR_(PT_)?GUARDED_BY\s*\()");
    static const std::regex kLastName(R"((\w+)[^\w]*$)");

    for (const auto& span : find_classes(code)) {
      const auto statements = class_statements(code, span);
      bool owns_mutex = false;
      for (const auto& stmt : statements) {
        if (is_data_member(stmt) && std::regex_search(stmt.text, kMutexType)) {
          owns_mutex = true;
          break;
        }
      }
      if (!owns_mutex) continue;
      for (const auto& stmt : statements) {
        if (!is_data_member(stmt)) continue;
        if (std::regex_search(stmt.text, kMutexType)) continue;  // The locks.
        if (stmt.text.find("condition_variable_any") != std::string::npos) {
          continue;  // Parks on the guard; stateless on its own.
        }
        if (std::regex_search(stmt.top, kAtomicTop)) continue;
        if (stmt.top.find('&') != std::string::npos) continue;  // Reference.
        // const members are immutable after construction — unless marked
        // mutable, which reopens the race.
        if (std::regex_search(stmt.top, kConstTop) &&
            !std::regex_search(stmt.top, kMutable)) {
          continue;
        }
        if (std::regex_search(stmt.text, kGuardedAnno)) continue;
        bool waived = false;
        for (std::size_t l = stmt.line_begin;
             l <= stmt.line_end && l <= raw_lines.size(); ++l) {
          const std::string& raw = raw_lines[l - 1];
          if (raw.find("lint: lock-free(") != std::string::npos ||
              allows(raw, "guarded-member")) {
            waived = true;
            break;
          }
        }
        if (waived) continue;
        // Name = last identifier once initializers are cut away.
        std::string top = stmt.top;
        if (const auto eq = top.find('='); eq != std::string::npos) {
          top.resize(eq);
        }
        if (const auto brace = top.find('{'); brace != std::string::npos) {
          top.resize(brace);
        }
        std::smatch name;
        const std::string member =
            std::regex_search(top, name, kLastName) ? name[1].str() : top;
        report(rel, stmt.line_begin, "guarded-member",
               "member '" + member + "' of mutex-owning class '" + span.name +
                   "' has no REVTR_GUARDED_BY annotation; attribute it to "
                   "its mutex or waive with `// lint: lock-free(<reason>)`");
      }
    }
  }

  // lock-order: every RAII-guard acquisition must name a mutex with a
  // declared rank, and while a guard is live any further acquisition must
  // take a strictly higher rank. Guard lifetimes are tracked lexically by
  // brace depth — exactly the RAII scoping the raii-guard rule enforces.
  void check_lock_order(const std::string& rel, const std::string& code,
                        const std::vector<std::string>& raw_lines,
                        const std::string& module) {
    static const std::regex kGuard(
        R"(\b(MutexLock|SharedLock|ExclusiveLock|ScopedLock2)\s+\w+\s*(\(|\{))");
    std::vector<std::pair<std::size_t, std::size_t>> sites;  // pos, open.
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kGuard);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position());
      sites.push_back(
          {pos, pos + static_cast<std::size_t>(it->length()) - 1});
    }
    if (sites.empty()) return;

    struct Held {
      int depth = 0;
      int rank = 0;
      std::string name;
    };
    std::vector<Held> held;
    std::size_t next = 0;
    int depth = 0;
    std::size_t line = 1;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] == '\n') {
        ++line;
        continue;
      }
      if (next < sites.size() && i == sites[next].first) {
        const std::size_t open = sites[next].second;
        ++next;
        // Argument list up to the matching close (parens or brace init).
        const char open_c = code[open];
        const char close_c = open_c == '(' ? ')' : '}';
        int arg_depth = 1;
        std::size_t close = open;
        std::vector<std::string> args(1);
        for (std::size_t j = open + 1; j < code.size() && arg_depth > 0; ++j) {
          const char c = code[j];
          if (c == open_c) ++arg_depth;
          if (c == close_c && --arg_depth == 0) {
            close = j;
            break;
          }
          if (c == ',' && arg_depth == 1) {
            args.emplace_back();
          } else {
            args.back().push_back(c);
          }
        }
        const std::size_t site_line = line;
        line += static_cast<std::size_t>(
            std::count(code.begin() + static_cast<long>(i),
                       code.begin() + static_cast<long>(close), '\n'));
        i = close;  // Skip the argument list (incl. any init braces).

        const std::string& raw_line = site_line - 1 < raw_lines.size()
                                          ? raw_lines[site_line - 1]
                                          : std::string();
        if (allows(raw_line, "lock-order")) continue;

        const auto& order = lock_order_table();
        int rank = -1;
        std::string name;
        bool known = true;
        for (const auto& arg : args) {
          const std::string mutex_name = normalize_mutex_expr(arg);
          const auto entry = order.find({module, mutex_name});
          if (entry == order.end()) {
            report(rel, site_line, "lock-order",
                   "mutex '" + mutex_name + "' in module '" + module +
                       "' has no declared rank; add it to lock_order_table() "
                       "in tools/revtr_lint.cpp (the declared order is "
                       "util < obs < sched < vpselect/atlas)");
            known = false;
            continue;
          }
          if (entry->second > rank) {
            rank = entry->second;
            name = mutex_name;
          }
        }
        if (!known) continue;
        if (!held.empty() && rank <= held.back().rank) {
          report(rel, site_line, "lock-order",
                 "acquiring '" + name + "' (rank " + std::to_string(rank) +
                     ") while holding '" + held.back().name + "' (rank " +
                     std::to_string(held.back().rank) +
                     "); nested acquisitions must take strictly increasing "
                     "ranks — util < obs < sched < vpselect/atlas (see "
                     "lock_order_table())");
          continue;
        }
        held.push_back(Held{depth, rank, name});
        continue;
      }
      if (code[i] == '{') ++depth;
      if (code[i] == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
    }
  }

  std::string relative_path(const fs::path& path) const {
    return fs::relative(path, root_).generic_string();
  }

  void report(std::string file, std::size_t line, std::string rule,
              std::string message) {
    violations_.push_back(
        Violation{std::move(file), line, std::move(rule), std::move(message)});
  }

  fs::path root_;
  std::vector<Violation> violations_;
  std::set<std::pair<std::string, std::string>> module_edges_;
  std::size_t files_checked_ = 0;
};

// --- Self-test. ------------------------------------------------------------

int run_self_test() {
  std::size_t checks = 0;
  std::size_t failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    ++checks;
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "revtr-lint self-test FAIL: %s\n", what);
    }
  };
  const auto count_rule = [](const Linter& linter, std::string_view rule) {
    std::size_t n = 0;
    for (const auto& v : linter.violations()) {
      if (v.rule == rule) ++n;
    }
    return n;
  };

  {  // A downward include edge conforms to the DAG.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/revtr.cpp", "#include \"atlas/atlas.h\"\n");
    expect(count_rule(linter, "layering") == 0, "downward include accepted");
  }
  {  // An artificially introduced upward include fails.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/rng.cpp", "#include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 1, "upward include rejected");
  }
  {  // Same-rank cross-module includes are upward edges too.
    Linter linter{fs::path(".")};
    linter.lint_source("src/alias/alias.cpp", "#include \"asmap/asmap.h\"\n");
    expect(count_rule(linter, "layering") == 1, "lateral include rejected");
  }
  {  // Intra-module includes are always fine.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/serialize.cpp", "#include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 0, "intra-module include accepted");
  }
  {  // A module missing from the rank table must be declared.
    Linter linter{fs::path(".")};
    linter.lint_source("src/newmod/thing.cpp", "#include \"util/rng.h\"\n");
    expect(count_rule(linter, "layering") == 1, "unknown module rejected");
  }
  {  // Commented-out includes do not create edges.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/rng.cpp",
                       "// #include \"core/revtr.h\"\n");
    expect(count_rule(linter, "layering") == 0, "commented include ignored");
  }
  {  // Suppression marker works for layering.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/rng.cpp",
        "#include \"core/revtr.h\"  // lint:allow(layering)\n");
    expect(count_rule(linter, "layering") == 0, "layering suppression honored");
  }
  {  // The generic cycle detector finds a 3-cycle and accepts a chain.
    const std::set<std::pair<std::string, std::string>> cyclic = {
        {"a", "b"}, {"b", "c"}, {"c", "a"}};
    expect(find_cycle(cyclic).has_value(), "3-cycle detected");
    const std::set<std::pair<std::string, std::string>> chain = {
        {"a", "b"}, {"b", "c"}};
    expect(!find_cycle(chain).has_value(), "acyclic chain accepted");
  }
  {  // default: in an enum-class switch is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 1,
           "enum switch with default flagged");
  }
  {  // A switch over plain values keeps its default.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(char c) {\n"
                       "  switch (c) {\n"
                       "    case 'a': return 1;\n"
                       "    default: return 0;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "non-enum switch with default accepted");
  }
  {  // An exhaustive enum switch without default is clean.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: return 1;\n"
                       "    case E::kB: return 2;\n"
                       "  }\n"
                       "  return 0;\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "exhaustive enum switch accepted");
  }
  {  // An inner char-switch default is not attributed to the outer
     // enum switch.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "int f(E e, char c) {\n"
                       "  switch (e) {\n"
                       "    case E::kA:\n"
                       "      switch (c) {\n"
                       "        case 'x': return 1;\n"
                       "        default: return 2;\n"
                       "      }\n"
                       "    case E::kB: return 3;\n"
                       "  }\n"
                       "  return 0;\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "nested switch default not misattributed");
  }
  {  // Suppression marker works for the switch rule.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f(E e) {\n"
                       "  switch (e) {  // lint:allow(enum-switch-default)\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "enum-switch-default") == 0,
           "switch suppression honored");
  }
  {  // const_cast in src/ is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats.cpp",
                       "void f(const T& t) {\n"
                       "  const_cast<T&>(t).mutate();\n"
                       "}\n");
    expect(count_rule(linter, "const-cast") == 1, "const_cast flagged");
  }
  {  // ...but a commented const_cast or one in tests/ is not.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats.cpp",
                       "// const_cast<T&>(t) was the old racy approach\n");
    linter.lint_source("tests/x_test.cpp",
                       "auto& m = const_cast<T&>(t);\n");
    expect(count_rule(linter, "const-cast") == 0,
           "const-cast scoped to src/ code");
  }
  {  // Suppression marker works for const-cast.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/stats.cpp",
        "auto& m = const_cast<T&>(t);  // lint:allow(const-cast)\n");
    expect(count_rule(linter, "const-cast") == 0,
           "const-cast suppression honored");
  }
  {  // std::cout and bare printf in src/ are flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/revtr.cpp",
                       "void f() { std::cout << 1; }\n");
    linter.lint_source("src/atlas/atlas.cpp",
                       "void g() { printf(\"%d\", 1); }\n");
    linter.lint_source("src/sim/network.cpp",
                       "void h() { std::printf(\"x\"); }\n");
    expect(count_rule(linter, "bare-output") == 3,
           "std::cout / bare printf flagged in src/");
  }
  {  // fprintf(stderr) and snprintf stay legal; tools/ owns its stdout.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/check.cpp",
                       "void f() { fprintf(stderr, \"x\"); }\n");
    linter.lint_source("src/util/json.cpp",
                       "void g(char* b) { snprintf(b, 4, \"x\"); }\n");
    linter.lint_source("tools/revtr_cli.cpp",
                       "int h() { std::printf(\"ok\"); return 0; }\n");
    expect(count_rule(linter, "bare-output") == 0,
           "fprintf/snprintf and tools/ output accepted");
  }
  {  // Suppression marker works for bare-output.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/revtr.cpp",
        "std::cout << debug;  // lint:allow(bare-output)\n");
    expect(count_rule(linter, "bare-output") == 0,
           "bare-output suppression honored");
  }
  {  // obs sits at rank 1: usable from probing and above, barred from
     // reaching laterally into net.
    Linter linter{fs::path(".")};
    linter.lint_source("src/probing/prober.cpp",
                       "#include \"obs/metrics.h\"\n");
    expect(count_rule(linter, "layering") == 0, "probing -> obs accepted");
    Linter lateral{fs::path(".")};
    lateral.lint_source("src/obs/metrics.cpp", "#include \"net/ipv4.h\"\n");
    expect(count_rule(lateral, "layering") == 1, "obs -> net rejected");
  }
  {  // sched sits at rank 6: usable from core, barred from reaching up
     // into vpselect or core.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/request_task.cpp",
                       "#include \"sched/scheduler.h\"\n");
    linter.lint_source("src/sched/scheduler.cpp",
                       "#include \"probing/prober.h\"\n");
    expect(count_rule(linter, "layering") == 0,
           "core -> sched -> probing accepted");
    Linter upward{fs::path(".")};
    upward.lint_source("src/sched/scheduler.cpp",
                       "#include \"vpselect/ingress.h\"\n");
    upward.lint_source("src/sched/scheduler.h", "#include \"core/revtr.h\"\n");
    expect(count_rule(upward, "layering") == 2,
           "sched -> vpselect/core rejected");
  }
  {  // Probe-issuing Prober calls are barred from src/core/.
    Linter linter{fs::path(".")};
    linter.lint_source("src/core/x.cpp",
                       "void f() { prober_.rr_ping(a, b); }\n");
    linter.lint_source("src/core/y.cpp",
                       "void g() { engine_.prober_->traceroute(a, b); }\n");
    expect(count_rule(linter, "core-probe-issue") == 2,
           "direct probe call in src/core/ flagged");
  }
  {  // ...but the demand funnel, non-issuing members, and other modules
     // are fine.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/x.cpp",
        "auto o = sched::execute_demand(prober_, demand);\n"
        "auto c = engine_.prober_.offline_counters();\n");
    linter.lint_source("src/sched/scheduler.cpp",
                       "auto r = prober.rr_ping(a, b, spoof);\n");
    linter.lint_source("tests/x_test.cpp",
                       "auto r = prober.rr_ping(a, b);\n");
    expect(count_rule(linter, "core-probe-issue") == 0,
           "core-probe-issue scoped to issuing calls in src/core/");
  }
  {  // Suppression marker works for core-probe-issue.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/core/x.cpp",
        "prober_.ping(a, b);  // lint:allow(core-probe-issue)\n");
    expect(count_rule(linter, "core-probe-issue") == 0,
           "core-probe-issue suppression honored");
  }
  {  // Raw std synchronization types are barred from src/.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/trace.h", "mutable std::mutex mu_;\n");
    linter.lint_source("src/atlas/atlas.cpp",
                       "const std::shared_lock<std::shared_mutex> l(mu_);\n");
    linter.lint_source("src/util/thread_pool.h",
                       "std::condition_variable cv_;\n");
    expect(count_rule(linter, "mutex-capability") == 3,
           "raw std sync types flagged in src/");
  }
  {  // The annotated wrappers, condition_variable_any, annotate.h itself
     // (which wraps the std types), and tests are all fine.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/thread_pool.h",
                       "util::Mutex mu_;\n"
                       "std::condition_variable_any not_empty_;\n");
    linter.lint_source("src/util/annotate.h", "std::mutex mu_;\n");
    linter.lint_source("tests/x_test.cpp", "std::mutex mu;\n");
    expect(count_rule(linter, "mutex-capability") == 0,
           "wrappers, cv_any, annotate.h and tests accepted");
  }
  {  // Suppression marker works for mutex-capability.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/obs/trace.h",
        "std::mutex legacy_;  // lint:allow(mutex-capability)\n");
    expect(count_rule(linter, "mutex-capability") == 0,
           "mutex-capability suppression honored");
  }
  {  // An unannotated mutable member of a mutex-owning class is flagged.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/sink.cpp",
                       "class Sink {\n"
                       " private:\n"
                       "  mutable util::Mutex mu_;\n"
                       "  std::deque<int> ring_;\n"
                       "};\n");
    expect(count_rule(linter, "guarded-member") == 1,
           "unannotated guarded member flagged");
  }
  {  // GUARDED_BY, atomics, const, references, statics, the mutexes
     // themselves and condition variables all satisfy the rule.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/sink.cpp",
                       "class Sink {\n"
                       "  mutable util::SharedMutex mu_;\n"
                       "  util::Mutex aux_mu_;\n"
                       "  std::condition_variable_any cv_;\n"
                       "  std::deque<int> ring_ REVTR_GUARDED_BY(mu_);\n"
                       "  std::atomic<const M*> metrics_{nullptr};\n"
                       "  const std::size_t capacity_;\n"
                       "  probing::Prober& prober_;\n"
                       "  static constexpr std::size_t kN = 4;\n"
                       "};\n");
    expect(count_rule(linter, "guarded-member") == 0,
           "annotated/exempt members accepted");
  }
  {  // The lock-free waiver and lint:allow both work; member functions and
     // classes without a mutex are never judged.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/util/pool.cpp",
        "class Pool {\n"
        "  util::Mutex mu_;\n"
        "  std::vector<std::thread> threads_;  // lint: lock-free(ctor/dtor "
        "only)\n"
        "  bool quirk_;  // lint:allow(guarded-member)\n"
        "  void drain() { std::size_t local = 0; use(local); }\n"
        "};\n"
        "class Plain {\n"
        "  std::deque<int> unguarded_;\n"
        "};\n");
    expect(count_rule(linter, "guarded-member") == 0,
           "waivers honored; functions and mutex-free classes skipped");
  }
  {  // A mutable member is a race even when const-qualified... it is not
     // const, so the exemption must not fire on `mutable`.
    Linter linter{fs::path(".")};
    linter.lint_source("src/util/stats2.cpp",
                       "class D {\n"
                       "  mutable util::Mutex mu_;\n"
                       "  mutable bool sorted_ = true;\n"
                       "};\n");
    expect(count_rule(linter, "guarded-member") == 1,
           "mutable member without annotation flagged");
  }
  {  // Manual lock management in src/ is flagged; waits on the guard and
     // code outside src/ are not.
    Linter linter{fs::path(".")};
    linter.lint_source("src/sched/x.cpp",
                       "void f() { mu_.lock(); work(); mu_.unlock(); }\n");
    expect(count_rule(linter, "raii-guard") == 1,  // Both on one line.
           "manual lock/unlock flagged");
    Linter clean{fs::path(".")};
    clean.lint_source("src/util/thread_pool.cpp",
                      "not_empty_.wait(lock);\n");
    clean.lint_source("tests/x_test.cpp", "mu.lock();\nmu.unlock();\n");
    clean.lint_source(
        "src/util/once.cpp",
        "if (mu_.try_lock()) { }  // lint:allow(raii-guard)\n");
    expect(count_rule(clean, "raii-guard") == 0,
           "cv wait, tests, and suppressed try_lock accepted");
  }
  {  // sources_mu_ before a stripe follows the declared order.
    Linter linter{fs::path(".")};
    linter.lint_source("src/atlas/x.cpp",
                       "void f() {\n"
                       "  const util::SharedLock a(sources_mu_);\n"
                       "  {\n"
                       "    const util::ExclusiveLock b(stripe_of(source));\n"
                       "  }\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 0,
           "increasing-rank nesting accepted");
  }
  {  // The inversion — a stripe held while taking the source map — is
     // rejected, as is re-acquiring the same rank (self-deadlock).
    Linter linter{fs::path(".")};
    linter.lint_source("src/atlas/x.cpp",
                       "void f() {\n"
                       "  const util::ExclusiveLock b(stripe_of(source));\n"
                       "  {\n"
                       "    const util::SharedLock a(sources_mu_);\n"
                       "  }\n"
                       "}\n");
    linter.lint_source("src/sched/y.cpp",
                       "void g() {\n"
                       "  const util::MutexLock a(mu_);\n"
                       "  { const util::MutexLock b(mu_); }\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 2,
           "rank inversion and same-rank re-acquisition rejected");
  }
  {  // Sibling scopes do not overlap; a released guard is not held.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/x.cpp",
                       "void f() {\n"
                       "  { const util::SharedLock a(mu_); }\n"
                       "  const util::ExclusiveLock b(mu_);\n"
                       "}\n");
    expect(count_rule(linter, "lock-order") == 0,
           "sequential guards in sibling scopes accepted");
  }
  {  // Every guarded mutex must have a declared rank.
    Linter linter{fs::path(".")};
    linter.lint_source("src/obs/x.cpp",
                       "void f() { const util::MutexLock l(weird_mu_); }\n");
    expect(count_rule(linter, "lock-order") == 1,
           "undeclared mutex rank rejected");
  }
  {  // Suppression marker works for lock-order; guards outside src/ are
     // not tracked.
    Linter linter{fs::path(".")};
    linter.lint_source(
        "src/obs/x.cpp",
        "void f() { const util::MutexLock l(weird_mu_); }  "
        "// lint:allow(lock-order)\n");
    linter.lint_source("tests/x_test.cpp",
                       "void f() { const util::MutexLock l(anything_); }\n");
    expect(count_rule(linter, "lock-order") == 0,
           "lock-order suppression honored and scoped to src/");
  }
  {  // Outside src/, neither rule applies (tests may include anything and
     // keep defensive defaults).
    Linter linter{fs::path(".")};
    linter.lint_source("tests/x_test.cpp",
                       "#include \"core/revtr.h\"\n"
                       "void f(E e) {\n"
                       "  switch (e) {\n"
                       "    case E::kA: break;\n"
                       "    default: break;\n"
                       "  }\n"
                       "}\n");
    expect(linter.violations().empty(), "rules scoped to src/");
  }

  if (failures != 0) {
    std::fprintf(stderr, "revtr-lint self-test: %zu/%zu checks failed\n",
                 failures, checks);
    return 1;
  }
  std::printf("revtr-lint self-test: ok (%zu checks)\n", checks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string_view(argv[1]) == "--self-test") {
    return run_self_test();
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: revtr_lint <repo-root> | --self-test\n");
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "revtr_lint: not a directory: %s\n", argv[1]);
    return 2;
  }

  Linter linter(root);
  for (const char* dir : {"src", "tests", "bench", "tools", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !is_source(entry.path())) continue;
      linter.note_file();
      linter.lint_file(entry.path());
    }
  }
  return linter.finish();
}
