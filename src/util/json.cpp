#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace revtr::util {

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  return object_[key];
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      if (is_integer_ && other.is_integer_) return integer_ == other.integer_;
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

void escape_into(const std::string& text, std::string& out) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (is_integer_) {
        out += std::to_string(integer_);
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", number_);
        out += buffer;
      }
      break;
    case Type::kString:
      escape_into(string_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        escape_into(key, out);
        out.push_back(':');
        value.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    auto value = parse_value();
    skip_whitespace();
    if (!value || pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n':
        return literal("null") ? std::optional<Json>(Json()) : std::nullopt;
      case 't':
        return literal("true") ? std::optional<Json>(Json(true))
                               : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Json>(Json(false))
                                : std::nullopt;
      case '"':
        return parse_string_value();
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          const auto [next, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc{} || next != text_.data() + pos_ + 4) {
            return std::nullopt;
          }
          pos_ += 4;
          // ASCII-range escapes only (all we ever emit); others become '?'.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // Unterminated string.
  }

  std::optional<Json> parse_string_value() {
    auto text = parse_string();
    if (!text) return std::nullopt;
    return Json(std::move(*text));
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    if (is_integer) {
      std::int64_t value = 0;
      const auto [next, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && next == token.data() + token.size()) {
        return Json(value);
      }
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json(value);
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json result = Json::array();
    skip_whitespace();
    if (consume(']')) return result;
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      result.push_back(std::move(*value));
      if (consume(']')) return result;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json result = Json::object();
    skip_whitespace();
    if (consume('}')) return result;
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      result[*key] = std::move(*value);
      if (consume('}')) return result;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace revtr::util
