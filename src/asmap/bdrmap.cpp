#include "asmap/bdrmap.h"

namespace revtr::asmap {

BdrmapLite::BdrmapLite(const IpToAs& ip2as) : ip2as_(ip2as) {}

void BdrmapLite::add_path(std::span<const net::Ipv4Addr> hops) {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const auto successor_as = ip2as_.lookup(hops[i + 1]);
    if (!successor_as) continue;
    ++votes_[hops[i]][*successor_as];
  }
  if (!hops.empty()) {
    // The final hop has no successor; its own mapping is its best vote.
    if (const auto own = ip2as_.lookup(hops.back())) {
      ++votes_[hops.back()][*own];
    }
  }
}

std::optional<topology::Asn> BdrmapLite::router_as(
    net::Ipv4Addr addr) const {
  const auto it = votes_.find(addr);
  if (it == votes_.end()) return ip2as_.lookup(addr);
  topology::Asn best = 0;
  std::size_t best_count = 0;
  for (const auto& [asn, count] : it->second) {
    if (count > best_count) {
      best = asn;
      best_count = count;
    }
  }
  if (best == 0) return ip2as_.lookup(addr);
  return best;
}

bool BdrmapLite::intradomain(net::Ipv4Addr a, net::Ipv4Addr b) const {
  const auto as_a = router_as(a);
  const auto as_b = router_as(b);
  return as_a && as_b && *as_a == *as_b;
}

std::size_t BdrmapLite::remapped_addresses() const {
  std::size_t remapped = 0;
  for (const auto& [addr, counts] : votes_) {
    const auto inferred = router_as(addr);
    const auto plain = ip2as_.lookup(addr);
    if (inferred && plain && *inferred != *plain) ++remapped;
  }
  return remapped;
}

}  // namespace revtr::asmap
