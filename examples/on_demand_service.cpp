// Operating Reverse Traceroute as a service (Appx A).
//
// Walks the operational lifecycle the paper describes: users register with
// rate limits, a user adds their *own* host as a source (bootstrap verifies
// RR reception, builds the atlas and Q2 index, ~15 simulated minutes),
// on-demand requests run against it, quotas bite, and the daily refresh
// keeps the atlas fresh.
//
//   ./on_demand_service [--ases=400]
#include <cstdio>

#include "eval/harness.h"
#include "service/service.h"
#include "util/flags.h"

using namespace revtr;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  topology::TopologyConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.num_ases = static_cast<std::size_t>(flags.get_int("ases", 400));

  eval::Lab lab(config, core::EngineConfig::revtr2());
  service::RevtrService svc(lab.engine, lab.atlas, lab.prober, lab.topo);

  // --- Users (the real system maintains this database manually). ---
  service::UserLimits researcher_limits;
  researcher_limits.daily_limit = 1000;
  // The researcher account only demonstrates registration; the campaign API
  // below is account-less.
  [[maybe_unused]] const auto researcher =
      svc.add_user("researcher", researcher_limits);
  service::UserLimits operator_limits;
  operator_limits.daily_limit = 25;
  const auto network_operator = svc.add_user("operator", operator_limits);
  std::printf("registered users: researcher (1000/day), operator (25/day)\n");

  // --- The operator adds their own host as a source. ---
  const topology::HostId own_host = lab.topo.vantage_points()[1];
  const auto t0 = svc.clock().now();
  if (!svc.add_source(own_host, /*atlas_size=*/60, lab.rng)) {
    std::printf("bootstrap failed: host cannot receive RR packets\n");
    return 1;
  }
  const auto* record = svc.source_record(own_host);
  std::printf("source %s bootstrapped in %.1f minutes "
              "(atlas: %zu traceroutes)\n",
              lab.topo.host(own_host).addr.to_string().c_str(),
              static_cast<double>(svc.clock().now() - t0) /
                  util::SimClock::kMinute,
              record->atlas_size);

  // --- On-demand requests. ---
  std::size_t ok = 0, aborted = 0, rejected = 0;
  const auto probes = lab.topo.probe_hosts();
  for (std::size_t i = 0; i < 40; ++i) {
    const auto result = svc.request(network_operator,
                                    probes[i % probes.size()], own_host);
    if (!result) {
      ++rejected;  // Daily quota exceeded after 25 requests.
      continue;
    }
    if (result->complete()) {
      ++ok;
    } else {
      ++aborted;
    }
  }
  std::printf("operator issued 40 requests: %zu complete, %zu "
              "aborted/unmeasurable, %zu rejected by the 25/day quota\n",
              ok, aborted, rejected);

  // --- A larger campaign under the researcher account. ---
  std::vector<std::pair<topology::HostId, topology::HostId>> pairs;
  for (std::size_t i = 0; i < 120 && i < probes.size(); ++i) {
    pairs.emplace_back(probes[i], own_host);
  }
  const auto stats = svc.run_campaign(pairs, /*parallelism=*/16);
  std::printf(
      "\ncampaign: %zu requests, coverage %.0f%%, median latency %.1f s,\n"
      "modelled %.1f processed/s (%.1f completed/s) on 16 slots, "
      "%llu probe packets\n",
      stats.requested, stats.coverage() * 100,
      stats.latency_seconds.median(), stats.processed_per_second(),
      stats.completed_per_second(),
      static_cast<unsigned long long>(stats.probes.total()));

  // --- Daily maintenance. ---
  svc.daily_refresh(lab.rng);
  std::printf("\nafter daily refresh: atlas re-measured (%zu traceroutes), "
              "quotas reset\n",
              svc.source_record(own_host)->atlas_size);
  const auto again = svc.request(network_operator, probes[0], own_host);
  std::printf("operator can measure again: %s\n",
              again ? core::to_string(again->status).c_str() : "rejected");
  return 0;
}
