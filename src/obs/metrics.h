// Observability: process-wide metrics registry with sharded hot-path cells.
//
// The deployed system lives or dies by its probe budget (the paper dropped
// the whole Timestamp primitive once measurement showed ~34% of probes buying
// <1% coverage, Insight 1.9). This module gives every subsystem a uniform
// way to account where probes and simulated time go:
//
//   * Counter    monotonically increasing u64 (probes sent, stages entered).
//   * Gauge      settable i64 (cache sizes, plan counts); control-plane only.
//   * Histogram  log-linear-bucketed u64 samples (latency in micros, probes
//                per request). Integer sum + integer buckets, so merged
//                totals are independent of accumulation order.
//
// Hot-path cost: one relaxed atomic add into a per-worker shard. Shards are
// indexed by util::ThreadPool::current_worker() (the same worker identity
// the parallel campaign driver routes stacks by); threads outside any pool
// share shard 0. Reads (snapshots) sum all shards — the "merge at the
// barrier" the campaign driver performs is exactly a snapshot.
//
// Determinism: a snapshot is rendered in sorted metric order with
// integer-only arithmetic, so two campaigns that perform the same
// measurement work produce byte-identical Prometheus/JSON text regardless of
// worker count or scheduling (pinned by tests/obs_test.cpp). Metrics whose
// values depend on scheduling (e.g. probe counts under a shared cache) are
// the caller's business — the registry itself never introduces
// nondeterminism.
//
// Naming scheme (DESIGN.md §9): `revtr_<area>_<noun>[_<unit>]`, with
// Prometheus-style labels baked into the registered name, e.g.
// `revtr_probes_total{scope="online",type="rr"}`. The family (name up to
// '{') groups series in the text exposition.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotate.h"
#include "util/json.h"

namespace revtr::obs {

// Shard count: 16 pool workers plus one shard for non-pool threads. Pools
// larger than 16 fold onto the worker shards; correctness is unaffected
// (cells are atomic), only contention grows.
inline constexpr std::size_t kMetricShards = 17;

// Dense shard index for the calling thread (0 outside any pool).
std::size_t metric_shard();

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[metric_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }
  void reset() noexcept {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kMetricShards> cells_;
};

// Settable value for sizes and configuration facts. Last write wins; not
// sharded — gauges are control-plane (set at barriers, not per probe).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log-linear histogram over u64 samples (HdrHistogram-style): values 0..3
// get exact buckets; every octave [2^k, 2^{k+1}) above that is split into 4
// linear sub-buckets; values >= 2^48 land in one overflow bucket. Bucket
// boundaries are fixed at compile time, so two histograms fed the same
// multiset of samples render identically.
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 4;       // Per octave.
  static constexpr int kFirstOctave = 2;              // Values 0..3 exact.
  static constexpr int kLastOctave = 47;              // Then overflow.
  static constexpr std::size_t kBuckets =
      kSubBuckets /* exact 0..3 */ +
      static_cast<std::size_t>(kLastOctave - kFirstOctave + 1) * kSubBuckets +
      1 /* overflow */;
  static constexpr std::size_t kOverflowBucket = kBuckets - 1;

  // Bucket index a value lands in; exposed for boundary tests.
  static std::size_t bucket_of(std::uint64_t value) noexcept;
  // Inclusive upper bound of a bucket (its Prometheus `le`); the overflow
  // bucket has no finite bound and renders as +Inf.
  static std::uint64_t bucket_le(std::size_t bucket) noexcept;

  void record(std::uint64_t value) noexcept {
    Shard& shard = shards_[metric_shard()];
    shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  std::uint64_t bucket_count(std::size_t bucket) const noexcept;
  void reset() noexcept;

 private:
  // One shard owns a contiguous bucket row (padding per bucket would cost
  // 64x the memory; a row per worker already avoids cross-worker sharing).
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// --- Snapshots. -------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  // (le, cumulative count) up to the highest non-empty bucket — plus the
  // largest finite bucket whenever overflow is non-zero, so quantile
  // estimation keeps a finite bound to clamp to; the +Inf entry is implicit
  // (== count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  // Samples that landed in the overflow bucket (rendered only under +Inf).
  std::uint64_t overflow = 0;
};

// Quantile estimate (q in [0, 1]) from a histogram sample's cumulative
// buckets, linearly interpolated inside the bucket the rank lands in —
// the same estimate promql's histogram_quantile() would produce from the
// exposition. q is clamped to [0, 1]. Returns 0 for an empty histogram;
// q = 0 yields the lower edge of the first occupied bucket; ranks landing
// in the overflow bucket (including all-mass-in-overflow) clamp to the
// largest finite bucket bound.
double histogram_quantile(const HistogramSample& sample, double q);

// A consistent-enough point-in-time view (each metric is read atomically per
// cell; cross-metric skew is possible while writers run, which campaign
// callers avoid by snapshotting after the barrier). Rendering is
// deterministic: sorted by name, integers only.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Exact-name lookups (full name including labels); nullptr when absent.
  // Consumers that report on specific series — the daemon's STATS reply,
  // the replayer's SLO export — use these instead of re-scanning the
  // vectors.
  const CounterSample* find_counter(std::string_view name) const;
  const GaugeSample* find_gauge(std::string_view name) const;
  const HistogramSample* find_histogram(std::string_view name) const;

  // Prometheus text exposition (families sorted, TYPE line per family).
  std::string to_prometheus() const;
  util::Json to_json() const;
  // Human view: one util::TextTable per metric kind.
  std::string to_table() const;
};

// Get-or-create registry of named metrics. Handles returned by
// counter()/gauge()/histogram() are stable for the registry's lifetime —
// callers cache them once and pay no lookup on the hot path. Registering
// the same name with a different kind is a programming error (aborts).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  // Zeroes every registered metric (names stay registered). Test helper.
  void reset();
  std::size_t size() const;

  // Process-wide default instance for tools that do not thread an explicit
  // registry; libraries always take the registry explicitly.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable util::SharedMutex mu_;
  // std::map: stable node addresses and sorted snapshot order for free.
  std::map<std::string, Entry, std::less<>> entries_ REVTR_GUARDED_BY(mu_);
};

}  // namespace revtr::obs
