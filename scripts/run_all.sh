#!/bin/sh
# Build, test, and regenerate every paper table/figure.
#
# check.sh is the correctness gate: -Werror build plus ctest under the
# default, ASan, and UBSan presets (and TSan with REVTR_CHECK_TSAN=1).
set -e
cd "$(dirname "$0")/.."
scripts/check.sh
for b in build/bench/*; do [ -x "$b" ] && "$b"; done
for e in build/examples/*; do [ -x "$e" ] && "$e"; done
