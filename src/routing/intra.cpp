#include "routing/intra.h"

#include <limits>
#include <queue>

namespace revtr::routing {

namespace {
constexpr std::uint16_t kUnreachable = std::numeric_limits<std::uint16_t>::max();
}

IntraRouting::IntraRouting(const topology::Topology& topo)
    : topo_(topo),
      local_index_(topo.num_routers(), 0),
      matrices_(topo.num_ases()) {
  for (const auto& node : topo_.ases()) {
    for (std::size_t i = 0; i < node.routers.size(); ++i) {
      local_index_[node.routers[i]] = static_cast<std::uint32_t>(i);
    }
  }
}

const IntraRouting::AsMatrix& IntraRouting::matrix(
    topology::AsIndex as) const {
  auto& slot = matrices_[as];
  if (!slot) {
    slot = std::make_unique<AsMatrix>();
    compute(as, *slot);
  }
  return *slot;
}

void IntraRouting::compute(topology::AsIndex as, AsMatrix& m) const {
  const auto& routers = topo_.as_at(as).routers;
  const std::size_t n = routers.size();
  m.size = n;
  m.hops.assign(n * n, NextHops{});
  m.dist.assign(n * n, kUnreachable);

  // Dijkstra from every destination `to` with lexicographic cost
  // (hop count, accumulated delay). Link delays are distinct with high
  // probability, so the optimal path between two routers is unique — and
  // an undirected unique shortest path is traversed symmetrically, which is
  // what makes intradomain symmetry assumptions safe (§4.4, Table 2).
  // Equal-hop non-optimal neighbors are kept as the ECMP alternate that
  // per-packet load balancers and source-sensitive routers may use.
  struct Cost {
    std::uint16_t hops = kUnreachable;
    std::int64_t delay = 0;

    bool operator<(const Cost& other) const noexcept {
      return hops != other.hops ? hops < other.hops : delay < other.delay;
    }
    bool operator==(const Cost& other) const noexcept {
      return hops == other.hops && delay == other.delay;
    }
  };

  std::vector<Cost> dist(n);
  for (std::size_t to = 0; to < n; ++to) {
    std::fill(dist.begin(), dist.end(), Cost{});
    dist[to] = Cost{0, 0};
    std::vector<bool> done(n, false);
    for (std::size_t round = 0; round < n; ++round) {
      // O(n^2) extraction is fine: ASes have at most a few dozen routers.
      std::size_t u = n;
      for (std::size_t c = 0; c < n; ++c) {
        if (!done[c] && dist[c].hops != kUnreachable &&
            (u == n || dist[c] < dist[u])) {
          u = c;
        }
      }
      if (u == n) break;
      done[u] = true;
      for (topology::LinkId link_id : topo_.router(routers[u]).links) {
        const auto& link = topo_.link(link_id);
        if (link.interdomain) continue;
        const std::size_t v =
            local_index_[topo_.far_end(routers[u], link_id)];
        const Cost via{static_cast<std::uint16_t>(dist[u].hops + 1),
                       dist[u].delay + link.delay_us};
        if (via < dist[v]) dist[v] = via;
      }
    }
    for (std::size_t from = 0; from < n; ++from) {
      m.dist[from * n + to] = dist[from].hops;
      if (from == to || dist[from].hops == kUnreachable) continue;
      NextHops& hops = m.hops[from * n + to];
      for (topology::LinkId link_id : topo_.router(routers[from]).links) {
        const auto& link = topo_.link(link_id);
        if (link.interdomain) continue;
        const std::size_t v =
            local_index_[topo_.far_end(routers[from], link_id)];
        const Cost via{static_cast<std::uint16_t>(dist[v].hops + 1),
                       dist[v].delay + link.delay_us};
        if (via == dist[from] && hops.primary == topology::kInvalidId) {
          hops.primary = link_id;
        } else if (dist[v].hops + 1 == dist[from].hops &&
                   hops.alternate == topology::kInvalidId &&
                   link_id != hops.primary) {
          hops.alternate = link_id;
        }
      }
      // Guard against an alternate recorded before the primary was seen.
      if (hops.alternate == hops.primary) {
        hops.alternate = topology::kInvalidId;
      }
    }
  }
}

IntraRouting::NextHops IntraRouting::next_hops(topology::RouterId from,
                                               topology::RouterId to) const {
  const auto& from_router = topo_.router(from);
  const auto& to_router = topo_.router(to);
  if (from_router.asn != to_router.asn) return NextHops{};
  const auto as = topo_.index_of(from_router.asn);
  const AsMatrix& m = matrix(as);
  return m.hops[local_index_[from] * m.size + local_index_[to]];
}

std::uint16_t IntraRouting::distance(topology::RouterId from,
                                     topology::RouterId to) const {
  const auto& from_router = topo_.router(from);
  const auto& to_router = topo_.router(to);
  if (from_router.asn != to_router.asn) return kUnreachable;
  const auto as = topo_.index_of(from_router.asn);
  const AsMatrix& m = matrix(as);
  return m.dist[local_index_[from] * m.size + local_index_[to]];
}

}  // namespace revtr::routing
