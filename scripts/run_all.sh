#!/bin/sh
# Build, test, and regenerate every paper table/figure.
#
# check.sh is the correctness gate: -Werror build plus ctest under the
# default, ASan, and UBSan presets (and TSan with REVTR_CHECK_TSAN=1),
# including the revtr_mc model-checker sweep and the layering analyzer.
# REVTR_QUICK=1 downgrades it to the fast gate (lint + layering + unit
# tests) for inner-loop runs.
#
# Benches that publish machine-readable results write them to
# $REVTR_BENCH_DIR/BENCH_<name>.json (throughput, latency quantiles from
# the obs snapshot, peak RSS); default: the build/ tree.
set -e
cd "$(dirname "$0")/.."
if [ "${REVTR_QUICK:-0}" = "1" ]; then
    scripts/check.sh --quick
else
    scripts/check.sh
fi
REVTR_BENCH_DIR="${REVTR_BENCH_DIR:-build}"
mkdir -p "$REVTR_BENCH_DIR"
# Resolve to an absolute path once: benches write the artifact relative to
# their own cwd, so a relative dir would scatter BENCH_*.json files when a
# bench (or a future caller) runs from somewhere other than the repo root.
REVTR_BENCH_DIR="$(cd "$REVTR_BENCH_DIR" && pwd)"
export REVTR_BENCH_DIR
for b in build/bench/*; do [ -x "$b" ] && "$b"; done
for e in build/examples/*; do [ -x "$e" ] && "$e"; done
# Full-scale daemon replay: a million closed-loop requests against an
# in-process revtr_serverd with hot caches; publishes accept/shed/deadline
# SLOs into BENCH_serverd.json (see DESIGN.md §14). REVTR_REPLAY_REQUESTS
# scales it down for constrained machines.
./build/tools/revtr_replay \
    --requests="${REVTR_REPLAY_REQUESTS:-1000000}" --conns=4 --mode=closed \
    --inflight=16 --ases=400 --vps=20 --probes=150 --workers=4 \
    --deadline-ms=60000 --daemon-socket=build/revtr_replay_full.sock
echo "bench artifacts: $(ls "$REVTR_BENCH_DIR"/BENCH_*.json 2>/dev/null || echo none)"
scripts/bench_delta.py --baselines bench/baselines --fresh "$REVTR_BENCH_DIR" \
    --trajectory || true
