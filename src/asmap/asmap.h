// IP-to-AS mapping and AS-relationship knowledge (Appx B.2).
//
// IpToAs resolves addresses to origin ASes via longest-prefix match over the
// announced prefixes, exactly as the paper does with RouteViews-derived
// data; private addresses are unmappable, producing the "*" gaps of §5.2.2.
//
// AsRelationships plays the role of CAIDA's AS-relationship/customer-cone
// dataset: it exposes relationship queries, customer cone sizes (Fig 8b,
// Table 7) and the suspicious-link test used to flag reverse traceroutes
// that probably skipped an unresponsive AS hop (§5.2.2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "topology/topology.h"

namespace revtr::asmap {

class IpToAs {
 public:
  // `interconnect_coverage` models the EuroIX/PeeringDB-style datasets the
  // paper's mapping method (Arnold et al., Appx B.2) consults first: they
  // resolve most interconnection /30s to the AS that operates the router,
  // not the AS that allocated the prefix. 0 disables the correction and
  // leaves pure longest-prefix mapping (the Fig 4 artifact everywhere).
  explicit IpToAs(const topology::Topology& topo,
                  double interconnect_coverage = 0.9,
                  std::uint64_t seed = 0x1b2a);

  // Origin AS of the longest matching announced prefix; nullopt for
  // private/unannounced space.
  std::optional<topology::Asn> lookup(net::Ipv4Addr addr) const;

  // Collapses an IP-level path into an AS-level path: consecutive
  // duplicates merge, unmappable hops are skipped.
  std::vector<topology::Asn> as_path(
      std::span<const net::Ipv4Addr> hops) const;

  // True when the IP-level path contains a hop that cannot be mapped
  // (private address etc.) - one of the §5.2.2 incompleteness signals.
  bool has_unmappable_hop(std::span<const net::Ipv4Addr> hops) const;

 private:
  net::PrefixTrie<topology::Asn> trie_;
  // Interconnect-dataset overrides: address -> operating AS.
  std::unordered_map<net::Ipv4Addr, topology::Asn> interconnect_;
};

class AsRelationships {
 public:
  enum class Rel : std::uint8_t { kNone, kProvider, kCustomer, kPeer };

  explicit AsRelationships(const topology::Topology& topo);

  // Relationship of `a` toward `b`: kProvider means "a is b's provider".
  Rel relation(topology::Asn a, topology::Asn b) const;
  bool adjacent(topology::Asn a, topology::Asn b) const {
    return relation(a, b) != Rel::kNone;
  }

  // |customer cone|: the AS itself plus all ASes reachable downward through
  // customer links (CAIDA's definition).
  std::size_t customer_cone_size(topology::Asn asn) const;
  std::size_t provider_count(topology::Asn asn) const;

  // "Small" AS per §5.2.2: <= 5 providers and <= 10 ASes in its cone.
  bool is_small(topology::Asn asn) const;

  // Suspicious AS link: a small AS s adjacent in a measured path to a
  // provider p of one of s's providers, with no known relationship between
  // s and p — evidence that an intermediate AS hop went missing.
  bool suspicious_link(topology::Asn s, topology::Asn p) const;

  // Scans an AS path and returns indices i where (path[i], path[i+1]) is
  // suspicious in either orientation.
  std::vector<std::size_t> suspicious_links_in(
      std::span<const topology::Asn> path) const;

 private:
  const topology::Topology& topo_;
  std::unordered_map<std::uint64_t, Rel> relations_;
  mutable std::unordered_map<topology::Asn, std::size_t> cone_cache_;
};

}  // namespace revtr::asmap
