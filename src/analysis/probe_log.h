// Probe event log: the trace side of the invariant catalog.
//
// A ProbeLog attached to a Prober records every probe the system emits,
// engine-lifetime. The invariant checks (analysis/invariants.h) replay a
// measurement's claims against this record: every ReverseHop provenance must
// be justified by an event that actually happened, and every packet charged
// to a budget must be tallied here exactly once. Attach the log before
// bootstrapping a source so cache replays and atlas suffixes can be traced
// back to their original measurement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "probing/prober.h"

namespace revtr::analysis {

class ProbeLog final : public probing::ProbeObserver {
 public:
  void on_probe(const probing::ProbeEvent& event) override {
    events_.push_back(event);
  }

  const std::vector<probing::ProbeEvent>& events() const noexcept {
    return events_;
  }
  // Position bookmark; pair with since() to window one request's probes.
  std::size_t mark() const noexcept { return events_.size(); }
  std::span<const probing::ProbeEvent> since(std::size_t from) const {
    return std::span<const probing::ProbeEvent>(events_).subspan(
        from < events_.size() ? from : events_.size());
  }
  std::span<const probing::ProbeEvent> lifetime() const {
    return {events_.data(), events_.size()};
  }
  void clear() { events_.clear(); }

  // Counters implied by the events with the given offline flag — a second,
  // independent accounting the budget invariant compares against the
  // Prober's own counters.
  static probing::ProbeCounters tally(
      std::span<const probing::ProbeEvent> events, bool offline);

 private:
  std::vector<probing::ProbeEvent> events_;
};

}  // namespace revtr::analysis
