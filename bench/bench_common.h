// Shared scaffolding for the experiment benches.
//
// Every bench binary regenerates one of the paper's tables or figures
// (DESIGN.md §3). Campaign sizes are scaled down from the paper's
// Internet-scale runs so a full sweep finishes in minutes on one core;
// flags (--ases, --vps, --revtrs, --seed, ...) let you scale up.
#pragma once

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/revtr.h"
#include "eval/harness.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace revtr::bench {

struct BenchSetup {
  topology::TopologyConfig topo;
  std::uint64_t seed = 7;
  std::size_t revtrs = 300;      // Reverse traceroutes per experiment.
  std::size_t atlas_size = 60;   // Atlas traceroutes per source.
  std::size_t sources = 4;       // Sources (M-Lab-like sites) to use.
};

inline BenchSetup parse_setup(const util::Flags& flags) {
  BenchSetup setup;
  setup.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  setup.topo.seed = setup.seed;
  setup.topo.num_ases =
      static_cast<std::size_t>(flags.get_int("ases", 800));
  setup.topo.num_vps = static_cast<std::size_t>(flags.get_int("vps", 30));
  setup.topo.num_vps_2016 =
      static_cast<std::size_t>(flags.get_int("vps2016", 10));
  setup.topo.num_probe_hosts =
      static_cast<std::size_t>(flags.get_int("probes", 250));
  setup.revtrs = static_cast<std::size_t>(flags.get_int("revtrs", 300));
  setup.atlas_size =
      static_cast<std::size_t>(flags.get_int("atlas", 60));
  setup.sources = static_cast<std::size_t>(flags.get_int("sources", 4));
  return setup;
}

inline void print_header(const std::string& title, const BenchSetup& setup) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "topology: %zu ASes, %zu VPs, %zu probe hosts, seed %llu | "
      "%zu revtrs, atlas %zu, %zu sources\n\n",
      setup.topo.num_ases, setup.topo.num_vps, setup.topo.num_probe_hosts,
      static_cast<unsigned long long>(setup.seed), setup.revtrs,
      setup.atlas_size, setup.sources);
}

inline void warn_unknown_flags(const util::Flags& flags) {
  for (const auto& name : flags.unknown()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", name.c_str());
  }
}

// Peak resident set size of this process in bytes (ru_maxrss is KiB on
// Linux).
inline std::uint64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

// Writes a bench's machine-readable result to
// $REVTR_BENCH_DIR/BENCH_<name>.json (current directory when unset), where
// scripts/run_all.sh and scripts/check.sh pick it up.
inline void write_bench_artifact(const std::string& name,
                                 const util::Json& payload) {
  const char* dir = std::getenv("REVTR_BENCH_DIR");
  const std::string path =
      std::string(dir != nullptr && *dir != '\0' ? dir : ".") + "/BENCH_" +
      name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write bench artifact %s\n",
                 path.c_str());
    return;
  }
  const std::string text = payload.dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace revtr::bench
