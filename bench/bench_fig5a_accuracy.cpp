// Fig 5a: accuracy of reverse traceroutes against direct traceroutes.
//
// For every measured pair we compare the reverse traceroute to a direct
// traceroute from the destination: the fraction of direct hops also seen in
// the reverse path, at AS granularity, router granularity (with the
// incomplete alias knowledge of Appx B.1), and router-optimistic (hops that
// allow no alias resolution count as matches). A forward-RR baseline shows
// how much of the apparent router-level mismatch is just the difficulty of
// aligning RR and traceroute addresses even for a *correct* path.
//
// Paper results: 92.3% of revtr 2.0 paths match the direct AS path exactly
// (+6.1% missing-hop-only) vs 81.8% for revtr 1.0; median router-level
// match 67% for revtr 2.0 vs 60% for forward RR.
#include <cstdio>

#include "ablation.h"
#include "bench_common.h"

using namespace revtr;

namespace {

util::Series ccdf_series(const std::string& name,
                         const util::Distribution& dist) {
  util::Series series;
  series.name = name;
  for (const double x : util::linspace(0.0, 1.0, 21)) {
    series.xs.push_back(x);
    series.ys.push_back(dist.ccdf_at(x));
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto setup = bench::parse_setup(flags);
  bench::warn_unknown_flags(flags);
  bench::print_header("Fig 5a: accuracy vs direct traceroute", setup);

  auto chain = bench::table4_chain();
  bench::AblationConfig revtr1 = chain.front();
  bench::AblationConfig revtr2 = chain.back();
  revtr1.record_accuracy = true;
  revtr2.record_accuracy = true;
  const auto r1 = bench::run_ablation(setup, revtr1);
  const auto r2 = bench::run_ablation(setup, revtr2);

  struct Summary {
    util::Distribution router, router_optimistic, as_level;
    std::size_t exact = 0, missing = 0, mismatch = 0, total = 0;
  };
  auto summarize = [](const bench::AblationResult& result) {
    Summary summary;
    for (const auto& path : result.paths) {
      if (!path.metrics.has_truth) continue;
      ++summary.total;
      summary.router.add(path.metrics.router_fraction);
      summary.router_optimistic.add(
          path.metrics.router_optimistic_fraction);
      summary.as_level.add(path.metrics.as_fraction);
      switch (path.metrics.as_match) {
        case eval::AsMatch::kExact:
          ++summary.exact;
          break;
        case eval::AsMatch::kMissingHops:
          ++summary.missing;
          break;
        case eval::AsMatch::kMismatch:
          ++summary.mismatch;
          break;
      }
    }
    return summary;
  };
  const Summary s1 = summarize(r1);
  const Summary s2 = summarize(r2);

  // --- Forward Record Route baseline (correct-by-construction path). ---
  eval::Lab lab(setup.topo, core::EngineConfig::revtr2(), setup.seed);
  const auto requests = bench::make_requests(lab, setup);
  util::Rng alias_rng(setup.seed + 3);
  const auto midar = alias::midar_like_aliases(lab.topo, alias_rng);
  const alias::SnmpResolver snmp(lab.topo);
  const eval::HopMatcher matcher(&midar, &snmp);
  util::Distribution fwd_router, fwd_as;
  for (const auto& [dest, source] : requests.pairs) {
    const auto dest_addr = lab.topo.host(dest).addr;
    const auto rr = lab.prober.rr_ping(source, dest_addr);
    if (!rr.responded) continue;
    // Require the RR to have recorded the full forward path.
    if (std::find(rr.slots.begin(), rr.slots.end(), dest_addr) ==
        rr.slots.end()) {
      continue;
    }
    const auto trace = lab.prober.traceroute(source, dest_addr);
    if (!trace.reached) continue;
    const auto hops = trace.responsive_hops();
    fwd_router.add(eval::fraction_hops_matched(hops, rr.slots, matcher));
    const auto trace_as = lab.ip2as.as_path(hops);
    const auto rr_as = lab.ip2as.as_path(rr.slots);
    std::size_t matched = 0;
    for (const auto asn : trace_as) {
      if (std::find(rr_as.begin(), rr_as.end(), asn) != rr_as.end()) {
        ++matched;
      }
    }
    fwd_as.add(trace_as.empty() ? 0.0
                                : static_cast<double>(matched) /
                                      static_cast<double>(trace_as.size()));
  }

  util::TextTable table({"Line", "pairs", "median fraction matched"});
  table.add_row({"revtr 2.0 AS", util::cell_count(s2.total),
                 util::cell(s2.as_level.empty() ? 0 : s2.as_level.median())});
  table.add_row({"revtr 1.0 AS", util::cell_count(s1.total),
                 util::cell(s1.as_level.empty() ? 0 : s1.as_level.median())});
  table.add_row({"Forward RR AS", util::cell_count(fwd_as.count()),
                 util::cell(fwd_as.empty() ? 0 : fwd_as.median())});
  table.add_row({"revtr 2.0 router", util::cell_count(s2.total),
                 util::cell(s2.router.empty() ? 0 : s2.router.median())});
  table.add_row({"revtr 1.0 router", util::cell_count(s1.total),
                 util::cell(s1.router.empty() ? 0 : s1.router.median())});
  table.add_row({"Forward RR router", util::cell_count(fwd_router.count()),
                 util::cell(fwd_router.empty() ? 0 : fwd_router.median())});
  table.add_row(
      {"revtr 2.0 router optimistic", util::cell_count(s2.total),
       util::cell(s2.router_optimistic.empty()
                      ? 0
                      : s2.router_optimistic.median())});
  std::printf("%s\n", table.render().c_str());

  util::TextTable as_table(
      {"System", "AS exact", "AS missing-only", "AS mismatch"});
  auto as_row = [&](const char* label, const Summary& s) {
    const double total = s.total == 0 ? 1.0 : static_cast<double>(s.total);
    as_table.add_row(
        {label, util::cell_percent(static_cast<double>(s.exact) / total),
         util::cell_percent(static_cast<double>(s.missing) / total),
         util::cell_percent(static_cast<double>(s.mismatch) / total)});
  };
  as_row("revtr 2.0", s2);
  as_row("revtr 1.0", s1);
  std::printf("%s\n", as_table.render().c_str());

  std::printf("%s\n",
              util::render_figure(
                  "Fig 5a: CCDF of fraction of direct hops also seen",
                  {ccdf_series("revtr2.0-AS", s2.as_level),
                   ccdf_series("revtr1.0-AS", s1.as_level),
                   ccdf_series("fwd-RR-AS", fwd_as),
                   ccdf_series("revtr2.0-router", s2.router),
                   ccdf_series("revtr1.0-router", s1.router),
                   ccdf_series("fwd-RR-router", fwd_router),
                   ccdf_series("revtr2.0-router-optimistic",
                               s2.router_optimistic)},
                  3)
                  .c_str());
  std::printf(
      "paper: revtr 2.0 AS-exact 92.3%% (+6.1%% missing-only) vs revtr 1.0\n"
      "81.8%%; router-level limited by alias incompleteness, as shown by the\n"
      "forward-RR control line sitting close to revtr 2.0.\n");
  return 0;
}
