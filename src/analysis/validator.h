// Paranoid-mode validator for the service layer.
//
// Re-checks every measurement the service serves against the invariant
// catalog and counts violations instead of failing the request — operators
// alarm on a nonzero counter. Budget accounting (I3) is left to
// tools/revtr_mc, the only place where request probe windows are exact; in
// the service, atlas refreshes and bundled forward traceroutes interleave
// with the measurement.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "analysis/invariants.h"
#include "analysis/probe_log.h"

namespace revtr::analysis {

class ResultValidator {
 public:
  ResultValidator(const topology::Topology& topo, const asmap::IpToAs& ip2as,
                  const core::EngineConfig& config, const ProbeLog& log)
      : topo_(&topo), ip2as_(&ip2as), config_(&config), log_(&log) {}

  void check(const core::ReverseTraceroute& result) {
    ++checked_;
    CheckContext ctx;
    ctx.topo = topo_;
    ctx.ip2as = ip2as_;
    ctx.config = config_;
    ctx.lifetime = log_->lifetime();
    ctx.check_budget = false;
    for (auto& violation : check_result(result, ctx)) {
      violations_.push_back(std::move(violation));
    }
  }

  // Adapter for RevtrService::set_inspector. The validator must outlive the
  // service's use of the returned callable.
  std::function<void(const core::ReverseTraceroute&)> inspector() {
    return [this](const core::ReverseTraceroute& result) { check(result); };
  }

  std::size_t checked() const noexcept { return checked_; }
  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  bool clean() const noexcept { return violations_.empty(); }

 private:
  const topology::Topology* topo_;
  const asmap::IpToAs* ip2as_;
  const core::EngineConfig* config_;
  const ProbeLog* log_;
  std::size_t checked_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace revtr::analysis
