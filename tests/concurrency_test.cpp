// Concurrency regression suite. Everything here is meant to run under TSan
// (scripts/check.sh builds the tsan preset and runs this binary): the tests
// exercise exactly the shared paths of a parallel campaign — the thread
// pool, the synchronized Distribution, the lock-striped caches — plus the
// end-to-end guarantee that a campaign's measurement set is independent of
// worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "obs/metrics.h"
#include "service/parallel.h"
#include "util/stats.h"
#include "util/striped_map.h"
#include "util/thread_pool.h"

namespace revtr {
namespace {

using topology::HostId;

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  util::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, RunsEveryTaskAcrossWorkers) {
  util::ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&done] {
      const std::size_t w = util::ThreadPool::current_worker();
      EXPECT_LT(w, 4u);
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  util::ThreadPool pool(2);
  auto boom = pool.submit([]() -> int {
    throw std::runtime_error("probe batch failed");
  });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that threw must keep serving tasks.
  auto ok = pool.submit([] { return 7; });
  EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // Destructor must wait for all 50, not just the running one.
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, TinyQueueStillCompletesEverything) {
  // Capacity 1 forces submitters to block on the not-full condition; every
  // task must still run exactly once.
  util::ThreadPool pool(2, /*queue_capacity=*/1);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, CurrentWorkerOutsidePoolIsSentinel) {
  EXPECT_EQ(util::ThreadPool::current_worker(), util::ThreadPool::kNotAWorker);
}

// --- Distribution (the const_cast data race, fixed) ----------------------

// Regression for the ensure_sorted const_cast: quantile() used to sort the
// sample vector through a const_cast with no synchronization, so a reader
// racing a writer corrupted the vector. Under TSan this test fails on the
// old code; on any build it must not crash and must keep counts exact.
TEST(DistributionConcurrency, ReaderRacingWriterIsSafe) {
  util::Distribution dist;
  constexpr int kSamples = 20000;
  std::thread writer([&dist] {
    for (int i = 0; i < kSamples; ++i) dist.add(i);
  });
  std::thread reader([&dist] {
    for (int i = 0; i < 2000; ++i) {
      const double q = dist.quantile(0.5);
      EXPECT_GE(q, 0.0);
      EXPECT_GE(dist.cdf_at(static_cast<double>(kSamples)), 0.0);
      (void)dist.mean();
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(dist.count(), static_cast<std::size_t>(kSamples));
  EXPECT_DOUBLE_EQ(dist.max(), kSamples - 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 0.0);
}

TEST(DistributionConcurrency, TwoQuantileReadersShareSafely) {
  // Two pure readers both trigger the lazy sort; the old code let them sort
  // the same vector simultaneously.
  util::Distribution dist;
  for (int i = 5000; i-- > 0;) dist.add(i);
  std::thread a([&dist] {
    for (int i = 0; i < 3000; ++i) (void)dist.quantile(0.9);
  });
  std::thread b([&dist] {
    for (int i = 0; i < 3000; ++i) (void)dist.median();
  });
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(dist.median(), 2499.5);
}

// --- StripedMap ----------------------------------------------------------

TEST(StripedMap, ConcurrentInsertAndLookup) {
  util::StripedMap<std::vector<int>> map;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto key =
            static_cast<std::uint64_t>(t) * kPerThread + static_cast<std::uint64_t>(i);
        map.insert_or_assign(key, std::vector<int>{t, i});
        // Read back own writes and probe other threads' keys.
        const auto mine = map.lookup(key);
        ASSERT_TRUE(mine.has_value());
        EXPECT_EQ((*mine)[0], t);
        (void)map.lookup(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads * kPerThread));
  const auto probe = map.lookup(3 * kPerThread + 17);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ((*probe)[1], 17);
}

// --- Sharded metrics ------------------------------------------------------

// Pool workers and non-pool threads hammer the same counter cells; the
// merged total must equal the number of adds. TSan validates that the
// relaxed per-shard atomics really are race-free.
TEST(ShardedMetrics, ConcurrentCounterAddsMergeExactly) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("revtr_test_adds_total");
  constexpr int kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 5000;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&counter] {
        for (std::uint64_t i = 0; i < kAddsPerTask; ++i) counter.add();
      }));
    }
    // A non-pool writer exercises shard 0 concurrently with the workers.
    std::thread outsider([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerTask; ++i) counter.add(2);
    });
    for (auto& f : futures) f.get();
    outsider.join();
  }
  EXPECT_EQ(counter.total(), (kTasks + 2) * kAddsPerTask);
}

TEST(ShardedMetrics, ConcurrentHistogramRecordsMergeExactly) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("revtr_test_latency_us");
  constexpr int kTasks = 32;
  constexpr std::uint64_t kSamplesPerTask = 2000;
  std::uint64_t want_sum = 0;
  for (std::uint64_t i = 0; i < kSamplesPerTask; ++i) want_sum += i * 7;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&hist] {
        for (std::uint64_t i = 0; i < kSamplesPerTask; ++i) hist.record(i * 7);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(hist.count(), kTasks * kSamplesPerTask);
  EXPECT_EQ(hist.sum(), static_cast<std::uint64_t>(kTasks) * want_sum);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

// Snapshots (the campaign's merge-at-barrier) run concurrently with
// writers and with get-or-create registration of fresh names. Mid-run
// snapshot values are racy by design; the invariants are: no TSan report,
// handles are stable, and the final merged totals are exact.
TEST(ShardedMetrics, SnapshotAndRegistrationDuringConcurrentWrites) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("revtr_test_probes_total");
  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snapshot = registry.snapshot();
      EXPECT_GE(snapshot.counters.size(), 1u);
    }
  });
  constexpr int kTasks = 32;
  constexpr std::uint64_t kAddsPerTask = 3000;
  {
    util::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&registry, &counter, t] {
        // Same-name registration from many threads must converge on one cell.
        obs::Counter& again = registry.counter("revtr_test_probes_total");
        EXPECT_EQ(&again, &counter);
        obs::Gauge& mine = registry.gauge(
            "revtr_test_worker_gauge{worker=\"" + std::to_string(t % 4) +
            "\"}");
        mine.set(t);
        for (std::uint64_t i = 0; i < kAddsPerTask; ++i) again.add();
      }));
    }
    for (auto& f : futures) f.get();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(counter.total(), kTasks * kAddsPerTask);
  EXPECT_EQ(registry.size(), 1u + 4u);  // Counter + one gauge per worker id.
}

// --- ParallelCampaignDriver ----------------------------------------------

class ParallelCampaignTest : public ::testing::Test {
 protected:
  static topology::TopologyConfig small_config() {
    topology::TopologyConfig config;
    config.seed = 91;
    config.num_ases = 150;
    config.num_vps = 10;
    config.num_vps_2016 = 4;
    config.num_probe_hosts = 40;
    return config;
  }

  void SetUp() override {
    lab_ = std::make_unique<eval::Lab>(small_config());
    source_ = lab_->topo.vantage_points()[0];
    lab_->bootstrap_source(source_, 30);
    const auto dests = lab_->responsive_destinations(true);
    for (std::size_t i = 0; i < 16 && i < dests.size(); ++i) {
      pairs_.emplace_back(dests[i], source_);
    }
    ASSERT_GE(pairs_.size(), 8u);
  }

  service::CampaignDeps deps() {
    return {lab_->topo,  lab_->plane, lab_->atlas,
            lab_->ingress, lab_->ip2as, lab_->relationships};
  }

  service::ParallelCampaignReport run_with(std::size_t workers,
                                           bool use_cache = true) {
    service::ParallelCampaignOptions options;
    options.workers = workers;
    options.seed = 7;
    options.engine.use_cache = use_cache;
    service::ParallelCampaignDriver driver(deps(), options);
    return driver.run(pairs_);
  }

  // The measurement identity the driver promises is worker-count-invariant:
  // endpoints, status, and the exact hop sequence (address + provenance).
  static std::string signature(const core::ReverseTraceroute& r) {
    std::string s = std::to_string(r.destination) + ">" +
                    std::to_string(r.source) + ":" + core::to_string(r.status);
    for (const auto& hop : r.hops) {
      s += "|" + hop.addr.to_string() + "/" + core::to_string(hop.source);
    }
    return s;
  }

  std::unique_ptr<eval::Lab> lab_;
  HostId source_ = topology::kInvalidId;
  std::vector<std::pair<HostId, HostId>> pairs_;
};

TEST_F(ParallelCampaignTest, MatchesSingleThreadedMeasurements) {
  const auto solo = run_with(1);
  const auto fleet = run_with(3);
  ASSERT_EQ(solo.results.size(), pairs_.size());
  ASSERT_EQ(fleet.results.size(), pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    EXPECT_EQ(signature(solo.results[i]), signature(fleet.results[i]))
        << "request " << i << " measured differently on 3 workers";
  }
  EXPECT_EQ(solo.stats.completed, fleet.stats.completed);
  EXPECT_EQ(solo.stats.aborted, fleet.stats.aborted);
  EXPECT_EQ(solo.stats.unreachable, fleet.stats.unreachable);
}

TEST_F(ParallelCampaignTest, SharedCacheDoesNotChangeResults) {
  const auto cold = run_with(2, /*use_cache=*/false);
  const auto warm = run_with(2, /*use_cache=*/true);
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    EXPECT_EQ(signature(cold.results[i]), signature(warm.results[i]))
        << "cache changed the outcome of request " << i;
  }
  // Caching can only save probes, never spend more.
  EXPECT_LE(warm.stats.probes.total(), cold.stats.probes.total());
}

TEST_F(ParallelCampaignTest, MergedStatsAreConsistent) {
  const auto report = run_with(4);
  const auto& stats = report.stats;
  EXPECT_EQ(stats.requested, pairs_.size());
  EXPECT_EQ(stats.completed + stats.aborted + stats.unreachable,
            pairs_.size());
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.latency_seconds.count(), pairs_.size());
  EXPECT_GT(stats.probes.total(), 0u);
  ASSERT_EQ(report.worker_busy_seconds.size(), 4u);
  double busy_sum = 0;
  double busiest = 0;
  for (const double b : report.worker_busy_seconds) {
    busy_sum += b;
    busiest = std::max(busiest, b);
  }
  EXPECT_NEAR(stats.busy_seconds, busy_sum, 1e-9);
  EXPECT_NEAR(stats.duration_seconds, busiest, 1e-9);
  EXPECT_LE(stats.duration_seconds, stats.busy_seconds + 1e-9);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(stats.processed_per_second(), 0.0);
  EXPECT_GE(stats.processed_per_second(), stats.completed_per_second());
}

TEST_F(ParallelCampaignTest, PacingHoldsWorkerSlots) {
  service::ParallelCampaignOptions options;
  options.workers = 2;
  options.seed = 7;
  options.pacing_scale = 1e-4;
  service::ParallelCampaignDriver driver(deps(), options);
  const auto report = driver.run(pairs_);
  // Each request held its slot for latency * scale real seconds; with two
  // workers the wall clock must cover at least half the total hold time.
  EXPECT_GE(report.wall_seconds,
            options.pacing_scale * report.stats.busy_seconds / 2 * 0.5);
}

}  // namespace
}  // namespace revtr
