#include "core/revtr.h"

#include "core/request_task.h"
#include "sched/scheduler.h"

namespace revtr::core {

namespace {
using net::Ipv4Addr;
using topology::HostId;
}  // namespace

std::string to_string(HopSource source) {
  switch (source) {
    case HopSource::kDestination:
      return "destination";
    case HopSource::kRecordRoute:
      return "rr";
    case HopSource::kSpoofedRecordRoute:
      return "spoofed-rr";
    case HopSource::kTimestamp:
      return "timestamp";
    case HopSource::kAtlasIntersection:
      return "atlas";
    case HopSource::kAssumedSymmetric:
      return "assumed-symmetric";
    case HopSource::kSuspiciousGap:
      return "*";
  }
  return "?";
}

std::string to_string(RevtrStatus status) {
  switch (status) {
    case RevtrStatus::kComplete:
      return "complete";
    case RevtrStatus::kAbortedInterdomainSymmetry:
      return "aborted-interdomain";
    case RevtrStatus::kUnreachable:
      return "unreachable";
  }
  return "?";
}

std::vector<Ipv4Addr> ReverseTraceroute::ip_hops() const {
  const auto addr_col = hops.addrs();
  const auto source_col = hops.sources();
  std::vector<Ipv4Addr> addrs;
  addrs.reserve(addr_col.size());
  for (std::size_t i = 0; i < addr_col.size(); ++i) {
    if (source_col[i] != HopSource::kSuspiciousGap) {
      addrs.push_back(addr_col[i]);
    }
  }
  return addrs;
}

EngineConfig EngineConfig::revtr1() {
  EngineConfig config;
  config.use_ingress_selection = false;
  config.use_cache = false;
  config.use_timestamp = true;
  config.use_rr_atlas = false;
  config.allow_interdomain_symmetry = true;
  config.assume_from_unreachable_traceroute = true;
  config.flag_suspicious_links = false;
  return config;
}

EngineConfig EngineConfig::revtr2() { return EngineConfig{}; }

std::string EngineConfig::name() const {
  std::string name = use_ingress_selection ? "ingress" : "setcover";
  name += use_cache ? "+cache" : "";
  name += use_timestamp ? "+ts" : "";
  name += use_rr_atlas ? "+rratlas" : "";
  name += allow_interdomain_symmetry ? "+interdomain" : "";
  return name;
}

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry) {
  const auto status = [&registry](const char* value) {
    return &registry.counter(std::string("revtr_requests_total{status=\"") +
                             value + "\"}");
  };
  requests_complete = status("complete");
  requests_aborted = status("aborted-interdomain");
  requests_unreachable = status("unreachable");

  const auto stage = [&registry](const char* name, const char* outcome) {
    return &registry.counter(std::string("revtr_engine_stage_total{stage=\"") +
                             name + "\",outcome=\"" + outcome + "\"}");
  };
  atlas_hit = stage("atlas", "hit");
  atlas_miss = stage("atlas", "miss");
  rr_cache_replay = stage("rr", "cache-replay");
  rr_direct_hit = stage("rr", "direct-hit");
  rr_spoofed_hit = stage("rr", "spoofed-hit");
  rr_miss = stage("rr", "miss");
  rr_ingress_discovery = stage("rr", "ingress-discovery");
  ts_hit = stage("ts", "hit");
  ts_miss = stage("ts", "miss");
  ts_skipped = stage("ts", "skipped");
  symmetry_cached = stage("symmetry", "cached");
  symmetry_extended = stage("symmetry", "extended");
  symmetry_aborted = stage("symmetry", "aborted");
  symmetry_stuck = stage("symmetry", "stuck");

  dbr_suspects = &registry.counter("revtr_dbr_suspects_total");

  latency_us = &registry.histogram("revtr_request_latency_us");
  request_probes = &registry.histogram("revtr_request_probes");
  request_hops = &registry.histogram("revtr_request_hops");
  spoofed_batches = &registry.histogram("revtr_request_spoofed_batches");
}

RevtrEngine::RevtrEngine(probing::Prober& prober,
                         const topology::Topology& topo,
                         atlas::TracerouteAtlas& atlas,
                         vpselect::IngressDiscovery& ingress,
                         const asmap::IpToAs& ip2as,
                         const asmap::AsRelationships& relationships,
                         EngineConfig config, std::uint64_t seed)
    : prober_(prober),
      topo_(topo),
      atlas_(atlas),
      ingress_(ingress),
      ip2as_(ip2as),
      relationships_(relationships),
      config_(config),
      rng_(seed),
      caches_(std::make_shared<EngineCaches>()) {}

void RevtrEngine::clear_caches() { caches_->clear(); }

std::vector<Ipv4Addr> RevtrEngine::extract_reverse_hops(
    std::span<const Ipv4Addr> slots, Ipv4Addr current) {
  // The reverse hops are the slots recorded after the probed hop stamped
  // itself on the way back to the (spoofed) source.
  for (std::size_t i = slots.size(); i-- > 0;) {
    if (slots[i] == current) {
      return {slots.begin() + static_cast<long>(i) + 1, slots.end()};
    }
  }
  // Destination stamped an alias twice (Appx C double-stamp).
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    if (slots[i] == slots[i + 1]) {
      return {slots.begin() + static_cast<long>(i) + 2, slots.end()};
    }
  }
  // Loop a ... a: everything after the second `a` is on the reverse path.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    for (std::size_t j = i + 2; j < slots.size(); ++j) {
      if (slots[i] == slots[j]) {
        return {slots.begin() + static_cast<long>(j) + 1, slots.end()};
      }
    }
  }
  return {};
}

ReverseTraceroute RevtrEngine::measure(HostId destination, HostId source,
                                       util::SimClock& clock) {
  // Blocking executor over the staged machine (core/request_task.h): drive
  // the same RequestTask the async scheduler drives, fulfilling each demand
  // set inline and in demand order. sched::execute_demand is the single
  // probe-issuing funnel (revtr_lint forbids direct Prober probe calls in
  // src/core/), so blocking behaviour is staged behaviour with a trivial
  // scheduler — the equivalence the concurrency tests pin is by
  // construction, not by parallel maintenance of two code paths.
  RequestTask task(*this, destination, source, clock, rng_, trace_);
  std::vector<sched::ProbeOutcome> outcomes;
  while (!task.done()) {
    const auto demands = task.advance();
    if (task.done()) break;
    outcomes.clear();
    outcomes.reserve(demands.size());
    for (const auto& demand : demands) {
      outcomes.push_back(sched::execute_demand(prober_, demand));
    }
    task.supply(outcomes);
  }
  return task.take_result();
}

}  // namespace revtr::core
