#include "net/ip_options.h"

namespace revtr::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  return (std::uint32_t{bytes[at]} << 24) | (std::uint32_t{bytes[at + 1]} << 16) |
         (std::uint32_t{bytes[at + 2]} << 8) | std::uint32_t{bytes[at + 3]};
}

}  // namespace

void RecordRouteOption::encode(std::vector<std::uint8_t>& out) const {
  out.push_back(kType);
  out.push_back(kLength);
  // Pointer is 1-based and points at the first free slot; the first slot
  // begins at offset 4 (RFC 791 §3.1).
  out.push_back(static_cast<std::uint8_t>(4 + 4 * used_));
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    put_u32(out, i < used_ ? slots_[i].value() : 0);
  }
}

std::optional<RecordRouteOption> RecordRouteOption::decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kLength || bytes[0] != kType) return std::nullopt;
  const std::uint8_t length = bytes[1];
  const std::uint8_t pointer = bytes[2];
  if (length != kLength) return std::nullopt;
  // Valid pointers: 4, 8, ..., 40 (full).
  if (pointer < 4 || (pointer - 4) % 4 != 0 || pointer > kLength + 1) {
    return std::nullopt;
  }
  RecordRouteOption option;
  const std::size_t used = (pointer - 4) / 4;
  if (used > kMaxSlots) return std::nullopt;
  for (std::size_t i = 0; i < used; ++i) {
    option.stamp(Ipv4Addr(get_u32(bytes, 3 + 4 * i)));
  }
  return option;
}

TimestampOption TimestampOption::prespecified(
    std::span<const Ipv4Addr> addrs) {
  TimestampOption option;
  for (Ipv4Addr addr : addrs) {
    if (option.used_ == kMaxEntries) break;
    option.entries_[option.used_++] = Entry{addr, 0, false};
  }
  return option;
}

std::optional<std::size_t> TimestampOption::next_pending() const noexcept {
  for (std::size_t i = 0; i < used_; ++i) {
    if (!entries_[i].stamped) return i;
  }
  return std::nullopt;
}

bool TimestampOption::try_stamp(Ipv4Addr addr,
                                std::uint32_t timestamp) noexcept {
  const auto pending = next_pending();
  if (!pending || entries_[*pending].addr != addr) return false;
  entries_[*pending].timestamp = timestamp;
  entries_[*pending].stamped = true;
  return true;
}

void TimestampOption::encode(std::vector<std::uint8_t>& out) const {
  const auto length = static_cast<std::uint8_t>(4 + 8 * used_);
  out.push_back(kType);
  out.push_back(length);
  // Pointer (1-based) to the first pending entry; past the end when done.
  std::uint8_t pointer = static_cast<std::uint8_t>(length + 1);
  if (const auto pending = next_pending()) {
    pointer = static_cast<std::uint8_t>(5 + 8 * *pending);
  }
  out.push_back(pointer);
  out.push_back(static_cast<std::uint8_t>((overflow_ << 4) |
                                          kFlagPrespecified));
  for (std::size_t i = 0; i < used_; ++i) {
    put_u32(out, entries_[i].addr.value());
    put_u32(out, entries_[i].stamped ? entries_[i].timestamp : 0);
  }
}

std::optional<TimestampOption> TimestampOption::decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4 || bytes[0] != kType) return std::nullopt;
  const std::uint8_t length = bytes[1];
  const std::uint8_t pointer = bytes[2];
  const std::uint8_t oflw_flags = bytes[3];
  if ((oflw_flags & 0x0f) != kFlagPrespecified) return std::nullopt;
  if (length < 4 || (length - 4) % 8 != 0 || bytes.size() < length) {
    return std::nullopt;
  }
  const std::size_t entries = (length - 4) / 8;
  if (entries > kMaxEntries) return std::nullopt;
  if (pointer < 5 || pointer > length + 1 || (pointer - 5) % 8 != 0) {
    return std::nullopt;
  }
  TimestampOption option;
  option.overflow_ = oflw_flags >> 4;
  const std::size_t stamped_count = (pointer - 5) / 8;
  for (std::size_t i = 0; i < entries; ++i) {
    Entry entry;
    entry.addr = Ipv4Addr(get_u32(bytes, 4 + 8 * i));
    entry.timestamp = get_u32(bytes, 8 + 8 * i);
    entry.stamped = i < stamped_count;
    option.entries_[option.used_++] = entry;
  }
  return option;
}

}  // namespace revtr::net
