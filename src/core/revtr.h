// The Reverse Traceroute engine: the paper's primary contribution.
//
// Implements the Fig 2 control flow. Starting from the destination D, the
// engine repeatedly extends the path toward the source S:
//   1. If the current hop intersects a traceroute in S's atlas (exactly, via
//      the Q2 RR index, or — revtr 1.0 style — via external alias data),
//      adopt the traceroute's suffix and finish.
//   2. Otherwise try Record Route: a direct RR ping from S, then spoofed RR
//      pings from the vantage points chosen by Q3 ingress selection
//      (revtr 2.0) or by the revtr 1.0 set-cover order, in batches of 3,
//      each batch charging the 10-second spoof timeout (§5.2.4).
//   3. Optionally (revtr 1.0 / Q4 ablation) test traceroute adjacencies of
//      the current hop with IP timestamp prespec probes.
//   4. Otherwise run a forward traceroute to the current hop and assume the
//      last link is symmetric — unconditionally for revtr 1.0, only when the
//      link is intradomain for revtr 2.0 (Q5, §4.4); an interdomain link
//      aborts the measurement instead of risking a wrong path.
//
// Config presets reproduce the Table 4 ablation chain:
//   revtr 2.0 = revtr 1.0 + ingress + cache - TS + RR atlas.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "alias/alias.h"
#include "asmap/asmap.h"
#include "atlas/atlas.h"
#include "core/adjacency.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "probing/prober.h"
#include "topology/topology.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/sim_clock.h"
#include "util/striped_map.h"
#include "vpselect/ingress.h"

namespace revtr::core {

// Where each reverse hop came from; results carry full provenance so users
// can judge trust hop by hop (the operational requirement of Insight 1.10).
enum class HopSource : std::uint8_t {
  kDestination,         // The starting point D.
  kRecordRoute,         // Direct RR ping from the source.
  kSpoofedRecordRoute,  // Spoofed RR ping from a vantage point.
  kTimestamp,           // tsprespec-confirmed adjacency.
  kAtlasIntersection,   // Suffix of an atlas traceroute.
  kAssumedSymmetric,    // Penultimate hop of a forward traceroute.
  kSuspiciousGap,       // Flagged "*": a hop is probably missing here.
};

std::string to_string(HopSource source);

struct ReverseHop {
  net::Ipv4Addr addr;  // Unspecified for kSuspiciousGap.
  HopSource source = HopSource::kDestination;

  bool operator==(const ReverseHop&) const = default;
};

// Reverse-path hop storage, flattened structure-of-arrays (DESIGN.md §13):
// parallel address and provenance arrays instead of a vector of ReverseHop.
// The hot consumer is RequestTask::already_in_path — a linear scan per
// revealed hop — which now walks a dense 4-byte address array. The API
// stays hop-shaped: iteration and operator[] materialize ReverseHop values,
// so range-for call sites and the serializer are unchanged (and the JSON
// encoding is byte-identical, pinned by serialize_test's golden test).
//
// Accessors return *const values*, not references: assigning through a
// temporary (hops.front().source = ...) would silently mutate nothing, and
// the const qualifier turns that mistake into a compile error. Mutation
// goes through set_source()/set_addr().
class HopList {
 public:
  std::size_t size() const noexcept { return addrs_.size(); }
  bool empty() const noexcept { return addrs_.empty(); }
  void reserve(std::size_t n) {
    addrs_.reserve(n);
    sources_.reserve(n);
  }
  void clear() noexcept {
    addrs_.clear();
    sources_.clear();
  }

  void push_back(ReverseHop hop) {
    addrs_.push_back(hop.addr);
    sources_.push_back(hop.source);
  }
  // Inserts before position `index` (the finalize_flags "*" insertion).
  void insert(std::size_t index, ReverseHop hop) {
    REVTR_CHECK(index <= addrs_.size());
    addrs_.insert(addrs_.begin() + static_cast<std::ptrdiff_t>(index),
                  hop.addr);
    sources_.insert(sources_.begin() + static_cast<std::ptrdiff_t>(index),
                    hop.source);
  }

  const ReverseHop operator[](std::size_t index) const {
    return ReverseHop{addrs_[index], sources_[index]};
  }
  const ReverseHop front() const { return (*this)[0]; }
  const ReverseHop back() const { return (*this)[addrs_.size() - 1]; }

  void set_source(std::size_t index, HopSource source) {
    sources_[index] = source;
  }
  void set_addr(std::size_t index, net::Ipv4Addr addr) {
    addrs_[index] = addr;
  }

  // Dense columns for scan-heavy consumers (already_in_path, ip_hops).
  std::span<const net::Ipv4Addr> addrs() const noexcept { return addrs_; }
  std::span<const HopSource> sources() const noexcept { return sources_; }

  class const_iterator {
   public:
    using value_type = ReverseHop;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const HopList* list, std::size_t index)
        : list_(list), index_(index) {}
    const ReverseHop operator*() const { return (*list_)[index_]; }
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++index_;
      return copy;
    }
    bool operator==(const const_iterator& other) const {
      return index_ == other.index_;
    }

   private:
    const HopList* list_ = nullptr;
    std::size_t index_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, addrs_.size()); }

  bool operator==(const HopList&) const = default;

 private:
  std::vector<net::Ipv4Addr> addrs_;
  std::vector<HopSource> sources_;
};

enum class RevtrStatus : std::uint8_t {
  kComplete,
  kAbortedInterdomainSymmetry,  // Q5: refused to guess (revtr 2.0 only).
  kUnreachable,                 // No technique could make progress.
};

std::string to_string(RevtrStatus status);

struct ReverseTraceroute {
  topology::HostId destination = topology::kInvalidId;
  topology::HostId source = topology::kInvalidId;
  RevtrStatus status = RevtrStatus::kUnreachable;
  HopList hops;  // destination ... source order (SoA storage).

  util::SimSpan span;                // Simulated wall-clock of the request.
  probing::ProbeCounters probes;     // Online packets spent on this request.
  // Background packets triggered by this request (on-demand ingress
  // discovery); Table 4 accounts these separately from the online budget.
  probing::ProbeCounters offline_probes;
  // Demands answered by another request's in-flight duplicate under the
  // probe scheduler (DESIGN.md §10): the path benefited, but no wire probe
  // was issued — `probes` counts uniquely-issued packets only. Always 0 on
  // the blocking path.
  std::uint64_t coalesced_probes = 0;
  std::size_t spoofed_batches = 0;   // Each charged the 10 s timeout.
  std::size_t symmetry_assumptions = 0;
  bool used_interdomain_symmetry = false;
  bool has_suspicious_gap = false;   // "*" inserted (§5.2.2 flagging).
  bool has_private_hops = false;
  // Appx E: a redundant re-probe observed a different next hop somewhere
  // on this path (possible destination-based-routing violation).
  bool dbr_suspect = false;
  bool used_stale_traceroute = false;
  util::SimClock::Micros intersected_age_us = 0;

  bool complete() const noexcept { return status == RevtrStatus::kComplete; }
  // Concrete IP hops in order (skips "*").
  std::vector<net::Ipv4Addr> ip_hops() const;
};

struct EngineConfig {
  bool use_ingress_selection = true;  // Q3 (else revtr 1.0 VP order).
  bool use_cache = true;              // Reuse RR/traceroute results 24 h.
  bool use_timestamp = false;         // Q4.
  bool use_rr_atlas = true;           // Q2 intersection index.
  bool allow_interdomain_symmetry = false;  // Q5 (revtr 1.0: true).
  // revtr 1.0 pressed on from the last responsive traceroute hop even when
  // the traceroute never reached the current hop — part of how it returned
  // an answer for 100% of requests (and part of why some were wrong).
  bool assume_from_unreachable_traceroute = false;
  bool flag_suspicious_links = true;        // §5.2.2 "*" insertion.
  // Appx E option: re-probe each RR-revealed hop from a second vantage
  // point and flag the measurement if the next reverse hop disagrees —
  // catching destination-based-routing violations at the cost of extra
  // spoofed probes.
  bool verify_destination_based_routing = false;

  std::size_t batch_size = 3;           // Spoofed RR batch (§5.3).
  std::size_t max_per_ingress = 5;      // Backup VPs per ingress (§4.3).
  std::size_t max_ts_adjacencies = 10;  // TS probes per stuck hop.
  std::size_t max_reverse_hops = 64;
  util::SimClock::Micros spoof_batch_timeout =
      10 * util::SimClock::kSecond;  // Empirical timeout (§5.2.4).
  util::SimClock::Micros cache_ttl = util::SimClock::kDay;

  static EngineConfig revtr1();
  static EngineConfig revtr2();
  std::string name() const;
};

// Cached outcome of the RR technique at one (hop, source) key.
struct RrCacheEntry {
  std::vector<net::Ipv4Addr> reverse_hops;
  // How the cached hops were originally measured. Replays must keep the
  // original provenance: a direct-RR hop must not resurface labelled as
  // spoofed (Insight 1.10 — users judge trust hop by hop).
  HopSource source = HopSource::kSpoofedRecordRoute;
  util::SimClock::Micros expires_at = 0;
};

// Cached outcome of the symmetry-assumption traceroute at one key.
struct TrCacheEntry {
  std::optional<net::Ipv4Addr> penultimate;
  bool reached = false;
  util::SimClock::Micros expires_at = 0;
};

// The engine's probe-result caches, lock-striped so one instance can be
// shared by every engine of a parallel campaign: any worker's RR probe or
// symmetry traceroute saves every other worker the packets (the Doubletree
// shared-stop-set idea applied to reverse traceroute).
struct EngineCaches {
  util::StripedMap<RrCacheEntry> rr;
  util::StripedMap<TrCacheEntry> tr;

  void clear() {
    rr.clear();
    tr.clear();
  }
};

// Registry handles for the engine's per-request and per-stage accounting
// (DESIGN.md §9). Resolved once at construction; shared across all worker
// engines of a campaign (the counters are internally sharded).
struct EngineMetrics {
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  // revtr_requests_total{status=...}
  obs::Counter* requests_complete;
  obs::Counter* requests_aborted;
  obs::Counter* requests_unreachable;

  // revtr_engine_stage_total{stage=...,outcome=...}
  obs::Counter* atlas_hit;
  obs::Counter* atlas_miss;
  obs::Counter* rr_cache_replay;
  obs::Counter* rr_direct_hit;
  obs::Counter* rr_spoofed_hit;
  obs::Counter* rr_miss;
  obs::Counter* rr_ingress_discovery;
  obs::Counter* ts_hit;
  obs::Counter* ts_miss;
  obs::Counter* ts_skipped;
  obs::Counter* symmetry_cached;
  obs::Counter* symmetry_extended;
  obs::Counter* symmetry_aborted;
  obs::Counter* symmetry_stuck;

  obs::Counter* dbr_suspects;

  obs::Histogram* latency_us;
  obs::Histogram* request_probes;
  obs::Histogram* request_hops;
  obs::Histogram* spoofed_batches;
};

class RequestTask;

class RevtrEngine {
 public:
  RevtrEngine(probing::Prober& prober, const topology::Topology& topo,
              atlas::TracerouteAtlas& atlas,
              vpselect::IngressDiscovery& ingress, const asmap::IpToAs& ip2as,
              const asmap::AsRelationships& relationships,
              EngineConfig config, std::uint64_t seed = 99);

  // revtr 1.0-style atlas intersection through an alias dataset (used when
  // the Q2 RR index is disabled). Not owned; may be nullptr.
  void set_alias_store(const alias::AliasStore* aliases) {
    aliases_ = aliases;
  }
  // Adjacency source for the timestamp technique. Empty = technique skipped.
  void set_adjacency_provider(AdjacencyProvider provider) {
    adjacencies_ = std::move(provider);
  }

  // Measures the reverse path from `destination` back to `source`,
  // advancing `clock` by the simulated time the measurement takes.
  // Blocking executor over the staged machine: drives a RequestTask to
  // completion, fulfilling every demand set inline (core/request_task.h).
  ReverseTraceroute measure(topology::HostId destination,
                            topology::HostId source, util::SimClock& clock);

  // Staged entry point: a resumable task for this request, to be driven by
  // a sched::ProbeScheduler pump loop. `clock`/`rng`/`trace` belong to the
  // request and must outlive the task; multiplexed requests need their own
  // clock and RNG stream each (the campaign driver seeds per request from
  // (campaign seed, index), exactly as blocking mode does via reseed()).
  std::unique_ptr<RequestTask> start_request(topology::HostId destination,
                                             topology::HostId source,
                                             util::SimClock& clock,
                                             util::Rng& rng,
                                             obs::Trace* trace = nullptr);

  const EngineConfig& config() const noexcept { return config_; }
  void clear_caches();

  // Replaces this engine's caches with a (possibly shared) instance. The
  // parallel campaign driver points every worker engine at one EngineCaches
  // so discoveries propagate across workers.
  void set_shared_caches(std::shared_ptr<EngineCaches> caches) {
    REVTR_CHECK(caches != nullptr);
    caches_ = std::move(caches);
  }
  const std::shared_ptr<EngineCaches>& shared_caches() const noexcept {
    return caches_;
  }

  // Metrics handles; nullptr (default) = no instrumentation. The handles
  // must outlive the engine's use of them.
  void set_metrics(const EngineMetrics* metrics) noexcept {
    metrics_ = metrics;
  }
  // Trace for the *next* measure() call(s); nullptr detaches. The engine
  // never owns the trace — the campaign driver attaches a fresh one per
  // sampled request and publishes it after the measurement returns.
  void set_trace(obs::Trace* trace) noexcept { trace_ = trace; }

  // Restarts the engine's private RNG stream. The driver reseeds per
  // request from (campaign seed, request index) so measurement outcomes are
  // independent of which worker runs the request and in what order.
  void reseed(std::uint64_t seed) noexcept { rng_.reseed(seed); }

  // Extracts the reverse hops that follow `current`'s stamp in an RR reply,
  // using the same double-stamp/loop fallbacks as ingress discovery.
  // Exposed for unit tests.
  static std::vector<net::Ipv4Addr> extract_reverse_hops(
      std::span<const net::Ipv4Addr> slots, net::Ipv4Addr current);

 private:
  // The staged machine is the engine's control flow; it reads the
  // collaborators and config directly.
  friend class RequestTask;

  probing::Prober& prober_;
  const topology::Topology& topo_;
  atlas::TracerouteAtlas& atlas_;
  vpselect::IngressDiscovery& ingress_;
  const asmap::IpToAs& ip2as_;
  const asmap::AsRelationships& relationships_;
  EngineConfig config_;
  util::Rng rng_;

  const alias::AliasStore* aliases_ = nullptr;
  AdjacencyProvider adjacencies_;
  const EngineMetrics* metrics_ = nullptr;
  obs::Trace* trace_ = nullptr;

  std::shared_ptr<EngineCaches> caches_;
};

}  // namespace revtr::core
