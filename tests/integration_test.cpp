// Cross-module integration tests: route churn, announcement policies,
// engine failure injection, and whole-stack invariants across seeds.
#include <gtest/gtest.h>
#include <memory>

#include <algorithm>
#include <set>

#include "core/revtr.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "net/wire.h"

namespace revtr {
namespace {

using topology::HostId;

topology::TopologyConfig small_config(std::uint64_t seed = 101) {
  topology::TopologyConfig config;
  config.seed = seed;
  config.num_ases = 180;
  config.num_vps = 10;
  config.num_vps_2016 = 4;
  config.num_probe_hosts = 50;
  return config;
}

// --------------------------------------------------------------------------
// Route churn (BgpTable::set_epoch)
// --------------------------------------------------------------------------

TEST(RouteChurn, ZeroChurnIsStable) {
  eval::Lab lab(small_config());
  const auto before = lab.bgp.as_path(3, 50);
  lab.bgp.set_epoch(5, 0.0);
  EXPECT_EQ(lab.bgp.as_path(3, 50), before);
}

TEST(RouteChurn, SmallChurnChangesFewRoutes) {
  eval::Lab lab(small_config());
  std::vector<std::vector<topology::Asn>> before;
  for (topology::AsIndex a = 0; a < lab.topo.num_ases(); a += 3) {
    before.push_back(lab.bgp.as_path(a, 7));
  }
  lab.bgp.set_epoch(1, 0.02);
  std::size_t changed = 0, index = 0;
  for (topology::AsIndex a = 0; a < lab.topo.num_ases(); a += 3) {
    if (lab.bgp.as_path(a, 7) != before[index++]) ++changed;
  }
  EXPECT_LT(changed, before.size() / 3) << "2% churn changed too much";
}

TEST(RouteChurn, FullChurnChangesManyRoutes) {
  eval::Lab lab(small_config());
  std::vector<std::vector<topology::Asn>> before;
  for (topology::AsIndex a = 0; a < lab.topo.num_ases(); a += 3) {
    before.push_back(lab.bgp.as_path(a, 7));
  }
  lab.bgp.set_epoch(1, 1.0);
  std::size_t changed = 0, index = 0;
  for (topology::AsIndex a = 0; a < lab.topo.num_ases(); a += 3) {
    if (lab.bgp.as_path(a, 7) != before[index++]) ++changed;
  }
  EXPECT_GT(changed, 0u);
}

TEST(RouteChurn, ChurnedRoutesStayValid) {
  eval::Lab lab(small_config());
  lab.bgp.set_epoch(3, 0.5);
  for (topology::AsIndex a = 0; a < lab.topo.num_ases(); a += 11) {
    const auto path = lab.bgp.as_path(a, 2);
    ASSERT_FALSE(path.empty());
    std::set<topology::Asn> unique(path.begin(), path.end());
    EXPECT_EQ(unique.size(), path.size()) << "loop under churn";
  }
}

TEST(RouteChurn, EpochsAreReproducible) {
  eval::Lab lab(small_config());
  lab.bgp.set_epoch(2, 0.3);
  const auto at_epoch2 = lab.bgp.as_path(5, 60);
  lab.bgp.set_epoch(3, 0.3);
  lab.bgp.set_epoch(2, 0.3);
  EXPECT_EQ(lab.bgp.as_path(5, 60), at_epoch2);
}

// --------------------------------------------------------------------------
// Announcement policies (BgpTable::set_no_export)
// --------------------------------------------------------------------------

TEST(NoExport, SuppressedProviderLosesDirectRoute) {
  eval::Lab lab(small_config());
  // Find a multihomed stub.
  for (const auto& node : lab.topo.ases()) {
    if (node.tier != topology::AsTier::kStub || node.providers.size() < 2) {
      continue;
    }
    const auto origin = lab.topo.index_of(node.asn);
    const topology::Asn p1 = node.providers[0];
    lab.bgp.set_no_export(origin, {p1});
    const auto& column = lab.bgp.column(origin);
    const auto p1_index = lab.topo.index_of(p1);
    // p1 must not route straight into the origin anymore.
    EXPECT_NE(column.next[p1_index], node.asn);
    // The origin is still reachable from p1 (via the other provider).
    EXPECT_NE(column.next[p1_index], 0u);
    // And cleanup restores the direct route... usually; at minimum the
    // column changes back deterministically.
    lab.bgp.clear_no_export(origin);
    const auto& restored = lab.bgp.column(origin);
    EXPECT_EQ(restored.next[p1_index], node.asn);
    return;
  }
  GTEST_SKIP() << "no multihomed stub";
}

TEST(NoExport, SuppressingAllProvidersOfSingleHomedStubKillsReachability) {
  eval::Lab lab(small_config());
  for (const auto& node : lab.topo.ases()) {
    if (node.tier != topology::AsTier::kStub || node.providers.size() != 1 ||
        !node.peers.empty()) {
      continue;
    }
    const auto origin = lab.topo.index_of(node.asn);
    lab.bgp.set_no_export(origin, {node.providers[0]});
    const auto& column = lab.bgp.column(origin);
    std::size_t reachable = 0;
    for (topology::AsIndex a = 0; a < lab.topo.num_ases(); ++a) {
      if (a == origin) continue;
      reachable += column.next[a] != 0;
    }
    EXPECT_EQ(reachable, 0u) << "withdrawn stub still reachable";
    lab.bgp.clear_no_export(origin);
    return;
  }
  GTEST_SKIP() << "no single-homed stub without peers";
}

TEST(NoExport, ShiftsForwardingPlaneCatchment) {
  eval::Lab lab(small_config());
  // Count, across many source ASes, the first hop used to reach a
  // multihomed stub, before and after no-export.
  for (const auto& node : lab.topo.ases()) {
    if (node.tier != topology::AsTier::kStub || node.providers.size() < 2) {
      continue;
    }
    const auto origin = lab.topo.index_of(node.asn);
    auto count_via = [&](topology::Asn provider) {
      std::size_t via = 0;
      const auto& column = lab.bgp.column(origin);
      for (topology::AsIndex a = 0; a < lab.topo.num_ases(); ++a) {
        // ASes whose best route's last hop is `provider`: approximate by
        // walking the path.
        const auto path = lab.bgp.as_path(a, origin);
        if (path.size() >= 2 && path[path.size() - 2] == provider) ++via;
      }
      (void)column;
      return via;
    };
    const topology::Asn p1 = node.providers[0];
    const auto before = count_via(p1);
    if (before == 0) continue;
    lab.bgp.set_no_export(origin, {p1});
    const auto after = count_via(p1);
    EXPECT_LT(after, before);
    lab.bgp.clear_no_export(origin);
    return;
  }
  GTEST_SKIP() << "no suitable stub";
}

// --------------------------------------------------------------------------
// Engine failure injection
// --------------------------------------------------------------------------

class FailureFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lab_ = std::make_unique<eval::Lab>(small_config(), core::EngineConfig::revtr2());
    source_ = lab_->topo.vantage_points()[0];
    lab_->bootstrap_source(source_, 40);
  }
  static void TearDownTestSuite() {
    lab_.reset();
  }
  static std::unique_ptr<eval::Lab> lab_;
  static HostId source_;
};

std::unique_ptr<eval::Lab> FailureFixture::lab_;
HostId FailureFixture::source_ = topology::kInvalidId;

TEST_F(FailureFixture, PingUnresponsiveDestinationFailsCleanly) {
  for (const auto& host : lab_->topo.hosts()) {
    if (host.ping_responsive) continue;
    util::SimClock clock;
    const auto result = lab_->engine.measure(host.id, source_, clock);
    EXPECT_NE(result.status, core::RevtrStatus::kComplete);
    EXPECT_EQ(result.hops.front().addr, host.addr);
    return;
  }
  GTEST_SKIP();
}

TEST_F(FailureFixture, RrUnresponsiveDestinationCanStillCompleteViaSymmetry) {
  // Ping-responsive but RR-unresponsive destinations can only be walked
  // with traceroute + intradomain symmetry or atlas hits; the engine must
  // either complete without RR provenance from the destination, abort, or
  // report unreachability — never crash or mislabel.
  std::size_t examined = 0;
  util::SimClock clock;
  for (const auto& host : lab_->topo.hosts()) {
    if (!host.ping_responsive || host.rr_responsive) continue;
    if (host.is_vantage_point || host.is_probe_host) continue;
    const auto result = lab_->engine.measure(host.id, source_, clock);
    if (result.complete()) {
      for (const auto& hop : result.hops) {
        if (hop.source == core::HopSource::kRecordRoute ||
            hop.source == core::HopSource::kSpoofedRecordRoute) {
          // RR hops may appear later in the path (from responsive routers),
          // but the *first* extension cannot be an RR reveal of the silent
          // destination itself.
          break;
        }
      }
    }
    if (++examined == 10) break;
  }
  EXPECT_GT(examined, 0u);
}

TEST_F(FailureFixture, MeasureToSelfIsTrivialComplete) {
  util::SimClock clock;
  const auto result = lab_->engine.measure(source_, source_, clock);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.hops.size(), 1u);
}

TEST_F(FailureFixture, UnboostrappedSourceStillMeasures) {
  // Without an atlas the engine leans on RR + symmetry alone.
  const HostId bare_source = lab_->topo.vantage_points()[2];
  util::SimClock clock;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto result = lab_->engine.measure(lab_->topo.probe_hosts()[i],
                                             bare_source, clock);
    completed += result.complete();
  }
  EXPECT_GT(completed, 0u);
}

TEST_F(FailureFixture, LatencyNeverNegativeAndBoundedByBatches) {
  util::SimClock clock;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto result = lab_->engine.measure(lab_->topo.probe_hosts()[i * 2],
                                             source_, clock);
    EXPECT_GE(result.span.duration(), 0);
    // Each spoofed batch adds exactly one 10 s timeout; latency must be at
    // least that.
    EXPECT_GE(result.span.duration(),
              static_cast<util::SimClock::Micros>(result.spoofed_batches) *
                  10 * util::SimClock::kSecond);
  }
}

TEST(PacketLoss, LossyNetworkDropsProbes) {
  eval::Lab lab(small_config());
  lab.network.set_loss_rate(1.0);
  const auto vp = lab.topo.vantage_points()[0];
  const auto result =
      lab.prober.ping(vp, lab.topo.host(lab.topo.probe_hosts()[0]).addr);
  EXPECT_FALSE(result.responded);
  lab.network.set_loss_rate(0.0);
  const auto retry =
      lab.prober.ping(vp, lab.topo.host(lab.topo.probe_hosts()[0]).addr);
  EXPECT_TRUE(retry.responded);
}

TEST(PacketLoss, ModerateLossStillAllowsMeasurement) {
  eval::Lab lab(small_config());
  lab.network.set_loss_rate(0.05);
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 30);
  util::SimClock clock;
  std::size_t complete = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    complete +=
        lab.engine.measure(lab.topo.probe_hosts()[i], source, clock)
            .complete();
  }
  EXPECT_GT(complete, 5u) << "5% loss should not cripple the system";
}

TEST_F(FailureFixture, DbrVerificationOptionRuns) {
  // With verification on, measurements still complete; any dbr_suspect
  // flag must coincide with extra spoofed probes spent.
  auto config = core::EngineConfig::revtr2();
  config.verify_destination_based_routing = true;
  eval::Lab lab(small_config(), config);
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 30);
  util::SimClock clock;
  std::size_t complete = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    const auto result =
        lab.engine.measure(lab.topo.probe_hosts()[i], source, clock);
    complete += result.complete();
    if (result.dbr_suspect) {
      EXPECT_GT(result.probes.spoofed_rr, 0u);
    }
  }
  EXPECT_GT(complete, 5u);
}

// --------------------------------------------------------------------------
// Whole-stack invariants across seeds (property-style)
// --------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EngineInvariantsHold) {
  eval::Lab lab(small_config(GetParam()), core::EngineConfig::revtr2(),
                GetParam());
  const HostId source = lab.topo.vantage_points()[0];
  lab.bootstrap_source(source, 30);
  util::SimClock clock;
  for (std::size_t i = 0; i < 12; ++i) {
    const auto dest = lab.topo.probe_hosts()[i * 3 % 50];
    const auto result = lab.engine.measure(dest, source, clock);
    // Invariant 1: the path starts at the destination.
    ASSERT_FALSE(result.hops.empty());
    EXPECT_EQ(result.hops.front().addr, lab.topo.host(dest).addr);
    // Invariant 2: no duplicate concrete hops (loop freedom).
    std::set<std::uint32_t> seen;
    for (const auto& hop : result.hops) {
      if (hop.source == core::HopSource::kSuspiciousGap) continue;
      EXPECT_TRUE(seen.insert(hop.addr.value()).second)
          << "duplicate hop " << hop.addr.to_string();
    }
    // Invariant 3: revtr 2.0 never uses interdomain symmetry.
    EXPECT_FALSE(result.used_interdomain_symmetry);
    // Invariant 4: probe accounting is consistent.
    EXPECT_EQ(result.probes.ts + result.probes.spoofed_ts, 0u);
    // Invariant 5: a complete path's last hop is the source or an atlas
    // suffix hop.
    if (result.complete() && result.hops.size() > 1) {
      const auto last = result.hops.back();
      EXPECT_TRUE(last.addr == lab.topo.host(source).addr ||
                  last.source == core::HopSource::kAtlasIntersection ||
                  last.source == core::HopSource::kSuspiciousGap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --------------------------------------------------------------------------
// Wire-format robustness: random buffers must never crash the decoder.
// --------------------------------------------------------------------------

TEST(WireFuzz, RandomBuffersNeverCrash) {
  util::Rng rng(424242);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> buffer(rng.below(96));
    for (auto& byte : buffer) {
      byte = static_cast<std::uint8_t>(rng.below(256));
    }
    // Must not crash; may or may not decode.
    (void)net::decode_packet(buffer);
  }
}

TEST(WireFuzz, BitFlippedRealPacketsNeverCrash) {
  util::Rng rng(777);
  net::Packet packet = net::make_echo_request(net::Ipv4Addr(1, 2, 3, 4),
                                              net::Ipv4Addr(5, 6, 7, 8), 9, 1);
  packet.rr = net::RecordRouteOption{};
  packet.rr->stamp(net::Ipv4Addr(9, 9, 9, 9));
  const auto bytes = net::encode_packet(packet);
  for (int round = 0; round < 2000; ++round) {
    auto corrupted = bytes;
    const auto flips = 1 + rng.below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      corrupted[rng.below(corrupted.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    (void)net::decode_packet(corrupted);
  }
}

}  // namespace
}  // namespace revtr
