// The probe transport seam (DESIGN.md §15).
//
// A `ProbeSpec` is the wire-complete description of one measurement — the
// same content the scheduler's coalesce key hashes — and a `ProbeReply` is
// everything a probe's outcome carries. `ProbeTransport` is the seam the
// scheduler issues through: `LocalProbeTransport` executes on an in-process
// `Prober` (today's monolith, bit-for-bit), while the controller's remote
// mode serializes specs as AGENT_PROBE frames to `revtr_agentd` processes
// that run the identical `execute_spec` switch on their own prober.
//
// Determinism contract: simulated outcomes are content-addressed (stateless
// ECMP salt, endpoint-derived flow ids — DESIGN.md §8), so executing a spec
// on *any* prober built over the same topology config and net seed returns
// the same reply byte for byte. That is what lets a remote agent answer a
// probe in place of the issuing worker without perturbing results.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "probing/prober.h"
#include "topology/topology.h"
#include "util/sim_clock.h"

namespace revtr::probing {

// Content-complete description of one wire probe. Mirrors the measurement
// fields of sched::ProbeDemand (scheduling-only fields like batch_ingress
// and offline closures never cross the transport).
struct ProbeSpec {
  ProbeType type = ProbeType::kPing;
  topology::HostId from = topology::kInvalidId;
  net::Ipv4Addr target;
  std::optional<net::Ipv4Addr> spoof_as;
  std::vector<net::Ipv4Addr> prespec;  // TS prespecified addresses.

  bool operator==(const ProbeSpec&) const = default;
};

// The outcome of one spec, carrying every field any probe type produces.
// Identical in content to sched::ProbeOutcome minus the scheduler-side
// bookkeeping (coalesced flag, offline counters).
struct ProbeReply {
  bool responded = false;
  std::vector<net::Ipv4Addr> slots;  // RR reply slots.
  std::vector<bool> stamped;         // TS stamps observed.
  TracerouteResult traceroute;
  util::SimClock::Micros duration_us = 0;
  // Wire packets this reply cost (traceroute: one per TTL tried).
  std::uint64_t packets = 0;

  bool operator==(const ProbeReply&) const = default;
};

// Where wire probes go. Implementations must preserve the determinism
// contract above: same spec, same simulated world => same reply.
class ProbeTransport {
 public:
  virtual ~ProbeTransport() = default;

  virtual ProbeReply execute(const ProbeSpec& spec) = 0;

  // A whole same-ingress spoofed-RR batch. Must be outcome-equivalent to
  // execute() per item in order (the local path shares simulator scratch;
  // remote agents issue singly — Prober::rr_ping_batch pins the equality).
  virtual void execute_batch(std::span<const RrBatchItem> items,
                             std::vector<RrProbeResult>& out) = 0;
};

// Executes one spec synchronously on `prober` — the single dispatch switch
// shared by the local transport and the agent daemon, so both sides of the
// process split run literally the same code per probe type.
ProbeReply execute_spec(Prober& prober, const ProbeSpec& spec);

// Today's monolith: probes execute on the caller's own prober.
class LocalProbeTransport final : public ProbeTransport {
 public:
  explicit LocalProbeTransport(Prober& prober) : prober_(prober) {}

  ProbeReply execute(const ProbeSpec& spec) override {
    return execute_spec(prober_, spec);
  }

  void execute_batch(std::span<const RrBatchItem> items,
                     std::vector<RrProbeResult>& out) override {
    prober_.rr_ping_batch(items, out);
  }

  Prober& prober() noexcept { return prober_; }

 private:
  Prober& prober_;
};

}  // namespace revtr::probing
