// Shared runner for the §5.2 comparison between revtr 1.0, revtr 2.0, and
// the intermediate ablations of Table 4 / Fig 5.
//
// Each configuration gets a fresh, identically-seeded world. The offline
// phase (atlas build, Q2 RR index, Q3 ingress survey, adjacency corpus) runs
// first and its packets are excluded from the per-request accounting, as in
// the paper's packet budget. Then the same (destination, source) request
// list is measured and per-request latency, packets, and outcomes recorded.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/revtr.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "util/stats.h"

namespace revtr::bench {

enum class AdjacencySource {
  kNone,       // Timestamp technique disabled / starved.
  kAtlas,      // Adjacencies mined from the traceroute atlas (Ark-like).
  kGroundTruth,  // Oracle adjacencies from the topology (Appx D.1).
};

struct AblationConfig {
  std::string label;
  core::EngineConfig engine;
  bool use_alias_store = false;  // revtr 1.0 style atlas intersection.
  AdjacencySource adjacency = AdjacencySource::kNone;
  // Also measure a direct traceroute per pair and fill PathMetrics
  // (needed by the Fig 5a accuracy comparison).
  bool record_accuracy = false;
};

// §5.2.2 accuracy of one measured path against its direct traceroute.
struct PathMetrics {
  bool has_truth = false;
  double router_fraction = 0;             // Fig 5a "router level".
  double router_optimistic_fraction = 0;  // Fig 5a shaded upper bound.
  double as_fraction = 0;                 // Fig 5a "AS level".
  eval::AsMatch as_match = eval::AsMatch::kMismatch;
};

struct MeasuredPath {
  topology::HostId destination = topology::kInvalidId;
  topology::HostId source = topology::kInvalidId;
  core::RevtrStatus status = core::RevtrStatus::kUnreachable;
  std::vector<net::Ipv4Addr> hops;
  double latency_seconds = 0;
  bool has_suspicious_gap = false;
  bool has_private_hops = false;
  std::size_t symmetry_assumptions = 0;
  bool used_interdomain_symmetry = false;
  PathMetrics metrics;
};

struct AblationResult {
  std::string label;
  probing::ProbeCounters online;
  util::Distribution latency_seconds;
  std::size_t attempted = 0;
  std::size_t complete = 0;
  std::size_t aborted = 0;
  std::size_t unreachable = 0;
  std::vector<MeasuredPath> paths;

  double coverage() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(complete) /
                                static_cast<double>(attempted);
  }
};

struct RequestList {
  // (destination, source) pairs; destinations are probe hosts so a direct
  // traceroute ground truth exists (§5.2.1).
  std::vector<std::pair<topology::HostId, topology::HostId>> pairs;
};

inline RequestList make_requests(eval::Lab& lab, const BenchSetup& setup) {
  RequestList list;
  const auto probes = lab.topo.probe_hosts();
  const auto vps = lab.topo.vantage_points();
  const std::size_t sources = std::min(setup.sources, vps.size());
  util::Rng rng(setup.seed * 13 + 5);
  for (std::size_t i = 0; i < setup.revtrs; ++i) {
    const auto dest = probes[rng.below(probes.size())];
    const auto source = vps[i % sources];
    list.pairs.emplace_back(dest, source);
  }
  return list;
}

inline AblationResult run_ablation(const BenchSetup& setup,
                                   const AblationConfig& config) {
  eval::Lab lab(setup.topo, config.engine, setup.seed);
  const auto requests = make_requests(lab, setup);

  // --- Offline phase. ---
  const auto vps = lab.topo.vantage_points();
  const std::size_t sources = std::min(setup.sources, vps.size());
  for (std::size_t s = 0; s < sources; ++s) {
    lab.atlas.build(vps[s], setup.atlas_size, lab.rng);
    if (config.engine.use_rr_atlas) lab.atlas.build_rr_alias_index(vps[s]);
  }
  lab.precompute_all_ingresses();

  auto aliases = std::make_unique<alias::AliasStore>();
  if (config.use_alias_store) {
    util::Rng alias_rng(setup.seed + 3);
    *aliases = alias::midar_like_aliases(lab.topo, alias_rng);
    lab.engine.set_alias_store(aliases.get());
  }

  core::AdjacencyMap adjacency;
  switch (config.adjacency) {
    case AdjacencySource::kNone:
      break;
    case AdjacencySource::kAtlas:
      for (std::size_t s = 0; s < sources; ++s) {
        for (const auto& tr : lab.atlas.traceroutes(vps[s])) {
          adjacency.add_path(tr.hops);
        }
      }
      lab.engine.set_adjacency_provider(adjacency.provider());
      break;
    case AdjacencySource::kGroundTruth:
      lab.engine.set_adjacency_provider([&lab](net::Ipv4Addr current) {
        std::vector<net::Ipv4Addr> result;
        const auto owner = lab.topo.interface_at(current);
        if (!owner) return result;
        for (const auto link : lab.topo.router(owner->router).links) {
          result.push_back(lab.topo.egress_addr(
              lab.topo.far_end(owner->router, link), link));
        }
        return result;
      });
      break;
  }

  // --- Online phase. ---
  lab.prober.reset_counters();
  AblationResult result;
  result.label = config.label;
  util::SimClock clock;
  for (const auto& [dest, source] : requests.pairs) {
    const auto measured = lab.engine.measure(dest, source, clock);
    ++result.attempted;
    MeasuredPath path;
    path.destination = dest;
    path.source = source;
    path.status = measured.status;
    path.hops = measured.ip_hops();
    path.latency_seconds = measured.span.seconds();
    path.has_suspicious_gap = measured.has_suspicious_gap;
    path.has_private_hops = measured.has_private_hops;
    path.symmetry_assumptions = measured.symmetry_assumptions;
    path.used_interdomain_symmetry = measured.used_interdomain_symmetry;
    result.paths.push_back(std::move(path));
    result.latency_seconds.add(measured.span.seconds());
    switch (measured.status) {
      case core::RevtrStatus::kComplete:
        ++result.complete;
        break;
      case core::RevtrStatus::kAbortedInterdomainSymmetry:
        ++result.aborted;
        break;
      case core::RevtrStatus::kUnreachable:
        ++result.unreachable;
        break;
    }
  }
  result.online = lab.prober.counters();

  // --- Ground truth for Fig 5a: direct traceroutes, out of budget. ---
  if (config.record_accuracy) {
    util::Rng alias_rng(setup.seed + 3);
    const auto midar = alias::midar_like_aliases(lab.topo, alias_rng);
    const alias::SnmpResolver snmp(lab.topo);
    const eval::HopMatcher matcher(&midar, &snmp);
    eval::MatcherOptions optimistic_options;
    optimistic_options.optimistic = true;
    const eval::HopMatcher optimistic(&midar, &snmp, optimistic_options);

    for (auto& path : result.paths) {
      if (path.status != core::RevtrStatus::kComplete) continue;
      const auto direct = lab.prober.traceroute(
          path.destination, lab.topo.host(path.source).addr);
      if (!direct.reached) continue;
      const auto direct_hops = direct.responsive_hops();
      path.metrics.has_truth = true;
      path.metrics.router_fraction =
          eval::fraction_hops_matched(direct_hops, path.hops, matcher);
      path.metrics.router_optimistic_fraction =
          eval::fraction_hops_matched(direct_hops, path.hops, optimistic);
      const auto direct_as = lab.ip2as.as_path(direct_hops);
      const auto revtr_as = lab.ip2as.as_path(path.hops);
      std::size_t matched = 0;
      for (const auto asn : direct_as) {
        if (std::find(revtr_as.begin(), revtr_as.end(), asn) !=
            revtr_as.end()) {
          ++matched;
        }
      }
      path.metrics.as_fraction =
          direct_as.empty() ? 0.0
                            : static_cast<double>(matched) /
                                  static_cast<double>(direct_as.size());
      path.metrics.as_match = eval::compare_as_paths(direct_as, revtr_as);
    }
  }
  return result;
}

// The Table 4 incremental chain:
//   revtr 2.0 = revtr 1.0 + ingress + cache - TS + RR atlas.
inline std::vector<AblationConfig> table4_chain() {
  std::vector<AblationConfig> chain;

  AblationConfig revtr1;
  revtr1.label = "revtr 1.0";
  revtr1.engine = core::EngineConfig::revtr1();
  revtr1.use_alias_store = true;
  revtr1.adjacency = AdjacencySource::kAtlas;
  chain.push_back(revtr1);

  AblationConfig ingress = revtr1;
  ingress.label = "revtr 1.0 + ingress";
  ingress.engine.use_ingress_selection = true;
  chain.push_back(ingress);

  AblationConfig cache = ingress;
  cache.label = "revtr 1.0 + ingress + cache";
  cache.engine.use_cache = true;
  chain.push_back(cache);

  AblationConfig no_ts = cache;
  no_ts.label = "revtr 1.0 + ingress + cache - TS";
  no_ts.engine.use_timestamp = false;
  no_ts.adjacency = AdjacencySource::kNone;
  chain.push_back(no_ts);

  AblationConfig revtr2 = no_ts;
  revtr2.label = "revtr 2.0 (+ RR atlas)";
  revtr2.engine = core::EngineConfig::revtr2();
  revtr2.use_alias_store = false;
  chain.push_back(revtr2);

  return chain;
}

}  // namespace revtr::bench
